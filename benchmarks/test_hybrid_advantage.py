"""Extension experiment — hybrid scheduling vs static worst-case reservation.

Not a paper table (the paper motivates hybrid scheduling qualitatively in
Sec. 1); this bench quantifies the motivation on benchmark case 2 at
reduced scale: Monte-Carlo realized makespans of the hybrid schedule
against the static schedule that reserves ``max_attempts`` slots per
indeterminate operation.
"""

from __future__ import annotations

from repro.assays import gene_expression_assay
from repro.experiments.robustness import (
    simulate_makespans,
    static_worst_case,
)
from repro.hls import SynthesisSpec, synthesize
from repro.runtime import RetryModel

_STATE = {}


def _result():
    if "result" not in _STATE:
        assay = gene_expression_assay(cells=4)
        spec = SynthesisSpec(
            max_devices=12, threshold=4, time_limit=10, max_iterations=1,
        )
        _STATE["result"] = synthesize(assay, spec)
    return _STATE["result"]


RETRY = RetryModel(success_probability=0.53, max_attempts=10)


def test_simulation_throughput(benchmark):
    result = _result()
    dist = benchmark(
        lambda: simulate_makespans(result, RETRY, runs=50, seed=0)
    )
    assert dist.runs == 50


def test_hybrid_beats_static(benchmark, record_rows):
    result = _result()
    dist = benchmark.pedantic(
        lambda: simulate_makespans(result, RETRY, runs=300, seed=1),
        rounds=1, iterations=1,
    )
    static = static_worst_case(result, RETRY)
    saving = 1 - dist.mean / static
    record_rows(
        "hybrid_advantage",
        "\n".join([
            f"scheduled (fixed) : {result.fixed_makespan}m",
            f"simulated mean    : {dist.mean:.1f}m  "
            f"(p95 {dist.p95}m, worst {dist.worst}m, "
            f"retry rate {dist.retry_rate:.0%})",
            f"static worst-case : {static}m",
            f"hybrid saving     : {saving:.0%} of chip time",
        ]),
    )
    assert dist.worst <= static
    assert saving > 0.2  # the motivation is substantial, not marginal
