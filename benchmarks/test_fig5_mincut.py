"""Fig. 5 — min-cut based eviction pricing.

Replays the figure's three eviction candidates (storage 1 / 2 / 1, with the
'fewest removed operations' tie-break) and measures the Ford–Fulkerson
pricing throughput on dense random layers.
"""

from __future__ import annotations

from repro.assays import random_assay
from repro.layering import eviction_cost, resource_based_allocation
from repro.operations import Assay, Fixed, Indeterminate, Operation


def fig5_assay() -> Assay:
    assay = Assay("fig5")
    assay.add(Operation("a1", Fixed(3)))
    assay.add(Operation("o1", Indeterminate(5)))
    assay.add_dependency("a1", "o1")
    for uid in ("b1", "b2"):
        assay.add(Operation(uid, Fixed(3)))
    assay.add(Operation("o2", Indeterminate(5)))
    assay.add_dependency("b1", "o2")
    assay.add_dependency("b2", "o2")
    for uid in ("c1", "c2", "c3"):
        assay.add(Operation(uid, Fixed(3)))
    assay.add(Operation("o3", Indeterminate(5)))
    assay.add_dependency("c1", "c2")
    assay.add_dependency("c2", "c3")
    assay.add_dependency("c3", "o3")
    return assay


def test_fig5_costs(benchmark, record_rows):
    assay = fig5_assay()
    layer = set(assay.uids)
    graph = assay.graph

    def price_all():
        return {
            uid: eviction_cost(layer, graph, uid)
            for uid in ("o1", "o2", "o3")
        }

    costs = benchmark(price_all)
    lines = ["Fig.5 eviction pricing (storage, #removed):"]
    for uid, cost in costs.items():
        lines.append(f"  {uid}: storage={cost.storage} "
                     f"removed={sorted(cost.removed)}")
    record_rows("fig5_mincut", "\n".join(lines))

    # Paper: storage usage 1, 2, 1 for o1, o2, o3.
    assert costs["o1"].storage == 1
    assert costs["o2"].storage == 2
    assert costs["o3"].storage == 1
    # c2-over-c1 preference: evicting o3 removes only o3 itself.
    assert costs["o3"].removed == frozenset({"o3"})
    # Priority: o1 strictly precedes o2.
    assert costs["o1"].sort_key < costs["o2"].sort_key


def test_eviction_throughput_dense_layer(benchmark):
    assay = random_assay(
        80, seed=5, edge_probability=0.08, indeterminate_fraction=0.3
    )
    graph = assay.graph
    layer = set(assay.uids)
    ind = set(assay.indeterminate_uids)

    kept, evicted = benchmark(
        lambda: resource_based_allocation(layer, graph, ind, threshold=5)
    )
    assert len(set(kept) & ind) <= 5
    assert kept | evicted == layer
