"""Incremental ILP on the re-synthesis encode+solve path.

Runs the paper cases through the progressive flow twice — once on the
pre-refactor one-shot path (every pass re-encodes each layer from scratch
and solves cold) and once on the incremental path (persistent solver
sessions patched by deltas, plus the warm-start objective cutoff) — and
records per-case wall clock, encode+solve time, and result quality.

The incremental path is allowed to land on a different within-gap optimum
(the cutoff row changes tie-breaking, which is why ``warm_cutoff``
participates in solve fingerprints), so the quality assertion is a bounded
regression against the one-shot makespan, not equality.  Byte-identity of
sessions on/off under the *same* spec is asserted separately in
tests/test_solver_sessions.py and the incremental-smoke CI job.
"""

from __future__ import annotations

import dataclasses
import time

from repro.assays import benchmark_assay
from repro.hls import SynthesisSpec, synthesize

CASES = (1, 2, 3)
BASE = SynthesisSpec(
    max_devices=25,
    threshold=4,
    time_limit=20.0,
    mip_gap=0.05,
    max_iterations=3,
    improvement_threshold=-1.0,
)
VARIANTS = {
    # One-shot solve(model) calls: no sessions, eager conflict rows, warm
    # starts ignored by the HiGHS wrapper — the stack before the refactor.
    "oneshot": dict(
        enable_solver_sessions=False, conflict_mode="eager", warm_cutoff=False
    ),
    # Session pool + delta encoding + warm-start objective cutoff.
    "incremental": dict(
        enable_solver_sessions=True, conflict_mode="eager", warm_cutoff=True
    ),
}

_RESULTS: dict = {}


def _run(case: int, variant: str):
    if (case, variant) not in _RESULTS:
        spec = dataclasses.replace(BASE, **VARIANTS[variant])
        started = time.monotonic()
        result = synthesize(benchmark_assay(case), spec)
        wall = time.monotonic() - started
        _RESULTS[(case, variant)] = (result, wall)
    return _RESULTS[(case, variant)]


def _encode_solve(result) -> float:
    return sum(
        s.build_time + s.encode_time + s.solve_time for s in result.solve_stats
    )


def test_both_variants_validate(benchmark):
    def run_all():
        return [_run(case, v) for case in CASES for v in VARIANTS]

    for result, _ in benchmark.pedantic(run_all, rounds=1, iterations=1):
        result.validate()


def test_incremental_report(benchmark, record_rows):
    benchmark.pedantic(
        lambda: [_run(case, v) for case in CASES for v in VARIANTS],
        rounds=1,
        iterations=1,
    )
    lines = [
        f"{'case':<5} {'variant':<12} {'makespan':>12} {'#D':>4} "
        f"{'solves':>7} {'encode':>8} {'solve':>8} {'enc+sol':>8} {'wall':>8}"
    ]
    speedups = {}
    for case in CASES:
        rows = {}
        for variant in VARIANTS:
            result, wall = _run(case, variant)
            encode = sum(
                s.build_time + s.encode_time for s in result.solve_stats
            )
            solve = sum(s.solve_time for s in result.solve_stats)
            rows[variant] = (result, wall, encode, solve)
            lines.append(
                f"{case:<5} {variant:<12} {str(result.fixed_makespan) + 'm':>12} "
                f"{result.num_devices:>4} {result.ilp_solves:>7} "
                f"{encode:>7.2f}s {solve:>7.2f}s {encode + solve:>7.2f}s "
                f"{wall:>7.2f}s"
            )
        one, incr = rows["oneshot"], rows["incremental"]
        es_speedup = (one[2] + one[3]) / max(incr[2] + incr[3], 1e-9)
        wall_speedup = one[1] / max(incr[1], 1e-9)
        speedups[case] = (es_speedup, wall_speedup)
        lines.append(
            f"{case:<5} {'speedup':<12} encode+solve {es_speedup:.2f}x, "
            f"wall {wall_speedup:.2f}x"
        )

    best = max(speedups.values())
    lines.append(
        f"best re-synthesis encode+solve improvement: {best[0]:.2f}x "
        f"(wall {best[1]:.2f}x)"
    )
    record_rows("incremental_ilp", "\n".join(lines))

    for case in CASES:
        one = _run(case, "oneshot")[0]
        incr = _run(case, "incremental")[0]
        # The cutoff may move within the MIP gap, never far outside it.
        assert incr.fixed_makespan <= one.fixed_makespan * (
            1 + 3 * BASE.mip_gap
        ), (case, incr.fixed_makespan, one.fixed_makespan)

    # The hard-layer case must show the headline incremental win.  The
    # committed results file records the measured factor (>= 2x there);
    # the assertion keeps slack for noisy CI machines.  Cases whose layer
    # solves are trivial are recorded as-is above — encode bookkeeping on
    # sub-second solves is allowed to wash out, not hidden.
    assert best[0] >= 1.5, speedups
