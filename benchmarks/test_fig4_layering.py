"""Fig. 4 — the layering algorithm (dependency-based allocation).

Fig. 4 illustrates an algorithm rather than a measurement; the bench
(a) replays the figure's selection logic and (b) measures the layering
algorithm's throughput on the real benchmark assays and on large random
DAGs (it must stay negligible next to the ILP solves).
"""

from __future__ import annotations

import pytest

from repro.assays import benchmark_assay, random_assay
from repro.layering import layer_assay
from repro.operations import AssayBuilder


def fig4_assay():
    b = AssayBuilder("fig4")
    o1 = b.op("o1", 2)
    oa = b.op("oa", 5, indeterminate=True, after=[o1])
    o2 = b.op("o2", 2, after=[oa])
    b.op("ob", 5, indeterminate=True, after=[o2])
    b.op("side", 2)
    return b.build()


def test_fig4_selection(benchmark, record_rows):
    result = benchmark(lambda: layer_assay(fig4_assay(), threshold=10))
    lines = ["Fig.4 layering walkthrough:"]
    for layer in result.layers:
        lines.append(
            f"  layer {layer.index}: {', '.join(layer.uids)} "
            f"(indeterminate: {', '.join(layer.indeterminate_uids) or '-'})"
        )
    record_rows("fig4_layering", "\n".join(lines))
    assert result.layer_of["oa"] == 0
    assert result.layer_of["ob"] == 1


@pytest.mark.parametrize("case", [1, 2, 3])
def test_benchmark_assays(case, benchmark):
    assay = benchmark_assay(case)
    result = benchmark(lambda: layer_assay(assay, threshold=10))
    expected_ind_layers = {1: 0, 2: 1, 3: 2}[case]
    ind_layers = [l for l in result.layers if l.indeterminate_uids]
    assert len(ind_layers) == expected_ind_layers


@pytest.mark.parametrize("num_ops", [100, 400])
def test_large_random_dags(num_ops, benchmark):
    assay = random_assay(
        num_ops, seed=13, edge_probability=0.02,
        indeterminate_fraction=0.2,
    )
    result = benchmark(lambda: layer_assay(assay, threshold=10))
    result.validate()
