"""Table 2 — synthesis results for the three bioassays (conv vs ours).

Regenerates the paper's headline table with its published parameters
(|D| = 25, indeterminate threshold t = 10).  Absolute times differ from the
paper (different solver, machine, and reconstructed protocols); the asserted
*shape* is the paper's claim:

* our method's execution time <= the conventional method's on every case,
* with no more devices,
* and no more transportation paths.
"""

from __future__ import annotations

import pytest

from repro.experiments.report import format_table2
from repro.experiments.table2 import default_spec, run_case

#: per-case ILP budget (seconds per layer solve); case 3 has ~50-op layers.
TIME_LIMITS = {1: 10.0, 2: 15.0, 3: 25.0}

_ROWS = {}


def _run(case: int):
    if case not in _ROWS:
        spec = default_spec(
            time_limit=TIME_LIMITS[case], max_iterations=2
        )
        _ROWS[case] = run_case(case, spec)
    return _ROWS[case]


def _assert_shape(conv_row, our_row):
    assert our_row.fixed_makespan <= conv_row.fixed_makespan
    assert our_row.num_devices <= conv_row.num_devices
    # Path dominance is exact when both methods solve to optimality
    # (case 1); on the large cases the comparison runs on time-limited
    # incumbents whose path counts fluctuate by a few either way, so the
    # assertion allows a small noise margin there.
    all_optimal = all(
        s == "optimal"
        for s in conv_row.layer_statuses + our_row.layer_statuses
    )
    if all_optimal:
        assert our_row.num_paths <= conv_row.num_paths
    else:
        slack = max(3, round(0.25 * conv_row.num_paths))
        assert our_row.num_paths <= conv_row.num_paths + slack
    # The symbolic indeterminate terms are identical (same layering).
    conv_terms = conv_row.exe_time.count("I_")
    our_terms = our_row.exe_time.count("I_")
    assert conv_terms == our_terms


@pytest.mark.parametrize("case", [1, 2, 3])
def test_case(case, benchmark, record_rows):
    conv_row, our_row = benchmark.pedantic(
        _run, args=(case,), rounds=1, iterations=1
    )
    _assert_shape(conv_row, our_row)
    record_rows(
        f"table2_case{case}", format_table2([conv_row, our_row])
    )


def test_table2_full_report(benchmark, record_rows):
    """Combined report over whatever cases already ran (cache-backed)."""
    def collect():
        rows = []
        for case in (1, 2, 3):
            rows.extend(_run(case))
        return rows

    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    record_rows("table2", format_table2(rows))
    # Paper shape across the table: case 3 shows the largest relative gain.
    gains = {
        case: 1 - _run(case)[1].fixed_makespan / _run(case)[0].fixed_makespan
        for case in (1, 2, 3)
    }
    assert all(g >= 0 for g in gains.values())
