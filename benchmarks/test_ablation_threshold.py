"""Ablation A1 — the indeterminate threshold ``t``.

The threshold trades layer count against per-layer parallelism: a small
``t`` gives many small layers (more real-time decision points, smaller
ILPs), a large ``t`` packs indeterminate operations together (fewer layers,
more devices needed for the parallel tail).  Measured on a reduced case-2
workload so every configuration solves exactly.
"""

from __future__ import annotations

import pytest

from repro.assays import gene_expression_assay
from repro.hls import SynthesisSpec, synthesize
from repro.layering import layer_assay

ASSAY = gene_expression_assay(cells=6)  # 42 ops, 6 indeterminate
THRESHOLDS = (1, 2, 3, 6)

_RESULTS = {}


def _run(threshold: int):
    if threshold not in _RESULTS:
        spec = SynthesisSpec(
            max_devices=15, threshold=threshold, time_limit=10,
            max_iterations=1,
        )
        _RESULTS[threshold] = synthesize(ASSAY, spec)
    return _RESULTS[threshold]


@pytest.mark.parametrize("threshold", THRESHOLDS)
def test_threshold(threshold, benchmark):
    result = benchmark.pedantic(
        _run, args=(threshold,), rounds=1, iterations=1
    )
    layering = layer_assay(ASSAY, threshold)
    for layer in layering.layers:
        assert len(layer.indeterminate_uids) <= threshold
    result.validate()


def test_threshold_report(benchmark, record_rows):
    benchmark.pedantic(lambda: [_run(t) for t in THRESHOLDS],
                       rounds=1, iterations=1)
    lines = [f"{'t':>3} {'layers':>7} {'makespan':>9} {'#D':>4} {'#P':>4}"]
    for threshold in THRESHOLDS:
        result = _run(threshold)
        lines.append(
            f"{threshold:>3} {result.layering.num_layers:>7} "
            f"{result.makespan_expression:>9} {result.num_devices:>4} "
            f"{result.num_paths:>4}"
        )
    record_rows("ablation_threshold", "\n".join(lines))
    # More layers with smaller t (monotone non-increasing layer count).
    layer_counts = [_run(t).layering.num_layers for t in THRESHOLDS]
    assert layer_counts == sorted(layer_counts, reverse=True)
