"""Extension experiment — certified integrality gaps on the paper cases.

Not a paper table: the paper reports heuristic/ILP objectives without
optimality certificates.  This bench walks the initial-pass layer
sequence of each benchmark case and solves every layer problem three
ways — plain greedy, the approx-lp rounding backend, and the LP
relaxation bound — on *identical* problems (the trajectory is advanced
with the greedy result, so both backends see the same state).

Two inequalities must hold per layer, by construction:

* ``approx-lp <= greedy`` — the rounding backend races plain greedy and
  keeps the cheaper schedule;
* ``lp bound <= approx-lp`` — the LP optimum is a proven lower bound.

The recorded table quotes the per-case totals and the certified gap.
"""

from __future__ import annotations

from repro.assays import benchmark_assay
from repro.hls import SynthesisSpec, UidAllocator, create_scheduler
from repro.hls.backends import layer_cost
from repro.hls.context import PassState, SynthesisContext
from repro.hls.pipeline import (
    LayeringStage,
    apply_layer_result,
    prepare_layer_problem,
)
from repro.ilp import relative_gap

SPEC = SynthesisSpec(threshold=4, time_limit=10.0, max_iterations=0)

_STATE: dict[int, dict] = {}


def _case_rows(case: int) -> dict:
    """Per-layer greedy/approx/bound costs along the greedy trajectory."""
    if case in _STATE:
        return _STATE[case]
    context = SynthesisContext(assay=benchmark_assay(case), spec=SPEC)
    LayeringStage().run(context)
    greedy = create_scheduler("greedy")
    approx = create_scheduler("approx-lp")

    state = PassState()
    rows = []
    for layer in context.layering.layers:
        problem = prepare_layer_problem(
            context.assay, context.layering, SPEC, context.transport,
            state, layer, resynthesis=False,
        )
        # Solve the identical problem twice; throwaway uids keep the
        # comparison solve from disturbing the trajectory's allocator.
        greedy_result = greedy.solve(problem, SPEC, context.uids)
        approx_result = approx.solve(problem, SPEC, UidAllocator(9000))
        rows.append({
            "layer": layer.index,
            "greedy": layer_cost(greedy_result, problem, SPEC),
            "approx": layer_cost(approx_result, problem, SPEC),
            "bound": approx_result.stats.lower_bound,
        })
        apply_layer_result(state, layer.index, greedy_result)

    _STATE[case] = {"rows": rows}
    return _STATE[case]


def test_gap_table(record_rows):
    lines = [
        f"{'case':>4} {'layers':>6} {'greedy':>9} {'approx-lp':>9} "
        f"{'lp bound':>9} {'gap':>6}",
    ]
    for case in (1, 2, 3):
        rows = _case_rows(case)["rows"]
        for row in rows:
            assert row["approx"] <= row["greedy"] + 1e-6
            if row["bound"] is not None:
                assert row["bound"] <= row["approx"] + 1e-9
        greedy_total = sum(r["greedy"] for r in rows)
        approx_total = sum(r["approx"] for r in rows)
        certified = [r for r in rows if r["bound"] is not None]
        bound_total = (
            sum(r["bound"] for r in certified)
            if len(certified) == len(rows)
            else None
        )
        gap = relative_gap(approx_total, bound_total)
        bound_text = "-" if bound_total is None else f"{bound_total:.1f}"
        gap_text = "-" if gap is None else f"{gap * 100:.1f}%"
        lines.append(
            f"{case:>4} {len(rows):>6} {greedy_total:>9.1f} "
            f"{approx_total:>9.1f} {bound_text:>9} {gap_text:>6}"
        )
        assert approx_total <= greedy_total + 1e-6
    record_rows("integrality_gap", "\n".join(lines))


def test_approx_lp_layer_throughput(benchmark):
    """One mid-size rounded layer solve (case 2, first layer) per round."""
    context = SynthesisContext(assay=benchmark_assay(2), spec=SPEC)
    LayeringStage().run(context)
    layer = context.layering.layers[0]
    problem = prepare_layer_problem(
        context.assay, context.layering, SPEC, context.transport,
        PassState(), layer, resynthesis=False,
    )
    approx = create_scheduler("approx-lp")
    result = benchmark(
        lambda: approx.solve(problem, SPEC, UidAllocator(9000))
    )
    assert result.stats.lower_bound is not None
