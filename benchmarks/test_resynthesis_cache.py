"""Cross-pass layer-solve caching on the Table 3 re-synthesis hot path.

Runs benchmark case 2 through the progressive flow twice — with the
layer-solve cache enabled and disabled — and records per-variant wall
clock, ILP solve counts, and cache hit rates.  With caching on, a pass
whose layer problems are unchanged replays earlier decodes instead of
re-solving, so the number of actual ILP solves must be strictly below
passes x layers whenever any pass converges, while the reported table
values stay identical.
"""

from __future__ import annotations

import dataclasses

from repro.assays import benchmark_assay
from repro.experiments.table2 import default_spec
from repro.hls import synthesize

CASE = 2
#: Iterate to convergence (negative threshold): the loop only stops once a
#: whole pass replays from the cache, or at max_iterations.  With the
#: cache on, the converged pass is (nearly) free; with it off, every extra
#: pass pays the full per-layer time limit again.  The tight limit keeps
#: the initial incumbent modest so re-synthesis actually kicks in.
SPEC = dataclasses.replace(
    default_spec(time_limit=8.0, max_iterations=4),
    improvement_threshold=-1.0,
)

_RESULTS = {}


def _run(cached: bool):
    if cached not in _RESULTS:
        spec = dataclasses.replace(SPEC, enable_solve_cache=cached)
        _RESULTS[cached] = synthesize(benchmark_assay(CASE), spec)
    return _RESULTS[cached]


def test_cached_variant(benchmark):
    result = benchmark.pedantic(_run, args=(True,), rounds=1, iterations=1)
    result.validate()
    posed = sum(len(r.layer_stats) for r in result.history)
    assert result.ilp_solves + result.cache_hits == posed
    if len(result.history) >= 3:
        # Convergence showed up as replayed layers, not repeated solves.
        assert result.ilp_solves < posed


def test_uncached_variant(benchmark):
    result = benchmark.pedantic(_run, args=(False,), rounds=1, iterations=1)
    result.validate()
    assert result.cache_hits == 0


def test_cache_report(benchmark, record_rows):
    on, off = benchmark.pedantic(
        lambda: (_run(True), _run(False)), rounds=1, iterations=1
    )
    lines = [
        f"{'variant':<10} {'makespan':>9} {'#D':>4} {'#P':>4} "
        f"{'passes':>7} {'solves':>7} {'hits':>5} {'solve_t':>8} {'wall':>8}",
    ]
    for label, result in (("cache-on", on), ("cache-off", off)):
        lines.append(
            f"{label:<10} {result.makespan_expression:>9} "
            f"{result.num_devices:>4} {result.num_paths:>4} "
            f"{len(result.history):>7} {result.ilp_solves:>7} "
            f"{result.cache_hits:>5} {result.total_solve_time:>7.1f}s "
            f"{result.runtime:>7.1f}s"
        )
    record_rows("resynthesis_cache", "\n".join(lines))

    # The cache must not change what the user gets.
    assert on.fixed_makespan == off.fixed_makespan
    assert on.num_devices == off.num_devices
    assert on.num_paths == off.num_paths
    # It must only remove work: fewer solves, and the converged run ends
    # early (replayed pass) instead of paying the time limit again.
    assert on.ilp_solves <= off.ilp_solves
    if len(on.history) < len(off.history):
        assert on.runtime < off.runtime
