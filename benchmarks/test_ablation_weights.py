"""Ablation A2 — objective weight coefficients (paper Sec. 4.3).

The paper leaves C_t/C_a/C_pr/C_p to the user.  This ablation shows the
knobs work: a time-dominant weighting parallelizes onto more devices, an
area-dominant weighting serializes onto fewer, and a path-dominant
weighting minimizes inter-device channels.
"""

from __future__ import annotations


import pytest

from repro.assays import kinase_assay
from repro.hls import SynthesisSpec, Weights, synthesize

ASSAY = kinase_assay()  # 16 ops, no indeterminate

PROFILES = {
    "time":  Weights(time=200.0, area=1.0, processing=1.0, paths=1.0),
    "area":  Weights(time=1.0, area=50.0, processing=50.0, paths=1.0),
    "paths": Weights(time=1.0, area=1.0, processing=1.0, paths=100.0),
}

_RESULTS = {}


def _run(profile: str):
    if profile not in _RESULTS:
        spec = SynthesisSpec(
            max_devices=25, threshold=10, time_limit=15, max_iterations=1,
            weights=PROFILES[profile],
        )
        _RESULTS[profile] = synthesize(ASSAY, spec)
    return _RESULTS[profile]


@pytest.mark.parametrize("profile", sorted(PROFILES))
def test_profile(profile, benchmark):
    result = benchmark.pedantic(_run, args=(profile,), rounds=1, iterations=1)
    result.validate()


def test_weight_tradeoffs(benchmark, record_rows):
    benchmark.pedantic(lambda: [_run(p) for p in PROFILES],
                       rounds=1, iterations=1)
    lines = [f"{'profile':<8} {'makespan':>9} {'#D':>4} {'#P':>4}"]
    for profile in PROFILES:
        r = _run(profile)
        lines.append(
            f"{profile:<8} {r.makespan_expression:>9} "
            f"{r.num_devices:>4} {r.num_paths:>4}"
        )
    record_rows("ablation_weights", "\n".join(lines))

    time_r, area_r, path_r = _run("time"), _run("area"), _run("paths")
    # Time-dominant: fastest schedule of the three.
    assert time_r.fixed_makespan <= area_r.fixed_makespan
    assert time_r.fixed_makespan <= path_r.fixed_makespan
    # Area-dominant: fewest devices.
    assert area_r.num_devices <= time_r.num_devices
    # Path-dominant: fewest transportation paths.
    assert path_r.num_paths <= time_r.num_paths
