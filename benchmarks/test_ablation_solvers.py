"""Ablation A4 — ILP backend comparison (HiGHS vs own branch-and-bound).

The paper solves with Gurobi; we provide HiGHS (via SciPy) and a
self-contained pure-Python branch-and-bound over an own simplex.  This
bench cross-checks that both find the same optimum on real (small) layer
models, and measures their speed difference.
"""

from __future__ import annotations


import pytest

from repro.hls import SynthesisSpec, synthesize
from repro.hls.milp_model import LayerProblem, build_layer_model
from repro.operations import AssayBuilder, Fixed, Operation


def small_layer_problem():
    ops = [
        Operation("a", Fixed(4), accessories=frozenset({"pump"})),
        Operation("b", Fixed(6), accessories=frozenset({"pump"})),
        Operation("c", Fixed(3), accessories=frozenset({"optical_system"})),
    ]
    edges = [("a", "c")]
    return LayerProblem(
        layer_index=0,
        ops=ops,
        in_layer_edges=edges,
        edge_transport={e: 2 for e in edges},
        release={"a": 2, "b": 0, "c": 0},
        fixed_devices=[],
        free_slots=3,
    )


SPEC = SynthesisSpec(max_devices=3, time_limit=30)


@pytest.mark.parametrize("backend", ["highs", "bnb"])
def test_backend_speed(backend, benchmark):
    problem = small_layer_problem()

    def solve():
        layer_model = build_layer_model(problem, SPEC)
        return layer_model.model.solve(backend=backend, time_limit=30)

    solution = benchmark(solve)
    assert solution.status.has_solution


def test_backends_agree_on_layer_model(benchmark, record_rows):
    problem = small_layer_problem()

    def solve_both():
        out = {}
        for backend in ("highs", "bnb"):
            layer_model = build_layer_model(problem, SPEC)
            solution = layer_model.model.solve(backend=backend, time_limit=60)
            assert solution.status.name == "OPTIMAL"
            out[backend] = solution.objective
        return out

    objectives = benchmark.pedantic(solve_both, rounds=1, iterations=1)
    record_rows(
        "ablation_solvers",
        "layer-model optimum per backend: "
        + ", ".join(f"{k}={v:.1f}" for k, v in objectives.items()),
    )
    assert objectives["highs"] == pytest.approx(objectives["bnb"], abs=1e-4)


def test_full_synthesis_on_bnb(benchmark, record_rows):
    """A complete (tiny) synthesis run entirely on the pure-Python stack."""
    b = AssayBuilder("bnb-e2e")
    load = b.op("load", 3, container="chamber")
    cap = b.op("cap", 4, indeterminate=True,
               accessories=["cell_trap"], after=[load])
    b.op("read", 2, accessories=["optical_system"], after=[cap])
    assay = b.build()

    spec = SynthesisSpec(
        max_devices=4, threshold=1, time_limit=60, max_iterations=1,
        backend="bnb",
    )
    result = benchmark.pedantic(
        lambda: synthesize(assay, spec), rounds=1, iterations=1
    )
    result.validate()
    record_rows(
        "ablation_solvers_e2e",
        f"pure-python synthesis: {result.makespan_expression}, "
        f"{result.num_devices} devices",
    )
