"""Throughput mode on the paper cases: II vs one-shot makespan.

For each benchmark case the one-shot result is re-timed as a steady-state
pipeline twice — through the modulo-ILP search (``auto``) and through the
pure greedy modulo scheduler — and the achieved initiation intervals are
recorded against the one-shot makespan and the certified ResMII lower
bound.  A second section ablates multi-variant sharing: the full case-1
protocol plus its half-length topological prefix synthesized onto one
shared binding vs independently, comparing device counts and per-variant
IIs.

Assertions (the CI throughput-smoke job runs this file in check mode):

* II <= one-shot makespan for every case and scheduler — pipelining can
  never be worse than back-to-back one-shot runs;
* II strictly below the makespan on at least one case;
* the certified lower bound never exceeds the achieved II;
* the ILP-backed search never lands above the greedy II;
* the shared binding never needs more devices than the per-variant fleet.
"""

from __future__ import annotations

import dataclasses

from repro.assays import benchmark_assay
from repro.hls import SynthesisSpec, synthesize
from repro.periodic import (
    derive_variants,
    schedule_throughput,
    synthesize_shared,
)

CASES = (1, 2, 3)
BASE = SynthesisSpec(
    threshold=4,
    time_limit=20.0,
    mip_gap=0.05,
    max_iterations=1,
    throughput_mode="periodic",
)
SCHEDULERS = ("auto", "greedy")

_CACHE: dict = {}


def _throughput(case: int, scheduler: str):
    key = (case, scheduler)
    if key not in _CACHE:
        spec = dataclasses.replace(BASE, throughput_scheduler=scheduler)
        result = synthesize(benchmark_assay(case), spec)
        _CACHE[key] = schedule_throughput(result, spec)
    return _CACHE[key]


def test_periodic_report(benchmark, record_rows):
    benchmark.pedantic(
        lambda: [_throughput(c, s) for c in CASES for s in SCHEDULERS],
        rounds=1,
        iterations=1,
    )
    lines = [
        f"{'case':<5} {'scheduler':<10} {'makespan':>9} {'II':>5} "
        f"{'bound':>6} {'gap':>7} {'speedup':>8} {'probes':>7}"
    ]
    strict = 0
    for case in CASES:
        for scheduler in SCHEDULERS:
            tr = _throughput(case, scheduler)
            assert tr.ii <= tr.base_makespan, (case, scheduler, tr.ii)
            assert tr.lower_bound is not None
            assert tr.lower_bound <= tr.ii + 1e-6, (case, scheduler)
            gap = tr.integrality_gap
            lines.append(
                f"{case:<5} {scheduler:<10} {tr.base_makespan:>9} "
                f"{tr.ii:>5} {tr.lower_bound:>6g} "
                f"{(f'{gap:.1%}' if gap is not None else 'n/a'):>7} "
                f"{tr.speedup:>7.2f}x {len(tr.probes):>7}"
            )
        auto = _throughput(case, "auto")
        greedy = _throughput(case, "greedy")
        assert auto.ii <= greedy.ii, (case, auto.ii, greedy.ii)
        strict += auto.ii < auto.base_makespan
    assert strict >= 1, "periodic re-timing never beat the one-shot flow"

    lines.append("")
    lines.append("variant sharing (case 1 + its 0.5 topological prefix):")
    variants = derive_variants(benchmark_assay(1), (0.5,))
    shared = synthesize_shared(variants, BASE)
    assert shared.shared_devices <= shared.independent_devices
    lines.append(
        f"  devices: shared {shared.shared_devices} vs independent "
        f"{shared.independent_devices} "
        f"(skeleton {len(shared.skeleton)} ops)"
    )
    for report in shared.reports:
        lines.append(
            f"  {report.name:<24} ops={report.num_ops:<3} "
            f"shared II={report.shared_ii:<5} "
            f"independent II={report.independent_ii:<5} "
            f"independent devices={report.independent_devices}"
        )
    record_rows("periodic", "\n".join(lines))
