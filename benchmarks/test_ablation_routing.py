"""Ablation A5 — does path minimization actually save routing effort?

The paper's contribution III: "optimize the number of flow channels among
devices to save routing efforts."  This bench closes the claim end to end:
synthesize the same workload with and without the path term in the
objective, place both chips, *route* both chips
(:mod:`repro.layout.router`), and compare total channel length and edge
congestion.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.assays import gene_expression_assay
from repro.hls import SynthesisSpec, Weights, synthesize
from repro.layout import GridPlacer, route_chip

ASSAY = gene_expression_assay(cells=5)

BASE = SynthesisSpec(
    max_devices=12, threshold=5, time_limit=10, max_iterations=1,
)
VARIANTS = {
    "paths_on": BASE.weights,
    "paths_off": Weights(
        time=BASE.weights.time, area=BASE.weights.area,
        processing=BASE.weights.processing, paths=0.0,
    ),
}

_STATE = {}


def _run(variant: str):
    if variant not in _STATE:
        spec = dataclasses.replace(BASE, weights=VARIANTS[variant])
        result = synthesize(ASSAY, spec)
        devices = sorted(result.devices)
        usage = {}
        binding = result.schedule.binding
        for parent, child in ASSAY.edges:
            a, b = binding[parent], binding[child]
            if a != b:
                key = (a, b) if a <= b else (b, a)
                usage[key] = usage.get(key, 0) + 1
        placement = GridPlacer(iterations=4000, seed=3).place(
            devices, usage
        )
        routing = route_chip(placement, set(usage))
        _STATE[variant] = (result, routing)
    return _STATE[variant]


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_variant(variant, benchmark):
    result, routing = benchmark.pedantic(
        _run, args=(variant,), rounds=1, iterations=1
    )
    result.validate()
    assert len(routing.routes) == result.num_paths


def test_path_minimization_saves_routing(benchmark, record_rows):
    (on_result, on_routing), (off_result, off_routing) = benchmark.pedantic(
        lambda: (_run("paths_on"), _run("paths_off")), rounds=1, iterations=1
    )
    lines = [
        f"{'variant':<10} {'#paths':>7} {'channel len':>12} "
        f"{'max congestion':>15} {'shared edges':>13}",
        f"{'paths on':<10} {on_result.num_paths:>7} "
        f"{on_routing.total_length:>12} {on_routing.max_congestion:>15} "
        f"{on_routing.shared_edges:>13}",
        f"{'paths off':<10} {off_result.num_paths:>7} "
        f"{off_routing.total_length:>12} {off_routing.max_congestion:>15} "
        f"{off_routing.shared_edges:>13}",
    ]
    record_rows("ablation_routing", "\n".join(lines))
    # The path term must not increase path count, and routed channel
    # length tracks path count.
    assert on_result.num_paths <= off_result.num_paths
    if on_result.num_paths < off_result.num_paths:
        assert on_routing.total_length <= off_routing.total_length
