"""Speculative parallel re-synthesis: jobs=1 vs jobs=N on Table 3 case 2.

Runs benchmark case 2 through the progressive flow sequentially and with a
worker pool, records both wall clocks plus adoption telemetry to
``benchmarks/results/parallel_synthesis.txt``, and asserts the headline
contract: the parallel run's result is byte-identical to the sequential
one.  The spec pins a MIP gap so every layer solve gap-terminates
("optimal") — the precondition for run-to-run determinism.

The speedup assertion is gated on the machine actually having more than
one core: speculation adds work (mispredicted solves are thrown away), so
on a single-CPU box the pool can only contend with the driver.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time

from repro.assays import benchmark_assay
from repro.experiments.table2 import default_spec
from repro.hls import synthesize
from repro.io.json_io import result_to_json

CASE = 2
JOBS = min(4, os.cpu_count() or 1)
MULTI_CORE = (os.cpu_count() or 1) >= 2
#: Small threshold -> several layers per pass (more to overlap); the MIP
#: gap makes every solve terminate deterministically within the limit.
SPEC = dataclasses.replace(
    default_spec(time_limit=60.0, max_iterations=2),
    threshold=4,
    mip_gap=0.05,
)

_RESULTS: dict[int, tuple] = {}


def _run(jobs: int):
    if jobs not in _RESULTS:
        started = time.perf_counter()
        result = synthesize(benchmark_assay(CASE), SPEC, jobs=jobs)
        _RESULTS[jobs] = (result, time.perf_counter() - started)
    return _RESULTS[jobs]


def _report(result) -> str:
    return json.dumps(
        result_to_json(result, deterministic=True), indent=2, sort_keys=True
    )


def test_sequential_variant(benchmark):
    result, _ = benchmark.pedantic(_run, args=(1,), rounds=1, iterations=1)
    result.validate()
    assert result.speculative_solves == 0


def test_parallel_variant(benchmark):
    result, _ = benchmark.pedantic(_run, args=(JOBS,), rounds=1, iterations=1)
    result.validate()
    if JOBS > 1:
        assert result.speculative_solves > 0


def test_parallel_report(benchmark, record_rows):
    (seq, seq_wall), (par, par_wall) = benchmark.pedantic(
        lambda: (_run(1), _run(JOBS)), rounds=1, iterations=1
    )
    lines = [
        f"case {CASE}, t={SPEC.threshold}, gap={SPEC.mip_gap}, "
        f"{os.cpu_count()} cpu(s)",
        f"{'variant':<10} {'makespan':>9} {'#D':>4} {'passes':>7} "
        f"{'solves':>7} {'hits':>5} {'spec':>5} {'wall':>8}",
    ]
    for label, result, wall in (
        ("jobs=1", seq, seq_wall),
        (f"jobs={JOBS}", par, par_wall),
    ):
        lines.append(
            f"{label:<10} {result.makespan_expression:>9} "
            f"{result.num_devices:>4} {len(result.history):>7} "
            f"{result.ilp_solves:>7} {result.cache_hits:>5} "
            f"{result.speculative_solves:>5} {wall:>7.1f}s"
        )
    speedup = seq_wall / par_wall if par_wall else float("inf")
    lines.append(f"speedup: {speedup:.2f}x")
    record_rows("parallel_synthesis", "\n".join(lines))

    # Parallelism must be invisible in the output...
    assert _report(par) == _report(seq)
    # ...and only pay off where it physically can.
    if MULTI_CORE and JOBS > 1:
        assert par_wall < seq_wall
