"""Shared helpers for the benchmark suite.

Every benchmark writes its paper-style rows both to stdout and to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_rows(results_dir):
    """Write a named text report; returns the writer function."""

    def write(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n--- {name} ---\n{text}")

    return write
