"""Extension experiment — scaling of synthesis with assay size.

Sweeps the gene-expression workload from 2 to 8 parallel pipelines and
reports makespan / devices / solve status, showing how the per-layer ILP
degrades gracefully into time-limited incumbents (and the greedy floor) as
layers grow — the practical behaviour a user of this tool needs to know.
"""

from __future__ import annotations

import pytest

from repro.assays import gene_expression_assay
from repro.assays.chip_assay import chip_assay
from repro.hls import SynthesisSpec, synthesize

SIZES = (2, 4, 8)
_RESULTS = {}


def _run(cells: int):
    if cells not in _RESULTS:
        assay = gene_expression_assay(cells=cells)
        spec = SynthesisSpec(
            max_devices=3 * cells, threshold=cells, time_limit=8,
            max_iterations=1,
        )
        _RESULTS[cells] = synthesize(assay, spec)
    return _RESULTS[cells]


@pytest.mark.parametrize("cells", SIZES)
def test_scale(cells, benchmark):
    result = benchmark.pedantic(_run, args=(cells,), rounds=1, iterations=1)
    result.validate()
    assert len(result.assay) == 7 * cells


def test_scaling_report(benchmark, record_rows):
    benchmark.pedantic(lambda: [_run(c) for c in SIZES],
                       rounds=1, iterations=1)
    lines = [f"{'pipelines':>9} {'#ops':>5} {'makespan':>10} {'#D':>4} "
             f"{'statuses'}"]
    for cells in SIZES:
        r = _run(cells)
        lines.append(
            f"{cells:>9} {len(r.assay):>5} {r.makespan_expression:>10} "
            f"{r.num_devices:>4} {r.history[-1].layer_statuses}"
        )
    record_rows("scaling", "\n".join(lines))
    # Makespan grows sub-linearly in pipeline count when devices scale
    # along (parallel pipelines), never super-linearly by more than the
    # solver-noise margin.
    small, large = _run(SIZES[0]), _run(SIZES[-1])
    ratio = large.fixed_makespan / small.fixed_makespan
    assert ratio <= SIZES[-1] / SIZES[0]


def test_chip_assay_synthesizes(benchmark, record_rows):
    """The fourth (extension) workload runs end to end."""
    assay = chip_assay(samples=3)

    def run():
        spec = SynthesisSpec(
            max_devices=12, threshold=3, time_limit=10, max_iterations=1,
        )
        return synthesize(assay, spec)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    result.validate()
    record_rows(
        "chip_assay",
        f"ChIP x3: {result.makespan_expression}, "
        f"{result.num_devices} devices, {result.num_paths} paths, "
        f"statuses {result.history[-1].layer_statuses}",
    )
    assert result.makespan_expression.endswith("+I_1")
