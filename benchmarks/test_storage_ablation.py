"""Extension experiment — storage-oblivious vs storage-aware synthesis.

Not a paper table: the paper's flow assumes intermediate fluids wait
anywhere for free.  This bench prices that assumption.  For each
benchmark case plus the storage-stress assay it compares:

* **oblivious** — synthesize with ``storage_mode=off`` (the byte-exact
  paper flow), then account for its buffering needs post-hoc with
  reservoir-only storage (every bound-apart crossing reagent needs a
  reservoir slot per boundary);
* **aware** — synthesize with ``storage_mode=auto``: layer solves see
  storage-pressure objective terms and the planner may hold reagents in
  place or park them in transport channels.

The aware plan can never cost more under the same weights, and must be
*strictly* cheaper (or lower-demand) wherever crossings exist — the
stress assay in particular forces an eviction so hold-in-place is
infeasible and distributed channel storage has to beat the reservoir.

A second section re-runs one case with the approx-lp scheduler to check
that LP certificates survive the storage terms: every certified layer
solve must still satisfy ``lower_bound <= objective``.
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

from repro.assays import benchmark_assay
from repro.hls import SynthesisSpec, synthesize
from repro.io import load_assay
from repro.storage import plan_storage

STRESS_ASSAY = (
    Path(__file__).parent.parent / "examples" / "assays" / "storage_stress.json"
)

#: greedy keeps the comparison deterministic on any machine.
SPEC = SynthesisSpec(threshold=4, max_iterations=1, scheduler="greedy")

_STATE: dict[str, dict] = {}


def _cases() -> list[tuple[str, object, SynthesisSpec]]:
    return [
        ("case 1", benchmark_assay(1), SPEC),
        ("case 2", benchmark_assay(2), SPEC),
        ("case 3", benchmark_assay(3), SPEC),
        # threshold 1 splits the stress assay into its three layers.
        ("stress", load_assay(STRESS_ASSAY), replace(SPEC, threshold=1)),
    ]


def _ablate(name: str, assay, spec: SynthesisSpec) -> dict:
    if name in _STATE:
        return _STATE[name]
    oblivious = synthesize(assay, spec)
    # Post-hoc reservoir accounting of the storage-oblivious schedule.
    accounting = replace(spec, storage_mode="reservoir")
    oblivious_plan = plan_storage(
        assay, oblivious.layering, oblivious.schedule, accounting
    )
    aware = synthesize(assay, replace(spec, storage_mode="auto"))
    _STATE[name] = {
        "crossings": len(oblivious.layering.cross_layer_edges()),
        "oblivious": oblivious,
        "oblivious_plan": oblivious_plan,
        "aware": aware,
        "aware_plan": aware.storage_plan,
    }
    return _STATE[name]


def test_storage_ablation_table(record_rows):
    lines = [
        f"{'case':>6} {'crossings':>9} {'obliv demand':>12} {'obliv cost':>10} "
        f"{'aware demand':>12} {'aware cost':>10} {'makespan':>13}",
    ]
    strict_wins = []
    for name, assay, spec in _cases():
        state = _ablate(name, assay, spec)
        obliv, aware = state["oblivious_plan"], state["aware_plan"]
        makespan = (
            f"{state['oblivious'].fixed_makespan}->"
            f"{state['aware'].fixed_makespan}"
        )
        lines.append(
            f"{name:>6} {state['crossings']:>9} {obliv.demand:>12} "
            f"{obliv.total_cost:>10.1f} {aware.demand:>12} "
            f"{aware.total_cost:>10.1f} {makespan:>13}"
        )
        # Same weights, strictly more options: aware never costs more.
        assert aware.total_cost <= obliv.total_cost + 1e-9, name
        assert aware.demand <= obliv.demand, name
        if (
            aware.total_cost < obliv.total_cost - 1e-9
            or aware.demand < obliv.demand
        ):
            strict_wins.append(name)
    # Strict improvement on at least one paper case and on the stress
    # assay (where hold-in-place is evicted and the channel must win).
    assert any(name.startswith("case") for name in strict_wins), strict_wins
    assert "stress" in strict_wins, strict_wins
    stress = _STATE["stress"]["aware_plan"]
    assert stress.channel_count >= 1, stress.decisions
    record_rows("storage_ablation", "\n".join(lines))


def test_storage_aware_certificates():
    """LP bounds stay valid under storage-pressure objective terms."""
    spec = replace(
        SPEC, scheduler="approx-lp", storage_mode="auto",
        time_limit=20.0, mip_gap=0.05,
    )
    result = synthesize(benchmark_assay(2), spec)
    certified = 0
    for stats in result.solve_stats:
        if stats.lower_bound is not None:
            certified += 1
            assert stats.objective is not None, stats
            assert stats.lower_bound <= stats.objective + 1e-6, stats
    assert certified > 0
    assert result.storage_plan is not None
