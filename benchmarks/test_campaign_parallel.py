"""Monte-Carlo campaign: process-pool sharding vs inline execution.

Runs the same seeded fault campaign with ``jobs=1`` (inline) and
``jobs=N`` (process pool) and records both wall times plus the merged
statistics.  The correctness claim — the merged ``CampaignStats`` must be
byte-identical regardless of worker count — is asserted; the wall-time
comparison is recorded for EXPERIMENTS.md (the pool pays worker start-up
and result pickling, so it only wins once per-run work dominates that
overhead).
"""

from __future__ import annotations

import os

from repro.cyberphysical import CampaignConfig, FaultPlan, run_campaign
from repro.hls import SynthesisSpec, synthesize
from repro.operations import AssayBuilder
from repro.runtime import RetryModel

RUNS = 32
#: at least 2 so the ProcessPoolExecutor path is genuinely exercised even
#: on single-core CI runners (no speedup there, but the sharding, pickling
#: and deterministic merge all run for real).
JOBS = max(2, min(4, os.cpu_count() or 2))

_RESULT = {}


def _synthesized():
    if "result" not in _RESULT:
        b = AssayBuilder("campaign-bench")
        for k in range(3):
            prep = b.op(f"prep{k}", 4, container="chamber")
            cap = b.op(
                f"capture{k}", 6, indeterminate=True,
                accessories=["cell_trap"], after=[prep],
            )
            lyse = b.op(f"lyse{k}", 5, container="chamber", after=[cap])
            b.op(f"detect{k}", 3, accessories=["optical_system"],
                 after=[lyse])
        spec = SynthesisSpec(
            max_devices=8, threshold=3, time_limit=10.0, max_iterations=1
        )
        _RESULT["result"] = synthesize(b.build(), spec)
    return _RESULT["result"]


def _config(jobs: int) -> CampaignConfig:
    return CampaignConfig(
        runs=RUNS,
        seed=0,
        jobs=jobs,
        policies=("all",),
        faults=FaultPlan.parse("exhaust:capture0,exhaust:capture1"),
        retry_model=RetryModel(success_probability=0.4, max_attempts=5),
        keep_traces=False,
    )


def test_campaign_parallel(benchmark, record_rows):
    result = _synthesized()

    inline, pooled = benchmark.pedantic(
        lambda: (
            run_campaign(result, _config(1)),
            run_campaign(result, _config(JOBS)),
        ),
        rounds=1,
        iterations=1,
    )

    # Correctness: worker count must not change the merged statistics.
    assert inline.stats.to_json_text() == pooled.stats.to_json_text()
    assert [r.seed for r in inline.records] == [r.seed for r in pooled.records]

    stats = inline.stats
    lines = [
        f"campaign: {RUNS} runs, policy chain retry->rebind->resynth, "
        f"faults exhaust:capture0+exhaust:capture1",
        f"{'jobs':>5} {'wall':>9}",
        f"{1:>5} {inline.wall_time:>8.2f}s",
        f"{JOBS:>5} {pooled.wall_time:>8.2f}s",
        "",
        f"merged stats byte-identical across jobs: yes",
        f"failure_rate={stats.failure_rate:.3f} "
        f"completed={stats.completed}/{stats.runs} "
        f"recoveries={dict(sorted(stats.recoveries.items()))} "
        f"resyntheses={stats.resyntheses}",
        f"makespan mean={stats.mean_makespan:.1f} "
        f"p95={stats.p95_makespan:.1f} worst={stats.worst_makespan}",
    ]
    record_rows("campaign_parallel", "\n".join(lines))
