"""Table 3 — improvement from progressive re-synthesis (cases 2 and 3).

The paper reports ~16-17 % execution-time improvement from the first
re-synthesis iteration and a smaller second step, with device counts flat.
We assert the same shape: the refined makespan is at least as good as the
initial pass, and the largest step happens in the first iteration.
"""

from __future__ import annotations

import pytest

from repro.experiments.report import format_table3
from repro.experiments.table2 import default_spec
from repro.experiments.table3 import run_table3_case

TIME_LIMITS = {2: 15.0, 3: 25.0}

_ROWS = {}


def _run(case: int):
    if case not in _ROWS:
        spec = default_spec(time_limit=TIME_LIMITS[case], max_iterations=2)
        _ROWS[case] = run_table3_case(case, spec)
    return _ROWS[case]


@pytest.mark.parametrize("case", [2, 3])
def test_case(case, benchmark, record_rows):
    row = benchmark.pedantic(_run, args=(case,), rounds=1, iterations=1)
    record_rows(f"table3_case{case}", format_table3([row]))

    assert len(row.exe_times) >= 2, "re-synthesis never ran"
    # Overall the refinement must not hurt (the synthesizer keeps the best
    # pass), and on these benchmarks it actively helps.
    assert min(row.exe_times) <= row.exe_times[0]
    assert row.total_improvement >= 0.0
    # First iteration provides the dominant share of the improvement.
    first_step = row.exe_times[0] - row.exe_times[1]
    assert first_step >= 0 or row.total_improvement == 0


def test_table3_full_report(benchmark, record_rows):
    rows = benchmark.pedantic(
        lambda: [_run(case) for case in (2, 3)], rounds=1, iterations=1
    )
    record_rows("table3", format_table3(rows))
