"""Ablation A3 — transportation-time refinement (paper Sec. 4.1).

Compares synthesis with the refinement loop disabled (every edge keeps the
initial constant) against the full progressive flow where same-device edges
drop to zero and frequently-used paths get short progression terms.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.assays import gene_expression_assay
from repro.hls import SynthesisSpec, TransportProgression, synthesize

ASSAY = gene_expression_assay(cells=5)  # 35 ops, 5 indeterminate

BASE = SynthesisSpec(
    max_devices=12, threshold=5, time_limit=10,
    transport_default=4,
    transport_progression=TransportProgression(1, 4, 4),
)

_RESULTS = {}


def _run(refined: bool):
    if refined not in _RESULTS:
        spec = dataclasses.replace(
            BASE, max_iterations=2 if refined else 0
        )
        _RESULTS[refined] = synthesize(ASSAY, spec)
    return _RESULTS[refined]


@pytest.mark.parametrize("refined", [False, True])
def test_variant(refined, benchmark):
    result = benchmark.pedantic(_run, args=(refined,), rounds=1, iterations=1)
    result.validate()


def test_refinement_helps(benchmark, record_rows):
    off, on = benchmark.pedantic(
        lambda: (_run(False), _run(True)), rounds=1, iterations=1
    )
    lines = [
        f"{'variant':<14} {'makespan':>9} {'#D':>4} {'#P':>4}",
        f"{'constant-t':<14} {off.makespan_expression:>9} "
        f"{off.num_devices:>4} {off.num_paths:>4}",
        f"{'refined':<14} {on.makespan_expression:>9} "
        f"{on.num_devices:>4} {on.num_paths:>4}",
    ]
    record_rows("ablation_transport", "\n".join(lines))
    # Refinement can only help: same-device transfers become free.
    assert on.fixed_makespan <= off.fixed_makespan
    # The refined pass must actually have zeroed some edge estimates.
    assert on.transport is not None and on.transport.refined
    zeroed = [t for t in on.edge_transport.values() if t == 0]
    assert zeroed, "refinement produced no same-device transfers"
