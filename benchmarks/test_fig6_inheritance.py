"""Fig. 6 — device-inheritance risk repaired by progressive re-synthesis.

Fig. 6(b): when the cheaper-container operation comes first, forward
synthesis integrates a chamber that the later ring operation cannot reuse.
Re-synthesis makes the posterior layer's ring visible to the earlier layer.
The bench measures both orderings and asserts the repair.
"""

from __future__ import annotations

import dataclasses

from repro.hls import SynthesisSpec, synthesize
from repro.operations import AssayBuilder


def fig6_assay(o1_first: bool):
    b = AssayBuilder("fig6")
    if o1_first:
        first = b.op("o1", 6, container="ring",
                     accessories=["sieve_valve", "pump"])
    else:
        first = b.op("o2", 6, accessories=["sieve_valve"])
    gate = b.op("gate", 4, indeterminate=True, after=[first])
    if o1_first:
        b.op("o2", 6, accessories=["sieve_valve"], after=[gate])
    else:
        b.op("o1", 6, container="ring",
             accessories=["sieve_valve", "pump"], after=[gate])
    return b.build()


SPEC = SynthesisSpec(max_devices=3, threshold=1, time_limit=10,
                     max_iterations=2)


def test_fig6_repair(benchmark, record_rows):
    def run():
        good = synthesize(
            fig6_assay(o1_first=True),
            dataclasses.replace(SPEC, max_iterations=0),
        )
        bad_initial = synthesize(
            fig6_assay(o1_first=False),
            dataclasses.replace(SPEC, max_iterations=0),
        )
        repaired = synthesize(fig6_assay(o1_first=False), SPEC)
        return good, bad_initial, repaired

    good, bad_initial, repaired = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    lines = [
        "Fig.6 inheritance scenarios (makespan / devices / paths):",
        f"  (a) o1 first, forward only : {good.fixed_makespan}m / "
        f"{good.num_devices} / {good.num_paths}",
        f"  (b) o2 first, forward only : {bad_initial.fixed_makespan}m / "
        f"{bad_initial.num_devices} / {bad_initial.num_paths}",
        f"  (b) + progressive re-synth : {repaired.fixed_makespan}m / "
        f"{repaired.num_devices} / {repaired.num_paths}",
    ]
    record_rows("fig6_inheritance", "\n".join(lines))

    # Forward-only with the bad order wastes a device (or a path);
    # re-synthesis recovers the good-order quality.
    assert repaired.fixed_makespan <= bad_initial.fixed_makespan
    assert repaired.num_devices <= bad_initial.num_devices
    assert repaired.schedule.binding["o1"] == repaired.schedule.binding["o2"]
