"""Tests for repro.layering (Algorithm 1): allocation, eviction, driver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.assays import random_assay
from repro.errors import LayeringError
from repro.layering import (
    dependency_based_allocation,
    eviction_cost,
    layer_assay,
    resource_based_allocation,
)
from repro.operations import Assay, AssayBuilder, Fixed, Indeterminate, Operation


def fig4_assay():
    """The dependency shape of the paper's Fig. 4: two indeterminate ops
    where one is reachable from the other, plus independent side work."""
    b = AssayBuilder("fig4")
    o1 = b.op("o1", 5)
    o2 = b.op("o2", 5, after=[o1])
    oa = b.op("oa", 10, indeterminate=True, after=[o2])
    o3 = b.op("o3", 5, after=[oa])
    b.op("ob", 10, indeterminate=True, after=[o3])
    o4 = b.op("o4", 4)
    b.op("o5", 4, after=[o4])
    return b.build()


class TestDependencyAllocation:
    def test_fig4_first_layer(self):
        assay = fig4_assay()
        layer = dependency_based_allocation(
            assay.graph, set(assay.indeterminate_uids)
        )
        # oa is kept (no indeterminate ancestor); its descendants (o3, ob)
        # are deferred; everything else fits.
        assert layer == {"o1", "o2", "oa", "o4", "o5"}

    def test_no_indeterminate_takes_all(self):
        b = AssayBuilder("plain")
        x = b.op("x", 1)
        b.op("y", 1, after=[x])
        assay = b.build()
        layer = dependency_based_allocation(assay.graph, set())
        assert layer == {"x", "y"}

    def test_chained_indeterminate_split(self):
        b = AssayBuilder("chain")
        i1 = b.op("i1", 1, indeterminate=True)
        b.op("i2", 1, indeterminate=True, after=[i1])
        assay = b.build()
        layer = dependency_based_allocation(
            assay.graph, set(assay.indeterminate_uids)
        )
        assert layer == {"i1"}

    def test_parallel_indeterminate_share_layer(self):
        b = AssayBuilder("par")
        b.op("i1", 1, indeterminate=True)
        b.op("i2", 1, indeterminate=True)
        assay = b.build()
        layer = dependency_based_allocation(
            assay.graph, set(assay.indeterminate_uids)
        )
        assert layer == {"i1", "i2"}

    def test_descendant_of_indeterminate_deferred(self):
        b = AssayBuilder("d")
        i1 = b.op("i1", 1, indeterminate=True)
        b.op("fixed_child", 1, after=[i1])
        assay = b.build()
        layer = dependency_based_allocation(
            assay.graph, set(assay.indeterminate_uids)
        )
        assert "fixed_child" not in layer


class TestEvictionCost:
    def fig5_graph(self):
        """Paper Fig. 5(a)-(c): three indeterminate ops with different
        reagent-inheritance structure inside the layer."""
        a = Assay("fig5")
        # o1: one in-layer ancestor chain -> storage 1, removes only o1.
        a.add(Operation("a1", Fixed(1)))
        a.add(Operation("o1", Indeterminate(1)))
        a.add_dependency("a1", "o1")
        # o2: two in-layer parents -> storage 2.
        a.add(Operation("b1", Fixed(1)))
        a.add(Operation("b2", Fixed(1)))
        a.add(Operation("o2", Indeterminate(1)))
        a.add_dependency("b1", "o2")
        a.add_dependency("b2", "o2")
        # o3: a chain of three ancestors where cutting high costs 1 but
        # removes all of them.
        a.add(Operation("c1", Fixed(1)))
        a.add(Operation("c2", Fixed(1)))
        a.add(Operation("c3", Fixed(1)))
        a.add(Operation("o3", Indeterminate(1)))
        a.add_dependency("c1", "c2")
        a.add_dependency("c2", "c3")
        a.add_dependency("c3", "o3")
        return a

    def test_storage_costs_match_fig5(self):
        assay = self.fig5_graph()
        layer = set(assay.uids)
        graph = assay.graph
        c1 = eviction_cost(layer, graph, "o1")
        c2 = eviction_cost(layer, graph, "o2")
        c3 = eviction_cost(layer, graph, "o3")
        assert c1.storage == 1
        assert c2.storage == 2
        assert c3.storage == 1

    def test_minimal_sink_side_preferred(self):
        # Fig. 5(d): among equal cuts, remove the fewest operations.
        assay = self.fig5_graph()
        c3 = eviction_cost(set(assay.uids), assay.graph, "o3")
        assert c3.removed == frozenset({"o3"})

    def test_priority_order_matches_paper(self):
        # o1 cheapest (storage 1, removes 1), then o3 (storage 1 but via a
        # longer chain — equal here thanks to minimal cut), then o2.
        assay = self.fig5_graph()
        layer = set(assay.uids)
        graph = assay.graph
        costs = sorted(
            (eviction_cost(layer, graph, uid) for uid in ("o1", "o2", "o3")),
            key=lambda c: c.sort_key,
        )
        assert costs[-1].uid == "o2"  # most storage evicted last

    def test_orphan_indeterminate_free(self):
        a = Assay("solo")
        a.add(Operation("i", Indeterminate(1)))
        cost = eviction_cost({"i"}, a.graph, "i")
        assert cost.storage == 0
        assert cost.removed == frozenset({"i"})

    def test_unknown_target_rejected(self):
        a = Assay("solo")
        a.add(Operation("i", Indeterminate(1)))
        with pytest.raises(LayeringError):
            eviction_cost(set(), a.graph, "i")


class TestResourceAllocation:
    def test_under_threshold_untouched(self):
        b = AssayBuilder("u")
        b.op("i1", 1, indeterminate=True)
        assay = b.build()
        kept, evicted = resource_based_allocation(
            {"i1"}, assay.graph, {"i1"}, threshold=2
        )
        assert kept == {"i1"} and evicted == set()

    def test_eviction_to_threshold(self):
        b = AssayBuilder("e")
        for k in range(4):
            b.op(f"i{k}", 1, indeterminate=True)
        assay = b.build()
        kept, evicted = resource_based_allocation(
            set(assay.uids), assay.graph, set(assay.uids), threshold=2
        )
        assert len(kept) == 2 and len(evicted) == 2

    def test_closure_takes_dependents(self):
        b = AssayBuilder("c")
        i1 = b.op("i1", 1, indeterminate=True)
        i2 = b.op("i2", 1, indeterminate=True)
        b.op("x", 1, after=["i1"])
        assay = b.build()
        # force eviction of one op; if i1 goes, x must go too.
        kept, evicted = resource_based_allocation(
            set(assay.uids), assay.graph, {"i1", "i2"}, threshold=1
        )
        if "i1" in evicted:
            assert "x" in evicted
        else:
            assert evicted == {"i2"} or "i2" in evicted

    def test_invalid_threshold(self):
        b = AssayBuilder("t")
        b.op("i", 1, indeterminate=True)
        assay = b.build()
        with pytest.raises(LayeringError):
            resource_based_allocation({"i"}, assay.graph, {"i"}, threshold=0)


class TestLayerAssay:
    def test_fig4_two_layers(self):
        result = layer_assay(fig4_assay(), threshold=10)
        assert result.num_layers == 2
        assert set(result.layers[0].uids) == {"o1", "o2", "oa", "o4", "o5"}
        assert set(result.layers[1].uids) == {"o3", "ob"}
        result.validate()

    def test_threshold_splits_layers(self):
        b = AssayBuilder("many")
        for k in range(6):
            b.op(f"i{k}", 2, indeterminate=True)
        result = layer_assay(b.build(), threshold=2)
        assert result.num_layers == 3
        for layer in result.layers:
            assert len(layer.indeterminate_uids) == 2

    def test_single_layer_without_indeterminate(self, linear_assay):
        result = layer_assay(linear_assay, threshold=10)
        assert result.num_layers == 1
        assert not result.layers[0].indeterminate_uids

    def test_layer_of_covers_everything(self, indeterminate_assay):
        result = layer_assay(indeterminate_assay, threshold=10)
        assert set(result.layer_of) == set(indeterminate_assay.uids)

    def test_cross_layer_edges(self, indeterminate_assay):
        result = layer_assay(indeterminate_assay, threshold=10)
        crossing = result.cross_layer_edges()
        # capture -> lyse crosses the boundary in both branches.
        assert ("capture0", "lyse0") in crossing
        assert ("capture1", "lyse1") in crossing

    def test_storage_demand_counts_boundary(self):
        result = layer_assay(fig4_assay(), threshold=10)
        # only oa -> o3 crosses layer 0/1.
        assert result.storage_demand(0) == 1

    def test_invalid_threshold(self, linear_assay):
        with pytest.raises(LayeringError):
            layer_assay(linear_assay, threshold=0)

    def test_rtqpcr_structure(self):
        from repro.assays import rtqpcr_assay

        result = layer_assay(rtqpcr_assay(), threshold=10)
        assert result.num_layers == 3
        assert len(result.layers[0].indeterminate_uids) == 10
        assert len(result.layers[1].indeterminate_uids) == 10
        assert not result.layers[2].indeterminate_uids


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 1000),
    num_ops=st.integers(3, 25),
    ind_frac=st.floats(0.0, 0.6),
    threshold=st.integers(1, 5),
)
def test_layering_invariants_random(seed, num_ops, ind_frac, threshold):
    """Property: Algorithm 1 output always satisfies its invariants."""
    assay = random_assay(
        num_ops, seed=seed, indeterminate_fraction=ind_frac
    )
    result = layer_assay(assay, threshold=threshold)
    result.validate()  # raises on any violated invariant
    # Every op appears exactly once.
    seen = [uid for layer in result.layers for uid in layer.uids]
    assert sorted(seen) == sorted(assay.uids)
