"""Tests for cross-layer storage analysis (repro.analysis.storage)."""

from repro.analysis import storage_report
from repro.hls import synthesize
from repro.operations import AssayBuilder


class TestStorageReport:
    def test_no_indeterminate_no_storage(self, linear_assay, fast_spec):
        result = synthesize(linear_assay, fast_spec)
        report = storage_report(result)
        assert report.total_crossings == 0
        assert report.peak_demand == 0

    def test_crossing_edges_counted(self, indeterminate_assay, fast_spec):
        result = synthesize(indeterminate_assay, fast_spec)
        report = storage_report(result)
        # capture{0,1} -> lyse{0,1} cross the single boundary.
        assert report.total_crossings == 2
        assert len(report.at_boundary(0)) == 2

    def test_held_in_place_when_same_device(self, fast_spec):
        b = AssayBuilder("hold")
        cap = b.op("cap", 4, indeterminate=True, container="chamber")
        b.op("next", 3, container="chamber", after=[cap])
        result = synthesize(b.build(), fast_spec)
        report = storage_report(result)
        binding = result.schedule.binding
        (reagent,) = report.reagents
        assert reagent.held_in_place == (binding["cap"] == binding["next"])
        if reagent.held_in_place:
            assert report.demand(0) == 0

    def test_multi_boundary_spanning(self, fast_spec):
        # Producer in layer 0, consumer two layers later: the reagent is
        # buffered across both boundaries.
        b = AssayBuilder("span")
        src = b.op("src", 3, container="chamber")
        g1 = b.op("g1", 2, indeterminate=True, after=[src])
        mid = b.op("mid", 2, container="chamber", after=[g1])
        g2 = b.op("g2", 2, indeterminate=True, after=[mid])
        b.op("late", 2, container="chamber", after=[g2, "src"])
        import dataclasses

        spec = dataclasses.replace(fast_spec, threshold=1)
        result = synthesize(b.build(), spec)
        report = storage_report(result)
        src_late = [
            r for r in report.reagents
            if (r.producer, r.consumer) == ("src", "late")
        ]
        layer_src = result.layering.layer_of["src"]
        layer_late = result.layering.layer_of["late"]
        assert len(src_late) == layer_late - layer_src
