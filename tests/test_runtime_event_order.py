"""Chronological ordering of the runtime event log (EventLog.finalize)."""

from repro.hls.schedule import HybridSchedule, LayerSchedule, OpPlacement
from repro.runtime import execute_schedule
from repro.runtime.events import _KIND_ORDER, Event, EventKind, EventLog


def test_finalize_sorts_by_time():
    log = EventLog()
    log.record(Event(10, EventKind.OP_END, uid="b"))
    log.record(Event(0, EventKind.LAYER_START, layer=0))
    log.record(Event(5, EventKind.OP_START, uid="b"))
    log.record(Event(0, EventKind.OP_START, uid="a"))
    log.finalize()
    assert [e.time for e in log] == [0, 0, 5, 10]


def test_finalize_orders_simultaneous_events():
    """At one timestamp: completions, then retries, then the layer boundary,
    then the next layer's starts."""
    log = EventLog()
    log.record(Event(7, EventKind.OP_START, uid="c"))
    log.record(Event(7, EventKind.LAYER_START, layer=1))
    log.record(Event(7, EventKind.LAYER_END, layer=0))
    log.record(Event(7, EventKind.OP_RETRY, uid="b"))
    log.record(Event(7, EventKind.OP_END, uid="a"))
    log.finalize()
    assert [e.kind for e in log] == [
        EventKind.OP_END,
        EventKind.OP_RETRY,
        EventKind.LAYER_END,
        EventKind.LAYER_START,
        EventKind.OP_START,
    ]


def test_finalize_is_stable_for_equal_keys():
    log = EventLog()
    log.record(Event(3, EventKind.OP_END, uid="first"))
    log.record(Event(3, EventKind.OP_END, uid="second"))
    log.finalize()
    assert [e.uid for e in log] == ["first", "second"]


def test_executor_log_is_chronological():
    """Regression: the executor records per placement, so the raw order
    interleaved timelines; the returned report must be chronological."""
    layer0 = LayerSchedule(index=0)
    layer0.place(OpPlacement("slow", "d0", start=0, duration=9))
    layer0.place(OpPlacement("late", "d1", start=6, duration=2))
    layer0.place(OpPlacement("cap", "d2", start=0, duration=3,
                             indeterminate=True))
    layer1 = LayerSchedule(index=1)
    layer1.place(OpPlacement("next", "d0", start=0, duration=2))
    schedule = HybridSchedule(layers=[layer0, layer1])

    report = execute_schedule(schedule, seed=3)
    events = list(report.log)
    keys = [(e.time, _KIND_ORDER[e.kind]) for e in events]
    assert keys == sorted(keys), "event log is not chronological"
    # Every op starts before it ends.
    for uid in ("slow", "late", "cap", "next"):
        kinds = [e.kind for e in report.log.for_op(uid)]
        assert kinds[0] is EventKind.OP_START
        assert kinds[-1] is EventKind.OP_END
