"""Tests for the lease/fencing protocol (repro.service.lease)."""

import json
import time

import pytest

from repro.errors import ServiceError
from repro.service.lease import (
    FileLock,
    FleetCoordinator,
    InflightTable,
    StoreLease,
)
from repro.service.store import ResultStore


class Clock:
    """Injectable wall clock anchored at real time (lock-file staleness
    compares against real mtimes, so the fake must only run *ahead*)."""

    def __init__(self):
        self.now = time.time()

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return Clock()


class TestFileLock:
    def test_acquire_creates_and_release_removes(self, tmp_path):
        lock = FileLock(tmp_path / "x.lock")
        with lock:
            assert (tmp_path / "x.lock").exists()
        assert not (tmp_path / "x.lock").exists()

    def test_contention_times_out(self, tmp_path, clock):
        first = FileLock(tmp_path / "x.lock", clock=clock)
        second = FileLock(
            tmp_path / "x.lock", timeout=0.05, stale_after=60.0,
            clock=clock,
        )
        first.acquire()
        try:
            with pytest.raises(ServiceError) as err:
                second.acquire()
            assert err.value.kind == "lock-timeout"
            assert err.value.status == 503
        finally:
            first.release()

    def test_stale_lock_is_broken(self, tmp_path, clock):
        crashed = FileLock(tmp_path / "x.lock", clock=clock)
        crashed.acquire()  # holder "dies" without releasing
        clock.advance(30.0)
        survivor = FileLock(
            tmp_path / "x.lock", timeout=1.0, stale_after=10.0,
            clock=clock,
        )
        survivor.acquire()  # breaks the stale file instead of wedging
        assert survivor.broken == 1
        survivor.release()

    def test_break_leaves_no_debris(self, tmp_path, clock):
        crashed = FileLock(tmp_path / "x.lock", clock=clock)
        crashed.acquire()
        clock.advance(30.0)
        survivor = FileLock(
            tmp_path / "x.lock", timeout=1.0, stale_after=10.0,
            clock=clock,
        )
        survivor.acquire()
        survivor.release()
        # No leftover rename artifacts from the break.
        assert list(tmp_path.iterdir()) == []

    def test_release_after_break_spares_new_holder(self, tmp_path, clock):
        """A holder judged stale and broken must not, on its own late
        release(), unlink the lock the breaker has since acquired."""
        slow = FileLock(tmp_path / "x.lock", clock=clock)
        slow.acquire()
        clock.advance(30.0)
        breaker = FileLock(
            tmp_path / "x.lock", timeout=1.0, stale_after=10.0,
            clock=clock,
        )
        breaker.acquire()  # broke the stale file and re-created it
        assert breaker.broken == 1
        slow.release()  # token mismatch: leaves the new lock alone
        assert (tmp_path / "x.lock").exists()
        breaker.release()  # the real owner's release still removes it
        assert not (tmp_path / "x.lock").exists()


class TestStoreLease:
    def test_first_acquire_holds_epoch_one(self, tmp_path, clock):
        lease = StoreLease(tmp_path, "r1", ttl=5.0, clock=clock)
        assert lease.try_acquire()
        assert lease.held and lease.state == "held"
        assert lease.epoch == 1
        assert lease.may_write_index() and lease.may_write_entries()

    def test_live_holder_blocks_peer(self, tmp_path, clock):
        holder = StoreLease(tmp_path, "r1", ttl=5.0, clock=clock)
        peer = StoreLease(tmp_path, "r2", ttl=5.0, clock=clock)
        assert holder.try_acquire()
        assert not peer.try_acquire()
        assert peer.state == "follower"
        assert not peer.may_write_index()
        assert peer.may_write_entries()  # entry files are fine

    def test_stale_holder_is_taken_over_with_epoch_bump(
        self, tmp_path, clock
    ):
        holder = StoreLease(tmp_path, "r1", ttl=5.0, clock=clock)
        peer = StoreLease(tmp_path, "r2", ttl=5.0, clock=clock)
        holder.try_acquire()
        clock.advance(6.0)  # heartbeat goes stale
        assert peer.try_acquire()
        assert peer.epoch == 2
        assert peer.takeovers == 1
        # The resurrected old holder fences on its next heartbeat.
        assert not holder.heartbeat()
        assert holder.fenced
        assert holder.fences == 1
        assert not holder.may_write_entries()

    def test_fenced_stays_fenced(self, tmp_path, clock):
        holder = StoreLease(tmp_path, "r1", ttl=5.0, clock=clock)
        peer = StoreLease(tmp_path, "r2", ttl=5.0, clock=clock)
        holder.try_acquire()
        clock.advance(6.0)
        peer.try_acquire()
        holder.heartbeat()  # fences
        clock.advance(6.0)  # even with the new holder stale...
        assert not holder.try_acquire()  # ...a fenced replica never rejoins
        assert holder.fenced

    def test_heartbeat_refreshes_ttl(self, tmp_path, clock):
        holder = StoreLease(tmp_path, "r1", ttl=5.0, clock=clock)
        peer = StoreLease(tmp_path, "r2", ttl=5.0, clock=clock)
        holder.try_acquire()
        for _ in range(3):
            clock.advance(3.0)
            assert holder.heartbeat()
            assert not peer.try_acquire()  # never stale under heartbeats
        assert holder.heartbeats == 3

    def test_release_keeps_epoch_monotonic(self, tmp_path, clock):
        holder = StoreLease(tmp_path, "r1", ttl=5.0, clock=clock)
        peer = StoreLease(tmp_path, "r2", ttl=5.0, clock=clock)
        holder.try_acquire()
        holder.release()
        assert holder.state == "follower"
        record = json.loads((tmp_path / "lease.json").read_text())
        assert record["owner"] is None and record["epoch"] == 1
        # The peer acquires immediately (no ttl wait) above the old epoch.
        assert peer.try_acquire()
        assert peer.epoch == 2
        assert peer.takeovers == 0  # clean handoff, not a takeover

    def test_suspended_holder_believes_but_does_not_write(
        self, tmp_path, clock
    ):
        holder = StoreLease(tmp_path, "r1", ttl=5.0, clock=clock)
        peer = StoreLease(tmp_path, "r2", ttl=5.0, clock=clock)
        holder.try_acquire()
        holder.suspend()
        # The partitioned holder still thinks it heartbeats...
        clock.advance(6.0)
        assert holder.heartbeat()
        assert holder.held
        # ...but nothing landed, so the peer takes over for real.
        assert peer.try_acquire()
        holder.resume()
        assert not holder.heartbeat()
        assert holder.fenced


class TestInflightTable:
    def test_claim_grant_conflict_release(self, tmp_path, clock):
        mine = InflightTable(tmp_path, "r1", ttl=5.0, clock=clock)
        theirs = InflightTable(tmp_path, "r2", ttl=5.0, clock=clock)
        granted, _ = mine.claim("fp1")
        assert granted
        denied, entry = theirs.claim("fp1")
        assert not denied
        assert entry["replica"] == "r1"
        assert theirs.conflicts == 1
        mine.release("fp1")
        granted, _ = theirs.claim("fp1")
        assert granted

    def test_own_reclaim_refreshes(self, tmp_path, clock):
        table = InflightTable(tmp_path, "r1", ttl=5.0, clock=clock)
        table.claim("fp1")
        clock.advance(3.0)
        granted, entry = table.claim("fp1")
        assert granted
        assert entry["heartbeat_at"] == clock.now
        assert table.reclaims == 0

    def test_stale_peer_claim_is_reclaimed(self, tmp_path, clock):
        dead = InflightTable(tmp_path, "r1", ttl=5.0, clock=clock)
        survivor = InflightTable(tmp_path, "r2", ttl=5.0, clock=clock)
        dead.claim("fp1")  # then the replica crashes: no release
        clock.advance(6.0)
        granted, entry = survivor.claim("fp1")
        assert granted
        assert entry["replica"] == "r2"
        assert survivor.reclaims == 1

    def test_beat_keeps_claims_live(self, tmp_path, clock):
        mine = InflightTable(tmp_path, "r1", ttl=5.0, clock=clock)
        peer = InflightTable(tmp_path, "r2", ttl=5.0, clock=clock)
        mine.claim("fp1")
        for _ in range(3):
            clock.advance(3.0)
            mine.beat(["fp1"])
            granted, _ = peer.claim("fp1")
            assert not granted

    def test_release_all_drops_only_ours(self, tmp_path, clock):
        mine = InflightTable(tmp_path, "r1", ttl=5.0, clock=clock)
        peer = InflightTable(tmp_path, "r2", ttl=5.0, clock=clock)
        mine.claim("fp1")
        mine.claim("fp2")
        peer.claim("fp3")
        mine.release_all()
        assert mine.peek("fp1") is None and mine.peek("fp2") is None
        assert peer.peek("fp3")["replica"] == "r2"
        assert mine.releases == 2


class TestLeasedStore:
    """ResultStore behavior under the three lease states."""

    def payload(self, n):
        return {"result": {"value": n}}

    def test_holder_index_carries_epoch(self, tmp_path, clock):
        lease = StoreLease(tmp_path, "r1", ttl=5.0, clock=clock)
        lease.try_acquire()
        store = ResultStore(str(tmp_path), lease=lease)
        store.put("fp1", self.payload(1))
        index = json.loads((tmp_path / "index.json").read_text())
        assert index["epoch"] == 1

    def test_follower_writes_entries_not_index(self, tmp_path, clock):
        holder_lease = StoreLease(tmp_path, "r1", ttl=5.0, clock=clock)
        holder_lease.try_acquire()
        holder = ResultStore(str(tmp_path), lease=holder_lease)
        holder.put("fp1", self.payload(1))
        index_before = (tmp_path / "index.json").read_text()

        follower_lease = StoreLease(tmp_path, "r2", ttl=5.0, clock=clock)
        follower_lease.try_acquire()  # denied -> follower
        follower = ResultStore(str(tmp_path), lease=follower_lease)
        follower.put("fp2", self.payload(2))
        # The entry file is shared; the index is untouched.
        assert (tmp_path / "fp2.json").exists()
        assert (tmp_path / "index.json").read_text() == index_before
        # The holder adopts the peer's entry on a miss.
        assert holder.get("fp2") == self.payload(2)
        assert holder.adoptions == 1

    def test_fenced_put_falls_back_to_memory(self, tmp_path, clock):
        holder_lease = StoreLease(tmp_path, "r1", ttl=5.0, clock=clock)
        peer_lease = StoreLease(tmp_path, "r2", ttl=5.0, clock=clock)
        holder_lease.try_acquire()
        store = ResultStore(str(tmp_path), lease=holder_lease)
        clock.advance(6.0)
        peer_lease.try_acquire()
        holder_lease.heartbeat()  # fences
        assert holder_lease.fenced

        store.put("fp1", self.payload(1))
        assert not (tmp_path / "fp1.json").exists()
        assert store.rejected_writes == 1
        # The fenced replica still serves its own result from memory.
        assert store.get("fp1") == self.payload(1)

    def test_stale_holder_fences_on_index_epoch_guard(
        self, tmp_path, clock
    ):
        """A holder that lost the lease without noticing (no heartbeat
        ran yet) is caught by the index write's epoch check — the
        lost-update guard — and self-fences instead of clobbering."""
        old_lease = StoreLease(tmp_path, "r1", ttl=5.0, clock=clock)
        old_lease.try_acquire()
        old_store = ResultStore(str(tmp_path), lease=old_lease)

        clock.advance(6.0)
        new_lease = StoreLease(tmp_path, "r2", ttl=5.0, clock=clock)
        new_lease.try_acquire()  # epoch 2
        new_store = ResultStore(str(tmp_path), lease=new_lease)
        new_store.put("fp-new", self.payload(2))  # index now epoch 2

        # r1 still believes it holds epoch 1; its next index write must
        # observe the newer epoch and fence.
        old_store.put("fp-old", self.payload(1))
        assert old_lease.fenced
        index = json.loads((tmp_path / "index.json").read_text())
        assert index["epoch"] == 2
        assert "fp-old" not in index["recency"]

    def test_holder_sweep_bounds_follower_writes(self, tmp_path, clock):
        """Entries follower replicas write (and the holder never reads)
        still count against the LRU capacity: the holder's periodic
        sweep adopts them and evicts down to the bound."""
        holder_lease = StoreLease(tmp_path, "r1", ttl=5.0, clock=clock)
        holder_lease.try_acquire()
        holder = ResultStore(str(tmp_path), capacity=3, lease=holder_lease)
        follower_lease = StoreLease(tmp_path, "r2", ttl=5.0, clock=clock)
        follower_lease.try_acquire()  # denied -> follower
        follower = ResultStore(
            str(tmp_path), capacity=3, lease=follower_lease
        )

        holder.put("fp-own", self.payload(0))
        for n in range(5):
            follower.put(f"fp-peer-{n}", self.payload(n))
        # Peer writes are invisible to the holder's recency map...
        assert len(holder) == 1
        # ...until the sweep folds them in and enforces the bound.
        assert holder.sweep() == 5
        assert len(holder) == 3
        on_disk = {path.stem for path in tmp_path.glob("fp-*.json")}
        assert len(on_disk) == 3
        assert "fp-own" in on_disk  # the holder's live entry survives
        # The lease record sharing the directory is never swept up.
        assert (tmp_path / "lease.json").exists()
        # Followers never sweep (eviction is the holder's job).
        assert follower.sweep() == 0
        # A second sweep with nothing new to fold is a no-op.
        assert holder.sweep() == 0


class TestFleetCoordinator:
    def test_maintain_chases_and_beats(self, tmp_path, clock):
        a = FleetCoordinator(
            tmp_path, "r1", lease_ttl=5.0, claim_ttl=5.0, clock=clock
        )
        b = FleetCoordinator(
            tmp_path, "r2", lease_ttl=5.0, claim_ttl=5.0, clock=clock
        )
        assert a.start()
        assert not b.start()
        granted, _ = a.claim("fp1")
        assert granted
        # a crashes: nothing released.
        a.stop(crash=True)
        clock.advance(6.0)
        b.maintain()
        assert b.lease.held
        assert b.lease.takeovers == 1
        granted, entry = b.claim("fp1")  # orphan reclaimed
        assert granted and entry["replica"] == "r2"
        assert b.counters()["inflight"]["reclaims"] == 1

    def test_graceful_stop_releases_everything(self, tmp_path, clock):
        a = FleetCoordinator(
            tmp_path, "r1", lease_ttl=5.0, claim_ttl=5.0, clock=clock
        )
        b = FleetCoordinator(
            tmp_path, "r2", lease_ttl=5.0, claim_ttl=5.0, clock=clock
        )
        a.start()
        a.claim("fp1")
        a.stop()
        # No ttl wait needed: the peer takes over immediately.
        assert b.start()
        granted, _ = b.claim("fp1")
        assert granted
        assert b.counters()["inflight"]["reclaims"] == 0
