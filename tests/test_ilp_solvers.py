"""Tests for the MILP backends (HiGHS + own branch & bound) and dispatch."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SolverError
from repro.ilp import Model, SolveStatus, available_backends, solve

BACKENDS = ("highs", "bnb")


def knapsack_model():
    m = Model("knapsack", sense="max")
    values = [10, 13, 18, 31, 7, 15]
    weights = [2, 3, 4, 5, 1, 4]
    xs = [m.binary(f"x{i}") for i in range(6)]
    m.add(
        sum((w * x for w, x in zip(weights, xs)), start=0 * xs[0]) <= 10
    )
    m.maximize(sum((v * x for v, x in zip(values, xs)), start=0 * xs[0]))
    return m, xs


class TestBackends:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_knapsack_optimum(self, backend):
        m, _ = knapsack_model()
        sol = m.solve(backend=backend)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(56)  # items 18+31+7 (w=10)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_infeasible(self, backend):
        m = Model()
        x = m.binary("x")
        m.add(x >= 2)
        assert m.solve(backend=backend).status is SolveStatus.INFEASIBLE

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_integer_rounding(self, backend):
        m = Model()
        x = m.integer("x", lb=0, ub=10)
        m.add(2 * x >= 5)
        m.minimize(x)
        sol = m.solve(backend=backend)
        assert sol.int_value(x) == 3

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mixed_integer_continuous(self, backend):
        m = Model()
        x = m.integer("x", lb=0, ub=4)
        y = m.continuous("y", lb=0, ub=10)
        m.add(x + y >= 4.5)
        m.minimize(3 * x + y)
        sol = m.solve(backend=backend)
        # all weight on the continuous variable
        assert sol.objective == pytest.approx(4.5)
        assert sol.int_value(x) == 0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_equality_constraints(self, backend):
        m = Model()
        x = m.integer("x", lb=0, ub=9)
        y = m.integer("y", lb=0, ub=9)
        m.add(x + y == 7)
        m.minimize(x - y)
        sol = m.solve(backend=backend)
        assert sol.int_value(x) == 0 and sol.int_value(y) == 7

    def test_bnb_unbounded(self):
        m = Model()
        x = m.continuous("x", lb=0)
        m.minimize(-1 * x)
        assert m.solve(backend="bnb").status is SolveStatus.UNBOUNDED

    def test_highs_unbounded(self):
        m = Model()
        x = m.continuous("x", lb=0)
        m.minimize(-1 * x)
        status = m.solve(backend="highs").status
        assert status in (SolveStatus.UNBOUNDED, SolveStatus.INFEASIBLE)

    def test_solution_value_helper(self):
        m = Model()
        x = m.integer("x", lb=1, ub=1)
        m.minimize(x)
        sol = m.solve()
        assert sol.value(2 * x + 1) == pytest.approx(3)
        assert sol[x] == pytest.approx(1)


class TestDispatch:
    def test_available_backends_order(self):
        backends = available_backends()
        assert backends[0] == "highs"
        assert "bnb" in backends

    def test_unknown_backend(self):
        m = Model()
        m.binary("x")
        with pytest.raises(SolverError):
            solve(m, backend="gurobi")

    def test_auto_uses_highs(self):
        m = Model()
        x = m.binary("x")
        m.minimize(x)
        assert m.solve(backend="auto").backend == "highs"

    def test_time_limit_forwarded(self):
        m, _ = knapsack_model()
        sol = m.solve(backend="bnb", time_limit=30)
        assert sol.status.has_solution


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_backends_agree_on_random_milps(seed):
    """Property: HiGHS and the own B&B find the same optimum."""
    import random

    rng = random.Random(seed)
    n = rng.randint(2, 5)
    m_rows = rng.randint(1, 4)
    ubs = [rng.randint(1, 5) for _ in range(n)]

    def build():
        m = Model("rand")
        xs = [m.integer(f"x{i}", lb=0, ub=ubs[i]) for i in range(n)]
        rng2 = random.Random(seed + 1)
        for r in range(m_rows):
            coeffs = [rng2.randint(-3, 3) for _ in range(n)]
            rhs = rng2.randint(0, 12)
            expr = sum((c * x for c, x in zip(coeffs, xs)), start=0 * xs[0])
            m.add(expr <= rhs)
        obj_coeffs = [rng2.randint(-5, 5) for _ in range(n)]
        m.minimize(sum((c * x for c, x in zip(obj_coeffs, xs)), start=0 * xs[0]))
        return m

    sol_h = build().solve(backend="highs")
    sol_b = build().solve(backend="bnb")
    assert sol_h.status == sol_b.status
    if sol_h.status.has_solution:
        assert sol_h.objective == pytest.approx(sol_b.objective, abs=1e-6)
