"""Cross-check our Edmonds–Karp against networkx on random networks.

networkx is available in the test environment (not a runtime dependency of
the library); random DAG-ish flow networks are generated per seed and both
implementations must agree on the max-flow value.
"""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import FlowNetwork, max_flow_min_cut


def random_network(seed: int, n_nodes: int, density: float):
    rng = random.Random(seed)
    ours = FlowNetwork()
    theirs = nx.DiGraph()
    nodes = [f"n{i}" for i in range(n_nodes)]
    ours.add_node("s")
    ours.add_node("t")
    theirs.add_node("s")
    theirs.add_node("t")
    all_nodes = ["s"] + nodes + ["t"]
    for i, src in enumerate(all_nodes):
        for dst in all_nodes[i + 1 :]:
            if rng.random() < density:
                cap = rng.randint(1, 10)
                ours.add_edge(src, dst, cap)
                if theirs.has_edge(src, dst):
                    theirs[src][dst]["capacity"] += cap
                else:
                    theirs.add_edge(src, dst, capacity=cap)
    return ours, theirs


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_nodes=st.integers(1, 8),
    density=st.floats(0.1, 0.9),
)
def test_max_flow_matches_networkx(seed, n_nodes, density):
    ours, theirs = random_network(seed, n_nodes, density)
    cut = max_flow_min_cut(ours, "s", "t")
    reference, _ = nx.maximum_flow(theirs, "s", "t")
    assert cut.value == reference


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5000))
def test_min_cut_sides_are_certificates(seed):
    """Both reported cuts (max-source-side and min-sink-side) must have
    crossing capacity equal to the flow value."""
    ours, _ = random_network(seed, 6, 0.5)
    cut = max_flow_min_cut(ours, "s", "t")

    def crossing(source_side):
        return sum(
            ours.capacity(u, v)
            for u in source_side
            for v in ours.neighbors(u)
            if v not in source_side
        )

    assert crossing(cut.source_side) == pytest.approx(cut.value)
    complement = set(ours.nodes) - set(cut.sink_side_minimal)
    assert crossing(complement) == pytest.approx(cut.value)
