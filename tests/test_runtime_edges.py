"""Edge-case tests for the runtime executor (ISSUE 2 satellite).

Covers the corners the main runtime suite skips: empty schedules, layers
whose only operation is indeterminate, first-layer failure aborting the
whole run, event ordering at layer boundaries, and the tightened
device-exclusivity check (nothing may follow an indeterminate operation on
the same device).
"""

import pytest

from repro.errors import SchedulingError
from repro.hls.schedule import HybridSchedule, LayerSchedule, OpPlacement
from repro.runtime import EventKind, RetryModel, execute_schedule


class TestEmptySchedules:
    def test_empty_layer_list(self):
        report = execute_schedule(HybridSchedule(layers=[]))
        assert report.makespan == 0
        assert report.layer_spans == []
        assert report.succeeded
        assert len(report.log) == 0

    def test_layer_with_no_placements(self):
        sched = HybridSchedule(layers=[LayerSchedule(index=0)])
        report = execute_schedule(sched)
        assert report.makespan == 0
        assert report.layer_spans == [(0, 0)]
        starts = report.log.of_kind(EventKind.LAYER_START)
        ends = report.log.of_kind(EventKind.LAYER_END)
        assert len(starts) == len(ends) == 1


class TestIndeterminateOnlyLayer:
    def _schedule(self):
        l0 = LayerSchedule(index=0)
        l0.place(OpPlacement("cap", "d0", 0, 5, indeterminate=True))
        l1 = LayerSchedule(index=1)
        l1.place(OpPlacement("detect", "d0", 0, 3))
        return HybridSchedule(layers=[l0, l1])

    def test_layer_span_tracks_attempts(self):
        report = execute_schedule(
            self._schedule(),
            RetryModel(success_probability=0.3, max_attempts=5),
            seed=4,
        )
        tries = report.attempts["cap"]
        assert report.layer_spans[0] == (0, tries * 5)
        assert report.makespan == tries * 5 + 3

    def test_realized_term_counts_extra_attempts(self):
        report = execute_schedule(
            self._schedule(),
            RetryModel(success_probability=0.3, max_attempts=5),
            seed=4,
        )
        tries = report.attempts["cap"]
        assert report.realized_terms == {1: (tries - 1) * 5}


class TestFirstLayerFailure:
    def test_all_descendant_layers_aborted(self):
        l0 = LayerSchedule(index=0)
        l0.place(OpPlacement("cap", "d0", 0, 5, indeterminate=True))
        layers = [l0]
        for k in range(1, 4):
            layer = LayerSchedule(index=k)
            layer.place(OpPlacement(f"op{k}", "d0", 0, 2))
            layers.append(layer)
        sched = HybridSchedule(layers=layers)
        retry = RetryModel(
            success_probability=0.01, max_attempts=2, on_exhausted="fail"
        )
        for seed in range(50):
            report = execute_schedule(sched, retry, seed=seed)
            if report.failed_ops:
                break
        else:
            pytest.fail("no failing seed found")
        assert report.failed_ops == ["cap"]
        assert report.aborted_layers == [1, 2, 3]
        assert report.layer_spans == [report.layer_spans[0]]
        # None of the aborted layers' ops appear in the log.
        for k in range(1, 4):
            assert report.log.for_op(f"op{k}") == []


class TestBoundaryEventOrdering:
    def test_simultaneous_boundary_events_ordered(self):
        """At a layer boundary the log must read OP_END -> LAYER_END ->
        LAYER_START -> OP_START even though all four share a timestamp."""
        l0 = LayerSchedule(index=0)
        l0.place(OpPlacement("a", "d0", 0, 5))
        l1 = LayerSchedule(index=1)
        l1.place(OpPlacement("b", "d0", 0, 3))
        report = execute_schedule(HybridSchedule(layers=[l0, l1]))
        at_five = [e for e in report.log if e.time == 5]
        kinds = [e.kind for e in at_five]
        assert kinds == [
            EventKind.OP_END,
            EventKind.LAYER_END,
            EventKind.LAYER_START,
            EventKind.OP_START,
        ]

    def test_log_chronologically_sorted(self):
        l0 = LayerSchedule(index=0)
        l0.place(OpPlacement("slow", "d0", 0, 9))
        l0.place(OpPlacement("fast", "d1", 0, 2))
        report = execute_schedule(HybridSchedule(layers=[l0]))
        times = [e.time for e in report.log]
        assert times == sorted(times)


class TestExclusivityTightening:
    """A fixed op scheduled after an indeterminate one on the same device
    must be rejected (the paper forbids it: indeterminate operations end
    their layer, their realized completion is unknowable)."""

    def test_fixed_after_indeterminate_rejected(self):
        layer = LayerSchedule(index=0)
        layer.place(OpPlacement("cap", "d0", 0, 5, indeterminate=True))
        # Starts after the indeterminate op's *fixed* window — previously
        # slipped through because the overlap check skipped indeterminate
        # predecessors entirely.
        layer.place(OpPlacement("late", "d0", 7, 3))
        with pytest.raises(SchedulingError, match="after indeterminate"):
            execute_schedule(HybridSchedule(layers=[layer]))

    def test_overlap_with_indeterminate_rejected(self):
        layer = LayerSchedule(index=0)
        layer.place(OpPlacement("cap", "d0", 0, 5, indeterminate=True))
        layer.place(OpPlacement("mid", "d0", 3, 3))
        with pytest.raises(SchedulingError):
            execute_schedule(HybridSchedule(layers=[layer]))

    def test_fixed_before_indeterminate_allowed(self):
        layer = LayerSchedule(index=0)
        layer.place(OpPlacement("warm", "d0", 0, 4))
        layer.place(OpPlacement("cap", "d0", 4, 5, indeterminate=True))
        report = execute_schedule(
            HybridSchedule(layers=[layer]),
            RetryModel(success_probability=1.0),
        )
        assert report.succeeded

    def test_double_booked_fixed_still_rejected(self):
        layer = LayerSchedule(index=0)
        layer.place(OpPlacement("a", "d0", 0, 5))
        layer.place(OpPlacement("b", "d0", 3, 5))
        with pytest.raises(SchedulingError, match="double-booked"):
            execute_schedule(HybridSchedule(layers=[layer]))

    def test_separate_devices_unaffected(self):
        layer = LayerSchedule(index=0)
        layer.place(OpPlacement("cap", "d0", 0, 5, indeterminate=True))
        layer.place(OpPlacement("other", "d1", 7, 3))
        report = execute_schedule(
            HybridSchedule(layers=[layer]),
            RetryModel(success_probability=1.0),
        )
        assert report.succeeded
