"""Tests for the channel router (repro.layout.router)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecificationError
from repro.layout import ChannelRouter, GridLayout, GridPlacer, Position, route_chip


def layout_with(positions: dict[str, tuple[int, int]], size=(5, 5)):
    layout = GridLayout(*size)
    for uid, (x, y) in positions.items():
        layout.place(uid, Position(x, y))
    return layout


class TestSingleRoutes:
    def test_adjacent_devices_one_edge(self):
        layout = layout_with({"a": (0, 0), "b": (1, 0)})
        result = ChannelRouter().route(layout, [("a", "b")])
        assert result.total_length == 1
        assert result.max_congestion == 1

    def test_route_is_connected_path(self):
        layout = layout_with({"a": (0, 0), "b": (3, 3)})
        result = ChannelRouter().route(layout, [("a", "b")])
        route = result.routes[("a", "b")]
        assert route.points[0] == Position(0, 0)
        assert route.points[-1] == Position(3, 3)
        for p, q in zip(route.points, route.points[1:]):
            assert p.manhattan(q) == 1

    def test_length_at_least_manhattan(self):
        layout = layout_with({"a": (0, 0), "b": (4, 2)})
        result = ChannelRouter().route(layout, [("a", "b")])
        assert result.total_length >= 6

    def test_routes_avoid_device_cells_when_cheap(self):
        # A device sits directly between a and b; detour is cheaper than
        # the +2 crossing surcharge.
        layout = layout_with({"a": (0, 0), "x": (1, 0), "b": (2, 0)})
        result = ChannelRouter().route(layout, [("a", "b")])
        route = result.routes[("a", "b")]
        assert Position(1, 0) not in route.points

    def test_unplaced_device_rejected(self):
        layout = layout_with({"a": (0, 0)})
        with pytest.raises(SpecificationError):
            ChannelRouter().route(layout, [("a", "ghost")])

    def test_invalid_penalty(self):
        with pytest.raises(SpecificationError):
            ChannelRouter(congestion_penalty=-1)


class TestCongestion:
    def test_parallel_channels_spread(self):
        # Two channel pairs between the same columns: with the congestion
        # penalty they take different rows.
        layout = layout_with(
            {"a": (0, 0), "b": (3, 0), "c": (0, 1), "d": (3, 1)},
            size=(4, 4),
        )
        result = ChannelRouter().route(layout, [("a", "b"), ("c", "d")])
        assert result.max_congestion == 1
        assert result.shared_edges == 0

    def test_forced_sharing_detected(self):
        # 1-wide grid: both channels must share every edge.
        layout = GridLayout(4, 1)
        for k, uid in enumerate(("a", "b", "c", "d")):
            layout.place(uid, Position(k, 0))
        result = ChannelRouter().route(layout, [("a", "d"), ("b", "c")])
        assert result.max_congestion >= 2
        assert result.shared_edges >= 1

    def test_route_chip_wrapper(self):
        placement = GridPlacer(seed=1).place(
            ["a", "b", "c"], {("a", "b"): 2, ("b", "c"): 1}
        )
        result = route_chip(placement, {("a", "b"), ("b", "c")})
        assert len(result) == 2
        assert result.total_length >= 2


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(2, 8),
    seed=st.integers(0, 200),
)
def test_all_channels_routed_and_valid(n, seed):
    """Property: every requested channel gets a simple connected route
    between the right endpoints."""
    devices = [f"d{i}" for i in range(n)]
    usage = {(devices[i], devices[i + 1]): 1 for i in range(n - 1)}
    placement = GridPlacer(iterations=300, seed=seed).place(devices, usage)
    result = route_chip(placement, set(usage))
    assert len(result.routes) == len(usage)
    for (dev_a, dev_b), route in result.routes.items():
        assert route.points[0] == placement.layout.position_of(dev_a)
        assert route.points[-1] == placement.layout.position_of(dev_b)
        assert route.length >= placement.layout.distance(dev_a, dev_b) * 0 + 1
