"""Tests for the fluid-volume substrate (repro.fluids)."""

import pytest

from repro.components import Capacity
from repro.errors import SpecificationError
from repro.fluids import (
    VolumeModel,
    VolumeSpec,
    capacity_for_volume,
    check_volumes,
    volume_range,
)
from repro.operations import AssayBuilder


class TestCapacityForVolume:
    @pytest.mark.parametrize(
        "volume,expected",
        [
            (0.0, Capacity.TINY),
            (4.9, Capacity.TINY),
            (5.0, Capacity.SMALL),
            (24.9, Capacity.SMALL),
            (25.0, Capacity.MEDIUM),
            (99.0, Capacity.MEDIUM),
            (100.0, Capacity.LARGE),
            (499.0, Capacity.LARGE),
        ],
    )
    def test_boundaries(self, volume, expected):
        assert capacity_for_volume(volume) is expected

    def test_negative_rejected(self):
        with pytest.raises(SpecificationError):
            capacity_for_volume(-1)

    def test_oversized_rejected(self):
        with pytest.raises(SpecificationError):
            capacity_for_volume(10_000)

    def test_ranges_tile(self):
        previous_hi = 0.0
        for cap in (Capacity.TINY, Capacity.SMALL, Capacity.MEDIUM,
                    Capacity.LARGE):
            lo, hi = volume_range(cap)
            assert lo == previous_hi
            previous_hi = hi


class TestVolumeModel:
    def test_custom_ranges(self):
        model = VolumeModel(ranges={
            Capacity.TINY: (0, 1),
            Capacity.SMALL: (1, 10),
            Capacity.MEDIUM: (10, 50),
            Capacity.LARGE: (50, 1000),
        })
        assert model.capacity_for(700) is Capacity.LARGE
        assert model.max_volume(Capacity.SMALL) == 10

    def test_gap_rejected(self):
        with pytest.raises(SpecificationError):
            VolumeModel(ranges={
                Capacity.TINY: (0, 1),
                Capacity.SMALL: (2, 10),  # gap at [1, 2)
                Capacity.MEDIUM: (10, 50),
                Capacity.LARGE: (50, 100),
            })

    def test_missing_class_rejected(self):
        with pytest.raises(SpecificationError):
            VolumeModel(ranges={Capacity.TINY: (0, 1)})


class TestVolumeSpec:
    def test_fraction_bounds(self):
        with pytest.raises(SpecificationError):
            VolumeSpec(consumes={"p": 0.0})
        with pytest.raises(SpecificationError):
            VolumeSpec(consumes={"p": 1.5})

    def test_negative_volumes(self):
        with pytest.raises(SpecificationError):
            VolumeSpec(fresh_input=-1)


class TestCheckVolumes:
    def chain(self):
        b = AssayBuilder("vol")
        src = b.op("src", 3, capacity="medium")
        b.op("split_a", 3, capacity="small", after=[src])
        b.op("split_b", 3, capacity="small", after=[src])
        return b.build()

    def specs(self, frac_a=0.5, frac_b=0.5, src_out=40.0):
        return {
            "src": VolumeSpec(fresh_input=40.0, output=src_out),
            "split_a": VolumeSpec(consumes={"src": frac_a}, output=10.0),
            "split_b": VolumeSpec(consumes={"src": frac_b}, output=10.0),
        }

    def test_consistent_protocol_ok(self):
        result = check_volumes(self.chain(), self.specs())
        assert result.ok
        assert result.working_volume["src"] == pytest.approx(40.0)
        assert result.working_volume["split_a"] == pytest.approx(20.0)

    def test_overconsumption_detected(self):
        result = check_volumes(self.chain(), self.specs(0.8, 0.8))
        assert any("consume 1.60x" in e for e in result.errors)

    def test_capacity_overflow_detected(self):
        # split_a is small (max 25 nl) but would take 0.9*40 = 36 nl.
        result = check_volumes(self.chain(), self.specs(0.9, 0.1))
        assert any("exceeds its small container" in e for e in result.errors)

    def test_oversized_declaration_warns(self):
        b = AssayBuilder("w")
        b.op("tinywork", 2, capacity="large")
        result = check_volumes(
            b.build(), {"tinywork": VolumeSpec(fresh_input=1.0, output=1.0)}
        )
        assert result.ok
        assert any("tiny would suffice" in w for w in result.warnings)

    def test_missing_spec(self):
        result = check_volumes(self.chain(), {})
        assert not result.ok
        assert len(result.errors) == 3

    def test_missing_consume_fraction(self):
        specs = self.specs()
        specs["split_a"] = VolumeSpec(output=10.0)  # forgot consumes
        result = check_volumes(self.chain(), specs)
        assert any("no consume fraction" in e for e in result.errors)

    def test_phantom_consume(self):
        specs = self.specs()
        specs["src"] = VolumeSpec(
            fresh_input=40.0, output=40.0, consumes={"ghost": 0.5}
        )
        result = check_volumes(self.chain(), specs)
        assert any("without a dependency" in e for e in result.errors)
