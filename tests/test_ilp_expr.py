"""Tests for the ILP expression layer (repro.ilp.expr)."""

import pytest

from repro.errors import ModelError
from repro.ilp import LinExpr, Model
from repro.ilp.model import Constraint


@pytest.fixture
def model():
    return Model("t")


class TestVariableArithmetic:
    def test_add_variables(self, model):
        x, y = model.binary("x"), model.binary("y")
        expr = x + y
        assert expr.terms[x] == 1 and expr.terms[y] == 1

    def test_scalar_multiplication(self, model):
        x = model.binary("x")
        expr = 3 * x
        assert expr.terms[x] == 3

    def test_subtraction(self, model):
        x, y = model.binary("x"), model.binary("y")
        expr = x - y
        assert expr.terms[y] == -1

    def test_negation(self, model):
        x = model.binary("x")
        assert (-x).terms[x] == -1

    def test_rsub(self, model):
        x = model.binary("x")
        expr = 5 - x
        assert expr.constant == 5 and expr.terms[x] == -1

    def test_constant_folding(self, model):
        x = model.binary("x")
        expr = x + 2 + 3
        assert expr.constant == 5

    def test_coefficient_accumulation(self, model):
        x = model.binary("x")
        expr = x + x + x
        assert expr.terms[x] == 3

    def test_multiply_by_expr_rejected(self, model):
        x, y = model.binary("x"), model.binary("y")
        with pytest.raises(ModelError):
            x._expr() * y._expr()  # type: ignore[operator]


class TestLinExprSum:
    def test_sum_mixed(self, model):
        x, y = model.binary("x"), model.binary("y")
        expr = LinExpr.sum([x, 2 * y, 7])
        assert expr.terms[x] == 1
        assert expr.terms[y] == 2
        assert expr.constant == 7

    def test_sum_empty(self):
        expr = LinExpr.sum([])
        assert expr.terms == {} and expr.constant == 0

    def test_sum_rejects_strings(self):
        with pytest.raises(ModelError):
            LinExpr.sum(["nope"])  # type: ignore[list-item]


class TestComparisons:
    def test_le_builds_constraint(self, model):
        x = model.binary("x")
        con = x + 1 <= 3
        assert isinstance(con, Constraint)
        assert con.sense == "<=" and con.rhs == 2

    def test_ge_normalizes_constant(self, model):
        x = model.binary("x")
        con = x - 2 >= 0
        assert con.sense == ">=" and con.rhs == 2

    def test_eq_builds_constraint(self, model):
        x, y = model.binary("x"), model.binary("y")
        con = x + y == 1
        assert con.sense == "==" and con.rhs == 1

    def test_var_compared_to_var(self, model):
        x, y = model.binary("x"), model.binary("y")
        con = x >= y
        assert con.coefficient(x) == 1 and con.coefficient(y) == -1


class TestEvaluation:
    def test_value(self, model):
        x, y = model.binary("x"), model.binary("y")
        expr = 2 * x + 3 * y + 1
        assert expr.value({x: 1, y: 0}) == 3

    def test_value_missing_variable(self, model):
        x = model.binary("x")
        with pytest.raises(ModelError):
            (x + 1).value({})

    def test_repr_contains_names(self, model):
        x = model.binary("cost")
        assert "cost" in repr(x + 1)
