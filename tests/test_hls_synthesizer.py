"""End-to-end tests for repro.hls.synthesizer (+ validator integration)."""

import dataclasses

import pytest

from repro.devices import BindingMode
from repro.errors import ValidationError
from repro.hls import synthesize
from repro.hls.validate import collect_violations
from repro.operations import AssayBuilder


class TestSynthesizeBasics:
    def test_linear_assay_serial_schedule(self, linear_assay, fast_spec):
        result = synthesize(linear_assay, fast_spec)
        assert result.schedule.layers[0].makespan >= sum(
            op.duration.scheduled for op in linear_assay
        )  # strictly serial chain + transports
        assert result.num_devices >= 1
        assert collect_violations(result) == []

    def test_indeterminate_layers(self, indeterminate_assay, fast_spec):
        result = synthesize(indeterminate_assay, fast_spec)
        assert result.layering.num_layers == 2
        assert result.makespan_expression.endswith("+I_1")
        assert collect_violations(result) == []

    def test_history_records_iterations(self, linear_assay, fast_spec):
        result = synthesize(linear_assay, fast_spec)
        assert result.history[0].label == "Initial"
        assert len(result.history) >= 1
        assert all(r.fixed_makespan > 0 for r in result.history)

    def test_best_pass_selected(self, indeterminate_assay, fast_spec):
        spec = dataclasses.replace(fast_spec, max_iterations=2)
        result = synthesize(indeterminate_assay, spec)
        assert result.fixed_makespan == min(
            r.fixed_makespan for r in result.history
        )

    def test_devices_within_cap(self, diamond_assay, fast_spec):
        result = synthesize(diamond_assay, fast_spec)
        assert result.num_devices <= fast_spec.max_devices

    def test_paths_recorded(self, diamond_assay, fast_spec):
        result = synthesize(diamond_assay, fast_spec)
        assert result.paths == result.schedule.transportation_paths(
            diamond_assay.edges
        )

    def test_runtime_positive(self, linear_assay, fast_spec):
        result = synthesize(linear_assay, fast_spec)
        assert result.runtime > 0


class TestBindingModes:
    def test_cover_beats_exact_on_overlap(self, fast_spec):
        """COVER reuses a rich device for a poorer op; EXACT cannot —
        the Fig. 6 phenomenon in miniature."""
        b = AssayBuilder("overlap")
        rich = b.op("rich", 5, container="ring",
                    accessories=["pump", "sieve_valve"])
        b.op("poor", 5, container="ring", accessories=["pump"],
             after=[rich])
        assay = b.build()

        ours = synthesize(assay, fast_spec)
        conv = synthesize(
            assay,
            dataclasses.replace(fast_spec, binding_mode=BindingMode.EXACT),
        )
        assert ours.num_devices == 1
        assert conv.num_devices == 2
        assert ours.num_paths == 0
        assert conv.num_paths == 1

    def test_exact_mode_validates(self, linear_assay, fast_spec):
        spec = dataclasses.replace(
            fast_spec, binding_mode=BindingMode.EXACT
        )
        result = synthesize(linear_assay, spec)
        assert collect_violations(result) == []


class TestProgressiveResynthesis:
    def test_fig6_scenario(self, fast_spec):
        """Paper Fig. 6: o2 (chamber-or-ring, sieve) in an early layer,
        o1 (ring + sieve + pump) in a later layer.  The first pass builds a
        chamber for o2 and a ring for o1; re-synthesis lets o2 see the ring
        and fold into it."""
        b = AssayBuilder("fig6")
        o2 = b.op("o2", 5, accessories=["sieve_valve"])
        gate = b.op("gate", 4, indeterminate=True, after=[o2])
        b.op("o1", 5, container="ring",
             accessories=["sieve_valve", "pump"], after=[gate])
        assay = b.build()

        spec = dataclasses.replace(fast_spec, max_iterations=2, max_devices=4)
        result = synthesize(assay, spec)
        assert collect_violations(result) == []
        # After re-synthesis at most 2 devices live: the ring (shared by
        # o1/o2 across layers) and the gate's device.
        assert result.num_devices <= 2

    def test_improvement_non_negative_overall(self, indeterminate_assay, fast_spec):
        spec = dataclasses.replace(fast_spec, max_iterations=3)
        result = synthesize(indeterminate_assay, spec)
        first = result.history[0].fixed_makespan
        assert result.fixed_makespan <= first


class TestValidatorCatchesCorruption:
    def test_tampered_start_detected(self, linear_assay, fast_spec):
        result = synthesize(linear_assay, fast_spec)
        # Corrupt: shift one op to overlap its parent.
        layer = result.schedule.layers[0]
        placement = layer["mix"]
        object.__setattr__(placement, "start", 0)
        violations = collect_violations(result)
        assert violations
        with pytest.raises(ValidationError):
            result.validate()

    def test_tampered_binding_detected(self, indeterminate_assay, fast_spec):
        result = synthesize(indeterminate_assay, fast_spec)
        layer = result.schedule.layers[0]
        ind = [p for p in layer.placements.values() if p.indeterminate]
        if len(ind) >= 2:
            object.__setattr__(ind[0], "device_uid", ind[1].device_uid)
            assert collect_violations(result)
