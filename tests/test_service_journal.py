"""Tests for the durable job journal (repro.service.journal)."""

import json

from repro.service import JobJournal
from repro.service.queue import JobQueue


def make_job(queue=None, fingerprint="fp", request=None, **kwargs):
    queue = queue or JobQueue()
    job, _ = queue.submit(
        fingerprint, request if request is not None else {"assay": {"x": 1}},
        **kwargs,
    )
    return queue, job


def segments(root):
    return sorted(root.glob("segment-*.jsonl"))


def records(path):
    parsed = []
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        try:
            parsed.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # torn line under test
    return parsed


class TestDisabled:
    def test_none_root_is_a_noop(self):
        journal = JobJournal(None)
        _, job = make_job()
        journal.record_submitted(job)
        journal.record_started(job)
        assert not journal.enabled
        assert journal.replay() == []
        assert journal.counters()["appended"] == 0


class TestAppend:
    def test_records_land_as_jsonl(self, tmp_path):
        journal = JobJournal(tmp_path)
        _, job = make_job(fingerprint="fp1", priority=3, timeout=7.5)
        journal.record_submitted(job)
        journal.record_started(job)
        journal.record_finished(job)
        journal.close()

        (segment,) = segments(tmp_path)
        events = records(segment)
        assert [r["event"] for r in events] == [
            "submitted", "started", "finished"
        ]
        submitted = events[0]
        assert submitted["fingerprint"] == "fp1"
        assert submitted["priority"] == 3
        assert submitted["timeout"] == 7.5
        assert submitted["request"] == {"assay": {"x": 1}}

    def test_rotation_at_segment_records(self, tmp_path):
        journal = JobJournal(tmp_path, segment_records=4)
        queue = JobQueue()
        for n in range(4):
            _, job = make_job(queue, fingerprint=f"fp{n}")
            journal.record_submitted(job)
        journal.close()
        # 4 appends filled segment 1; rotation opened segment 2 (empty,
        # then compaction found nothing terminal so segment 1 survives).
        assert journal.rotations == 1
        assert [s.name for s in segments(tmp_path)] == [
            "segment-000001.jsonl", "segment-000002.jsonl",
        ]


class TestReplay:
    def test_open_jobs_come_back_terminal_jobs_do_not(self, tmp_path):
        journal = JobJournal(tmp_path)
        queue = JobQueue()
        _, done = make_job(queue, fingerprint="fp-done")
        _, pending = make_job(queue, fingerprint="fp-pending", priority=2)
        _, running = make_job(queue, fingerprint="fp-running")
        _, dead = make_job(queue, fingerprint="fp-cancelled")
        journal.record_submitted(done)
        journal.record_submitted(pending)
        journal.record_submitted(running)
        journal.record_submitted(dead)
        journal.record_started(done)
        journal.record_finished(done)
        journal.record_started(running)
        journal.record_cancelled(dead)
        journal.close()

        recovered = JobJournal(tmp_path)
        replayed = recovered.replay()
        assert [(r["fingerprint"], r["was_running"]) for r in replayed] == [
            ("fp-pending", False),
            ("fp-running", True),
        ]
        assert replayed[0]["priority"] == 2
        assert replayed[0]["request"] == {"assay": {"x": 1}}
        assert recovered.replayed == 2

    def test_forget_replayed_keeps_rejournalled_records(self, tmp_path):
        journal = JobJournal(tmp_path)
        queue = JobQueue()
        _, job = make_job(queue, fingerprint="fp-open")
        journal.record_submitted(job)
        journal.close()

        recovered = JobJournal(tmp_path)
        (entry,) = recovered.replay()
        # Re-journal under a fresh id (what the server does), then drop
        # the pre-crash segments.
        _, fresh = make_job(JobQueue(), fingerprint=entry["fingerprint"])
        recovered.record_submitted(fresh)
        recovered.forget_replayed()
        recovered.close()

        survivors = [r for s in segments(tmp_path) for r in records(s)]
        assert [r["fingerprint"] for r in survivors] == ["fp-open"]
        assert [r["id"] for r in survivors] == [fresh.id]

    def test_replay_twice_is_idempotent(self, tmp_path):
        journal = JobJournal(tmp_path)
        _, job = make_job(fingerprint="fp-open")
        journal.record_submitted(job)
        journal.close()

        first = JobJournal(tmp_path)
        assert len(first.replay()) == 1
        # Crash before forget_replayed: the next startup still sees the
        # open job exactly once.
        first.close()
        second = JobJournal(tmp_path)
        assert len(second.replay()) == 1
        second.forget_replayed()
        second.close()
        third = JobJournal(tmp_path)
        assert third.replay() == []


class TestTornRecords:
    def test_torn_tail_is_skipped_and_counted(self, tmp_path):
        journal = JobJournal(tmp_path)
        queue = JobQueue()
        _, job = make_job(queue, fingerprint="fp-ok")
        journal.record_submitted(job)
        journal.close()
        (segment,) = segments(tmp_path)
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write('{"event": "finished", "id": "job-to')  # torn

        recovered = JobJournal(tmp_path)
        replayed = recovered.replay()
        assert [r["fingerprint"] for r in replayed] == ["fp-ok"]
        assert recovered.torn_records == 1

    def test_append_after_torn_tail_stays_parseable(self, tmp_path):
        journal = JobJournal(tmp_path)
        _, job = make_job(fingerprint="fp-1")
        journal.record_submitted(job)
        journal.close()
        (segment,) = segments(tmp_path)
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write('{"torn": ')  # no trailing newline

        # Reopening terminates the torn line before appending, so the
        # next record is not glued onto the garbage.
        recovered = JobJournal(tmp_path)
        _, fresh = make_job(fingerprint="fp-2")
        recovered.record_submitted(fresh)
        recovered.close()
        fingerprints = [
            r.get("fingerprint")
            for s in segments(tmp_path) for r in records(s)
        ]
        assert "fp-1" in fingerprints and "fp-2" in fingerprints


class TestCompaction:
    def test_compaction_drops_terminal_jobs(self, tmp_path):
        # segment_records=2 forces rotations, so earlier segments close
        # and become compactable.
        journal = JobJournal(tmp_path, segment_records=2)
        queue = JobQueue()
        _, a = make_job(queue, fingerprint="fp-a")
        _, b = make_job(queue, fingerprint="fp-b")
        journal.record_submitted(a)   # seg1: submitted a
        journal.record_submitted(b)   # seg1 full -> rotate
        journal.record_finished(a)    # seg2: finished a
        journal.record_started(b)     # seg2 full -> rotate; compaction
        # drops a's records (terminal) from all closed segments.
        journal.close()

        survivors = [r for s in segments(tmp_path) for r in records(s)]
        ids = {r["id"] for r in survivors}
        assert a.id not in ids
        assert b.id in ids
        assert journal.compacted >= 1

    def test_fully_terminal_segment_is_deleted(self, tmp_path):
        journal = JobJournal(tmp_path, segment_records=2)
        queue = JobQueue()
        _, a = make_job(queue, fingerprint="fp-a")
        journal.record_submitted(a)
        journal.record_finished(a)    # seg1 full -> rotate
        journal.record_submitted(
            make_job(queue, fingerprint="fp-b")[1]
        )
        journal.close()
        names = [s.name for s in segments(tmp_path)]
        assert "segment-000001.jsonl" not in names


class TestCounters:
    def test_counters_shape(self, tmp_path):
        journal = JobJournal(tmp_path)
        _, job = make_job()
        journal.record_submitted(job)
        counters = journal.counters()
        assert counters["enabled"] == 1
        assert counters["appended"] == 1
        assert counters["segments"] == 1
        assert set(counters) == {
            "enabled", "appended", "replayed", "torn_records",
            "compacted", "rotations", "write_errors", "segments",
        }
