"""Tests for the durable job journal (repro.service.journal)."""

import json

from repro.service import JobJournal
from repro.service.queue import JobQueue


def make_job(queue=None, fingerprint="fp", request=None, **kwargs):
    queue = queue or JobQueue()
    job, _ = queue.submit(
        fingerprint, request if request is not None else {"assay": {"x": 1}},
        **kwargs,
    )
    return queue, job


def segments(root):
    return sorted(root.glob("segment-*.jsonl"))


def records(path):
    parsed = []
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        try:
            parsed.append(json.loads(line))
        except json.JSONDecodeError:
            continue  # torn line under test
    return parsed


class TestDisabled:
    def test_none_root_is_a_noop(self):
        journal = JobJournal(None)
        _, job = make_job()
        journal.record_submitted(job)
        journal.record_started(job)
        assert not journal.enabled
        assert journal.replay() == []
        assert journal.counters()["appended"] == 0


class TestAppend:
    def test_records_land_as_jsonl(self, tmp_path):
        journal = JobJournal(tmp_path)
        _, job = make_job(fingerprint="fp1", priority=3, timeout=7.5)
        journal.record_submitted(job)
        journal.record_started(job)
        journal.record_finished(job)
        journal.close()

        (segment,) = segments(tmp_path)
        events = records(segment)
        assert [r["event"] for r in events] == [
            "submitted", "started", "finished"
        ]
        submitted = events[0]
        assert submitted["fingerprint"] == "fp1"
        assert submitted["priority"] == 3
        assert submitted["timeout"] == 7.5
        assert submitted["request"] == {"assay": {"x": 1}}

    def test_rotation_at_segment_records(self, tmp_path):
        journal = JobJournal(tmp_path, segment_records=4)
        queue = JobQueue()
        for n in range(4):
            _, job = make_job(queue, fingerprint=f"fp{n}")
            journal.record_submitted(job)
        journal.close()
        # 4 appends filled segment 1; rotation opened segment 2.  No
        # compaction happens on rotation (it is O(1)); segment 1 stays
        # closed until the background compactor's thresholds fire.
        assert journal.rotations == 1
        assert [s.name for s in segments(tmp_path)] == [
            "segment-000001.jsonl", "segment-000002.jsonl",
        ]


class TestReplay:
    def test_open_jobs_come_back_terminal_jobs_do_not(self, tmp_path):
        journal = JobJournal(tmp_path)
        queue = JobQueue()
        _, done = make_job(queue, fingerprint="fp-done")
        _, pending = make_job(queue, fingerprint="fp-pending", priority=2)
        _, running = make_job(queue, fingerprint="fp-running")
        _, dead = make_job(queue, fingerprint="fp-cancelled")
        journal.record_submitted(done)
        journal.record_submitted(pending)
        journal.record_submitted(running)
        journal.record_submitted(dead)
        journal.record_started(done)
        journal.record_finished(done)
        journal.record_started(running)
        journal.record_cancelled(dead)
        journal.close()

        recovered = JobJournal(tmp_path)
        replayed = recovered.replay()
        assert [(r["fingerprint"], r["was_running"]) for r in replayed] == [
            ("fp-pending", False),
            ("fp-running", True),
        ]
        assert replayed[0]["priority"] == 2
        assert replayed[0]["request"] == {"assay": {"x": 1}}
        assert recovered.replayed == 2

    def test_forget_replayed_keeps_rejournalled_records(self, tmp_path):
        journal = JobJournal(tmp_path)
        queue = JobQueue()
        _, job = make_job(queue, fingerprint="fp-open")
        journal.record_submitted(job)
        journal.close()

        recovered = JobJournal(tmp_path)
        (entry,) = recovered.replay()
        # Re-journal under a fresh id (what the server does), then drop
        # the pre-crash segments.
        _, fresh = make_job(JobQueue(), fingerprint=entry["fingerprint"])
        recovered.record_submitted(fresh)
        recovered.forget_replayed()
        recovered.close()

        survivors = [r for s in segments(tmp_path) for r in records(s)]
        assert [r["fingerprint"] for r in survivors] == ["fp-open"]
        assert [r["id"] for r in survivors] == [fresh.id]

    def test_replay_twice_is_idempotent(self, tmp_path):
        journal = JobJournal(tmp_path)
        _, job = make_job(fingerprint="fp-open")
        journal.record_submitted(job)
        journal.close()

        first = JobJournal(tmp_path)
        assert len(first.replay()) == 1
        # Crash before forget_replayed: the next startup still sees the
        # open job exactly once.
        first.close()
        second = JobJournal(tmp_path)
        assert len(second.replay()) == 1
        second.forget_replayed()
        second.close()
        third = JobJournal(tmp_path)
        assert third.replay() == []


class TestTornRecords:
    def test_torn_tail_is_skipped_and_counted(self, tmp_path):
        journal = JobJournal(tmp_path)
        queue = JobQueue()
        _, job = make_job(queue, fingerprint="fp-ok")
        journal.record_submitted(job)
        journal.close()
        (segment,) = segments(tmp_path)
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write('{"event": "finished", "id": "job-to')  # torn

        recovered = JobJournal(tmp_path)
        replayed = recovered.replay()
        assert [r["fingerprint"] for r in replayed] == ["fp-ok"]
        assert recovered.torn_records == 1

    def test_append_after_torn_tail_stays_parseable(self, tmp_path):
        journal = JobJournal(tmp_path)
        _, job = make_job(fingerprint="fp-1")
        journal.record_submitted(job)
        journal.close()
        (segment,) = segments(tmp_path)
        with open(segment, "a", encoding="utf-8") as handle:
            handle.write('{"torn": ')  # no trailing newline

        # Reopening terminates the torn line before appending, so the
        # next record is not glued onto the garbage.
        recovered = JobJournal(tmp_path)
        _, fresh = make_job(fingerprint="fp-2")
        recovered.record_submitted(fresh)
        recovered.close()
        fingerprints = [
            r.get("fingerprint")
            for s in segments(tmp_path) for r in records(s)
        ]
        assert "fp-1" in fingerprints and "fp-2" in fingerprints


class TestCompaction:
    def test_rotation_does_not_compact(self, tmp_path):
        """Rotation is O(1): terminal records survive in closed segments
        until the background compactor fires."""
        journal = JobJournal(tmp_path, segment_records=2)
        queue = JobQueue()
        _, a = make_job(queue, fingerprint="fp-a")
        journal.record_submitted(a)
        journal.record_finished(a)    # seg1 full -> rotate
        journal.record_submitted(make_job(queue, fingerprint="fp-b")[1])
        assert journal.compacted == 0
        assert journal.compaction_runs == 0
        survivors = [r for s in segments(tmp_path) for r in records(s)]
        assert a.id in {r["id"] for r in survivors}
        journal.close()

    def test_maybe_compact_drops_terminal_jobs(self, tmp_path):
        journal = JobJournal(
            tmp_path, segment_records=2, compact_min_bytes=1,
            compact_min_age=3600.0,
        )
        queue = JobQueue()
        _, a = make_job(queue, fingerprint="fp-a")
        _, b = make_job(queue, fingerprint="fp-b")
        journal.record_submitted(a)   # seg1: submitted a
        journal.record_submitted(b)   # seg1 full -> rotate
        journal.record_finished(a)    # seg2: finished a
        journal.record_started(b)     # seg2 full -> rotate

        assert journal.pending_compaction()
        duration = journal.maybe_compact()
        assert duration is not None and duration >= 0.0
        journal.close()

        survivors = [r for s in segments(tmp_path) for r in records(s)]
        ids = {r["id"] for r in survivors}
        assert a.id not in ids
        assert b.id in ids
        assert journal.compacted >= 1
        assert journal.compaction_runs == 1

    def test_fully_terminal_segment_is_deleted(self, tmp_path):
        journal = JobJournal(
            tmp_path, segment_records=2, compact_min_bytes=1,
            compact_min_age=3600.0,
        )
        queue = JobQueue()
        _, a = make_job(queue, fingerprint="fp-a")
        journal.record_submitted(a)
        journal.record_finished(a)    # seg1 full -> rotate
        journal.record_submitted(
            make_job(queue, fingerprint="fp-b")[1]
        )
        assert journal.maybe_compact() is not None
        journal.close()
        names = [s.name for s in segments(tmp_path)]
        assert "segment-000001.jsonl" not in names

    def test_thresholds_gate_maybe_compact(self, tmp_path):
        """Below both the byte and age thresholds, maybe_compact is a
        cheap no-op even with compactable closed segments on disk."""
        journal = JobJournal(
            tmp_path, segment_records=2,
            compact_min_bytes=1024 * 1024, compact_min_age=3600.0,
        )
        queue = JobQueue()
        _, a = make_job(queue, fingerprint="fp-a")
        journal.record_submitted(a)
        journal.record_finished(a)    # rotate: one closed segment
        assert not journal.pending_compaction()
        assert journal.maybe_compact() is None
        assert journal.compaction_runs == 0
        # The age trigger alone arms it (same bytes, zero min age).
        journal.compact_min_age = 0.0
        assert journal.pending_compaction()
        assert journal.maybe_compact() is not None
        journal.close()

    def test_compact_step_is_bounded_and_oldest_first(self, tmp_path):
        journal = JobJournal(
            tmp_path, segment_records=1, compact_min_bytes=1,
            compact_min_age=3600.0, compact_segments_per_run=2,
        )
        queue = JobQueue()
        jobs = []
        for n in range(3):
            _, job = make_job(queue, fingerprint=f"fp-{n}")
            jobs.append(job)
            journal.record_submitted(job)  # rotate after every record
        for job in jobs:
            journal.record_finished(job)
        # 6 closed segments; one run rewrites at most 2 (the oldest).
        closed_before = len(journal._closed_segments())
        assert journal.compact_step() == 2
        assert len(journal._closed_segments()) == closed_before - 2
        # Full administrative compaction drains the rest.
        journal.compact()
        assert journal.closed_bytes() == 0
        journal.close()


class TestCompactionCrashWindows:
    """Satellite coverage: crashes in and around compaction windows."""

    def test_stale_tmp_from_crashed_compaction_is_swept(self, tmp_path):
        journal = JobJournal(tmp_path, segment_records=2)
        queue = JobQueue()
        _, a = make_job(queue, fingerprint="fp-open")
        journal.record_submitted(a)
        journal.record_started(a)     # rotate: seg1 closes
        journal.close()
        # Fabricate a crash mid-compaction: a partially written rewrite
        # whose atomic replace never happened.
        stale = tmp_path / "segment-000001.jsonl.tmp"
        stale.write_text('{"schema": 1, "event": "subm')

        recovered = JobJournal(tmp_path)
        assert not stale.exists()
        # The intact original still replays the open job.
        replayed = recovered.replay()
        assert [r["fingerprint"] for r in replayed] == ["fp-open"]
        assert replayed[0]["was_running"]
        recovered.close()

    def test_replay_over_compacted_plus_torn_tail(self, tmp_path):
        """A compacted history plus a crash-torn active tail replays
        exactly the open jobs: compaction dropped only terminal ids, and
        the torn line is skipped, not fatal."""
        journal = JobJournal(
            tmp_path, segment_records=2, compact_min_bytes=1,
            compact_min_age=3600.0,
        )
        queue = JobQueue()
        _, done = make_job(queue, fingerprint="fp-done")
        _, open_job = make_job(queue, fingerprint="fp-open")
        journal.record_submitted(done)
        journal.record_finished(done)      # seg1 full -> rotate
        journal.record_submitted(open_job)
        assert journal.maybe_compact() is not None  # seg1 deleted
        journal.close()
        active = segments(tmp_path)[-1]
        with open(active, "a", encoding="utf-8") as handle:
            handle.write('{"event": "finished", "id": "job-to')  # torn

        recovered = JobJournal(tmp_path)
        replayed = recovered.replay()
        assert [r["fingerprint"] for r in replayed] == ["fp-open"]
        assert recovered.torn_records == 1

    def test_forget_replayed_keeps_concurrent_appends(self, tmp_path):
        """forget_replayed deletes only the frozen pre-crash segments —
        records appended *between* replay() and forget_replayed() (the
        re-journalled replacements plus any brand-new traffic racing the
        recovery) all survive, and the terminal set is re-seeded from
        what remains."""
        journal = JobJournal(tmp_path, segment_records=100)
        queue = JobQueue()
        _, stale = make_job(queue, fingerprint="fp-replay")
        journal.record_submitted(stale)
        journal.close()

        recovered = JobJournal(
            tmp_path, segment_records=100, compact_min_bytes=1,
            compact_min_age=3600.0,
        )
        (entry,) = recovered.replay()
        fresh_queue = JobQueue()
        _, fresh = make_job(fresh_queue, fingerprint=entry["fingerprint"])
        recovered.record_submitted(fresh)
        # New traffic lands while recovery is still in flight.
        _, racer = make_job(fresh_queue, fingerprint="fp-racer")
        recovered.record_submitted(racer)
        recovered.record_finished(racer)
        recovered.forget_replayed()

        survivors = [r for s in segments(tmp_path) for r in records(s)]
        assert [r["id"] for r in survivors] == [
            fresh.id, racer.id, racer.id
        ]
        # forget_replayed re-seeded the terminal set from disk, so a
        # compaction right after recovery drops exactly the racer.
        recovered._rotate()
        assert recovered.maybe_compact() is not None
        recovered.close()
        survivors = [r for s in segments(tmp_path) for r in records(s)]
        assert [r["id"] for r in survivors] == [fresh.id]


class TestCounters:
    def test_counters_shape(self, tmp_path):
        journal = JobJournal(tmp_path)
        _, job = make_job()
        journal.record_submitted(job)
        counters = journal.counters()
        assert counters["enabled"] == 1
        assert counters["appended"] == 1
        assert counters["segments"] == 1
        assert counters["closed_bytes"] == 0
        assert set(counters) == {
            "enabled", "appended", "replayed", "torn_records",
            "compacted", "compaction_runs", "rotations", "write_errors",
            "segments", "closed_bytes",
        }
