"""Tests for the SVG renderers (repro.io.svg)."""

import xml.etree.ElementTree as ET

import pytest

from repro.hls import synthesize
from repro.io.svg import placement_to_svg, schedule_to_svg
from repro.layout import GridPlacer, layout_refined_transport
from repro.operations import AssayBuilder


@pytest.fixture
def result(fast_spec):
    b = AssayBuilder("svg")
    load = b.op("load", 4, container="chamber")
    mix = b.op("mix", 6, container="ring", accessories=["pump"],
               after=[load])
    cap = b.op("cap", 5, indeterminate=True, accessories=["cell_trap"],
               after=[mix])
    b.op("read", 3, accessories=["optical_system"], after=[cap])
    return synthesize(b.build(), fast_spec)


def parse(svg_text: str) -> ET.Element:
    return ET.fromstring(svg_text)


class TestScheduleSvg:
    def test_well_formed_xml(self, result):
        root = parse(schedule_to_svg(result.schedule))
        assert root.tag.endswith("svg")

    def test_contains_ops_and_devices(self, result):
        svg = schedule_to_svg(result.schedule)
        for uid in result.devices:
            assert uid in svg
        for op_uid in result.assay.uids:
            assert op_uid in svg  # titles or labels

    def test_makespan_header(self, result):
        assert result.makespan_expression in schedule_to_svg(result.schedule)

    def test_indeterminate_tail_pattern(self, result):
        svg = schedule_to_svg(result.schedule)
        assert 'url(#tail)' in svg

    def test_layer_boundaries_drawn(self, result):
        svg = schedule_to_svg(result.schedule)
        assert svg.count("end</text>") == len(result.schedule.layers)

    def test_block_count_matches_ops(self, result):
        root = parse(schedule_to_svg(result.schedule))
        titles = [
            el.text for el in root.iter()
            if el.tag.endswith("title")
        ]
        assert len(titles) == len(result.assay)


class TestPlacementSvg:
    def test_renders_devices(self, result):
        estimator = layout_refined_transport(
            result.assay, result.spec, result.schedule.binding,
            placer=GridPlacer(seed=2),
        )
        placement = estimator.last_placement
        if placement is None:
            pytest.skip("all ops on one device")
        svg = placement_to_svg(result, placement)
        root = parse(svg)
        assert root.tag.endswith("svg")
        for uid in placement.layout.devices:
            assert uid in svg

    def test_ring_rendered_as_circle(self, result):
        estimator = layout_refined_transport(
            result.assay, result.spec, result.schedule.binding,
            placer=GridPlacer(seed=2),
        )
        placement = estimator.last_placement
        if placement is None:
            pytest.skip("all ops on one device")
        has_ring = any(
            d.container.value == "ring" for d in result.devices.values()
        )
        if has_ring:
            assert "<circle" in placement_to_svg(result, placement)
