"""Tests for repro.hls.spec (SynthesisSpec, Weights, TransportProgression)."""

import pytest

from repro.devices import BindingMode
from repro.errors import SpecificationError
from repro.hls import SynthesisSpec, TransportProgression, Weights


class TestWeights:
    def test_defaults_time_dominant(self):
        w = Weights()
        assert w.time > max(w.area, w.processing, w.paths)

    def test_negative_rejected(self):
        with pytest.raises(SpecificationError):
            Weights(area=-1)

    def test_zero_time_rejected(self):
        with pytest.raises(SpecificationError):
            Weights(time=0)


class TestTransportProgression:
    def test_term_values_arithmetic(self):
        prog = TransportProgression(minimum=1, maximum=9, terms=5)
        assert prog.term_values() == [1, 3, 5, 7, 9]

    def test_single_term(self):
        prog = TransportProgression(minimum=4, maximum=8, terms=1)
        assert prog.term_values() == [4]

    def test_rank_clamps_to_maximum(self):
        prog = TransportProgression(minimum=1, maximum=5, terms=3)
        assert prog.term_for_rank(0) == 1
        assert prog.term_for_rank(99) == 5

    def test_most_used_gets_minimum(self):
        prog = TransportProgression(minimum=2, maximum=6, terms=2)
        assert prog.term_for_rank(0) == 2

    def test_invalid_range(self):
        with pytest.raises(SpecificationError):
            TransportProgression(minimum=5, maximum=3)

    def test_zero_terms(self):
        with pytest.raises(SpecificationError):
            TransportProgression(terms=0)


class TestSynthesisSpec:
    def test_defaults_match_paper(self):
        spec = SynthesisSpec()
        assert spec.max_devices == 25
        assert spec.threshold == 10
        assert spec.binding_mode is BindingMode.COVER
        assert spec.improvement_threshold == pytest.approx(0.10)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_devices": 0},
            {"threshold": 0},
            {"transport_default": -1},
            {"time_limit": 0},
            {"improvement_threshold": 1.0},
            {"max_iterations": -1},
            {"jobs": 0},
            {"jobs": -4},
            {"scheduler": "no-such-backend"},
        ],
    )
    def test_invalid_values(self, kwargs):
        with pytest.raises(SpecificationError):
            SynthesisSpec(**kwargs)

    def test_improvement_threshold_boundaries(self):
        """The threshold lives in [-1, 1): -1 (iterate to convergence) and
        values arbitrarily close to 1 are legal; exactly 1 is not — no
        pass can improve by 100%."""
        assert SynthesisSpec(improvement_threshold=-1.0).improvement_threshold == -1.0
        near_one = 0.9999999999999999
        assert SynthesisSpec(
            improvement_threshold=near_one
        ).improvement_threshold == pytest.approx(near_one)

    def test_jobs_defaults_sequential(self):
        spec = SynthesisSpec()
        assert spec.jobs == 1
        assert spec.scheduler == "portfolio"
        assert SynthesisSpec(jobs=8).jobs == 8
