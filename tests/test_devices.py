"""Tests for repro.devices (general devices + inventory)."""

import pytest

from repro.components import Capacity, ContainerKind
from repro.components.costs import default_cost_model
from repro.devices import BindingMode, DeviceInventory, GeneralDevice
from repro.errors import SpecificationError
from repro.operations import Fixed, Operation


def mixer(uid="mixer"):
    """A classic rotary mixer: ring + pump."""
    return GeneralDevice(uid, ContainerKind.RING, Capacity.SMALL,
                         frozenset({"pump"}))


class TestGeneralDevice:
    def test_illegal_configuration(self):
        with pytest.raises(SpecificationError):
            GeneralDevice("d", ContainerKind.RING, Capacity.TINY)

    def test_empty_uid_rejected(self):
        with pytest.raises(SpecificationError):
            GeneralDevice("", ContainerKind.RING, Capacity.SMALL)

    def test_covers_matching_op(self):
        op = Operation("mix", Fixed(5), container=ContainerKind.RING,
                       accessories=["pump"])
        assert mixer().covers(op)

    def test_covers_open_container(self):
        # The paper's headline: a cell-isolation op (no container kind
        # preference) binds to a mixer.
        op = Operation("isolate", Fixed(5), accessories=["pump"])
        assert mixer().covers(op)

    def test_covers_rejects_capacity_mismatch(self):
        op = Operation("mix", Fixed(5), capacity=Capacity.MEDIUM,
                       accessories=["pump"])
        assert not mixer().covers(op)

    def test_covers_rejects_missing_accessory(self):
        op = Operation("wash", Fixed(5), accessories=["sieve_valve"])
        assert not mixer().covers(op)

    def test_covers_rejects_wrong_kind(self):
        op = Operation("o", Fixed(5), container=ContainerKind.CHAMBER)
        assert not mixer().covers(op)

    def test_exact_mode_needs_signature(self):
        op = Operation("mix", Fixed(5), container=ContainerKind.RING,
                       accessories=["pump"])
        assert not mixer().can_execute(op, BindingMode.EXACT)
        typed = GeneralDevice(
            "d", ContainerKind.RING, Capacity.SMALL, frozenset({"pump"}),
            signature=op.requirement_signature(),
        )
        assert typed.can_execute(op, BindingMode.EXACT)

    def test_exact_mode_rejects_cover_only(self):
        rich = Operation("rich", Fixed(5), container=ContainerKind.RING,
                         accessories=["pump", "sieve_valve"])
        poor = Operation("poor", Fixed(5), container=ContainerKind.RING,
                         accessories=["pump"])
        device = GeneralDevice.for_operation("d", rich, BindingMode.EXACT)
        assert device.can_execute(rich, BindingMode.EXACT)
        assert not device.can_execute(poor, BindingMode.EXACT)
        # ... while COVER mode would allow it:
        cover_device = GeneralDevice.for_operation("d2", rich)
        assert cover_device.can_execute(poor, BindingMode.COVER)

    def test_costs(self):
        costs = default_cost_model()
        device = mixer()
        assert device.area(costs) == costs.container_area(
            ContainerKind.RING, Capacity.SMALL
        )
        assert device.processing_cost(costs) == (
            costs.container_cost(ContainerKind.RING, Capacity.SMALL)
            + costs.accessory_cost("pump")
        )

    def test_for_operation_prefers_chamber(self):
        op = Operation("o", Fixed(5))
        device = GeneralDevice.for_operation("d", op)
        assert device.container is ContainerKind.CHAMBER

    def test_for_operation_forced_ring(self):
        op = Operation("o", Fixed(5), capacity=Capacity.LARGE)
        device = GeneralDevice.for_operation("d", op)
        assert device.container is ContainerKind.RING

    def test_for_operation_respects_explicit_kind(self):
        op = Operation("o", Fixed(5), container=ContainerKind.RING)
        device = GeneralDevice.for_operation("d", op)
        assert device.container is ContainerKind.RING

    def test_for_operation_illegal_override(self):
        op = Operation("o", Fixed(5), container=ContainerKind.RING)
        with pytest.raises(SpecificationError):
            GeneralDevice.for_operation("d", op,
                                        container=ContainerKind.CHAMBER)


class TestDeviceInventory:
    def test_add_and_lookup(self):
        inv = DeviceInventory(3)
        device = inv.add(mixer(), layer_index=0)
        assert inv["mixer"] is device
        assert len(inv) == 1
        assert inv.free_slots == 2

    def test_cap_enforced(self):
        inv = DeviceInventory(1)
        inv.add(mixer("a"), 0)
        with pytest.raises(SpecificationError):
            inv.add(mixer("b"), 0)

    def test_duplicate_uid(self):
        inv = DeviceInventory(3)
        inv.add(mixer("a"), 0)
        with pytest.raises(SpecificationError):
            inv.add(mixer("a"), 1)

    def test_fresh_uid_unique(self):
        inv = DeviceInventory(5)
        inv.add(GeneralDevice("d0", ContainerKind.CHAMBER, Capacity.SMALL), 0)
        assert inv.fresh_uid() != "d0"

    def test_provenance_queries(self):
        inv = DeviceInventory(5)
        inv.add(mixer("a"), 0)
        inv.add(mixer("b"), 1)
        inv.add(mixer("c"), 1)
        assert [d.uid for d in inv.devices_of_layer(1)] == ["b", "c"]
        assert [d.uid for d in inv.inherited_for_forward(1)] == ["a"]
        assert {d.uid for d in inv.inherited_for_resynthesis(1)} == {"a"}

    def test_invalid_cap(self):
        with pytest.raises(SpecificationError):
            DeviceInventory(0)

    def test_copy_independent(self):
        inv = DeviceInventory(3)
        inv.add(mixer("a"), 0)
        clone = inv.copy()
        clone.add(mixer("b"), 0)
        assert "b" not in inv
