"""Tests for the conventional baseline (repro.baselines)."""


from repro.baselines import (
    classify_by_function,
    classify_by_signature,
    conventional_spec,
    synthesize_conventional,
)
from repro.baselines.types import signature_label
from repro.devices import BindingMode
from repro.hls import synthesize
from repro.operations import AssayBuilder


class TestClassification:
    def build(self):
        b = AssayBuilder("c")
        b.op("m1", 5, container="ring", accessories=["pump"], function="mix")
        b.op("m2", 5, container="ring", accessories=["pump"], function="mix")
        b.op("h1", 5, accessories=["heating_pad"], function="heat")
        b.op("x", 5, function="")
        return b.build()

    def test_by_function(self):
        groups = classify_by_function(self.build())
        assert len(groups["mix"]) == 2
        assert len(groups["heat"]) == 1
        assert len(groups["(unspecified)"]) == 1

    def test_by_signature(self):
        groups = classify_by_signature(self.build())
        assert len(groups) == 3  # m1/m2 share; h1 and x distinct
        sizes = sorted(len(ops) for ops in groups.values())
        assert sizes == [1, 1, 2]

    def test_signature_label(self):
        assay = self.build()
        label = signature_label(assay["m1"].requirement_signature())
        assert "ring" in label and "pump" in label

    def test_label_for_open_container(self):
        assay = self.build()
        label = signature_label(assay["x"].requirement_signature())
        assert label.startswith("any/")


class TestConventionalSynthesis:
    def test_spec_flips_mode_only(self, fast_spec):
        conv = conventional_spec(fast_spec)
        assert conv.binding_mode is BindingMode.EXACT
        assert conv.max_devices == fast_spec.max_devices
        assert conv.weights == fast_spec.weights

    def test_conventional_never_beats_ours_on_reuse(self, fast_spec):
        """A rich op + a poor op with nested requirements: the
        component-oriented method shares one device, the conventional
        method must build two — the paper's central claim in miniature."""
        b = AssayBuilder("nested")
        rich = b.op("rich", 6, container="ring",
                    accessories=["pump", "sieve_valve"])
        b.op("poor", 6, container="ring", accessories=["pump"], after=[rich])
        assay = b.build()

        ours = synthesize(assay, fast_spec)
        conv = synthesize_conventional(assay, fast_spec)
        assert ours.num_devices < conv.num_devices
        assert ours.fixed_makespan <= conv.fixed_makespan

    def test_conventional_validates(self, indeterminate_assay, fast_spec):
        result = synthesize_conventional(indeterminate_assay, fast_spec)
        result.validate()  # raises on any violation
        assert result.spec.binding_mode is BindingMode.EXACT

    def test_baseline_runs_the_shared_pipeline(
        self, monkeypatch, indeterminate_assay, fast_spec
    ):
        """The conventional method has no forked pass loop: it drives the
        exact same SynthesisPipeline, differing only in the spec's
        binding-legality predicate."""
        from repro.hls.pipeline import SynthesisPipeline

        contexts = []
        original = SynthesisPipeline.run

        def spy(self, context):
            contexts.append(context)
            return original(self, context)

        monkeypatch.setattr(SynthesisPipeline, "run", spy)
        synthesize_conventional(indeterminate_assay, fast_spec)
        assert len(contexts) == 1
        assert contexts[0].spec.binding_mode is BindingMode.EXACT

    def test_baseline_equals_synthesize_under_exact_binding(
        self, indeterminate_assay, fast_spec
    ):
        """Byte-identical to ``synthesize`` with the binding mode flipped —
        proof that the binding predicate is the *only* behavioral
        difference."""
        from repro.io.json_io import result_to_json

        conv = synthesize_conventional(indeterminate_assay, fast_spec)
        direct = synthesize(indeterminate_assay, conventional_spec(fast_spec))
        assert result_to_json(conv, deterministic=True) == result_to_json(
            direct, deterministic=True
        )

    def test_identical_requirements_behave_identically(self, fast_spec):
        """When every op has the same signature, EXACT == COVER."""
        b = AssayBuilder("uniform")
        prev = None
        for k in range(4):
            prev = b.op(f"o{k}", 4, container="chamber",
                        after=[prev] if prev else [])
        assay = b.build()
        ours = synthesize(assay, fast_spec)
        conv = synthesize_conventional(assay, fast_spec)
        assert ours.fixed_makespan == conv.fixed_makespan
        assert ours.num_devices == conv.num_devices
