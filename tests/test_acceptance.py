"""Acceptance tests: the paper's headline shapes at unit-test scale.

The benchmark suite runs the full-size workloads; these tests lock the
same qualitative claims into `pytest tests/` using scaled-down assays
(2-3 pipelines) that solve in seconds.
"""

import dataclasses

import pytest

from repro.assays import gene_expression_assay, kinase_assay, rtqpcr_assay
from repro.baselines import synthesize_conventional
from repro.hls import SynthesisSpec, synthesize

SPEC = SynthesisSpec(
    max_devices=10, threshold=2, time_limit=10, max_iterations=1,
)


@pytest.fixture(scope="module")
def mini_case2():
    assay = gene_expression_assay(cells=2)  # 14 ops, 2 ind
    return (
        synthesize(assay, SPEC),
        synthesize_conventional(assay, SPEC),
    )


class TestTable2ShapeMini:
    def test_case1_shape(self):
        assay = kinase_assay(samples=1)  # 8 ops
        ours = synthesize(assay, SPEC)
        conv = synthesize_conventional(assay, SPEC)
        assert ours.fixed_makespan <= conv.fixed_makespan
        assert ours.num_devices <= conv.num_devices
        assert ours.num_paths <= conv.num_paths

    def test_case2_shape(self, mini_case2):
        ours, conv = mini_case2
        assert ours.fixed_makespan <= conv.fixed_makespan
        assert ours.num_devices <= conv.num_devices
        # identical layering on both sides: same symbolic terms
        assert ours.makespan_expression.endswith("+I_1")
        assert conv.makespan_expression.endswith("+I_1")

    def test_case3_terms(self):
        assay = rtqpcr_assay(cells=4)  # 24 ops, 4 ind; threshold 2 -> 2 ind layers
        result = synthesize(assay, SPEC)
        assert result.makespan_expression.count("I_") == 2

    def test_both_validate(self, mini_case2):
        ours, conv = mini_case2
        ours.validate()
        conv.validate()


class TestTable3ShapeMini:
    def test_resynthesis_never_hurts(self):
        assay = gene_expression_assay(cells=3)
        spec = dataclasses.replace(SPEC, max_iterations=2)
        result = synthesize(assay, spec)
        assert result.fixed_makespan <= result.history[0].fixed_makespan


class TestPaperArtifactRegeneration:
    def test_summary_generation_logic(self):
        """The artifact writer's summary marks satisfied shapes OK."""
        from repro.experiments.paper import _summary
        from repro.experiments.table2 import Table2Row
        from repro.experiments.table3 import Table3Row

        def row(case, method, makespan, devices):
            return Table2Row(
                case=case, method=method, num_ops=1, num_indeterminate=0,
                exe_time=f"{makespan}m", fixed_makespan=makespan,
                num_devices=devices, num_paths=1, runtime_seconds=1.0,
                layer_statuses=["optimal"],
            )

        rows = []
        for case in (1, 2, 3):
            rows.append(row(case, "Conv.", 100, 5))
            rows.append(row(case, "Our", 90, 4))
        t3 = [Table3Row(case=2, exe_times=[100, 90], devices=[4, 4])]
        text = _summary(rows, t3, "advantage", "fast")
        assert text.count("OK") == 6
        assert "VIOLATED" not in text

    def test_budget_validation(self, tmp_path):
        from repro.experiments.paper import regenerate

        with pytest.raises(ValueError):
            regenerate(tmp_path, budget="extreme")
