"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.io import save_assay
from repro.operations import AssayBuilder


@pytest.fixture
def assay_file(tmp_path):
    b = AssayBuilder("cli-demo")
    cap = b.op("cap", 4, indeterminate=True, accessories=["cell_trap"])
    b.op("detect", 2, accessories=["optical_system"], after=[cap])
    path = tmp_path / "assay.json"
    save_assay(b.build(), path)
    return path


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for cmd in ("synthesize", "layer", "table2", "table3", "demo"):
            args = parser.parse_args(
                [cmd] if cmd in ("table2", "table3", "demo")
                else [cmd, "x.json"]
            )
            assert args.command == cmd

    def test_spec_arguments(self):
        args = build_parser().parse_args(
            ["synthesize", "a.json", "--max-devices", "7",
             "--threshold", "3", "--backend", "highs"]
        )
        assert args.max_devices == 7
        assert args.threshold == 3
        assert args.backend == "highs"


class TestCommands:
    def test_layer_command(self, assay_file, capsys):
        assert main(["layer", str(assay_file)]) == 0
        out = capsys.readouterr().out
        assert "2 layer(s)" in out
        assert "cap" in out

    def test_synthesize_command(self, assay_file, capsys, tmp_path):
        out_file = tmp_path / "result.json"
        code = main([
            "synthesize", str(assay_file),
            "--max-devices", "4", "--time-limit", "5",
            "--max-iterations", "0", "--gantt", "--out", str(out_file),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "execution time" in out
        assert "+I_1" in out
        assert "hybrid schedule" in out
        report = json.loads(out_file.read_text())
        assert report["assay"] == "cli-demo"

    def test_synthesize_conventional_flag(self, assay_file, capsys):
        code = main([
            "synthesize", str(assay_file), "--conventional",
            "--max-devices", "4", "--time-limit", "5",
            "--max-iterations", "0",
        ])
        assert code == 0

    def test_missing_file_graceful(self, capsys, tmp_path):
        code = main(["synthesize", str(tmp_path / "none.json")])
        assert code == 1
        assert "error:" in capsys.readouterr().err
