"""Tests for the command-line interface (repro.cli)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.io import save_assay
from repro.operations import AssayBuilder


@pytest.fixture
def assay_file(tmp_path):
    b = AssayBuilder("cli-demo")
    cap = b.op("cap", 4, indeterminate=True, accessories=["cell_trap"])
    b.op("detect", 2, accessories=["optical_system"], after=[cap])
    path = tmp_path / "assay.json"
    save_assay(b.build(), path)
    return path


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for cmd in ("synthesize", "layer", "table2", "table3", "demo"):
            args = parser.parse_args(
                [cmd] if cmd in ("table2", "table3", "demo")
                else [cmd, "x.json"]
            )
            assert args.command == cmd

    def test_spec_arguments(self):
        args = build_parser().parse_args(
            ["synthesize", "a.json", "--max-devices", "7",
             "--threshold", "3", "--backend", "highs"]
        )
        assert args.max_devices == 7
        assert args.threshold == 3
        assert args.backend == "highs"


class TestCommands:
    def test_layer_command(self, assay_file, capsys):
        assert main(["layer", str(assay_file)]) == 0
        out = capsys.readouterr().out
        assert "2 layer(s)" in out
        assert "cap" in out

    def test_synthesize_command(self, assay_file, capsys, tmp_path):
        out_file = tmp_path / "result.json"
        code = main([
            "synthesize", str(assay_file),
            "--max-devices", "4", "--time-limit", "5",
            "--max-iterations", "0", "--gantt", "--out", str(out_file),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "execution time" in out
        assert "+I_1" in out
        assert "hybrid schedule" in out
        report = json.loads(out_file.read_text())
        assert report["assay"] == "cli-demo"

    def test_synthesize_conventional_flag(self, assay_file, capsys):
        code = main([
            "synthesize", str(assay_file), "--conventional",
            "--max-devices", "4", "--time-limit", "5",
            "--max-iterations", "0",
        ])
        assert code == 0

    def test_missing_file_graceful(self, capsys, tmp_path):
        code = main(["synthesize", str(tmp_path / "none.json")])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestBadInput:
    """Bad input exits with code 2 and one line on stderr — no traceback."""

    def check(self, capsys, argv):
        code = main(argv)
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error:")
        assert len(captured.err.strip().splitlines()) == 1
        assert "Traceback" not in captured.err

    def test_malformed_json(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        self.check(capsys, ["synthesize", str(bad)])

    def test_valid_json_wrong_shape(self, capsys, tmp_path):
        bad = tmp_path / "list.json"
        bad.write_text("[1, 2, 3]")
        self.check(capsys, ["synthesize", str(bad)])

    def test_unreadable_path(self, capsys, tmp_path):
        self.check(capsys, ["synthesize", str(tmp_path / "missing.json")])

    def test_bad_fault_spec(self, capsys, assay_file):
        self.check(
            capsys,
            ["simulate", str(assay_file), "--faults", "bogus", "--runs", "1"],
        )

    def test_unknown_benchmark_case(self, capsys):
        self.check(capsys, ["synthesize", "--case", "9"])

    def test_case_and_path_conflict(self, capsys, assay_file):
        self.check(capsys, ["synthesize", str(assay_file), "--case", "1"])

    def test_neither_case_nor_path(self, capsys):
        self.check(capsys, ["synthesize"])


class TestCaseFlag:
    def test_synthesize_benchmark_case(self, capsys):
        code = main([
            "synthesize", "--case", "1", "--time-limit", "5",
            "--mip-gap", "0.25", "--max-iterations", "0",
        ])
        assert code == 0
        assert "kinase-radioassay" in capsys.readouterr().out


class TestServiceVerbs:
    def test_parser_accepts_service_verbs(self):
        parser = build_parser()
        serve = parser.parse_args(["serve", "--port", "0", "--workers", "1"])
        assert serve.command == "serve" and serve.workers == 1
        sub = parser.parse_args(["submit", "--case", "2", "--no-wait"])
        assert sub.command == "submit" and sub.case == 2
        jobs = parser.parse_args(["jobs", "--metrics"])
        assert jobs.command == "jobs" and jobs.metrics

    def test_submit_unreachable_server_fails_cleanly(self, capsys):
        code = main([
            "submit", "--case", "1", "--server", "127.0.0.1:1", "--no-wait",
        ])
        assert code == 1
        assert "cannot reach synthesis server" in capsys.readouterr().err

    def test_table3_via_server_bad_address(self, capsys):
        code = main(["table3", "--cases", "2", "--via-server", "nonsense"])
        assert code == 1
        assert "bad server address" in capsys.readouterr().err
