"""Tests for assay composition (repro.operations.compose)."""

import pytest

from repro.errors import SpecificationError
from repro.hls import SynthesisSpec, synthesize
from repro.operations import AssayBuilder
from repro.operations.compose import chain, parallel, sequential


def proto(name: str, n: int = 2):
    b = AssayBuilder(name)
    prev = None
    for k in range(n):
        prev = b.op(f"{name}_op{k}", 3, container="chamber",
                    after=[prev] if prev else [])
    return b.build()


class TestParallel:
    def test_union_counts(self):
        combined = parallel([proto("x"), proto("y", 3)])
        assert len(combined) == 5
        assert len(combined.edges) == 3

    def test_no_cross_edges(self):
        combined = parallel([proto("x"), proto("y")])
        assert combined.descendants("x_op0") == {"x_op1"}

    def test_collision_auto_prefixed(self):
        combined = parallel([proto("x"), proto("x")])
        assert "a0.x_op0" in combined
        assert "a1.x_op0" in combined

    def test_custom_prefixes(self):
        combined = parallel(
            [proto("x"), proto("x")], prefixes=["left", "right"]
        )
        assert "left.x_op0" in combined and "right.x_op1" in combined

    def test_wrong_prefix_count(self):
        with pytest.raises(SpecificationError):
            parallel([proto("x")], prefixes=["a", "b"])

    def test_empty_rejected(self):
        with pytest.raises(SpecificationError):
            parallel([])


class TestSequential:
    def test_handoff_edges(self):
        combined = sequential(proto("x"), proto("y"))
        # x's sink (x_op1) feeds y's source (y_op0).
        assert "y_op0" in combined.children("x_op1")
        order = combined.topological_order()
        assert order.index("x_op1") < order.index("y_op0")

    def test_multi_sink_multi_source(self):
        b1 = AssayBuilder("fan")
        root = b1.op("root", 2)
        b1.op("sink_a", 2, after=[root])
        b1.op("sink_b", 2, after=[root])
        b2 = AssayBuilder("join")
        b2.op("src_a", 2)
        b2.op("src_b", 2)
        combined = sequential(b1.build(), b2.build())
        for sink in ("sink_a", "sink_b"):
            for src in ("src_a", "src_b"):
                assert src in combined.children(sink)

    def test_name_default(self):
        combined = sequential(proto("x"), proto("y"))
        assert combined.name == "x>y"


class TestChain:
    def test_three_stage_chain(self):
        combined = chain([proto("x"), proto("y"), proto("z")])
        assert len(combined) == 6
        order = combined.topological_order()
        assert order.index("s0.x_op1") < order.index("s1.y_op0")
        assert order.index("s1.y_op1") < order.index("s2.z_op0")

    def test_chain_single(self):
        combined = chain([proto("x")])
        assert len(combined) == 2

    def test_chain_empty(self):
        with pytest.raises(SpecificationError):
            chain([])


class TestComposedSynthesis:
    def test_parallel_protocols_share_devices(self):
        """Two identical parallel protocols synthesize onto a shared chip
        — the composition is a first-class assay."""
        combined = parallel([proto("x"), proto("y")])
        spec = SynthesisSpec(max_devices=4, time_limit=5, max_iterations=0)
        result = synthesize(combined, spec)
        result.validate()
        assert result.num_devices <= 4
