"""Tests for the benchmark assay reconstructions (repro.assays)."""

import pytest

from repro.assays import (
    benchmark_assay,
    gene_expression_assay,
    kinase_assay,
    random_assay,
    rtqpcr_assay,
)
from repro.assays.gene_expression import (
    PAPER_NUM_INDETERMINATE as GE_IND,
    PAPER_NUM_OPS as GE_OPS,
)
from repro.assays.kinase import (
    PAPER_NUM_INDETERMINATE as KIN_IND,
    PAPER_NUM_OPS as KIN_OPS,
)
from repro.assays.rtqpcr import (
    PAPER_NUM_INDETERMINATE as RT_IND,
    PAPER_NUM_OPS as RT_OPS,
)
from repro.components import ContainerKind
from repro.layering import layer_assay


class TestPaperCounts:
    """Operation counts must match Table 2's #Op / #Ind.Op columns."""

    def test_case1_counts(self):
        assay = kinase_assay()
        assert len(assay) == KIN_OPS == 16
        assert assay.num_indeterminate == KIN_IND == 0

    def test_case2_counts(self):
        assay = gene_expression_assay()
        assert len(assay) == GE_OPS == 70
        assert assay.num_indeterminate == GE_IND == 10

    def test_case3_counts(self):
        assay = rtqpcr_assay()
        assert len(assay) == RT_OPS == 120
        assert assay.num_indeterminate == RT_IND == 20

    def test_benchmark_accessor(self):
        assert len(benchmark_assay(1)) == 16
        with pytest.raises(ValueError):
            benchmark_assay(9)


class TestProtocolContent:
    def test_kinase_mixes_without_mixer(self):
        """The paper's Fig. 2 motivation: flow-reversal mixing happens in a
        sieve-valve chamber, not a ring."""
        assay = kinase_assay()
        mix = assay["mix_flow_reversal#0"]
        assert mix.container is ContainerKind.CHAMBER
        assert "sieve_valve" in mix.accessories
        assert mix.function == "mix"

    def test_gene_expression_capture_in_mixer(self):
        """The paper's Fig. 1 motivation: cell isolation bound to a ring
        mixer (cell-separation module)."""
        assay = gene_expression_assay()
        cap = assay["capture_cell#0"]
        assert cap.is_indeterminate
        assert cap.container is ContainerKind.RING
        assert "pump" in cap.accessories

    def test_rtqpcr_needs_precise_heating(self):
        assay = rtqpcr_assay()
        qpcr = assay["qpcr#0"]
        assert {"heating_pad", "optical_system"} <= qpcr.accessories

    def test_all_valid_dags(self):
        for case in (1, 2, 3):
            benchmark_assay(case).validate()

    def test_layering_shapes_match_table2(self):
        # Case 2: one indeterminate layer -> +I_1.
        ge = layer_assay(gene_expression_assay(), threshold=10)
        ind_layers = [l for l in ge.layers if l.indeterminate_uids]
        assert len(ind_layers) == 1
        # Case 3: two indeterminate layers -> +I_1+I_2.
        rt = layer_assay(rtqpcr_assay(), threshold=10)
        ind_layers = [l for l in rt.layers if l.indeterminate_uids]
        assert len(ind_layers) == 2

    def test_scalable_replication(self):
        assert len(gene_expression_assay(cells=3)) == 21
        assert len(rtqpcr_assay(cells=5)) == 30
        assert len(kinase_assay(samples=4)) == 32


class TestChipAssay:
    """The 4th (extension) workload: chromatin immunoprecipitation."""

    def test_counts(self):
        from repro.assays import chip_assay

        assay = chip_assay(samples=4)
        assert len(assay) == 36
        assert assay.num_indeterminate == 4
        assay.validate()

    def test_wash_dominated(self):
        from repro.assays import chip_assay
        from repro.baselines import classify_by_function

        groups = classify_by_function(chip_assay(samples=1))
        # Washing (incl. purification) is the largest functional class.
        wash_count = len(groups.get("wash", []))
        assert wash_count >= max(
            len(ops) for fn, ops in groups.items() if fn != "wash"
        )

    def test_binding_is_indeterminate_with_optics(self):
        from repro.assays import chip_assay

        assay = chip_assay(samples=1)
        bind = assay["bind_chromatin#0"]
        assert bind.is_indeterminate
        assert "optical_system" in bind.accessories
        assert "sieve_valve" in bind.accessories

    def test_layering_single_indeterminate_layer(self):
        from repro.assays import chip_assay

        result = layer_assay(chip_assay(samples=4), threshold=10)
        ind_layers = [l for l in result.layers if l.indeterminate_uids]
        assert len(ind_layers) == 1


class TestRandomGenerator:
    def test_deterministic(self):
        a = random_assay(15, seed=7)
        b = random_assay(15, seed=7)
        assert a.uids == b.uids
        assert a.edges == b.edges

    def test_counts(self):
        assay = random_assay(30, seed=1)
        assert len(assay) == 30
        assay.validate()

    def test_indeterminate_fraction_zero(self):
        assay = random_assay(20, seed=2, indeterminate_fraction=0.0)
        assert assay.num_indeterminate == 0

    def test_edges_forward_only(self):
        assay = random_assay(25, seed=3, edge_probability=0.4)
        order = {uid: i for i, uid in enumerate(assay.uids)}
        for parent, child in assay.edges:
            assert order[parent] < order[child]
