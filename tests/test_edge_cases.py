"""Edge-case and error-path tests across modules."""

import itertools

import pytest

from repro.components import Capacity, ContainerKind
from repro.devices import BindingMode, GeneralDevice
from repro.errors import SolverError
from repro.hls import SynthesisSpec, synthesize
from repro.hls.decode import decode_layer_solution
from repro.hls.milp_model import (
    LEGAL_COMBOS,
    LayerProblem,
    build_layer_model,
    is_slot,
    slot_key,
)
from repro.ilp import Solution, SolveStatus
from repro.operations import AssayBuilder, Fixed, Operation

COUNTER = itertools.count(1000)


def fresh_uid():
    return f"e{next(COUNTER)}"


def tiny_problem(ops=None, slots=2):
    ops = ops or [Operation("solo", Fixed(3))]
    return LayerProblem(
        layer_index=0,
        ops=ops,
        in_layer_edges=[],
        edge_transport={},
        release={op.uid: 0 for op in ops},
        fixed_devices=[],
        free_slots=slots,
    )


class TestDecodeErrorPaths:
    def test_decode_rejects_unsolved(self):
        layer_model = build_layer_model(
            tiny_problem(), SynthesisSpec(max_devices=2, time_limit=5)
        )
        empty = Solution(status=SolveStatus.INFEASIBLE)
        with pytest.raises(SolverError):
            decode_layer_solution(layer_model, empty, fresh_uid)

    def test_decode_detects_missing_binding(self):
        spec = SynthesisSpec(max_devices=2, time_limit=5)
        layer_model = build_layer_model(tiny_problem(), spec)
        solution = layer_model.model.solve(time_limit=5)
        # Corrupt: clear the op's binding variables.
        for (uid, key), var in layer_model.od.items():
            solution.values[var] = 0.0
        with pytest.raises(SolverError):
            decode_layer_solution(layer_model, solution, fresh_uid)

    def test_decode_detects_configless_slot(self):
        spec = SynthesisSpec(max_devices=2, time_limit=5)
        layer_model = build_layer_model(tiny_problem(), spec)
        solution = layer_model.model.solve(time_limit=5)
        # Corrupt: mark a slot used but wipe its configuration.
        used_slot = next(
            j for j, var in layer_model.used.items()
            if solution.int_value(var) == 1
        )
        for (j, kind, cap), var in layer_model.conf.items():
            if j == used_slot:
                solution.values[var] = 0.0
        with pytest.raises(SolverError):
            decode_layer_solution(layer_model, solution, fresh_uid)


class TestModelInternals:
    def test_legal_combos_complete(self):
        assert len(LEGAL_COMBOS) == 6
        kinds = {kind for kind, _ in LEGAL_COMBOS}
        assert kinds == set(ContainerKind)

    def test_slot_key_roundtrip(self):
        key = slot_key(3)
        assert is_slot(key)
        assert not is_slot("d0")
        assert not is_slot(("other", 1))

    def test_symmetry_breaking_constraints_present(self):
        layer_model = build_layer_model(
            tiny_problem(slots=3), SynthesisSpec(max_devices=3, time_limit=5)
        )
        names = {c.name for c in layer_model.model.constraints}
        assert "slot_order[1]" in names
        assert "slot_order[2]" in names

    def test_exact_mode_slot_signature_vars(self):
        spec = SynthesisSpec(
            max_devices=2, time_limit=5, binding_mode=BindingMode.EXACT
        )
        ops = [
            Operation("a", Fixed(2), accessories=frozenset({"pump"})),
            Operation("b", Fixed(2)),
        ]
        layer_model = build_layer_model(tiny_problem(ops), spec)
        # 2 slots x 2 distinct signatures.
        assert len(layer_model.sig) == 4

    def test_release_margin_zero_for_sinks(self):
        problem = tiny_problem()
        assert problem.release["solo"] == 0


class TestSpecEdgeCases:
    def test_single_device_serial_everything(self):
        b = AssayBuilder("serial")
        for k in range(3):
            b.op(f"o{k}", 4, container="chamber")
        spec = SynthesisSpec(max_devices=1, time_limit=10, max_iterations=0)
        result = synthesize(b.build(), spec)
        assert result.num_devices == 1
        assert result.fixed_makespan == 12  # fully serialized

    def test_all_indeterminate_assay(self):
        b = AssayBuilder("allind")
        for k in range(3):
            b.op(f"i{k}", 3, indeterminate=True)
        spec = SynthesisSpec(
            max_devices=4, threshold=3, time_limit=10, max_iterations=0
        )
        result = synthesize(b.build(), spec)
        assert result.layering.num_layers == 1
        assert len(result.schedule.layers[0].indeterminate_uids) == 3
        assert result.makespan_expression.endswith("+I_1")

    def test_single_op_assay(self):
        b = AssayBuilder("one")
        b.op("only", 7, container="ring", accessories=["pump"])
        result = synthesize(
            b.build(), SynthesisSpec(max_devices=1, time_limit=5)
        )
        assert result.fixed_makespan == 7
        assert result.num_devices == 1
        assert result.num_paths == 0

    def test_zero_iterations_single_pass(self, linear_assay):
        spec = SynthesisSpec(max_devices=5, time_limit=5, max_iterations=0)
        result = synthesize(linear_assay, spec)
        assert len(result.history) == 1

    def test_transport_default_zero(self, diamond_assay):
        spec = SynthesisSpec(
            max_devices=5, time_limit=5, max_iterations=0,
            transport_default=0,
        )
        result = synthesize(diamond_assay, spec)
        result.validate()


class TestLargeCapacityForcing:
    def test_large_volume_op_gets_ring(self):
        """A LARGE-capacity op can only exist in a ring (constraint (3)
        intent) — even when the op leaves the container kind open."""
        op = Operation("bulk", Fixed(5), capacity=Capacity.LARGE)
        result_spec = SynthesisSpec(max_devices=1, time_limit=5)
        b = AssayBuilder("bulk")
        b.op("bulk", 5, capacity="large")
        result = synthesize(b.build(), result_spec)
        device = next(iter(result.devices.values()))
        assert device.container is ContainerKind.RING
        assert device.capacity is Capacity.LARGE

    def test_tiny_volume_op_gets_chamber(self):
        b = AssayBuilder("droplet")
        b.op("droplet", 5, capacity="tiny")
        result = synthesize(
            b.build(), SynthesisSpec(max_devices=1, time_limit=5)
        )
        device = next(iter(result.devices.values()))
        assert device.container is ContainerKind.CHAMBER
        assert device.capacity is Capacity.TINY


class TestCsvExport:
    def test_table2_csv(self):
        from repro.experiments.export import table2_to_csv
        from repro.experiments.table2 import Table2Row

        row = Table2Row(
            case=1, method="Our", num_ops=16, num_indeterminate=0,
            exe_time="94m", fixed_makespan=94, num_devices=4, num_paths=2,
            runtime_seconds=10.0, layer_statuses=["optimal"],
        )
        csv_text = table2_to_csv([row])
        assert "case,method" in csv_text.splitlines()[0]
        assert "1,Our,16,0,94m,94,4,2,10.0" in csv_text

    def test_table3_csv_long_format(self):
        from repro.experiments.export import table3_to_csv
        from repro.experiments.table3 import Table3Row

        row = Table3Row(case=2, exe_times=[295, 247], devices=[21, 21])
        lines = table3_to_csv([row]).strip().splitlines()
        assert lines[0] == "case,iteration,exe_time,devices"
        assert lines[1] == "2,0,295,21"
        assert lines[2] == "2,1,247,21"

    def test_save_csv(self, tmp_path):
        from repro.experiments.export import save_csv

        path = tmp_path / "out.csv"
        save_csv("a,b\n1,2\n", path)
        assert path.read_text().startswith("a,b")
