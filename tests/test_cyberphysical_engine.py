"""Tests for the closed-loop execution engine and its recovery policies."""

import pytest

from repro.cyberphysical import (
    ExecutionEngine,
    FaultPlan,
    RebindSparePolicy,
    ResynthesisPolicy,
    RetryBackoffPolicy,
    RetrySampler,
    build_policies,
)
from repro.errors import ReproError
from repro.hls import synthesize
from repro.runtime import RetryModel, execute_schedule


@pytest.fixture(scope="module")
def synthesized(request):
    """One synthesized indeterminate assay shared by the module's tests."""
    from repro.operations import AssayBuilder

    b = AssayBuilder("ind")
    for k in range(2):
        prep = b.op(f"prep{k}", 4, container="chamber", function="load")
        cap = b.op(
            f"capture{k}", 6, indeterminate=True,
            accessories=["cell_trap"], function="capture", after=[prep],
        )
        lyse = b.op(f"lyse{k}", 5, container="chamber", function="lyse",
                    after=[cap])
        b.op(f"detect{k}", 3, accessories=["optical_system"],
             function="detect", after=[lyse])
    from repro.hls import SynthesisSpec

    spec = SynthesisSpec(
        max_devices=6, threshold=2, time_limit=10.0, max_iterations=1
    )
    return synthesize(b.build(), spec)


class TestFaultFreeRuns:
    def test_matches_seed_executor_without_faults(self, synthesized):
        """With no faults and the same sampler the engine realizes exactly
        the makespan of the one-shot executor."""
        model = RetryModel(success_probability=0.4, max_attempts=6)
        for seed in range(5):
            baseline = execute_schedule(synthesized.schedule, model, seed=seed)
            report = ExecutionEngine(
                synthesized, sampler=RetrySampler(model), seed=seed
            ).run()
            assert report.makespan == baseline.makespan
            assert report.completed
            assert report.attempts == baseline.attempts

    def test_deterministic_for_seed(self, synthesized):
        plan = FaultPlan.parse("exhaust:capture0")
        runs = [
            ExecutionEngine(
                synthesized,
                policies=build_policies(["resynth"]),
                fault_plan=plan,
                retry_model=RetryModel(max_attempts=4),
                seed=9,
            ).run()
            for _ in range(2)
        ]
        assert runs[0].makespan == runs[1].makespan
        assert [t.to_json() for t in runs[0].trace] == [
            t.to_json() for t in runs[1].trace
        ]

    def test_degrade_fault_stretches_makespan(self, synthesized):
        model = RetryModel(success_probability=1.0)
        clean = ExecutionEngine(
            synthesized, sampler=RetrySampler(model), seed=0
        ).run()
        device = synthesized.schedule.binding["prep0"]
        slowed = ExecutionEngine(
            synthesized,
            fault_plan=FaultPlan.parse(f"slow:{device}*3"),
            sampler=RetrySampler(model),
            seed=0,
        ).run()
        assert slowed.makespan > clean.makespan
        assert slowed.completed


class TestAbortParity:
    def test_no_policies_aborts_like_seed_executor(self, synthesized):
        plan = FaultPlan.parse("exhaust:capture0")
        report = ExecutionEngine(
            synthesized,
            policies=[],
            fault_plan=plan,
            retry_model=RetryModel(max_attempts=3),
            seed=0,
        ).run()
        assert not report.completed
        assert report.failed_ops == ["capture0"]
        assert report.aborted_layers  # descendants never ran
        kinds = [t.kind for t in report.trace]
        assert "op_fault" in kinds
        assert "resynthesis_splice" not in kinds


class TestRecoveryPolicies:
    def test_retry_backoff_recovers_transient_exhaust(self, synthesized):
        report = ExecutionEngine(
            synthesized,
            policies=[RetryBackoffPolicy()],
            fault_plan=FaultPlan.parse("exhaust:capture0"),
            retry_model=RetryModel(max_attempts=4),
            seed=2,
        ).run()
        assert report.completed
        assert report.recoveries == {"retry": 1}

    def test_retry_not_applicable_to_device_down(self, synthesized):
        device = synthesized.schedule.binding["capture0"]
        report = ExecutionEngine(
            synthesized,
            policies=[RetryBackoffPolicy()],
            fault_plan=FaultPlan.parse(f"down:{device}"),
            retry_model=RetryModel(max_attempts=4),
            seed=2,
        ).run()
        assert not report.completed
        attempts = [
            t.data for t in report.trace if t.kind == "policy_result"
        ]
        assert attempts and not attempts[0]["applicable"]

    def test_rebind_moves_op_to_covering_spare(self, synthesized):
        device = synthesized.schedule.binding["capture0"]
        report = ExecutionEngine(
            synthesized,
            policies=[RebindSparePolicy()],
            fault_plan=FaultPlan.parse(f"down:{device}"),
            retry_model=RetryModel(max_attempts=4),
            seed=2,
        ).run()
        assert report.completed
        assert report.recoveries["rebind"] >= 1
        moved = [r for r in report.recovery_records if r.policy == "rebind"]
        assert all(r.device and r.device != device for r in moved)

    def test_resynthesis_splices_contingency_layers(self, synthesized):
        plan = FaultPlan.parse("exhaust:capture0")
        report = ExecutionEngine(
            synthesized,
            policies=[ResynthesisPolicy(time_limit=5.0)],
            fault_plan=plan,
            retry_model=RetryModel(max_attempts=4),
            seed=1,
        ).run()
        assert report.completed
        assert report.resyntheses == 1
        splices = [
            t for t in report.trace if t.kind == "resynthesis_splice"
        ]
        assert len(splices) == 1
        assert splices[0].data["spliced_layers"]
        # Contingency devices entered the inventory under fresh uids.
        assert any(uid.startswith("c") for uid in splices[0].data["new_devices"])

    def test_resynthesis_cap_prevents_infinite_splicing(self, synthesized):
        # A persistent exhaust fault can never be fixed; the splice cap must
        # stop the loop and the run must end as failed, not hang.
        from repro.cyberphysical import PERSISTENT, FaultKind, FaultSpec

        plan = FaultPlan(
            faults=(
                FaultSpec(
                    kind=FaultKind.EXHAUST_RETRIES,
                    target="capture0",
                    triggers=PERSISTENT,
                ),
            )
        )
        policy = ResynthesisPolicy(time_limit=5.0, max_splices=2)
        report = ExecutionEngine(
            synthesized,
            policies=[policy],
            fault_plan=plan,
            retry_model=RetryModel(max_attempts=3),
            seed=0,
        ).run()
        assert not report.completed
        assert report.resyntheses <= 2

    def test_unknown_policy_name_rejected(self):
        with pytest.raises(ReproError):
            build_policies(["warp"])

    def test_abort_and_all_names(self):
        assert build_policies(["abort"]) == []
        chain = build_policies(["all"])
        assert [p.name for p in chain] == ["retry", "rebind", "resynth"]


class TestAcceptance:
    """ISSUE acceptance: recovery completes assays the seed executor aborts."""

    def test_failure_rate_drops_to_zero_with_resynthesis(self, synthesized):
        plan = FaultPlan.parse("exhaust:capture0")
        model = RetryModel(max_attempts=4)
        seeds = range(6)

        aborted = 0
        for seed in seeds:
            report = ExecutionEngine(
                synthesized, policies=[], fault_plan=plan,
                retry_model=model, seed=seed,
            ).run()
            if not report.completed:
                aborted += 1
        assert aborted == len(list(seeds))  # the seed behavior: always aborts

        policy = ResynthesisPolicy(time_limit=5.0)
        for seed in seeds:
            report = ExecutionEngine(
                synthesized, policies=[policy], fault_plan=plan,
                retry_model=model, seed=seed,
            ).run()
            assert report.completed
            # Every recovery is visible in the trace.
            kinds = [t.kind for t in report.trace]
            assert "op_fault" in kinds
            assert "policy_attempt" in kinds
            assert "resynthesis_splice" in kinds

    def test_resynthesis_cache_reused_across_runs(self, synthesized):
        """The contingency cache is shared across runs via the policy."""
        plan = FaultPlan.parse("exhaust:capture0")
        policy = ResynthesisPolicy(time_limit=5.0)
        for seed in range(3):
            ExecutionEngine(
                synthesized, policies=[policy], fault_plan=plan,
                retry_model=RetryModel(max_attempts=4), seed=seed,
            ).run()
        assert policy.cache.hits > 0
