"""Property tests on schedule algebra and executor consistency."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hls.schedule import HybridSchedule, LayerSchedule, OpPlacement
from repro.runtime import RetryModel, execute_schedule


@st.composite
def hybrid_schedules(draw):
    """Random well-formed hybrid schedules (device-exclusive per layer)."""
    n_layers = draw(st.integers(1, 4))
    layers = []
    op_counter = 0
    for index in range(n_layers):
        layer = LayerSchedule(index=index)
        n_devices = draw(st.integers(1, 3))
        has_ind = index < n_layers - 1 or draw(st.booleans())
        ind_budget = 1 if has_ind else 0
        for d in range(n_devices):
            device = f"dev{d}"
            clock = 0
            n_ops = draw(st.integers(1, 3))
            for k in range(n_ops):
                start = clock + draw(st.integers(0, 3))
                duration = draw(st.integers(1, 8))
                is_last = k == n_ops - 1
                indeterminate = bool(ind_budget) and is_last and d == 0
                if indeterminate:
                    ind_budget -= 1
                layer.place(
                    OpPlacement(
                        f"op{op_counter}", device, start, duration,
                        indeterminate,
                    )
                )
                op_counter += 1
                clock = start + duration
        # Fix rule (14) by pushing the indeterminate op last: recompute —
        # for the property we only need makespan algebra, so relax (the
        # executor does not enforce (14); it enforces exclusivity).
        layers.append(layer)
    return HybridSchedule(layers=layers)


@settings(max_examples=40, deadline=None)
@given(sched=hybrid_schedules())
def test_makespan_expression_consistency(sched):
    expr = sched.makespan_expression()
    assert expr.startswith(f"{sched.fixed_makespan}m")
    assert expr.count("I_") == len(sched.indeterminate_terms)
    # Terms are 1-based, strictly increasing layer positions.
    terms = sched.indeterminate_terms
    assert terms == sorted(set(terms))
    if terms:
        assert terms[0] >= 1 and terms[-1] <= len(sched.layers)


@settings(max_examples=40, deadline=None)
@given(sched=hybrid_schedules(), seed=st.integers(0, 99))
def test_executor_realizes_fixed_plus_terms(sched, seed):
    """Realized makespan == fixed makespan + realized indeterminate extras
    for every valid schedule and every seed."""
    report = execute_schedule(
        sched, RetryModel(success_probability=0.6, max_attempts=5), seed=seed
    )
    assert report.makespan == sched.fixed_makespan + sum(
        report.realized_terms.values()
    )
    assert set(report.realized_terms) == set(sched.indeterminate_terms)


@settings(max_examples=30, deadline=None)
@given(sched=hybrid_schedules())
def test_global_start_offsets(sched):
    """global_start's fixed offset equals the sum of earlier layer
    makespans plus the in-layer start."""
    for layer in sched.layers:
        expected_offset = sum(
            l.makespan for l in sched.layers[: layer.index]
        )
        for uid, placement in layer.placements.items():
            offset, terms = sched.global_start(uid)
            assert offset == expected_offset + placement.start
            assert terms == sum(
                1 for l in sched.layers[: layer.index] if l.has_indeterminate
            )
