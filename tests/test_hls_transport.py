"""Tests for repro.hls.transport (Sec. 4.1 estimation)."""

from repro.hls import SynthesisSpec, TransportProgression
from repro.hls.transport import TransportEstimator, path_key
from repro.operations import AssayBuilder


def chain_assay():
    b = AssayBuilder("chain")
    a = b.op("a", 2)
    c = b.op("c", 2, after=[a])
    b.op("d", 2, after=[c])
    b.op("e", 2, after=[c])
    return b.build()


def make_estimator(**spec_kwargs):
    assay = chain_assay()
    spec = SynthesisSpec(**spec_kwargs)
    return assay, TransportEstimator(assay, spec)


class TestInitialEstimates:
    def test_constant_default(self):
        _, est = make_estimator(transport_default=7)
        assert est.edge_time("a", "c") == 7
        assert est.edge_time("c", "d") == 7

    def test_release_time_is_max_outgoing(self):
        _, est = make_estimator(transport_default=3)
        assert est.release_time("c") == 3
        assert est.release_time("e") == 0  # sink

    def test_release_restricted_to_layer(self):
        _, est = make_estimator(transport_default=3)
        assert est.release_time("c", within={"c"}) == 0
        assert est.release_time("c", within={"c", "d"}) == 3


class TestRefinement:
    def test_same_device_zeroes_transport(self):
        assay, est = make_estimator()
        binding = {uid: "dev0" for uid in assay.uids}
        est.refine(binding)
        assert est.edge_time("a", "c") == 0
        assert est.release_time("c") == 0

    def test_most_used_path_gets_min_term(self):
        assay, est = make_estimator(
            transport_progression=TransportProgression(1, 5, 5)
        )
        # a->c same device; c->d and c->e both cross to dev1 (2 uses);
        # nothing else. Path (dev0, dev1) is rank 0 -> term 1.
        binding = {"a": "dev0", "c": "dev0", "d": "dev1", "e": "dev1"}
        est.refine(binding)
        assert est.edge_time("c", "d") == 1
        assert est.edge_time("c", "e") == 1
        assert est.edge_time("a", "c") == 0

    def test_rank_ordering_by_usage(self):
        assay, est = make_estimator(
            transport_progression=TransportProgression(1, 5, 5)
        )
        # (dev0,dev1) used twice, (dev0,dev2) once -> times 1 and 2.
        binding = {"a": "dev1", "c": "dev0", "d": "dev1", "e": "dev2"}
        est.refine(binding)
        assert est.edge_time("c", "d") == 1
        assert est.edge_time("c", "e") == 2

    def test_refined_flag_and_usage_report(self):
        assay, est = make_estimator()
        assert not est.refined
        est.refine({uid: "x" for uid in assay.uids})
        assert est.refined
        assert est.path_usage == {}

    def test_snapshot_is_copy(self):
        assay, est = make_estimator()
        snap = est.snapshot()
        snap[("a", "c")] = 99
        assert est.edge_time("a", "c") != 99


class TestRankTieBreaking:
    def test_equal_usage_breaks_ties_by_path_key(self):
        # c->d crosses (dev0,dev1), c->e crosses (dev0,dev2): both paths
        # used exactly once, so ranking falls back to the lexicographic
        # path key — (dev0,dev1) takes rank 0 (term 1), (dev0,dev2)
        # rank 1 (term 2) — deterministically, not by dict order.
        assay, est = make_estimator(
            transport_progression=TransportProgression(1, 5, 5)
        )
        binding = {"a": "dev0", "c": "dev0", "d": "dev1", "e": "dev2"}
        est.refine(binding)
        assert est.edge_time("c", "d") == 1
        assert est.edge_time("c", "e") == 2
        # Renaming the devices to invert the key order flips the ranks.
        assay2, est2 = make_estimator(
            transport_progression=TransportProgression(1, 5, 5)
        )
        est2.refine({"a": "dev0", "c": "dev0", "d": "dev2", "e": "dev1"})
        assert est2.edge_time("c", "e") == 1
        assert est2.edge_time("c", "d") == 2


class TestReleaseTimeFiltering:
    def test_within_ignores_non_children(self):
        _, est = make_estimator(transport_default=3)
        # "a" is c's parent, not child: filtering to it leaves no
        # outgoing edges, so release falls back to 0.
        assert est.release_time("c", within={"a"}) == 0
        assert est.release_time("c", within={"unknown"}) == 0

    def test_within_none_counts_all_children(self):
        _, est = make_estimator(transport_default=3)
        assert est.release_time("c") == est.release_time(
            "c", within={"d", "e"}
        )

    def test_within_after_refinement(self):
        assay, est = make_estimator(
            transport_progression=TransportProgression(1, 5, 5)
        )
        # d shares c's device (transport 0), e crosses (term 1): the
        # filtered release times expose each edge individually.
        est.refine({"a": "dev0", "c": "dev0", "d": "dev0", "e": "dev1"})
        assert est.release_time("c", within={"d"}) == 0
        assert est.release_time("c", within={"e"}) == 1
        assert est.release_time("c") == 1


class TestRefinementIdempotence:
    def test_same_binding_twice_is_stable(self):
        assay, est = make_estimator(
            transport_progression=TransportProgression(1, 5, 5)
        )
        binding = {"a": "dev1", "c": "dev0", "d": "dev1", "e": "dev2"}
        est.refine(binding)
        first = est.snapshot()
        first_usage = dict(est.path_usage)
        est.refine(binding)
        assert est.snapshot() == first
        assert dict(est.path_usage) == first_usage

    def test_refine_overwrites_previous_pass(self):
        # Pass 2 re-estimates from the new binding only — no residue from
        # pass 1's path usage leaks into the times.
        assay, est = make_estimator(
            transport_progression=TransportProgression(1, 5, 5)
        )
        est.refine({"a": "dev1", "c": "dev0", "d": "dev1", "e": "dev2"})
        est.refine({uid: "dev0" for uid in assay.uids})
        fresh_assay, fresh = make_estimator(
            transport_progression=TransportProgression(1, 5, 5)
        )
        fresh.refine({uid: "dev0" for uid in fresh_assay.uids})
        assert est.snapshot() == fresh.snapshot()


class TestPathKey:
    def test_canonical_ordering(self):
        assert path_key("b", "a") == ("a", "b")
        assert path_key("a", "b") == ("a", "b")
