"""Tests for repro.graphs.digraph."""

import pytest

from repro.errors import CycleError, GraphError
from repro.graphs import DiGraph, topological_sort


def chain(*names: str) -> DiGraph:
    g = DiGraph()
    for a, b in zip(names, names[1:]):
        g.add_edge(a, b)
    return g


class TestConstruction:
    def test_add_node_idempotent(self):
        g = DiGraph()
        g.add_node("a")
        g.add_node("a")
        assert len(g) == 1

    def test_add_edge_creates_endpoints(self):
        g = DiGraph()
        g.add_edge("a", "b")
        assert "a" in g and "b" in g

    def test_self_loop_rejected(self):
        g = DiGraph()
        with pytest.raises(GraphError):
            g.add_edge("a", "a")

    def test_remove_node_clears_edges(self):
        g = chain("a", "b", "c")
        g.remove_node("b")
        assert g.successors("a") == set()
        assert g.predecessors("c") == set()

    def test_remove_unknown_node(self):
        with pytest.raises(GraphError):
            DiGraph().remove_node("ghost")

    def test_copy_is_independent(self):
        g = chain("a", "b")
        clone = g.copy()
        clone.add_edge("b", "c")
        assert "c" not in g

    def test_subgraph_induces_edges(self):
        g = chain("a", "b", "c")
        sub = g.subgraph(["a", "b"])
        assert sub.has_edge("a", "b")
        assert "c" not in sub

    def test_subgraph_unknown_node(self):
        with pytest.raises(GraphError):
            chain("a", "b").subgraph(["a", "zz"])


class TestQueries:
    def test_descendants(self):
        g = chain("a", "b", "c")
        g.add_edge("b", "d")
        assert g.descendants("a") == {"b", "c", "d"}

    def test_ancestors(self):
        g = chain("a", "b", "c")
        assert g.ancestors("c") == {"a", "b"}

    def test_descendants_exclude_self(self):
        g = chain("a", "b")
        assert "a" not in g.descendants("a")

    def test_sources_and_sinks(self):
        g = chain("a", "b", "c")
        assert g.sources() == ["a"]
        assert g.sinks() == ["c"]

    def test_degrees(self):
        g = DiGraph()
        g.add_edge("a", "b")
        g.add_edge("a", "c")
        assert g.out_degree("a") == 2
        assert g.in_degree("b") == 1

    def test_unknown_node_query(self):
        with pytest.raises(GraphError):
            DiGraph().successors("x")

    def test_edges_listing(self):
        g = chain("a", "b")
        assert g.edges == [("a", "b")]


class TestTopologicalSort:
    def test_chain_order(self):
        assert topological_sort(chain("a", "b", "c")) == ["a", "b", "c"]

    def test_respects_all_edges(self):
        g = DiGraph()
        g.add_edge("a", "c")
        g.add_edge("b", "c")
        g.add_edge("c", "d")
        order = topological_sort(g)
        assert order.index("a") < order.index("c") < order.index("d")
        assert order.index("b") < order.index("c")

    def test_cycle_detected(self):
        g = chain("a", "b", "c")
        g.add_edge("c", "a")
        with pytest.raises(CycleError):
            topological_sort(g)

    def test_cycle_error_reports_members(self):
        g = DiGraph()
        g.add_edge("x", "y")
        g.add_edge("y", "x")
        with pytest.raises(CycleError) as excinfo:
            topological_sort(g)
        assert "x" in str(excinfo.value) and "y" in str(excinfo.value)

    def test_is_acyclic(self):
        g = chain("a", "b")
        assert g.is_acyclic()
        g.add_edge("b", "a")
        assert not g.is_acyclic()

    def test_empty_graph(self):
        assert topological_sort(DiGraph()) == []
