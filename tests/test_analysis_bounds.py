"""Tests for makespan lower bounds (repro.analysis.bounds) and the
result-JSON schedule round-trip."""

import dataclasses

import pytest

from repro.analysis.bounds import makespan_bounds
from repro.hls import SynthesisSpec, synthesize
from repro.hls.validate import collect_violations
from repro.io import save_result
from repro.io.json_io import load_schedule, result_to_json, schedule_from_json
from repro.errors import SerializationError
from repro.operations import AssayBuilder


class TestMakespanBounds:
    def test_bounds_never_exceed_makespan(self, indeterminate_assay, fast_spec):
        result = synthesize(indeterminate_assay, fast_spec)
        report = makespan_bounds(result)
        for layer_bound in report.layers:
            assert layer_bound.bound <= layer_bound.makespan
            assert 0 <= layer_bound.gap <= 1
        assert report.total_bound <= report.total_makespan

    def test_serial_chain_gap_zero(self):
        """A pure chain on one device: the critical path IS the makespan
        when the ILP proves optimality."""
        b = AssayBuilder("chain")
        prev = None
        for k in range(4):
            prev = b.op(f"o{k}", 5, container="chamber",
                        after=[prev] if prev else [])
        spec = SynthesisSpec(max_devices=2, time_limit=15, max_iterations=1)
        result = synthesize(b.build(), spec)
        report = makespan_bounds(result)
        assert report.total_gap == pytest.approx(0.0)

    def test_work_bound_bites_under_contention(self):
        """Many identical parallel ops on few devices: the work bound
        dominates the (trivial) critical path."""
        b = AssayBuilder("contend")
        for k in range(6):
            b.op(f"p{k}", 10, container="chamber")
        spec = SynthesisSpec(max_devices=2, time_limit=15, max_iterations=0)
        result = synthesize(b.build(), spec)
        report = makespan_bounds(result)
        (layer,) = report.layers
        assert layer.work_bound == 30  # 60 work / 2 devices
        assert layer.work_bound > layer.critical_path_bound
        assert layer.makespan >= 30

    def test_empty_gap_handling(self):
        from repro.analysis.bounds import LayerBound

        bound = LayerBound(0, 0, 0, 0)
        assert bound.gap == 0.0


class TestScheduleRoundTrip:
    def test_reload_matches(self, indeterminate_assay, fast_spec, tmp_path):
        result = synthesize(indeterminate_assay, fast_spec)
        path = tmp_path / "result.json"
        save_result(result, path)
        reloaded = load_schedule(path)
        assert reloaded.fixed_makespan == result.fixed_makespan
        assert reloaded.binding == result.schedule.binding
        assert reloaded.makespan_expression() == result.makespan_expression

    def test_reloaded_schedule_revalidates(
        self, indeterminate_assay, fast_spec
    ):
        result = synthesize(indeterminate_assay, fast_spec)
        reloaded = schedule_from_json(result_to_json(result))
        replayed = dataclasses.replace(result, schedule=reloaded)
        assert collect_violations(replayed) == []

    def test_malformed_rejected(self):
        with pytest.raises(SerializationError):
            schedule_from_json({"layers": [{"bogus": True}]})

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_schedule(tmp_path / "nope.json")
