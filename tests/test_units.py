"""Tests for repro.units."""

import pytest

from repro.errors import SpecificationError
from repro.units import format_minutes, format_runtime, parse_duration


class TestParseDuration:
    def test_minutes(self):
        assert parse_duration("5m") == 5

    def test_hours_and_minutes(self):
        assert parse_duration("1h30m") == 90

    def test_seconds_round_up(self):
        assert parse_duration("30s") == 1

    def test_full_combination(self):
        assert parse_duration("2h5m30s") == 126

    def test_whitespace_tolerated(self):
        assert parse_duration(" 10m ") == 10

    def test_empty_rejected(self):
        with pytest.raises(SpecificationError):
            parse_duration("")

    def test_garbage_rejected(self):
        with pytest.raises(SpecificationError):
            parse_duration("five minutes")

    def test_bare_number_rejected(self):
        with pytest.raises(SpecificationError):
            parse_duration("42")


class TestFormatting:
    def test_format_minutes_int(self):
        assert format_minutes(225) == "225m"

    def test_format_minutes_integral_float(self):
        assert format_minutes(225.0) == "225m"

    def test_format_runtime_subminute(self):
        assert format_runtime(5.531) == "5.531s"

    def test_format_runtime_minutes(self):
        assert format_runtime(312) == "5m12s"

    def test_format_runtime_exact_minute(self):
        assert format_runtime(60) == "1m0s"
