"""Tests for repro.components (containers, accessories, cost model)."""

import pytest

from repro.components import (
    Accessory,
    AccessoryRegistry,
    Capacity,
    ContainerKind,
    CostModel,
    allowed_capacities,
    standard_registry,
)
from repro.components.containers import check_container, kinds_for_capacity
from repro.components.costs import default_cost_model
from repro.errors import SpecificationError


class TestContainers:
    def test_ring_capacities(self):
        assert allowed_capacities(ContainerKind.RING) == (
            Capacity.LARGE, Capacity.MEDIUM, Capacity.SMALL,
        )

    def test_chamber_capacities(self):
        assert allowed_capacities(ContainerKind.CHAMBER) == (
            Capacity.MEDIUM, Capacity.SMALL, Capacity.TINY,
        )

    def test_ring_tiny_illegal(self):
        with pytest.raises(SpecificationError):
            check_container(ContainerKind.RING, Capacity.TINY)

    def test_chamber_large_illegal(self):
        with pytest.raises(SpecificationError):
            check_container(ContainerKind.CHAMBER, Capacity.LARGE)

    def test_legal_combination_passes(self):
        check_container(ContainerKind.RING, Capacity.MEDIUM)  # no raise

    def test_kinds_for_shared_capacity(self):
        kinds = kinds_for_capacity(Capacity.SMALL)
        assert set(kinds) == {ContainerKind.RING, ContainerKind.CHAMBER}

    def test_kinds_for_exclusive_capacities(self):
        assert kinds_for_capacity(Capacity.LARGE) == (ContainerKind.RING,)
        assert kinds_for_capacity(Capacity.TINY) == (ContainerKind.CHAMBER,)

    def test_capacity_rank_ordering(self):
        assert Capacity.LARGE.rank > Capacity.MEDIUM.rank
        assert Capacity.MEDIUM.rank > Capacity.SMALL.rank
        assert Capacity.SMALL.rank > Capacity.TINY.rank

    def test_short_codes(self):
        assert ContainerKind.RING.short == "r"
        assert ContainerKind.CHAMBER.short == "ch"
        assert Capacity.LARGE.short == "l"


class TestAccessoryRegistry:
    def test_standard_registry_has_five(self):
        reg = standard_registry()
        assert len(reg) == 5
        assert "pump" in reg and "cell_trap" in reg

    def test_register_new(self):
        reg = standard_registry()
        reg.register(Accessory("electrode_array", "e", "DEP electrodes"))
        assert "electrode_array" in reg
        assert len(reg) == 6

    def test_register_idempotent(self):
        reg = standard_registry()
        pump = reg.get("pump")
        assert reg.register(pump) is pump

    def test_conflicting_redefinition_rejected(self):
        reg = standard_registry()
        with pytest.raises(SpecificationError):
            reg.register(Accessory("pump", "q", "different pump"))

    def test_duplicate_short_code_rejected(self):
        reg = standard_registry()
        with pytest.raises(SpecificationError):
            reg.register(Accessory("pressurizer", "p"))

    def test_unknown_lookup(self):
        with pytest.raises(SpecificationError):
            standard_registry().get("warp_drive")

    def test_uppercase_name_rejected(self):
        with pytest.raises(SpecificationError):
            Accessory("Pump", "x")

    def test_copy_is_independent(self):
        reg = standard_registry()
        clone = reg.copy()
        clone.register(Accessory("valve_matrix", "v"))
        assert "valve_matrix" not in reg


class TestCostModel:
    def test_defaults_cover_all_legal_combos(self):
        costs = default_cost_model()
        for kind in ContainerKind:
            for cap in allowed_capacities(kind):
                assert costs.container_area(kind, cap) > 0
                assert costs.container_cost(kind, cap) > 0

    def test_ring_costs_more_than_chamber(self):
        costs = default_cost_model()
        for cap in (Capacity.MEDIUM, Capacity.SMALL):
            assert costs.container_area(ContainerKind.RING, cap) > \
                costs.container_area(ContainerKind.CHAMBER, cap)

    def test_larger_capacity_costs_more(self):
        costs = default_cost_model()
        assert costs.container_area(ContainerKind.RING, Capacity.LARGE) > \
            costs.container_area(ContainerKind.RING, Capacity.SMALL)

    def test_unknown_accessory_uses_default(self):
        costs = default_cost_model()
        assert costs.accessory_cost("novel_gadget") == \
            costs.default_accessory_processing

    def test_known_accessory_costs(self):
        costs = default_cost_model()
        assert costs.accessory_cost("optical_system") == 5.0

    def test_illegal_combo_query(self):
        costs = default_cost_model()
        with pytest.raises(SpecificationError):
            costs.container_area(ContainerKind.RING, Capacity.TINY)

    def test_incomplete_table_rejected(self):
        with pytest.raises(SpecificationError):
            CostModel(area={})

    def test_negative_cost_rejected(self):
        costs = default_cost_model()
        bad_area = dict(costs.area)
        bad_area[(ContainerKind.RING, Capacity.SMALL)] = -1
        with pytest.raises(SpecificationError):
            CostModel(area=bad_area)
