"""Unit tests for synthesizer internals: layer_cost, pass bookkeeping,
path exclusion, and the ILP-vs-greedy race."""


import pytest

from repro.components import Capacity, ContainerKind
from repro.devices import GeneralDevice
from repro.hls import SynthesisSpec, synthesize
from repro.hls.decode import LayerSolveResult
from repro.hls.milp_model import LayerProblem
from repro.hls.schedule import LayerSchedule, OpPlacement
from repro.hls.synthesizer import _paths_excluding_layer, layer_cost
from repro.operations import AssayBuilder, Fixed, Operation


def make_layer_result(bindings: dict[str, str], makespan_ops, new_devices=()):
    schedule = LayerSchedule(index=0)
    for uid, (start, dur) in makespan_ops.items():
        schedule.place(OpPlacement(uid, bindings[uid], start, dur))
    return LayerSolveResult(
        schedule=schedule,
        binding=dict(bindings),
        new_devices=list(new_devices),
    )


class TestLayerCost:
    def spec(self):
        return SynthesisSpec(max_devices=5, time_limit=5)

    def problem(self, ops, edges=(), existing=(), incoming=(), outgoing=()):
        return LayerProblem(
            layer_index=0,
            ops=ops,
            in_layer_edges=list(edges),
            edge_transport={e: 0 for e in edges},
            release={op.uid: 0 for op in ops},
            fixed_devices=[],
            free_slots=5,
            incoming=list(incoming),
            outgoing=list(outgoing),
            existing_paths=set(existing),
        )

    def test_makespan_term(self):
        spec = self.spec()
        ops = [Operation("a", Fixed(4))]
        result = make_layer_result({"a": "d0"}, {"a": (0, 4)})
        cost = layer_cost(result, self.problem(ops), spec)
        assert cost == pytest.approx(spec.weights.time * 4)

    def test_new_device_cost_counted(self):
        spec = self.spec()
        device = GeneralDevice("n0", ContainerKind.CHAMBER, Capacity.SMALL)
        ops = [Operation("a", Fixed(4))]
        result = make_layer_result(
            {"a": "n0"}, {"a": (0, 4)}, new_devices=[device]
        )
        cost = layer_cost(result, self.problem(ops), spec)
        costs = spec.cost_model
        expected = (
            spec.weights.time * 4
            + spec.weights.area * device.area(costs)
            + spec.weights.processing * device.processing_cost(costs)
        )
        assert cost == pytest.approx(expected)

    def test_new_path_counted_once(self):
        spec = self.spec()
        ops = [Operation("a", Fixed(2)), Operation("b", Fixed(2)),
               Operation("c", Fixed(2))]
        edges = [("a", "b"), ("a", "c")]
        result = make_layer_result(
            {"a": "d0", "b": "d1", "c": "d1"},
            {"a": (0, 2), "b": (2, 2), "c": (4, 2)},
        )
        cost = layer_cost(result, self.problem(ops, edges), spec)
        # Single (d0, d1) path although two edges use it.
        assert cost == pytest.approx(
            spec.weights.time * 6 + spec.weights.paths * 1
        )

    def test_existing_path_free(self):
        spec = self.spec()
        ops = [Operation("a", Fixed(2)), Operation("b", Fixed(2))]
        edges = [("a", "b")]
        result = make_layer_result(
            {"a": "d0", "b": "d1"}, {"a": (0, 2), "b": (2, 2)}
        )
        cost = layer_cost(
            result, self.problem(ops, edges, existing=[("d0", "d1")]), spec
        )
        assert cost == pytest.approx(spec.weights.time * 4)

    def test_incoming_and_outgoing_paths(self):
        spec = self.spec()
        ops = [Operation("a", Fixed(2))]
        result = make_layer_result({"a": "d0"}, {"a": (0, 2)})
        problem = self.problem(
            ops, incoming=[("dPrev", "a")], outgoing=[("a", "dNext")]
        )
        cost = layer_cost(result, problem, spec)
        assert cost == pytest.approx(
            spec.weights.time * 2 + spec.weights.paths * 2
        )


class TestPathsExcludingLayer:
    def test_excludes_layer_touching_edges(self):
        b = AssayBuilder("px")
        x = b.op("x", 2)
        y = b.op("y", 2, after=[x])
        z = b.op("z", 2, after=[y])
        assay = b.build()
        binding = {"x": "d0", "y": "d1", "z": "d2"}
        paths = _paths_excluding_layer(assay, binding, layer_uids={"z"})
        assert paths == {("d0", "d1")}

    def test_unbound_ops_skipped(self):
        b = AssayBuilder("px2")
        x = b.op("x", 2)
        b.op("y", 2, after=[x])
        assay = b.build()
        paths = _paths_excluding_layer(assay, {"x": "d0"}, layer_uids=set())
        assert paths == set()


class TestGreedyRace:
    def test_optimal_ilp_always_wins(self, linear_assay):
        """With a generous time limit, the ILP proves optimality and its
        result is used regardless of the greedy outcome."""
        spec = SynthesisSpec(
            max_devices=6, time_limit=30, max_iterations=0,
        )
        result = synthesize(linear_assay, spec)
        assert result.history[0].layer_statuses == ["optimal"]

    def test_starved_ilp_falls_back_to_greedy(self, linear_assay):
        spec = SynthesisSpec(
            max_devices=6, time_limit=1e-4, max_iterations=0,
        )
        result = synthesize(linear_assay, spec)
        assert result.history[0].layer_statuses == ["heuristic"]
        result.validate()

    def test_fallback_disabled_raises(self, linear_assay):
        from repro.errors import SolverError

        spec = SynthesisSpec(
            max_devices=6, time_limit=1e-4, max_iterations=0,
            allow_heuristic_fallback=False,
        )
        with pytest.raises(SolverError):
            synthesize(linear_assay, spec)
