"""Tests for the greedy list-scheduling fallback (repro.hls.heuristic)."""

import itertools

import pytest

from repro.devices import GeneralDevice
from repro.components import Capacity, ContainerKind
from repro.errors import SchedulingError
from repro.hls import SynthesisSpec
from repro.hls.heuristic import schedule_layer_greedy
from repro.hls.milp_model import LayerProblem
from repro.operations import Fixed, Indeterminate, Operation

COUNTER = itertools.count()


def fresh_uid():
    return f"hd{next(COUNTER)}"


def problem_for(ops, edges=(), transport=0, fixed=(), slots=4):
    edge_transport = {e: transport for e in edges}
    release = {
        op.uid: max(
            (edge_transport[e] for e in edges if e[0] == op.uid), default=0
        )
        for op in ops
    }
    return LayerProblem(
        layer_index=0,
        ops=list(ops),
        in_layer_edges=list(edges),
        edge_transport=edge_transport,
        release=release,
        fixed_devices=list(fixed),
        free_slots=slots,
    )


def greedy(problem, **spec_kwargs):
    spec = SynthesisSpec(max_devices=8, time_limit=1, **spec_kwargs)
    return schedule_layer_greedy(problem, spec, fresh_uid)


class TestGreedyScheduling:
    def test_respects_dependencies(self):
        ops = [Operation("p", Fixed(4)), Operation("c", Fixed(2))]
        result = greedy(problem_for(ops, edges=[("p", "c")], transport=3))
        assert result.schedule["c"].start >= result.schedule["p"].end + 3

    def test_no_device_overlap(self):
        ops = [Operation(f"o{i}", Fixed(5)) for i in range(4)]
        result = greedy(problem_for(ops, slots=2))
        by_device = {}
        for uid, dev in result.binding.items():
            by_device.setdefault(dev, []).append(result.schedule[uid])
        for placements in by_device.values():
            placements.sort(key=lambda p: p.start)
            for a, b in zip(placements, placements[1:]):
                assert b.start >= a.end

    def test_device_cap_respected(self):
        ops = [Operation(f"o{i}", Fixed(5)) for i in range(5)]
        result = greedy(problem_for(ops, slots=2))
        assert len(set(result.binding.values())) <= 2

    def test_reuses_existing_devices(self):
        device = GeneralDevice(
            "fix0", ContainerKind.CHAMBER, Capacity.SMALL, frozenset()
        )
        ops = [Operation("o", Fixed(3), container=ContainerKind.CHAMBER)]
        result = greedy(problem_for(ops, fixed=[device], slots=0))
        assert result.binding["o"] == "fix0"
        assert not result.new_devices

    def test_raises_when_impossible(self):
        device = GeneralDevice(
            "fix0", ContainerKind.CHAMBER, Capacity.SMALL, frozenset()
        )
        op = Operation("o", Fixed(3), container=ContainerKind.RING)
        with pytest.raises(SchedulingError):
            greedy(problem_for([op], fixed=[device], slots=0))

    def test_indeterminate_rule14(self):
        ops = [
            Operation("long", Fixed(30)),
            Operation("cap", Indeterminate(4)),
        ]
        result = greedy(problem_for(ops))
        cap = result.schedule["cap"]
        latest = max(p.start for p in result.schedule.placements.values())
        assert latest <= cap.end

    def test_indeterminate_distinct_devices(self):
        ops = [Operation(f"i{k}", Indeterminate(3)) for k in range(3)]
        result = greedy(problem_for(ops))
        devices = [result.binding[f"i{k}"] for k in range(3)]
        assert len(set(devices)) == 3

    def test_status_marker(self):
        result = greedy(problem_for([Operation("o", Fixed(1))]))
        assert result.solver_status == "heuristic"

    def test_indeterminate_after_fixed_on_same_device(self):
        # One slot: the indeterminate op must queue after the fixed one.
        ops = [Operation("w", Fixed(5)), Operation("cap", Indeterminate(3))]
        result = greedy(problem_for(ops, slots=1))
        assert result.binding["w"] == result.binding["cap"]
        assert result.schedule["cap"].start >= result.schedule["w"].end
