"""CLI, worker, and serialization coverage for throughput mode."""

from __future__ import annotations

import dataclasses

import pytest

from repro.cli import main
from repro.hls import SynthesisSpec, synthesize
from repro.io import save_assay
from repro.io.json_io import (
    assay_to_json,
    result_to_json,
    spec_from_json,
    spec_to_json,
)
from repro.operations import AssayBuilder
from repro.service.worker import run_job


@pytest.fixture
def assay_file(tmp_path, indeterminate_assay):
    path = tmp_path / "assay.json"
    save_assay(indeterminate_assay, path)
    return path


class TestThroughputVerb:
    def test_single_assay(self, assay_file, capsys):
        code = main([
            "throughput", str(assay_file),
            "--max-devices", "6", "--threshold", "2",
            "--time-limit", "5", "--max-iterations", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "initiation II" in out
        assert "lower bound" in out
        assert "II search" in out

    def test_variant_prefixes(self, assay_file, capsys):
        code = main([
            "throughput", str(assay_file),
            "--variant-prefixes", "0.5",
            "--max-devices", "6", "--threshold", "2",
            "--time-limit", "5", "--max-iterations", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "variants       : 2" in out
        assert "shared II=" in out

    def test_variant_files(self, tmp_path, assay_file, capsys):
        b = AssayBuilder("qc")
        prep = b.op("prep0", 4, container="chamber", function="load")
        b.op(
            "capture0", 6, indeterminate=True, accessories=["cell_trap"],
            function="capture", after=[prep],
        )
        other = tmp_path / "qc.json"
        save_assay(b.build(), other)
        code = main([
            "throughput", str(assay_file), "--variants", str(other),
            "--max-devices", "6", "--threshold", "2",
            "--time-limit", "5", "--max-iterations", "1",
        ])
        assert code == 0
        assert "variants       : 2" in capsys.readouterr().out

    def test_synthesize_prints_periodic_block(self, assay_file, capsys):
        code = main([
            "synthesize", str(assay_file), "--throughput",
            "--max-devices", "6", "--threshold", "2",
            "--time-limit", "5", "--max-iterations", "1",
        ])
        assert code == 0
        assert "initiation II" in capsys.readouterr().out


class TestEnumHardening:
    """Bad enum values exit 2 with a one-line error, not a traceback."""

    @pytest.mark.parametrize(
        ("flag", "value", "needle"),
        [
            ("--conflicts", "bogus", "conflict_mode"),
            ("--storage", "bogus", "storage_mode"),
            ("--throughput", "bogus", "throughput_mode"),
            ("--periodic-scheduler", "bogus", "throughput_scheduler"),
            ("--target-ii", "0", "target_ii"),
        ],
    )
    def test_bad_value_exits_two(self, capsys, flag, value, needle):
        code = main(["synthesize", "--case", "1", flag, value])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert needle in err
        assert len(err.strip().splitlines()) == 1

    def test_choices_listed_in_message(self, capsys):
        assert main(["synthesize", "--case", "1", "--throughput", "x"]) == 2
        assert "off|periodic" in capsys.readouterr().err


class TestSpecSerialization:
    def test_round_trip_throughput_fields(self):
        spec = SynthesisSpec(
            throughput_mode="periodic",
            target_ii=7,
            throughput_scheduler="greedy",
            throughput_variants=(0.5, 0.75),
        )
        data = spec_to_json(spec)
        assert data["throughput_mode"] == "periodic"
        assert data["throughput_variants"] == [0.5, 0.75]
        back = spec_from_json(data)
        assert back == spec

    def test_default_round_trip_stays_off(self):
        back = spec_from_json(spec_to_json(SynthesisSpec()))
        assert back.throughput_mode == "off"
        assert back.target_ii is None
        assert back.throughput_variants == ()

    def test_fingerprint_tracks_throughput(self, indeterminate_assay):
        from repro.hls.cache import fingerprint_run

        base = SynthesisSpec()
        periodic = dataclasses.replace(base, throughput_mode="periodic")
        assert fingerprint_run(indeterminate_assay, base) != fingerprint_run(
            indeterminate_assay, periodic
        )


class TestWorkerPayload:
    def _request(self, assay, spec):
        return {
            "assay": assay_to_json(assay),
            "spec": spec_to_json(spec),
            "method": "hls",
        }

    def test_periodic_block_present(self, indeterminate_assay, fast_spec):
        spec = dataclasses.replace(fast_spec, throughput_mode="periodic")
        tag, payload, _cache = run_job(
            self._request(indeterminate_assay, spec)
        )
        assert tag == "ok"
        periodic = payload["periodic"]
        assert periodic["validated"] is True
        assert periodic["ii"] <= periodic["base_makespan"]
        assert periodic["lower_bound"] <= periodic["ii"]
        assert periodic["scheduler"] in ("auto", "ilp", "greedy", "baseline")
        assert payload["quality"]["ii"] == periodic["ii"]

    def test_periodic_block_absent_when_off(
        self, indeterminate_assay, fast_spec
    ):
        tag, payload, _cache = run_job(
            self._request(indeterminate_assay, fast_spec)
        )
        assert tag == "ok"
        assert "periodic" not in payload
        assert "ii" not in payload["quality"]


class TestOffModeIdentity:
    def test_result_json_unchanged_by_throughput(
        self, indeterminate_assay, fast_spec
    ):
        """Periodic mode re-times the result *after* synthesis; the
        one-shot artifact serializes byte-identically either way."""
        import json

        off = synthesize(indeterminate_assay, fast_spec)
        on = synthesize(
            indeterminate_assay,
            dataclasses.replace(fast_spec, throughput_mode="periodic"),
        )
        assert json.dumps(
            result_to_json(off, deterministic=True), sort_keys=True
        ) == json.dumps(
            result_to_json(on, deterministic=True), sort_keys=True
        )
