"""Scenario tests replaying the paper's illustrative figures and claims.

These tests pin the library's behaviour to the concrete situations the
paper uses to motivate its design: the Fig. 1/2 binding examples, the
Fig. 4 layering walk-through, the Fig. 5 eviction preferences, and the
Fig. 6 inheritance risk that progressive re-synthesis repairs.
"""

import dataclasses

from repro.components import Capacity, ContainerKind
from repro.devices import BindingMode, GeneralDevice
from repro.hls import SynthesisSpec, synthesize
from repro.layering import layer_assay
from repro.operations import AssayBuilder, Fixed, Indeterminate, Operation


class TestSection1Motivations:
    def test_fig1_cell_isolation_binds_to_mixer(self):
        """Fig. 1: mixers with separation valves serve cell isolation —
        'bound to mixers in spite of the conventional type-matching
        rules'."""
        mixer = GeneralDevice(
            "mixer", ContainerKind.RING, Capacity.SMALL,
            frozenset({"pump"}),
        )
        isolation = Operation(
            "isolate", Indeterminate(8), container=ContainerKind.RING,
            accessories=frozenset({"pump"}), function="capture",
        )
        mixing = Operation(
            "mix", Fixed(10), container=ContainerKind.RING,
            accessories=frozenset({"pump"}), function="mix",
        )
        # Component-oriented: both operations may use the mixer.
        assert mixer.covers(isolation) and mixer.covers(mixing)
        # Functional types differ — the conventional standard would refuse.
        assert isolation.function != mixing.function

    def test_fig2_mixing_without_mixer(self):
        """Fig. 2: flow-reversal mixing runs in a sieve-valve chamber — a
        mixing operation that no ring mixer could host (volume too large).
        """
        bead_column = GeneralDevice(
            "column", ContainerKind.CHAMBER, Capacity.MEDIUM,
            frozenset({"sieve_valve", "pump"}),
        )
        mixing = Operation(
            "mix_reversal", Fixed(30), container=ContainerKind.CHAMBER,
            capacity=Capacity.MEDIUM,
            accessories=frozenset({"sieve_valve", "pump"}), function="mix",
        )
        assert bead_column.covers(mixing)


class TestFig4Layering:
    def test_walkthrough(self):
        """Fig. 4's selection: pick an indeterminate op with no
        indeterminate ancestor, defer its descendants, keep the rest."""
        b = AssayBuilder("fig4")
        o1 = b.op("o1", 2)
        oa = b.op("oa", 5, indeterminate=True, after=[o1])
        b.op("o2", 2, after=[oa])
        ob = b.op("ob", 5, indeterminate=True, after=["o2"])
        b.op("o3", 2, after=[ob])
        side = b.op("side", 2)
        result = layer_assay(b.build(), threshold=10)
        assert result.num_layers == 3
        assert result.layer_of["oa"] == 0
        assert result.layer_of["side"] == 0
        assert result.layer_of["ob"] == 1
        assert result.layer_of["o3"] == 2


class TestFig6Inheritance:
    def spec(self):
        return SynthesisSpec(
            max_devices=3, threshold=1, time_limit=10, max_iterations=2
        )

    def assay(self, o1_first: bool):
        """o1 = {ring; sieve+pump}, o2 = {any; sieve}, separated by an
        indeterminate gate so they land in different layers."""
        b = AssayBuilder("fig6")
        if o1_first:
            first = b.op("o1", 6, container="ring",
                         accessories=["sieve_valve", "pump"])
        else:
            first = b.op("o2", 6, accessories=["sieve_valve"])
        gate = b.op("gate", 4, indeterminate=True, after=[first])
        if o1_first:
            b.op("o2", 6, accessories=["sieve_valve"], after=[gate])
        else:
            b.op("o1", 6, container="ring",
                 accessories=["sieve_valve", "pump"], after=[gate])
        return b.build()

    def test_forward_inheritance_good_order(self):
        """Fig. 6(a): o1 before o2 — o2 inherits o1's ring, no extra
        device even in the first pass."""
        spec = dataclasses.replace(self.spec(), max_iterations=0)
        result = synthesize(self.assay(o1_first=True), spec)
        binding = result.schedule.binding
        assert binding["o1"] == binding["o2"]

    def test_resynthesis_repairs_bad_order(self):
        """Fig. 6(b): o2 before o1 — the first pass cannot foresee o1 and
        may build a chamber for o2; re-synthesis gives o2 the later ring."""
        result = synthesize(self.assay(o1_first=False), self.spec())
        binding = result.schedule.binding
        assert binding["o1"] == binding["o2"]
        # At most two devices live: the shared ring, plus possibly a
        # separate device for the gate (the solver may even fold the gate
        # into the ring since o2 fully precedes it).
        assert result.num_devices <= 2
        improvement = (
            result.history[0].fixed_makespan - result.fixed_makespan
        )
        assert improvement > 0  # re-synthesis actually helped


class TestHybridSchedulingClaim:
    def test_indeterminate_last_and_parallel(self):
        """Sec. 3: indeterminate operations end their sub-schedule and run
        on pairwise-distinct devices."""
        b = AssayBuilder("tail")
        for k in range(3):
            prep = b.op(f"prep{k}", 4)
            b.op(f"cap{k}", 5, indeterminate=True,
                 accessories=["cell_trap"], after=[prep])
        spec = SynthesisSpec(max_devices=8, threshold=3, time_limit=10,
                             max_iterations=0)
        result = synthesize(b.build(), spec)
        layer0 = result.schedule.layers[0]
        caps = [layer0[f"cap{k}"] for k in range(3)]
        assert len({c.device_uid for c in caps}) == 3
        latest_start = max(p.start for p in layer0.placements.values())
        for cap in caps:
            assert latest_start <= cap.end


class TestExactVsCoverFairness:
    def test_same_machinery_different_binding_only(self):
        """The baseline shares layering/ILP/transport with the proposed
        method; on an assay with one signature per op and no overlap the
        two produce the same makespan."""
        b = AssayBuilder("disjoint")
        b.op("a", 5, container="ring", accessories=["pump"])
        b.op("b", 5, container="chamber", accessories=["heating_pad"])
        assay = b.build()
        spec = SynthesisSpec(max_devices=4, threshold=1, time_limit=10,
                             max_iterations=0)
        ours = synthesize(assay, spec)
        conv = synthesize(
            assay, dataclasses.replace(spec, binding_mode=BindingMode.EXACT)
        )
        assert ours.fixed_makespan == conv.fixed_makespan
        assert ours.num_devices == conv.num_devices == 2
