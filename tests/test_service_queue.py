"""Tests for the priority job queue (repro.service.queue)."""

import pytest

from repro.errors import ServiceError
from repro.service import JobQueue, JobStatus


def submit(queue, fp, **kwargs):
    job, coalesced = queue.submit(fp, {"fingerprint": fp}, **kwargs)
    return job, coalesced


class TestSubmit:
    def test_fifo_within_priority(self):
        queue = JobQueue()
        a, _ = submit(queue, "a")
        b, _ = submit(queue, "b")
        assert queue.next_job() is a
        assert queue.next_job() is b
        assert queue.next_job() is None

    def test_higher_priority_value_runs_first(self):
        queue = JobQueue()
        low, _ = submit(queue, "low", priority=-1)
        high, _ = submit(queue, "high", priority=5)
        assert queue.next_job() is high
        assert queue.next_job() is low

    def test_next_job_marks_running(self):
        queue = JobQueue()
        job, _ = submit(queue, "a")
        assert job.status is JobStatus.PENDING
        assert queue.next_job() is job
        assert job.status is JobStatus.RUNNING


class TestCoalescing:
    def test_same_fingerprint_shares_one_job(self):
        queue = JobQueue()
        first, coalesced1 = submit(queue, "same")
        second, coalesced2 = submit(queue, "same")
        assert not coalesced1
        assert coalesced2
        assert second is first
        assert first.coalesced == 1
        # Only one dispatchable job exists.
        assert queue.next_job() is first
        assert queue.next_job() is None

    def test_running_job_still_coalesces(self):
        queue = JobQueue()
        first, _ = submit(queue, "same")
        queue.next_job()
        again, coalesced = submit(queue, "same")
        assert coalesced and again is first

    def test_finished_job_does_not_coalesce(self):
        queue = JobQueue()
        first, _ = submit(queue, "same")
        queue.next_job()
        queue.finish(first, {"result": {}}, source="solve")
        second, coalesced = submit(queue, "same")
        assert not coalesced
        assert second is not first


class TestBackpressure:
    def test_full_queue_raises_429(self):
        queue = JobQueue(capacity=2)
        submit(queue, "a")
        submit(queue, "b")
        with pytest.raises(ServiceError) as err:
            submit(queue, "c")
        assert err.value.status == 429
        assert err.value.kind == "queue-full"

    def test_coalescing_bypasses_the_bound(self):
        queue = JobQueue(capacity=1)
        submit(queue, "a")
        _, coalesced = submit(queue, "a")
        assert coalesced

    def test_draining_frees_capacity(self):
        queue = JobQueue(capacity=1)
        job, _ = submit(queue, "a")
        queue.next_job()
        submit(queue, "b")  # running jobs no longer count as pending


class TestLifecycle:
    def test_finish_and_result(self):
        queue = JobQueue()
        job, _ = submit(queue, "a")
        queue.next_job()
        queue.finish(job, {"result": {"x": 1}}, source="solve")
        assert job.status is JobStatus.DONE
        assert job.source == "solve"
        assert job.payload == {"result": {"x": 1}}

    def test_fail_records_structured_error(self):
        queue = JobQueue()
        job, _ = submit(queue, "a")
        queue.next_job()
        queue.fail(job, "worker-crashed", "boom")
        assert job.status is JobStatus.FAILED
        assert job.error == {"kind": "worker-crashed", "message": "boom"}

    def test_cancel_pending(self):
        queue = JobQueue()
        job, _ = submit(queue, "a")
        cancelled = queue.cancel(job.id)
        assert cancelled.status is JobStatus.CANCELLED
        assert queue.next_job() is None

    def test_cancel_running_conflicts(self):
        queue = JobQueue()
        job, _ = submit(queue, "a")
        queue.next_job()
        with pytest.raises(ServiceError) as err:
            queue.cancel(job.id)
        assert err.value.status == 409

    def test_unknown_job_404(self):
        with pytest.raises(ServiceError) as err:
            JobQueue().get("nope")
        assert err.value.status == 404

    def test_cancelled_fingerprint_resubmits_fresh(self):
        queue = JobQueue()
        job, _ = submit(queue, "a")
        queue.cancel(job.id)
        fresh, coalesced = submit(queue, "a")
        assert not coalesced and fresh is not job

    def test_timeout_while_queued_expires_instead_of_dispatching(self):
        queue = JobQueue()
        stale, _ = submit(queue, "stale", timeout=5.0)
        fresh, _ = submit(queue, "fresh", timeout=5.0)
        stale.submitted_at -= 10.0  # out-waited its own budget in queue

        assert queue.next_job() is fresh
        assert stale.status is JobStatus.FAILED
        assert stale.error["kind"] == "timeout"
        assert queue.expired == [stale]
        assert queue.pending == 0  # expiring decrements pending too

    def test_expired_fingerprint_resubmits_fresh(self):
        queue = JobQueue()
        stale, _ = submit(queue, "a", timeout=5.0)
        stale.submitted_at -= 10.0
        assert queue.next_job() is None
        again, coalesced = submit(queue, "a")
        assert not coalesced and again is not stale

    def test_cancel_coalesced_job_detaches_one_waiter(self):
        """Cancelling one waiter of a shared job must not cancel the
        solve the other submitters still expect."""
        queue = JobQueue()
        shared, _ = submit(queue, "same")
        again, coalesced = submit(queue, "same")
        assert coalesced and again is shared

        live = queue.cancel(shared.id)
        assert live is shared
        assert shared.status is JobStatus.PENDING  # still dispatchable
        assert shared.coalesced == 0
        # The last remaining waiter cancels for real.
        cancelled = queue.cancel(shared.id)
        assert cancelled.status is JobStatus.CANCELLED

    def test_cancel_coalesced_running_job_detaches_then_conflicts(self):
        queue = JobQueue()
        shared, _ = submit(queue, "same")
        queue.next_job()
        submit(queue, "same")  # coalesces onto the running job

        live = queue.cancel(shared.id)
        assert live is shared and shared.status is JobStatus.RUNNING
        with pytest.raises(ServiceError) as err:
            queue.cancel(shared.id)  # last waiter: running, not cancellable
        assert err.value.status == 409

    def test_force_submit_bypasses_backpressure(self):
        """Journal replay re-enqueues acknowledged jobs past the 429
        bound — a recovered job must never be dropped on the floor."""
        queue = JobQueue(capacity=1)
        submit(queue, "a")
        with pytest.raises(ServiceError):
            submit(queue, "b")
        job, coalesced = queue.submit("b", {"fingerprint": "b"}, force=True)
        assert not coalesced and job.status is JobStatus.PENDING
        assert queue.pending == 2

    def test_history_pruned_to_bound(self):
        queue = JobQueue(history=4)
        for n in range(8):
            job, _ = submit(queue, f"fp{n}")
            queue.next_job()
            queue.finish(job, {"result": {}}, source="solve")
        submit(queue, "one-more")  # pruning runs at submission time
        finished = [j for j in queue.jobs() if j.status.finished]
        assert len(finished) <= 4
