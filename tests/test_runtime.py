"""Tests for the runtime executor (repro.runtime)."""


import pytest

from repro.errors import SchedulingError
from repro.hls import synthesize
from repro.hls.schedule import HybridSchedule, LayerSchedule, OpPlacement
from repro.runtime import EventKind, RetryModel, execute_schedule


def hybrid_with_indeterminate() -> HybridSchedule:
    l0 = LayerSchedule(index=0)
    l0.place(OpPlacement("prep", "d0", 0, 4))
    l0.place(OpPlacement("cap", "d1", 2, 5, indeterminate=True))
    l1 = LayerSchedule(index=1)
    l1.place(OpPlacement("detect", "d0", 0, 3))
    return HybridSchedule(layers=[l0, l1])


class TestRetryModel:
    def test_always_succeeds_first_try(self):
        model = RetryModel(success_probability=1.0)
        import random

        assert model.sample_attempts(random.Random(0)) == (1, True)

    def test_attempts_capped(self):
        model = RetryModel(success_probability=0.01, max_attempts=5)
        import random

        rng = random.Random(1)
        assert all(
            model.sample_attempts(rng)[0] <= 5 for _ in range(50)
        )

    def test_succeed_policy_never_fails(self):
        model = RetryModel(success_probability=0.01, max_attempts=2)
        import random

        rng = random.Random(2)
        assert all(model.sample_attempts(rng)[1] for _ in range(50))

    def test_fail_policy_can_fail(self):
        model = RetryModel(
            success_probability=0.05, max_attempts=2, on_exhausted="fail"
        )
        import random

        rng = random.Random(3)
        outcomes = [model.sample_attempts(rng)[1] for _ in range(100)]
        assert not all(outcomes)

    def test_invalid_probability(self):
        with pytest.raises(SchedulingError):
            RetryModel(success_probability=0)

    def test_invalid_attempts(self):
        with pytest.raises(SchedulingError):
            RetryModel(max_attempts=0)

    def test_invalid_policy(self):
        with pytest.raises(SchedulingError):
            RetryModel(on_exhausted="explode")


class TestExecution:
    def test_deterministic_for_seed(self):
        sched = hybrid_with_indeterminate()
        r1 = execute_schedule(sched, seed=42)
        r2 = execute_schedule(sched, seed=42)
        assert r1.makespan == r2.makespan
        assert r1.attempts == r2.attempts

    def test_makespan_without_retries(self):
        sched = hybrid_with_indeterminate()
        report = execute_schedule(
            sched, RetryModel(success_probability=1.0), seed=0
        )
        # layer 0 ends at max(4, 2+5)=7; layer 1 adds 3.
        assert report.makespan == 10
        assert report.realized_terms == {1: 0}

    def test_retries_extend_layer(self):
        sched = hybrid_with_indeterminate()
        report = execute_schedule(
            sched, RetryModel(success_probability=0.05, max_attempts=4),
            seed=3,
        )
        attempts = report.attempts["cap"]
        assert attempts >= 2
        expected_layer0_end = max(4, 2 + attempts * 5)
        assert report.layer_spans[0] == (0, expected_layer0_end)
        assert report.realized_terms[1] == expected_layer0_end - 7

    def test_layers_strictly_sequential(self):
        sched = hybrid_with_indeterminate()
        report = execute_schedule(sched, seed=7)
        (s0, e0), (s1, e1) = report.layer_spans
        assert s0 == 0 and s1 == e0 and e1 >= s1

    def test_event_log_structure(self):
        sched = hybrid_with_indeterminate()
        report = execute_schedule(
            sched, RetryModel(success_probability=1.0), seed=0
        )
        starts = report.log.of_kind(EventKind.OP_START)
        ends = report.log.of_kind(EventKind.OP_END)
        assert {e.uid for e in starts} == {"prep", "cap", "detect"}
        assert len(starts) == len(ends) == 3
        assert len(report.log.of_kind(EventKind.LAYER_START)) == 2

    def test_retry_events_logged(self):
        sched = hybrid_with_indeterminate()
        report = execute_schedule(
            sched, RetryModel(success_probability=0.01, max_attempts=3),
            seed=1,
        )
        retries = report.log.of_kind(EventKind.OP_RETRY)
        assert len(retries) == report.attempts["cap"] - 1

    def test_double_booking_detected(self):
        layer = LayerSchedule(index=0)
        layer.place(OpPlacement("a", "d0", 0, 5))
        layer.place(OpPlacement("b", "d0", 3, 5))
        with pytest.raises(SchedulingError):
            execute_schedule(HybridSchedule(layers=[layer]))

    def test_total_extra_property(self):
        sched = hybrid_with_indeterminate()
        report = execute_schedule(
            sched, RetryModel(success_probability=0.2, max_attempts=6), seed=5
        )
        assert report.total_indeterminate_extra == sum(
            report.realized_terms.values()
        )


class TestFailurePolicy:
    def find_failing_seed(self, sched):
        retry = RetryModel(
            success_probability=0.05, max_attempts=2, on_exhausted="fail"
        )
        for seed in range(100):
            report = execute_schedule(sched, retry, seed=seed)
            if report.failed_ops:
                return report
        pytest.fail("no failing seed found at p=0.05, cap=2")

    def test_failure_aborts_later_layers(self):
        sched = hybrid_with_indeterminate()
        report = self.find_failing_seed(sched)
        assert report.failed_ops == ["cap"]
        assert report.aborted_layers == [1]
        assert not report.succeeded
        # The aborted layer's ops never appear in the event log.
        assert report.log.for_op("detect") == []

    def test_success_report_clean(self):
        sched = hybrid_with_indeterminate()
        report = execute_schedule(
            sched, RetryModel(success_probability=1.0), seed=0
        )
        assert report.succeeded
        assert report.aborted_layers == []


class TestEndToEndWithSynthesis:
    def test_synthesized_schedule_executes(self, indeterminate_assay, fast_spec):
        result = synthesize(indeterminate_assay, fast_spec)
        report = execute_schedule(result.schedule, seed=11)
        assert report.makespan >= result.fixed_makespan
        # Fixed part + realized indeterminate extras = realized makespan.
        assert report.makespan == result.fixed_makespan + sum(
            report.realized_terms.values()
        )

    def test_perfect_capture_matches_fixed_makespan(
        self, indeterminate_assay, fast_spec
    ):
        result = synthesize(indeterminate_assay, fast_spec)
        report = execute_schedule(
            result.schedule, RetryModel(success_probability=1.0), seed=0
        )
        assert report.makespan == result.fixed_makespan
