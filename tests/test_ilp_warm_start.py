"""Warm starting and dual-bound reporting of the branch-and-bound solver."""

import pytest

from repro.ilp import Model, SolveStats, SolveStatus
from repro.ilp.bnb import solve_bnb


def knapsack():
    """max 6x + 5y + 4z  s.t. 5x + 4y + 3z <= 9, binaries (opt: x+y = 11)."""
    m = Model("knap", sense="max")
    x = m.binary("x")
    y = m.binary("y")
    z = m.binary("z")
    m.add(5 * x + 4 * y + 3 * z <= 9, name="capacity")
    m.maximize(6 * x + 5 * y + 4 * z)
    return m, (x, y, z)


class TestWarmStart:
    def test_valid_start_is_accepted(self):
        m, (x, y, z) = knapsack()
        sol = solve_bnb(m, warm_start={x: 1, y: 1, z: 0})
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(11.0)
        assert sol.stats is not None and sol.stats.warm_started

    def test_infeasible_start_is_ignored(self):
        m, (x, y, z) = knapsack()
        sol = solve_bnb(m, warm_start={x: 1, y: 1, z: 1})  # violates capacity
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(11.0)
        assert sol.stats is not None and not sol.stats.warm_started

    def test_incomplete_start_is_ignored(self):
        m, (x, y, z) = knapsack()
        sol = solve_bnb(m, warm_start={x: 0})
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.stats is not None and not sol.stats.warm_started

    def test_zero_node_budget_returns_warm_incumbent(self):
        """With no search budget at all, the warm incumbent is the answer —
        the solve can never do worse than its start."""
        m, (x, y, z) = knapsack()
        sol = solve_bnb(m, node_limit=0, warm_start={x: 0, y: 1, z: 1})
        assert sol.status is SolveStatus.FEASIBLE
        assert sol.objective == pytest.approx(9.0)
        assert sol[x] == 0 and sol[y] == 1 and sol[z] == 1

    def test_zero_node_budget_without_start_times_out(self):
        m, _ = knapsack()
        sol = solve_bnb(m, node_limit=0)
        assert sol.status is SolveStatus.TIMEOUT
        assert sol.objective is None

    def test_incumbent_never_worse_than_start(self):
        """Final objective must dominate the warm start at every budget."""
        for limit in (0, 1, 2, 5, 100):
            m, (x, y, z) = knapsack()
            start = {x: 0, y: 0, z: 1}  # feasible, objective 4
            sol = solve_bnb(m, node_limit=limit, warm_start=start)
            assert sol.objective is not None
            assert sol.objective >= 4.0 - 1e-9

    def test_warm_start_on_minimization(self):
        m = Model("cover", sense="min")
        x = m.binary("x")
        y = m.binary("y")
        m.add(x + y >= 1, name="cover")
        m.minimize(3 * x + 2 * y)
        sol = solve_bnb(m, warm_start={x: 1, y: 0})
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.objective == pytest.approx(2.0)
        assert sol.stats is not None and sol.stats.warm_started

    def test_model_solve_forwards_warm_start(self):
        m, (x, y, z) = knapsack()
        sol = m.solve(backend="bnb", warm_start={x: 1, y: 1, z: 0})
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.stats is not None and sol.stats.warm_started


class TestDualBound:
    def test_optimal_bound_equals_objective(self):
        m, _ = knapsack()
        sol = solve_bnb(m)
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.bound == pytest.approx(sol.objective)

    def test_limited_solve_never_reports_infinite_bound(self):
        """Regression: hitting a limit with the root still open used to
        report the root's -inf sentinel as a dual bound."""
        m, (x, y, z) = knapsack()
        sol = solve_bnb(m, node_limit=0, warm_start={x: 0, y: 0, z: 1})
        assert sol.status is SolveStatus.FEASIBLE
        # The only open node is the unprocessed root: nothing is proven.
        assert sol.bound is None

    def test_limited_solve_bound_dominates_incumbent(self):
        """Whenever a bound is reported on a max problem it must be >= the
        incumbent objective (and finite)."""
        m = Model("bigger", sense="max")
        xs = [m.binary(f"x{i}") for i in range(8)]
        weights = [5, 4, 3, 7, 6, 2, 5, 4]
        values = [6, 5, 4, 9, 7, 2, 6, 5]
        m.add(sum(w * x for w, x in zip(weights, xs)) <= 14, name="cap")
        m.maximize(sum(v * x for v, x in zip(values, xs)))
        for limit in (1, 2, 3, 5, 8, 13):
            sol = solve_bnb(m, node_limit=limit, use_presolve=False)
            if sol.objective is None or sol.bound is None:
                continue
            assert sol.bound >= sol.objective - 1e-9
            assert sol.bound < float("inf")


class TestSolveStats:
    def test_stats_populated(self):
        m, _ = knapsack()
        sol = solve_bnb(m)
        stats = sol.stats
        assert stats is not None
        assert stats.backend == "bnb"
        assert stats.status == "optimal"
        assert stats.nodes >= 1
        assert stats.simplex_iterations >= 1
        assert stats.solve_time >= 0.0

    def test_round_trip(self):
        stats = SolveStats(
            layer=3, backend="bnb", status="feasible", nodes=17,
            simplex_iterations=240, build_time=0.5, solve_time=1.25,
            cache_hit=True, warm_started=True,
        )
        assert SolveStats.from_dict(stats.to_dict()) == stats
