"""Tests for the storage synthesis subsystem (repro.storage)."""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

import pytest

from repro.cli import main
from repro.components import StorageReservoir, reservoirs_needed
from repro.errors import SpecificationError, ValidationError
from repro.hls import SynthesisSpec, synthesize
from repro.hls.cache import fingerprint_run
from repro.io import load_assay, result_to_json, save_assay
from repro.io.json_io import spec_from_json, spec_to_json
from repro.storage import (
    CHANNEL,
    HOLD,
    RESERVOIR,
    StorageDecision,
    StoragePlan,
    StoragePlanner,
    channel_location,
    evicted_edges,
    plan_storage,
    validate_storage_plan,
)
from repro.hls.spec import StorageWeights

STRESS = (
    Path(__file__).parent.parent / "examples" / "assays" / "storage_stress.json"
)

#: deterministic pure-Python synthesis of the stress assay (3 layers).
STRESS_SPEC = SynthesisSpec(
    threshold=1, max_iterations=1, scheduler="greedy", storage_mode="auto"
)


@pytest.fixture(scope="module")
def stress_assay():
    return load_assay(STRESS)


@pytest.fixture(scope="module")
def stress_result(stress_assay):
    return synthesize(stress_assay, STRESS_SPEC)


class TestSpecKnobs:
    def test_bad_mode_rejected(self):
        with pytest.raises(SpecificationError):
            SynthesisSpec(storage_mode="bogus")

    def test_bad_capacity_rejected(self):
        with pytest.raises(SpecificationError):
            SynthesisSpec(storage_capacity=0)

    def test_negative_weight_rejected(self):
        with pytest.raises(SpecificationError):
            StorageWeights(channel=-1.0)

    def test_pressure_weight_by_mode(self):
        weights = StorageWeights(hold=1.0, channel=2.0, reservoir=4.0)
        base = SynthesisSpec(storage_weights=weights)
        assert base.storage_pressure_weight() == 0.0
        assert replace(
            base, storage_mode="reservoir"
        ).storage_pressure_weight() == 4.0
        for mode in ("channel", "auto"):
            assert replace(
                base, storage_mode=mode
            ).storage_pressure_weight() == 2.0

    def test_spec_json_round_trip(self):
        spec = SynthesisSpec(
            storage_mode="channel",
            storage_capacity=7,
            storage_weights=StorageWeights(hold=0.5, channel=1.5, reservoir=9.0),
        )
        back = spec_from_json(spec_to_json(spec))
        assert back.storage_mode == "channel"
        assert back.storage_capacity == 7
        assert back.storage_weights == spec.storage_weights


class TestComponents:
    def test_reservoir_pricing(self):
        r = StorageReservoir(uid="s0", capacity=4)
        assert r.build_cost == r.area + r.processing_cost
        assert r.build_cost == pytest.approx(2.5 * 4)

    def test_reservoir_capacity_validated(self):
        with pytest.raises(SpecificationError):
            StorageReservoir(uid="s0", capacity=0)

    def test_reservoirs_needed(self):
        assert reservoirs_needed(0, 4) == 0
        assert reservoirs_needed(4, 4) == 1
        assert reservoirs_needed(5, 4) == 2


class TestPlanner:
    def test_off_mode_has_no_planner(self):
        with pytest.raises(SpecificationError):
            StoragePlanner(SynthesisSpec(storage_mode="off"))

    def test_stress_decisions(self, stress_result):
        """The stress assay exercises all three decision kinds."""
        plan = stress_result.storage_plan
        by_edge = {(d.producer, d.consumer): d for d in plan.decisions}
        # brew's chamber is reused before blend consumes the reagent, so
        # hold is evicted; the 2-boundary channel (cost 2*2) beats the
        # reservoir (cost 2*4 plus build).
        brew = by_edge[("brew", "blend")]
        assert ("brew", "blend") in evicted_edges(
            stress_result.assay, stress_result.layering, stress_result.schedule
        )
        assert brew.mode == CHANNEL
        assert brew.span == 2
        assert brew.cost == pytest.approx(4.0)
        # gate0 -> wash binds to one device: a free hold.
        gate0 = by_edge[("gate0", "wash")]
        assert gate0.mode == HOLD
        assert gate0.cost == 0.0
        # gate1 -> blend binds apart but is never evicted: in auto mode a
        # cross-device hold (weight 1) beats the channel (weight 2).
        gate1 = by_edge[("gate1", "blend")]
        assert gate1.mode == HOLD
        assert gate1.cost == pytest.approx(1.0)
        assert plan.demand == 1
        assert plan.total_cost == pytest.approx(5.0)

    def test_reservoir_mode_is_reservoir_only(self, stress_assay, stress_result):
        spec = replace(STRESS_SPEC, storage_mode="reservoir")
        plan = plan_storage(
            stress_assay, stress_result.layering, stress_result.schedule, spec
        )
        # Same-device holds stay free even in reservoir mode; everything
        # else must buy a reservoir slot.
        modes = {
            (d.producer, d.consumer): d.mode for d in plan.decisions
        }
        assert modes[("gate0", "wash")] == HOLD
        assert modes[("brew", "blend")] == RESERVOIR
        assert modes[("gate1", "blend")] == RESERVOIR
        assert len(plan.reservoirs) == 1
        validate_storage_plan(
            plan, stress_assay, stress_result.layering,
            stress_result.schedule, spec,
        )

    def test_first_fit_splits_on_capacity(self, stress_assay, stress_result):
        spec = replace(STRESS_SPEC, storage_mode="reservoir", storage_capacity=1)
        plan = plan_storage(
            stress_assay, stress_result.layering, stress_result.schedule, spec
        )
        # brew->blend (boundaries 0-1) and gate1->blend (boundary 1) both
        # need boundary 1; capacity 1 forces two reservoirs.
        assert len(plan.reservoirs) == 2
        assert {d.location for d in plan.decisions if d.mode == RESERVOIR} == {
            "s0", "s1"
        }
        validate_storage_plan(
            plan, stress_assay, stress_result.layering,
            stress_result.schedule, spec,
        )

    def test_plan_validates(self, stress_assay, stress_result):
        validate_storage_plan(
            stress_result.storage_plan, stress_assay,
            stress_result.layering, stress_result.schedule, STRESS_SPEC,
        )


class TestValidator:
    def _corrupt(self, plan, **changes):
        decisions = list(plan.decisions)
        d = decisions[0]
        fields = {
            "producer": d.producer, "consumer": d.consumer,
            "first_boundary": d.first_boundary,
            "last_boundary": d.last_boundary,
            "mode": d.mode, "location": d.location, "cost": d.cost,
        }
        fields.update(changes)
        decisions[0] = StorageDecision(**fields)
        return StoragePlan(
            mode=plan.mode, decisions=decisions, reservoirs=plan.reservoirs
        )

    def test_missing_decision_caught(self, stress_assay, stress_result):
        plan = stress_result.storage_plan
        truncated = StoragePlan(
            mode=plan.mode, decisions=plan.decisions[1:],
            reservoirs=plan.reservoirs,
        )
        with pytest.raises(ValidationError, match="no storage decision"):
            validate_storage_plan(
                truncated, stress_assay, stress_result.layering,
                stress_result.schedule, STRESS_SPEC,
            )

    def test_unknown_mode_caught(self, stress_assay, stress_result):
        bad = self._corrupt(stress_result.storage_plan, mode="teleport")
        with pytest.raises(ValidationError, match="unknown storage mode"):
            validate_storage_plan(
                bad, stress_assay, stress_result.layering,
                stress_result.schedule, STRESS_SPEC,
            )

    def test_channel_double_booking_caught(self, stress_assay, stress_result):
        plan = stress_result.storage_plan
        channel = next(d for d in plan.decisions if d.mode == CHANNEL)
        # Rebind another decision onto the already-occupied channel.
        decisions = [
            d if d.mode == CHANNEL or d.producer != "gate1" else StorageDecision(
                producer=d.producer, consumer=d.consumer,
                first_boundary=d.first_boundary,
                last_boundary=d.last_boundary,
                mode=CHANNEL, location=channel.location, cost=d.cost,
            )
            for d in plan.decisions
        ]
        bad = StoragePlan(mode=plan.mode, decisions=decisions,
                          reservoirs=plan.reservoirs)
        with pytest.raises(ValidationError):
            validate_storage_plan(
                bad, stress_assay, stress_result.layering,
                stress_result.schedule, STRESS_SPEC,
            )

    def test_unknown_reservoir_caught(self, stress_assay, stress_result):
        bad = self._corrupt(
            stress_result.storage_plan, mode=RESERVOIR, location="s99"
        )
        with pytest.raises(ValidationError, match="unknown reservoir"):
            validate_storage_plan(
                bad, stress_assay, stress_result.layering,
                stress_result.schedule, STRESS_SPEC,
            )

    def test_result_validate_checks_plan(self, stress_result):
        # SynthesisResult.validate() replays the storage plan too.
        stress_result.validate()


class TestPlanModel:
    def test_channel_location_is_symmetric(self):
        assert channel_location("d1", "d0") == channel_location("d0", "d1")
        assert channel_location("d0", "d1") == "d0<->d1"

    def test_to_json_deterministic(self, stress_result):
        a = stress_result.storage_plan.to_json()
        b = stress_result.storage_plan.to_json()
        assert a == b
        assert a["demand"] == 1
        assert [tuple(x) for x in a["demand_by_boundary"]] == [(0, 1), (1, 1)]

    def test_result_json_carries_storage(self, stress_result):
        report = result_to_json(stress_result, deterministic=True)
        assert report["storage"]["mode"] == "auto"
        assert report["storage"]["total_cost"] == pytest.approx(5.0)


class TestFingerprints:
    def test_run_fingerprint_misses_across_modes(self, stress_assay):
        """Service resubmission with a different storage_mode must miss."""
        off = SynthesisSpec()
        seen = {fingerprint_run(stress_assay, off)}
        for mode in ("reservoir", "channel", "auto"):
            seen.add(fingerprint_run(stress_assay, replace(off, storage_mode=mode)))
        assert len(seen) == 4
        # Capacity and weights are solve-relevant too.
        auto = replace(off, storage_mode="auto")
        assert fingerprint_run(
            stress_assay, replace(auto, storage_capacity=9)
        ) != fingerprint_run(stress_assay, auto)
        assert fingerprint_run(
            stress_assay,
            replace(auto, storage_weights=StorageWeights(channel=3.0)),
        ) != fingerprint_run(stress_assay, auto)


class TestCli:
    @pytest.fixture()
    def stress_file(self, tmp_path, stress_assay):
        path = tmp_path / "stress.json"
        save_assay(stress_assay, path)
        return path

    def test_synthesize_with_storage_flag(self, stress_file, capsys):
        code = main([
            "synthesize", str(stress_file), "--threshold", "1",
            "--scheduler", "greedy", "--max-iterations", "1", "--storage",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "storage" in out
        assert "mode=auto" in out

    def test_stats_storage_table(self, stress_file, capsys):
        code = main([
            "stats", str(stress_file), "--threshold", "1",
            "--scheduler", "greedy", "--max-iterations", "1",
            "--storage", "auto",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "storage demand by boundary:" in out
        assert "boundary" in out and "buffered" in out
        assert "mode=auto" in out

    def test_stats_without_flag_has_no_table(self, stress_file, capsys):
        code = main([
            "stats", str(stress_file), "--threshold", "1",
            "--scheduler", "greedy", "--max-iterations", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "storage demand by boundary:" not in out
