"""Tests for repro.hls.schedule (placements, layer/hybrid schedules)."""

import pytest

from repro.errors import SchedulingError
from repro.hls.schedule import HybridSchedule, LayerSchedule, OpPlacement


def layer_with(*placements: OpPlacement, index: int = 0) -> LayerSchedule:
    layer = LayerSchedule(index=index)
    for p in placements:
        layer.place(p)
    return layer


class TestOpPlacement:
    def test_end(self):
        p = OpPlacement("o", "d", start=3, duration=4)
        assert p.end == 7

    def test_negative_start_rejected(self):
        with pytest.raises(SchedulingError):
            OpPlacement("o", "d", start=-1, duration=2)

    def test_zero_duration_rejected(self):
        with pytest.raises(SchedulingError):
            OpPlacement("o", "d", start=0, duration=0)


class TestLayerSchedule:
    def test_makespan(self):
        layer = layer_with(
            OpPlacement("a", "d0", 0, 5),
            OpPlacement("b", "d1", 3, 4),
        )
        assert layer.makespan == 7

    def test_duplicate_place_rejected(self):
        layer = layer_with(OpPlacement("a", "d0", 0, 1))
        with pytest.raises(SchedulingError):
            layer.place(OpPlacement("a", "d1", 1, 1))

    def test_indeterminate_listing(self):
        layer = layer_with(
            OpPlacement("a", "d0", 0, 5),
            OpPlacement("i", "d1", 2, 3, indeterminate=True),
        )
        assert layer.indeterminate_uids == ["i"]
        assert layer.has_indeterminate

    def test_on_device_sorted(self):
        layer = layer_with(
            OpPlacement("late", "d0", 9, 1),
            OpPlacement("early", "d0", 1, 1),
            OpPlacement("other", "d1", 0, 1),
        )
        assert [p.uid for p in layer.on_device("d0")] == ["early", "late"]

    def test_missing_lookup(self):
        with pytest.raises(SchedulingError):
            layer_with()["ghost"]

    def test_empty_layer_makespan(self):
        assert layer_with().makespan == 0


class TestHybridSchedule:
    def build(self) -> HybridSchedule:
        l0 = layer_with(
            OpPlacement("a", "d0", 0, 10),
            OpPlacement("i", "d1", 5, 5, indeterminate=True),
            index=0,
        )
        l1 = layer_with(OpPlacement("b", "d0", 0, 7), index=1)
        return HybridSchedule(layers=[l0, l1])

    def test_fixed_makespan_sums_layers(self):
        assert self.build().fixed_makespan == 17

    def test_makespan_expression(self):
        assert self.build().makespan_expression() == "17m+I_1"

    def test_expression_no_indeterminate(self):
        sched = HybridSchedule(
            layers=[layer_with(OpPlacement("a", "d0", 0, 4))]
        )
        assert sched.makespan_expression() == "4m"

    def test_find(self):
        index, placement = self.build().find("b")
        assert index == 1 and placement.device_uid == "d0"

    def test_find_missing(self):
        with pytest.raises(SchedulingError):
            self.build().find("zz")

    def test_binding_across_layers(self):
        binding = self.build().binding
        assert binding == {"a": "d0", "i": "d1", "b": "d0"}

    def test_used_devices(self):
        assert self.build().used_devices() == {"d0", "d1"}

    def test_transportation_paths(self):
        paths = self.build().transportation_paths([("a", "i"), ("i", "b")])
        assert paths == {("d0", "d1")}

    def test_paths_same_device_excluded(self):
        paths = self.build().transportation_paths([("a", "b")])
        assert paths == set()

    def test_global_start(self):
        offset, terms = self.build().global_start("b")
        assert offset == 10  # layer 0 makespan
        assert terms == 1  # one indeterminate tail before layer 1

    def test_multiple_terms_expression(self):
        l0 = layer_with(OpPlacement("i0", "d0", 0, 3, indeterminate=True))
        l1 = layer_with(
            OpPlacement("i1", "d0", 0, 4, indeterminate=True), index=1
        )
        l2 = layer_with(OpPlacement("z", "d0", 0, 2), index=2)
        sched = HybridSchedule(layers=[l0, l1, l2])
        assert sched.makespan_expression() == "9m+I_1+I_2"
