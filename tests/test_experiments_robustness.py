"""Tests for the Monte-Carlo robustness harness."""

import pytest

from repro.experiments.robustness import (
    hybrid_advantage,
    simulate_makespans,
    static_worst_case,
)
from repro.hls import synthesize
from repro.runtime import RetryModel


class TestSimulateMakespans:
    def test_deterministic_for_seed(self, indeterminate_assay, fast_spec):
        result = synthesize(indeterminate_assay, fast_spec)
        d1 = simulate_makespans(result, runs=20, seed=5)
        d2 = simulate_makespans(result, runs=20, seed=5)
        assert d1 == d2

    def test_bounds_ordering(self, indeterminate_assay, fast_spec):
        result = synthesize(indeterminate_assay, fast_spec)
        dist = simulate_makespans(result, runs=50, seed=1)
        assert result.fixed_makespan <= dist.best <= dist.median
        assert dist.median <= dist.p95 <= dist.worst
        assert dist.mean_extra >= 0

    def test_perfect_capture_degenerate(self, indeterminate_assay, fast_spec):
        result = synthesize(indeterminate_assay, fast_spec)
        dist = simulate_makespans(
            result, RetryModel(success_probability=1.0), runs=10
        )
        assert dist.best == dist.worst == result.fixed_makespan
        assert dist.retry_rate == 0.0

    def test_retry_rate_increases_with_difficulty(
        self, indeterminate_assay, fast_spec
    ):
        result = synthesize(indeterminate_assay, fast_spec)
        easy = simulate_makespans(
            result, RetryModel(success_probability=0.95), runs=60, seed=2
        )
        hard = simulate_makespans(
            result, RetryModel(success_probability=0.2), runs=60, seed=2
        )
        assert hard.retry_rate >= easy.retry_rate
        assert hard.mean >= easy.mean


class TestFailureHandling:
    def test_failed_runs_excluded_from_distribution(
        self, indeterminate_assay, fast_spec
    ):
        """Aborted runs truncate at the failing layer; their short makespans
        must not drag the distribution down (the old bias)."""
        result = synthesize(indeterminate_assay, fast_spec)
        harsh = RetryModel(
            success_probability=0.05, max_attempts=2, on_exhausted="fail"
        )
        dist = simulate_makespans(result, harsh, runs=60, seed=7)
        assert dist.failure_rate > 0
        # Every surviving makespan covers the full fixed schedule.
        assert dist.best >= result.fixed_makespan

    def test_failure_rate_zero_under_succeed_policy(
        self, indeterminate_assay, fast_spec
    ):
        result = synthesize(indeterminate_assay, fast_spec)
        dist = simulate_makespans(result, runs=20, seed=0)
        assert dist.failure_rate == 0.0

    def test_all_failed_degenerates_cleanly(
        self, indeterminate_assay, fast_spec
    ):
        from repro.cyberphysical import FaultPlan

        result = synthesize(indeterminate_assay, fast_spec)
        plan = FaultPlan.parse("exhaust:capture0,exhaust:capture1")
        dist = simulate_makespans(
            result,
            RetryModel(max_attempts=2),
            runs=5,
            seed=0,
            policies=(),
            fault_plan=plan,
        )
        assert dist.failure_rate == 1.0
        assert dist.mean == 0.0 and dist.best == 0

    def test_recovery_policies_flip_failures_to_successes(
        self, indeterminate_assay, fast_spec
    ):
        from repro.cyberphysical import FaultPlan

        result = synthesize(indeterminate_assay, fast_spec)
        plan = FaultPlan.parse("exhaust:capture0")
        model = RetryModel(max_attempts=3)
        aborting = simulate_makespans(
            result, model, runs=10, seed=0, policies=(), fault_plan=plan
        )
        recovering = simulate_makespans(
            result, model, runs=10, seed=0, policies=("resynth",),
            fault_plan=plan,
        )
        assert aborting.failure_rate == 1.0
        assert recovering.failure_rate == 0.0
        assert recovering.best >= result.fixed_makespan


class TestStaticComparison:
    def test_static_worst_case_dominates_simulation(
        self, indeterminate_assay, fast_spec
    ):
        result = synthesize(indeterminate_assay, fast_spec)
        retry = RetryModel(success_probability=0.5, max_attempts=6)
        static = static_worst_case(result, retry)
        dist = simulate_makespans(result, retry, runs=100, seed=3)
        assert static >= dist.worst

    def test_no_indeterminate_no_advantage(self, linear_assay, fast_spec):
        result = synthesize(linear_assay, fast_spec)
        assert static_worst_case(result) == result.fixed_makespan
        assert hybrid_advantage(result, runs=5) == pytest.approx(0.0)

    def test_advantage_positive_with_indeterminate(
        self, indeterminate_assay, fast_spec
    ):
        result = synthesize(indeterminate_assay, fast_spec)
        advantage = hybrid_advantage(
            result, RetryModel(success_probability=0.53, max_attempts=10),
            runs=100, seed=4,
        )
        assert 0 < advantage < 1
