"""Best-pass selection: ties on makespan break on the weighted objective."""

from repro.components import Capacity, ContainerKind
from repro.devices import GeneralDevice
from repro.hls import SynthesisSpec
from repro.hls.decode import LayerSolveResult
from repro.hls.schedule import LayerSchedule, OpPlacement
from repro.hls.synthesizer import _Pass, _beats, _pass_objective
from repro.operations import AssayBuilder


def two_op_assay():
    b = AssayBuilder("tie")
    a = b.op("a", 4, container="chamber")
    b.op("b", 4, container="chamber", after=[a])
    return b.build()


def make_pass(binding: dict[str, str], devices: list[GeneralDevice]) -> _Pass:
    state = _Pass()
    state.devices = {d.uid: d for d in devices}
    state.binding = dict(binding)
    schedule = LayerSchedule(index=0)
    start = 0
    for uid, dev in binding.items():
        schedule.place(OpPlacement(uid, dev, start=start, duration=4))
        start += 4
    state.results = {
        0: LayerSolveResult(schedule=schedule, binding=dict(binding))
    }
    return state


def chamber(uid):
    return GeneralDevice(uid, ContainerKind.CHAMBER, Capacity.SMALL)


class TestBeats:
    def setup_method(self):
        self.assay = two_op_assay()
        self.spec = SynthesisSpec(max_devices=4)
        # One shared device: same makespan, fewer devices, zero paths.
        self.lean = make_pass({"a": "d0", "b": "d0"}, [chamber("d0")])
        # Two devices: same makespan, extra device + one path.
        self.fat = make_pass(
            {"a": "d0", "b": "d1"}, [chamber("d0"), chamber("d1")]
        )

    def test_tie_broken_on_weighted_objective(self):
        assert self.lean.fixed_makespan == self.fat.fixed_makespan
        assert _pass_objective(self.lean, self.assay, self.spec) < (
            _pass_objective(self.fat, self.assay, self.spec)
        )
        assert _beats(self.lean, self.fat, self.assay, self.spec)
        assert not _beats(self.fat, self.lean, self.assay, self.spec)

    def test_equal_pass_does_not_replace_best(self):
        """Regression: an equal-makespan, equal-cost later pass used to
        silently replace the best pass (<= comparison)."""
        twin = make_pass({"a": "d0", "b": "d0"}, [chamber("d0")])
        assert not _beats(twin, self.lean, self.assay, self.spec)

    def test_lower_makespan_always_wins(self):
        faster = make_pass({"a": "d0", "b": "d1"},
                           [chamber("d0"), chamber("d1")])
        # Overlap the two ops so the makespan is lower despite more devices.
        schedule = LayerSchedule(index=0)
        schedule.place(OpPlacement("a", "d0", start=0, duration=4))
        schedule.place(OpPlacement("b", "d1", start=1, duration=4))
        faster.results[0] = LayerSolveResult(
            schedule=schedule, binding=dict(faster.binding)
        )
        assert faster.fixed_makespan < self.lean.fixed_makespan
        assert _beats(faster, self.lean, self.assay, self.spec)
