"""Tests for fleet mode: leased store sharing, cross-replica
coalescing, holder takeover/fencing, and the multi-replica chaos
campaign (repro.service.server fleet config + repro.service.chaos)."""

import asyncio
import json

import pytest

from repro.errors import ServiceError
from repro.hls import SynthesisSpec, fingerprint_run
from repro.io.json_io import (
    assay_from_json,
    assay_to_json,
    spec_from_json,
    spec_to_json,
)
from repro.service import (
    FleetChaosConfig,
    ServiceClient,
    format_fleet_chaos,
    run_fleet_chaos,
)
from repro.service.chaos import _ServerHarness, _poll
from repro.service.client import RetryPolicy
from repro.service.lease import FleetCoordinator
from repro.service.server import ServerConfig, SynthesisServer


def body_for(assay, **spec_kwargs) -> dict:
    spec = SynthesisSpec(
        max_devices=6, threshold=2, time_limit=10.0, max_iterations=0,
        **spec_kwargs,
    )
    return {"assay": assay_to_json(assay), "spec": spec_to_json(spec)}


def result_bytes(payload: dict) -> str:
    return json.dumps(payload["result"], sort_keys=True)


def fleet_config(store_dir, replica_id: str) -> ServerConfig:
    return ServerConfig(
        port=0, workers=1, store_dir=str(store_dir), fleet=True,
        replica_id=replica_id, lease_ttl=1.0, heartbeat_interval=0.1,
        claim_ttl=1.5, peer_poll_interval=0.05, job_timeout=120.0,
    )


@pytest.fixture
def fleet_pair(tmp_path):
    """Two replicas over one shared store; r1 starts first and holds
    the lease, r2 joins as a follower."""
    store = tmp_path / "store"
    pairs = []
    try:
        for replica_id in ("r1", "r2"):
            harness = _ServerHarness(fleet_config(store, replica_id))
            harness.start()
            client = ServiceClient(
                port=harness.port, timeout=30.0,
                retry=RetryPolicy(seed=0),
            )
            pairs.append((harness, client))
            if replica_id == "r1":
                assert _poll(lambda: harness.server.fleet.lease.held, 10.0)
        yield pairs
    finally:
        for harness, client in pairs:
            if harness._thread.is_alive():
                harness.graceful_stop(client)


class TestFleetRoles:
    def test_holder_and_follower(self, fleet_pair):
        (harness_1, client_1), (harness_2, client_2) = fleet_pair
        assert harness_1.server.fleet.lease.held
        assert not harness_2.server.fleet.lease.held
        assert not harness_2.server.fleet.lease.fenced
        # Each replica reports its own identity on /metrics.
        assert client_1.metrics()["replica"]["replica_id"] == "r1"
        assert client_2.metrics()["replica"]["replica_id"] == "r2"

    def test_lease_gauges_exported(self, fleet_pair):
        (_, client_1), (_, client_2) = fleet_pair
        gauges_1 = client_1.metrics()["gauges"]
        gauges_2 = client_2.metrics()["gauges"]
        assert gauges_1["lease_state"] == "held"
        assert gauges_2["lease_state"] == "follower"
        assert gauges_1["lease_epoch"] >= 1


class TestCrossReplicaCoalescing:
    def test_shared_fingerprint_computes_exactly_once(
        self, fleet_pair, linear_assay
    ):
        (_, client_1), (_, client_2) = fleet_pair
        body = body_for(linear_assay)

        def solves() -> int:
            return sum(
                int(c.metrics()["counters"].get("solve_jobs", 0))
                for c in (client_1, client_2)
            )

        before = solves()
        handle_a = client_1.submit(body["assay"], body["spec"])
        handle_b = client_2.submit(body["assay"], body["spec"])
        done_a = client_1.wait(handle_a.id, deadline=120.0)
        done_b = client_2.wait(handle_b.id, deadline=120.0)
        assert done_a.status == "done"
        assert done_b.status == "done"
        assert handle_a.fingerprint == handle_b.fingerprint
        # Exactly-once fleet-wide, regardless of which replica ran it.
        assert solves() - before == 1
        # The duplicate was answered from the peer's solve or the
        # shared store entry, never recomputed.
        assert done_b.source in ("peer", "store")
        assert result_bytes(client_1.result(done_a.id)) == result_bytes(
            client_2.result(done_b.id)
        )


class TestQueueFullReleasesClaim:
    def test_429_gives_back_the_inflight_claim(
        self, tmp_path, linear_assay
    ):
        """A submission that wins the shared in-flight claim but then
        bounces off queue backpressure must release the claim — a
        leaked claim would be heartbeated forever and peers would await
        a solve nobody is running."""
        store = tmp_path / "store"
        config = fleet_config(store, "r1")
        config.queue_capacity = 1
        server = SynthesisServer(config)
        server._work_available = asyncio.Event()
        try:
            assert server.fleet.start()
            first = body_for(linear_assay)
            second = body_for(linear_assay, improvement_threshold=0.019)
            status, _ = server._submit(first)  # fills the queue
            assert status == 202
            with pytest.raises(ServiceError) as err:
                server._submit(second)
            assert err.value.status == 429

            fp2 = fingerprint_run(
                assay_from_json(second["assay"]),
                spec_from_json(second["spec"]),
                "hls",
            )
            assert fp2 not in server._claims
            assert server.fleet.inflight.peek(fp2) is None
            # A peer replica is not wedged: it can claim and compute
            # the bounced fingerprint itself.
            peer = FleetCoordinator(
                store, "r2", lease_ttl=1.0, claim_ttl=1.5
            )
            granted, entry = peer.claim(fp2)
            assert granted and entry["replica"] == "r2"
        finally:
            server.journal.close()
            server.fleet.stop()


class TestTakeoverAndFencing:
    def test_holder_crash_promotes_follower(self, fleet_pair, linear_assay):
        (harness_1, client_1), (harness_2, client_2) = fleet_pair
        body = body_for(linear_assay)
        handle = client_1.submit(body["assay"], body["spec"])
        assert client_1.wait(handle.id, deadline=120.0).status == "done"
        baseline = result_bytes(client_1.result(handle.id))

        harness_1.hard_stop(crash=True)
        assert _poll(lambda: harness_2.server.fleet.lease.held, 20.0)
        assert harness_2.server.fleet.lease.takeovers >= 1

        # The survivor serves the dead holder's persisted result.
        again = client_2.submit(body["assay"], body["spec"])
        done = client_2.wait(again.id, deadline=120.0)
        assert done.status == "done"
        assert result_bytes(client_2.result(done.id)) == baseline

    def test_partitioned_holder_fences_but_keeps_serving(
        self, fleet_pair, linear_assay
    ):
        (harness_1, client_1), (harness_2, client_2) = fleet_pair
        lease_1 = harness_1.server.fleet.lease

        lease_1.suspend()
        assert _poll(lambda: harness_2.server.fleet.lease.held, 20.0)
        lease_1.resume()
        assert _poll(lambda: lease_1.fenced, 20.0)

        # A fenced replica degrades to read-only shared state: it still
        # answers its own submissions but rejects every store write.
        body = body_for(linear_assay, improvement_threshold=0.019)
        handle = client_1.submit(body["assay"], body["spec"])
        done = client_1.wait(handle.id, deadline=120.0)
        assert done.status == "done"
        assert client_1.result(handle.id)["result"]["makespan"]
        assert client_1.metrics()["store"]["rejected_writes"] >= 1
        assert client_1.metrics()["gauges"]["lease_state"] == "fenced"


class TestFleetChaosSmoke:
    def test_campaign_is_ok(self, linear_assay, tmp_path):
        """The full multi-replica campaign — coalescing, holder kill +
        takeover, journal replay over crash artifacts, partition +
        fencing, background compaction — over one tiny fixture assay."""
        config = FleetChaosConfig(
            seed=0,
            requests=[body_for(linear_assay)],
            workdir=str(tmp_path),
            workers=1,
            deadline=120.0,
            lease_ttl=1.0,
            heartbeat_interval=0.1,
            claim_ttl=1.5,
            peer_poll_interval=0.05,
        )
        report = run_fleet_chaos(config)
        assert report.ok, format_fleet_chaos(report)
        assert report.submitted == 4  # base + coalesce + wave2 + partition
        assert report.coalesce_solves == 1
        assert report.takeovers >= 2  # crash takeover + partition takeover
        assert report.fenced_writes >= 1
        assert report.replayed == report.replayed_expected
        assert report.compaction_runs >= 1
        assert report.journal_bytes <= report.journal_bytes_bound
        assert report.corruptions == 0 and report.quarantined == 0
        round_trip = json.loads(json.dumps(report.to_json()))
        assert round_trip["ok"] is True
