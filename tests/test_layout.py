"""Tests for repro.layout (grid, placer, layout-driven transport)."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SpecificationError
from repro.hls import SynthesisSpec, synthesize
from repro.layout import (
    GridLayout,
    GridPlacer,
    LayoutTransportEstimator,
    Position,
    layout_refined_transport,
)
from repro.operations import AssayBuilder


class TestGridLayout:
    def test_place_and_query(self):
        g = GridLayout(3, 3)
        g.place("a", Position(0, 0))
        g.place("b", Position(2, 1))
        assert g.distance("a", "b") == 3
        assert g.occupant(Position(0, 0)) == "a"
        assert g.occupant(Position(1, 1)) is None

    def test_double_occupancy_rejected(self):
        g = GridLayout(2, 2)
        g.place("a", Position(0, 0))
        with pytest.raises(SpecificationError):
            g.place("b", Position(0, 0))

    def test_double_placement_rejected(self):
        g = GridLayout(2, 2)
        g.place("a", Position(0, 0))
        with pytest.raises(SpecificationError):
            g.place("a", Position(1, 1))

    def test_out_of_bounds(self):
        g = GridLayout(2, 2)
        with pytest.raises(SpecificationError):
            g.place("a", Position(5, 0))

    def test_move(self):
        g = GridLayout(2, 2)
        g.place("a", Position(0, 0))
        g.move("a", Position(1, 1))
        assert g.position_of("a") == Position(1, 1)
        assert g.occupant(Position(0, 0)) is None

    def test_swap(self):
        g = GridLayout(2, 2)
        g.place("a", Position(0, 0))
        g.place("b", Position(1, 1))
        g.swap("a", "b")
        assert g.position_of("a") == Position(1, 1)
        assert g.position_of("b") == Position(0, 0)

    def test_free_cells(self):
        g = GridLayout(2, 1)
        g.place("a", Position(0, 0))
        assert list(g.free_cells()) == [Position(1, 0)]

    def test_copy_independent(self):
        g = GridLayout(2, 2)
        g.place("a", Position(0, 0))
        clone = g.copy()
        clone.move("a", Position(1, 0))
        assert g.position_of("a") == Position(0, 0)

    def test_render_contains_devices(self):
        g = GridLayout(2, 2)
        g.place("dev7", Position(1, 0))
        assert "dev7" in g.render()

    def test_invalid_dimensions(self):
        with pytest.raises(SpecificationError):
            GridLayout(0, 3)


class TestGridPlacer:
    def test_deterministic(self):
        usage = {("a", "b"): 3, ("b", "c"): 1}
        r1 = GridPlacer(seed=5).place(["a", "b", "c"], usage)
        r2 = GridPlacer(seed=5).place(["a", "b", "c"], usage)
        assert r1.cost == r2.cost
        assert {d: r1.layout.position_of(d) for d in "abc"} == {
            d: r2.layout.position_of(d) for d in "abc"
        }

    def test_heavily_used_path_shortest(self):
        # a-b used 10x, a-c used once: annealing should put a next to b.
        usage = {("a", "b"): 10, ("a", "c"): 1}
        result = GridPlacer(iterations=3000, seed=1).place(
            ["a", "b", "c", "d", "e"], usage
        )
        assert result.distances[("a", "b")] <= result.distances[("a", "c")]

    def test_two_devices_adjacent(self):
        result = GridPlacer(seed=0).place(["a", "b"], {("a", "b"): 1})
        assert result.distances[("a", "b")] == 1

    def test_improvement_non_negative(self):
        usage = {("a", "b"): 4, ("c", "d"): 2, ("a", "d"): 1}
        result = GridPlacer(seed=2).place(list("abcd"), usage)
        assert result.cost <= result.initial_cost
        assert 0 <= result.improvement <= 1

    def test_grid_too_small(self):
        with pytest.raises(SpecificationError):
            GridPlacer().place(list("abcd"), {}, grid=(1, 2))

    def test_unplaced_device_in_usage(self):
        with pytest.raises(SpecificationError):
            GridPlacer().place(["a"], {("a", "zz"): 1})

    def test_empty_devices(self):
        with pytest.raises(SpecificationError):
            GridPlacer().place([], {})

    def test_invalid_parameters(self):
        with pytest.raises(SpecificationError):
            GridPlacer(iterations=-1)
        with pytest.raises(SpecificationError):
            GridPlacer(cooling=1.5)

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(2, 10), seed=st.integers(0, 100))
    def test_placement_always_legal(self, n, seed):
        devices = [f"d{i}" for i in range(n)]
        usage = {
            (devices[i], devices[i + 1]): i + 1 for i in range(n - 1)
        }
        result = GridPlacer(iterations=500, seed=seed).place(devices, usage)
        positions = [result.layout.position_of(d) for d in devices]
        assert len(set(positions)) == n  # one cell each
        for pos in positions:
            assert result.layout.in_bounds(pos)


class TestLayoutTransport:
    def assay(self):
        b = AssayBuilder("lt")
        a = b.op("a", 4, container="ring", accessories=["pump"])
        c = b.op("c", 4, accessories=["heating_pad"], after=[a])
        b.op("d", 4, accessories=["optical_system"], after=[c])
        return b.build()

    def test_one_shot_helper(self):
        assay = self.assay()
        spec = SynthesisSpec(max_devices=4, time_limit=5)
        binding = {"a": "d0", "c": "d1", "d": "d2"}
        est = layout_refined_transport(assay, spec, binding)
        assert est.refined
        assert est.last_placement is not None
        assert est.edge_time("a", "c") >= 1

    def test_single_device_all_zero(self):
        assay = self.assay()
        spec = SynthesisSpec(max_devices=4, time_limit=5)
        est = layout_refined_transport(
            assay, spec, {uid: "solo" for uid in assay.uids}
        )
        assert all(t == 0 for t in est.snapshot().values())

    def test_times_capped_by_progression_max(self):
        assay = self.assay()
        spec = SynthesisSpec(max_devices=4, time_limit=5)
        est = layout_refined_transport(
            assay, spec, {"a": "d0", "c": "d1", "d": "d2"},
            units_per_cell=0.01,  # absurdly slow transport
        )
        cap = spec.transport_progression.maximum
        for t in est.snapshot().values():
            assert t <= cap

    def test_synthesize_with_layout_estimator(self):
        assay = self.assay()
        spec = SynthesisSpec(
            max_devices=4, time_limit=5, max_iterations=1
        )
        estimator = LayoutTransportEstimator(assay, spec)
        result = synthesize(assay, spec, transport=estimator)
        result.validate()
        assert estimator.refined

    def test_invalid_units(self):
        assay = self.assay()
        spec = SynthesisSpec(max_devices=4)
        with pytest.raises(SpecificationError):
            LayoutTransportEstimator(assay, spec, units_per_cell=0)
