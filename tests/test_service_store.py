"""Tests for the persistent result store (repro.service.store)."""

import dataclasses
import json

import pytest

from repro.assays import benchmark_assay
from repro.hls import LayerSolveCache, SynthesisSpec, fingerprint_run, synthesize
from repro.hls.context import SynthesisContext
from repro.hls.pipeline import SynthesisPipeline
from repro.io import json_result_equal
from repro.io.json_io import result_to_json
from repro.service import STORE_SCHEMA, ResultStore, payload_checksum


def payload(n: int) -> dict:
    return {"result": {"value": n}}


class TestInMemory:
    def test_miss_then_hit(self):
        store = ResultStore()
        assert store.get("fp0") is None
        store.put("fp0", payload(0))
        assert store.get("fp0") == payload(0)
        assert store.counters() == {
            "entries": 1, "capacity": 256, "hits": 1, "misses": 1,
            "puts": 1, "evictions": 0, "corruptions": 0, "quarantined": 0,
            "verifications": 0, "rejected_writes": 0, "adoptions": 0,
        }

    def test_lru_eviction_prefers_recently_used(self):
        store = ResultStore(capacity=2)
        store.put("a", payload(1))
        store.put("b", payload(2))
        assert store.get("a") is not None  # a is now most recent
        store.put("c", payload(3))  # evicts b
        assert store.get("b") is None
        assert store.get("a") is not None
        assert store.get("c") is not None
        assert store.counters()["evictions"] == 1

    def test_overwrite_does_not_grow(self):
        store = ResultStore(capacity=4)
        store.put("a", payload(1))
        store.put("a", payload(2))
        assert len(store) == 1
        assert store.get("a") == payload(2)


class TestOnDisk:
    def test_round_trip_and_reload(self, tmp_path):
        root = tmp_path / "store"
        store = ResultStore(str(root))
        store.put("fp1", payload(1))
        store.put("fp2", payload(2))

        # A brand-new instance over the same directory sees both entries.
        reloaded = ResultStore(str(root))
        assert reloaded.get("fp1") == payload(1)
        assert reloaded.get("fp2") == payload(2)

    def test_eviction_removes_files(self, tmp_path):
        root = tmp_path / "store"
        store = ResultStore(str(root), capacity=1)
        store.put("fp1", payload(1))
        store.put("fp2", payload(2))
        assert store.get("fp1") is None
        assert store.get("fp2") == payload(2)
        files = {p.name for p in root.glob("*.json")} - {"index.json"}
        assert files == {"fp2.json"}

    def test_schema_mismatch_is_a_miss(self, tmp_path):
        root = tmp_path / "store"
        store = ResultStore(str(root))
        store.put("fp1", payload(1))
        envelope = json.loads((root / "fp1.json").read_text())
        assert envelope["schema"] == STORE_SCHEMA
        envelope["schema"] = STORE_SCHEMA + 1
        (root / "fp1.json").write_text(json.dumps(envelope))
        assert ResultStore(str(root)).get("fp1") is None

    def test_corrupt_file_is_a_miss(self, tmp_path):
        root = tmp_path / "store"
        store = ResultStore(str(root))
        store.put("fp1", payload(1))
        (root / "fp1.json").write_text("{not json")
        assert ResultStore(str(root)).get("fp1") is None

    def test_unindexed_files_are_adopted(self, tmp_path):
        root = tmp_path / "store"
        store = ResultStore(str(root))
        store.put("fp1", payload(1))
        (root / "index.json").unlink()
        reloaded = ResultStore(str(root))
        assert reloaded.get("fp1") == payload(1)

    def test_probe_checks_presence_without_reading(self, tmp_path):
        root = tmp_path / "store"
        store = ResultStore(str(root))
        store.put("fp1", payload(1))
        # A peer-written entry this instance has never seen: probe finds
        # the file without reading or hashing it.
        (root / "fp2.json").write_text("{}")
        assert store.probe("fp1")
        assert store.probe("fp2")
        assert not store.probe("fp-missing")
        assert store.verifications == 0
        assert store.hits == 0 and store.misses == 0

    def test_fleet_sidecars_never_load_as_entries(self, tmp_path):
        """lease.json / inflight.json share the store directory in fleet
        mode; they must never be adopted as fingerprints (an eviction
        would unlink the fleet's lease record)."""
        root = tmp_path / "store"
        store = ResultStore(str(root))
        store.put("fp1", payload(1))
        (root / "lease.json").write_text("{}")
        (root / "inflight.json").write_text("{}")
        reloaded = ResultStore(str(root), capacity=1)
        assert len(reloaded) == 1
        assert "lease" not in reloaded
        assert reloaded.sweep() == 0
        assert (root / "lease.json").exists()
        assert (root / "inflight.json").exists()


class TestIntegrity:
    """Checksummed envelopes: corruption is detected, quarantined, and
    read as a miss — never a crash."""

    def test_entries_carry_payload_checksum(self, tmp_path):
        root = tmp_path / "store"
        ResultStore(str(root)).put("fp1", payload(1))
        envelope = json.loads((root / "fp1.json").read_text())
        assert envelope["checksum"] == payload_checksum(payload(1))

    def test_tampered_payload_is_quarantined(self, tmp_path):
        root = tmp_path / "store"
        ResultStore(str(root)).put("fp1", payload(1))
        envelope = json.loads((root / "fp1.json").read_text())
        envelope["payload"] = payload(999)  # checksum now stale
        (root / "fp1.json").write_text(json.dumps(envelope))

        store = ResultStore(str(root))
        assert store.get("fp1") is None
        assert store.corruptions == 1
        assert store.counters()["misses"] == 1
        assert store.quarantined() == ["fp1.json"]
        assert not (root / "fp1.json").exists()
        # The quarantined original is preserved for post-mortem.
        kept = json.loads((root / "quarantine" / "fp1.json").read_text())
        assert kept["payload"] == payload(999)

    def test_zero_byte_entry_reads_as_miss(self, tmp_path):
        """Regression: a torn write used to surface as a crash on read;
        with fsync-before-replace it cannot appear at all, and if forced
        onto disk it must quarantine as a corruption."""
        root = tmp_path / "store"
        ResultStore(str(root)).put("fp1", payload(1))
        (root / "fp1.json").write_text("")

        store = ResultStore(str(root))
        assert store.get("fp1") is None
        assert store.corruptions == 1
        assert store.quarantined() == ["fp1.json"]

    def test_truncated_entry_is_quarantined(self, tmp_path):
        root = tmp_path / "store"
        ResultStore(str(root)).put("fp1", payload(1))
        text = (root / "fp1.json").read_text()
        (root / "fp1.json").write_text(text[: len(text) // 2])

        store = ResultStore(str(root))
        assert store.get("fp1") is None
        assert store.corruptions == 1
        assert store.quarantined() == ["fp1.json"]

    def test_foreign_schema_is_dropped_not_quarantined(self, tmp_path):
        root = tmp_path / "store"
        ResultStore(str(root)).put("fp1", payload(1))
        envelope = json.loads((root / "fp1.json").read_text())
        envelope["schema"] = STORE_SCHEMA + 1
        (root / "fp1.json").write_text(json.dumps(envelope))

        store = ResultStore(str(root))
        assert store.get("fp1") is None
        assert store.corruptions == 0
        assert store.quarantined() == []

    def test_corruption_then_reput_recovers(self, tmp_path):
        root = tmp_path / "store"
        store = ResultStore(str(root))
        store.put("fp1", payload(1))
        (root / "fp1.json").write_text("{not json")
        assert store.get("fp1") is None
        store.put("fp1", payload(2))
        assert store.get("fp1") == payload(2)
        assert store.counters()["quarantined"] == 1


class TestVerifiedFingerprintCache:
    """Satellite: repeat disk hits skip re-hashing the payload — the
    checksum is verified once per process per fingerprint."""

    def test_repeat_hits_verify_once(self, tmp_path):
        root = tmp_path / "store"
        ResultStore(str(root)).put("fp1", payload(1))

        store = ResultStore(str(root))
        assert store.get("fp1") == payload(1)
        assert store.verifications == 1
        for _ in range(3):
            assert store.get("fp1") == payload(1)
        assert store.verifications == 1
        assert store.counters()["verifications"] == 1

    def test_own_puts_are_pre_verified(self, tmp_path):
        """A payload this process just wrote needs no checksum pass."""
        root = tmp_path / "store"
        store = ResultStore(str(root))
        store.put("fp1", payload(1))
        assert store.get("fp1") == payload(1)
        assert store.verifications == 0

    def test_first_read_verification_still_quarantines(self, tmp_path):
        """The cache must not weaken integrity: corruption on the first
        read of a fingerprint is still caught and quarantined."""
        root = tmp_path / "store"
        ResultStore(str(root)).put("fp1", payload(1))
        envelope = json.loads((root / "fp1.json").read_text())
        envelope["payload"] = payload(999)
        (root / "fp1.json").write_text(json.dumps(envelope))

        store = ResultStore(str(root))
        assert store.get("fp1") is None
        assert store.corruptions == 1
        assert store.quarantined() == ["fp1.json"]

    def test_eviction_forgets_verification(self, tmp_path):
        """Evicting an entry drops its verified mark, so a later adopted
        file with the same fingerprint is re-verified from scratch."""
        root = tmp_path / "store"
        store = ResultStore(str(root), capacity=1)
        store.put("fp1", payload(1))
        store.put("fp2", payload(2))  # evicts fp1 (file + verified mark)
        assert "fp1" not in store._verified


class TestResultRoundTrip:
    """The satellite contract: result_to_json(deterministic=True) ->
    store -> reload -> json_result_equal with the direct result."""

    def round_trip(self, result, tmp_path):
        report = result_to_json(result, deterministic=True)
        fingerprint = fingerprint_run(result.assay, result.spec)
        store = ResultStore(str(tmp_path / "store"))
        store.put(fingerprint, {"result": report})
        reloaded = ResultStore(str(tmp_path / "store")).get(fingerprint)
        assert reloaded is not None
        assert json_result_equal(reloaded["result"], report)
        # Byte-level too: the store holds canonical JSON.
        assert json.dumps(reloaded["result"], sort_keys=True) == json.dumps(
            report, sort_keys=True
        )

    @pytest.mark.parametrize("case", [1, 2])
    def test_paper_cases(self, case, tmp_path):
        spec = SynthesisSpec(
            threshold=4, time_limit=10.0, mip_gap=0.25, max_iterations=0
        )
        self.round_trip(synthesize(benchmark_assay(case), spec), tmp_path)

    def test_contingency_resynthesis_result(self, indeterminate_assay,
                                            tmp_path):
        """A contingency re-synthesis (residual assay, external cache,
        zero refinement passes — exactly what ResynthesisPolicy runs)
        stores and reloads equal."""
        spec = SynthesisSpec(
            max_devices=6, threshold=2, time_limit=5.0, max_iterations=0
        )
        residual = indeterminate_assay.subset(
            sorted(op.uid for op in indeterminate_assay)[:4],
            name="ind-contingency",
        )
        cache = LayerSolveCache()
        first = SynthesisPipeline().run(
            SynthesisContext(assay=residual, spec=spec, cache=cache, jobs=1)
        )
        self.round_trip(first, tmp_path)

        # A second contingency over the warm cache replays layer solves;
        # its report must still round-trip and equal the cold result's.
        again = SynthesisPipeline().run(
            SynthesisContext(
                assay=residual,
                spec=dataclasses.replace(spec),
                cache=cache,
                jobs=1,
            )
        )
        assert again.cache_hits > 0
        self.round_trip(again, tmp_path)
        assert json_result_equal(
            result_to_json(first, deterministic=True),
            result_to_json(again, deterministic=True),
        )
