"""Tests for repro.analysis (stats + critical path)."""

import pytest

from repro.analysis import (
    critical_path,
    device_utilization,
    parallelism_profile,
    schedule_stats,
)
from repro.analysis.stats import format_stats
from repro.hls import synthesize
from repro.hls.schedule import HybridSchedule, LayerSchedule, OpPlacement
from repro.operations import AssayBuilder


def two_device_schedule() -> HybridSchedule:
    layer = LayerSchedule(index=0)
    layer.place(OpPlacement("a", "d0", 0, 6))
    layer.place(OpPlacement("b", "d1", 0, 3))
    layer.place(OpPlacement("c", "d1", 3, 3))
    return HybridSchedule(layers=[layer])


class TestDeviceUtilization:
    def test_busy_times(self):
        per = {d.device_uid: d for d in device_utilization(two_device_schedule())}
        assert per["d0"].busy_time == 6
        assert per["d1"].busy_time == 6
        assert per["d1"].num_operations == 2

    def test_utilization_fraction(self):
        per = device_utilization(two_device_schedule())
        for d in per:
            assert d.utilization == pytest.approx(1.0)

    def test_empty_schedule(self):
        assert device_utilization(HybridSchedule()) == []


class TestParallelismProfile:
    def test_profile_counts(self):
        profile = parallelism_profile(two_device_schedule())
        assert len(profile) == 6
        assert profile == [2, 2, 2, 2, 2, 2]

    def test_gap_has_zero(self):
        layer = LayerSchedule(index=0)
        layer.place(OpPlacement("a", "d0", 0, 2))
        layer.place(OpPlacement("b", "d0", 4, 2))
        profile = parallelism_profile(HybridSchedule(layers=[layer]))
        assert profile == [1, 1, 0, 0, 1, 1]

    def test_layers_concatenate(self):
        l0 = LayerSchedule(index=0)
        l0.place(OpPlacement("a", "d0", 0, 2))
        l1 = LayerSchedule(index=1)
        l1.place(OpPlacement("b", "d0", 0, 3))
        profile = parallelism_profile(HybridSchedule(layers=[l0, l1]))
        assert len(profile) == 5


class TestScheduleStats:
    def test_aggregates(self):
        stats = schedule_stats(two_device_schedule())
        assert stats.fixed_makespan == 6
        assert stats.num_operations == 3
        assert stats.num_devices == 2
        assert stats.peak_parallelism == 2
        assert stats.balance_ratio == pytest.approx(1.0)
        assert stats.mean_utilization == pytest.approx(1.0)

    def test_imbalanced_ratio(self):
        layer = LayerSchedule(index=0)
        layer.place(OpPlacement("a", "d0", 0, 9))
        layer.place(OpPlacement("b", "d1", 0, 3))
        stats = schedule_stats(HybridSchedule(layers=[layer]))
        assert stats.balance_ratio == pytest.approx(1.5)

    def test_format_contains_devices(self):
        text = format_stats(schedule_stats(two_device_schedule()))
        assert "d0" in text and "peak parallelism" in text

    def test_on_synthesized_result(self, indeterminate_assay, fast_spec):
        result = synthesize(indeterminate_assay, fast_spec)
        stats = schedule_stats(result.schedule)
        assert stats.num_operations == len(indeterminate_assay)
        assert stats.num_devices == result.num_devices
        assert 0 < stats.mean_utilization <= 1


class TestCriticalPath:
    def chain(self):
        b = AssayBuilder("cp")
        a = b.op("a", 5)
        c = b.op("c", 7, after=[a])
        b.op("d", 2, after=[c])
        b.op("side", 10)
        return b.build()

    def test_longest_chain(self):
        cp = critical_path(self.chain())
        assert cp.uids == ("a", "c", "d")
        assert cp.length == 14

    def test_transport_extends(self):
        cp = critical_path(
            self.chain(),
            edge_transport={("a", "c"): 4, ("c", "d"): 4},
        )
        assert cp.length_with_transport == 22

    def test_transport_can_change_winner(self):
        b = AssayBuilder("w")
        a = b.op("a", 5)
        b.op("c", 5, after=[a])
        b.op("solo", 11)
        cp = critical_path(b.build(), edge_transport={("a", "c"): 10})
        assert cp.uids == ("a", "c")
        assert cp.length_with_transport == 20

    def test_single_op(self):
        b = AssayBuilder("s")
        b.op("only", 9)
        cp = critical_path(b.build())
        assert cp.uids == ("only",)
        assert cp.length == 9

    def test_schedule_dominates_critical_path(self, linear_assay, fast_spec):
        result = synthesize(linear_assay, fast_spec)
        cp = critical_path(linear_assay, result.edge_transport)
        assert result.fixed_makespan >= cp.length_with_transport
