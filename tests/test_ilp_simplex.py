"""Tests for the dense two-phase simplex (repro.ilp.simplex)."""

import numpy as np
import pytest

from repro.ilp.simplex import LPStatus, solve_lp

INF = np.inf


def lp(c, rows, lo, hi, vlo, vhi):
    return solve_lp(
        np.array(c, dtype=float),
        np.array(rows, dtype=float).reshape(len(lo), len(c)),
        np.array(lo, dtype=float),
        np.array(hi, dtype=float),
        np.array(vlo, dtype=float),
        np.array(vhi, dtype=float),
    )


class TestOptimal:
    def test_textbook_max(self):
        # max x+y s.t. x+2y<=4, 3x+y<=6 -> (1.6, 1.2)
        res = lp([-1, -1], [[1, 2], [3, 1]], [-INF, -INF], [4, 6],
                 [0, 0], [INF, INF])
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(-2.8)
        assert res.x == pytest.approx([1.6, 1.2])

    def test_equality_row(self):
        res = lp([1, 1], [[1, 1]], [3], [3], [0, 0], [INF, INF])
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(3)

    def test_ge_row(self):
        res = lp([2, 3], [[1, 1]], [4], [INF], [0, 0], [INF, INF])
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(8)  # all weight on cheap var

    def test_variable_upper_bounds(self):
        # min -x with x<=2.5
        res = lp([-1], np.zeros((0, 1)), [], [], [0], [2.5])
        assert res.status is LPStatus.OPTIMAL
        assert res.x[0] == pytest.approx(2.5)

    def test_shifted_lower_bounds(self):
        # min x with x in [3, 10]
        res = lp([1], np.zeros((0, 1)), [], [], [3], [10])
        assert res.objective == pytest.approx(3)

    def test_free_variable(self):
        # min x s.t. x >= -5 via row (free variable split)
        res = lp([1], [[1]], [-5], [INF], [-INF], [INF])
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(-5)

    def test_range_row(self):
        # 1 <= x <= 4 as a row on a free-ish variable, minimize x.
        res = lp([1], [[1]], [1], [4], [0], [INF])
        assert res.objective == pytest.approx(1)

    def test_degenerate_does_not_cycle(self):
        # Classic degenerate corner; Bland's rule must terminate.
        res = lp(
            [-0.75, 150, -0.02, 6],
            [
                [0.25, -60, -0.04, 9],
                [0.5, -90, -0.02, 3],
                [0, 0, 1, 0],
            ],
            [-INF, -INF, -INF],
            [0, 0, 1],
            [0, 0, 0, 0],
            [INF, INF, INF, INF],
        )
        assert res.status is LPStatus.OPTIMAL
        assert res.objective == pytest.approx(-0.05)


class TestInfeasibleUnbounded:
    def test_infeasible_rows(self):
        res = lp([1], [[1], [1]], [5, -INF], [INF, 3], [0], [INF])
        assert res.status is LPStatus.INFEASIBLE

    def test_infeasible_bounds(self):
        res = lp([1], np.zeros((0, 1)), [], [], [5], [3])
        assert res.status is LPStatus.INFEASIBLE

    def test_unbounded(self):
        res = lp([-1], [[0]], [-INF], [0], [0], [INF])
        assert res.status is LPStatus.UNBOUNDED

    def test_unbounded_no_rows(self):
        res = lp([-1], np.zeros((0, 1)), [], [], [0], [INF])
        assert res.status is LPStatus.UNBOUNDED


class TestAgainstScipy:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_lps_match_highs(self, seed):
        rng = np.random.default_rng(seed)
        n, m = 4, 3
        c = rng.integers(-5, 6, n).astype(float)
        a = rng.integers(-3, 4, (m, n)).astype(float)
        b = rng.integers(1, 10, m).astype(float)
        ours = lp(c, a, [-INF] * m, b, [0] * n, [10] * n)

        from scipy.optimize import linprog

        ref = linprog(
            c, A_ub=a, b_ub=b, bounds=[(0, 10)] * n, method="highs"
        )
        assert ours.status is LPStatus.OPTIMAL
        assert ref.status == 0
        assert ours.objective == pytest.approx(ref.fun, abs=1e-6)
