"""Tests for control-layer estimation (repro.components.control)."""

from repro.components import Capacity, ContainerKind
from repro.components.control import (
    ControlEstimate,
    chip_control,
    device_control,
)
from repro.devices import GeneralDevice
from repro.hls import synthesize
from repro.operations import AssayBuilder


def device(kind=ContainerKind.CHAMBER, accessories=()):
    capacity = Capacity.SMALL
    return GeneralDevice("d", kind, capacity, frozenset(accessories))


class TestDeviceControl:
    def test_bare_chamber(self):
        est = device_control(device())
        assert est.valves == 2
        assert est.control_ports == 1

    def test_bare_ring(self):
        est = device_control(device(ContainerKind.RING))
        assert est.valves == 4

    def test_rotary_mixer(self):
        # ring + pump: 4 isolation/separation + 3 peristaltic valves.
        est = device_control(device(ContainerKind.RING, ["pump"]))
        assert est.valves == 7
        assert est.control_ports == 4  # 1 isolation + 3 pump phases

    def test_sieve_column(self):
        est = device_control(device(accessories=["sieve_valve"]))
        assert est.valves == 4  # 2 isolation + 2 sieve
        assert est.control_ports == 2

    def test_electrical_accessories_no_valves(self):
        est = device_control(
            device(accessories=["heating_pad", "optical_system"])
        )
        assert est.valves == 2  # isolation only
        assert est.control_ports == 3

    def test_unknown_accessory_conservative(self):
        est = device_control(device(accessories=["dep_electrodes"]))
        assert est.valves == 3
        assert est.control_ports == 2

    def test_estimates_add(self):
        total = ControlEstimate(2, 1) + ControlEstimate(5, 3)
        assert (total.valves, total.control_ports) == (7, 4)


class TestChipControl:
    def test_counts_devices_and_paths(self, fast_spec):
        b = AssayBuilder("cc")
        a = b.op("a", 4, container="ring", accessories=["pump"])
        b.op("b", 4, accessories=["heating_pad"], after=[a])
        result = synthesize(b.build(), fast_spec)

        est = chip_control(result)
        expected = ControlEstimate(0, 0)
        for dev in result.devices.values():
            expected = expected + device_control(dev)
        expected = expected + ControlEstimate(
            2 * result.num_paths, result.num_paths
        )
        assert est == expected
        assert est.valves >= 7  # at least the mixer
