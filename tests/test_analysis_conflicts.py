"""Tests for storage conflict detection (repro.analysis.storage)."""

import dataclasses

from repro.analysis.storage import storage_conflicts
from repro.hls import synthesize
from repro.hls.schedule import HybridSchedule, LayerSchedule, OpPlacement
from repro.operations import AssayBuilder


class TestStorageConflictsSynthetic:
    """Conflicts checked on hand-built schedules for exact control."""

    def build_result(self, child_start: int, extra_on_device: bool):
        """parent (layer 0, device dX) -> child (layer 1); optionally an
        unrelated op occupies dX in layer 1 before the child starts."""
        from repro.hls import SynthesisSpec
        from repro.hls.synthesizer import SynthesisResult
        from repro.layering import layer_assay

        b = AssayBuilder("sc")
        p = b.op("p", 3, container="chamber")
        g = b.op("g", 2, indeterminate=True)
        b.op("c", 2, container="chamber", after=[p, g])
        assay = b.build()
        layering = layer_assay(assay, threshold=1)

        l0 = LayerSchedule(index=0)
        l0.place(OpPlacement("p", "dX", 0, 3))
        l0.place(OpPlacement("g", "dG", 3, 2, indeterminate=True))
        l1 = LayerSchedule(index=1)
        if extra_on_device:
            l1.place(OpPlacement("c", "dY", child_start, 2))
            l1.place(OpPlacement("intruder", "dX", 0, 1))
        else:
            l1.place(OpPlacement("c", "dX", child_start, 2))
        schedule = HybridSchedule(layers=[l0, l1])
        # intruder is not an assay op; storage_conflicts only walks assay
        # edges but inspects placements, so register it in the assay too.
        if extra_on_device:
            assay2 = AssayBuilder("sc2")
            p2 = assay2.op("p", 3, container="chamber")
            g2 = assay2.op("g", 2, indeterminate=True)
            assay2.op("c", 2, container="chamber", after=[p2, g2])
            assay2.op("intruder", 1, container="chamber")
            assay = assay2.build()
            layering = layer_assay(assay, threshold=1)

        from repro.devices import GeneralDevice
        from repro.components import Capacity, ContainerKind

        devices = {
            uid: GeneralDevice(uid, ContainerKind.CHAMBER, Capacity.SMALL)
            for uid in schedule.used_devices()
        }
        return SynthesisResult(
            assay=assay,
            spec=SynthesisSpec(max_devices=10),
            layering=layering,
            schedule=schedule,
            devices=devices,
            paths=schedule.transportation_paths(assay.edges),
        )

    def test_reagent_waits_in_place_no_conflict(self):
        result = self.build_result(child_start=1, extra_on_device=False)
        # p -> c crosses the boundary; c runs on p's device with nothing
        # in between.
        conflicts = [
            c for c in storage_conflicts(result) if c.producer == "p"
        ]
        assert conflicts == []

    def test_intruder_evicts_reagent(self):
        result = self.build_result(child_start=3, extra_on_device=True)
        conflicts = [
            c for c in storage_conflicts(result) if c.producer == "p"
        ]
        assert len(conflicts) == 1
        assert conflicts[0].evicting_op == "intruder"
        assert conflicts[0].device_uid == "dX"


class TestStorageConflictsOnSynthesis:
    def test_reported_conflicts_are_real(self, indeterminate_assay, fast_spec):
        spec = dataclasses.replace(fast_spec, max_iterations=1)
        result = synthesize(indeterminate_assay, spec)
        for conflict in storage_conflicts(result):
            # Replay the definition independently.
            lp = result.layering.layer_of[conflict.producer]
            lc = result.layering.layer_of[conflict.consumer]
            assert lp < lc
            _, pp = result.schedule.find(conflict.producer)
            assert pp.device_uid == conflict.device_uid
            _, evict = result.schedule.find(conflict.evicting_op)
            assert evict.device_uid == conflict.device_uid
