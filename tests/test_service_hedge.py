"""Tests for hedged fleet requests (repro.service.client.HedgePolicy /
FleetClient) and the attempt-context satellite on ServiceError."""

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.errors import CircuitOpenError, ServiceError
from repro.service.client import (
    CircuitBreaker,
    FleetClient,
    HedgePolicy,
    RetryPolicy,
    ServiceClient,
)


class StubReplica:
    """A minimal /jobs endpoint with a configurable response delay."""

    def __init__(self, name: str, delay: float = 0.0, status: int = 200,
                 error_kind: str = "error"):
        self.name = name
        self.delay = delay
        self.status = status
        self.error_kind = error_kind
        #: headers of every request that reached this replica.
        self.requests: list[dict] = []
        stub = self

        class Handler(BaseHTTPRequestHandler):
            def do_POST(self):  # noqa: N802 - http.server API
                stub.requests.append(dict(self.headers))
                time.sleep(stub.delay)
                if stub.status >= 400:
                    body = json.dumps({
                        "error": {
                            "kind": stub.error_kind,
                            "message": f"{stub.name} says no",
                        }
                    }).encode()
                else:
                    body = json.dumps({
                        "job": {
                            "id": f"job-{stub.name}",
                            "fingerprint": "fp",
                            "status": "pending",
                        }
                    }).encode()
                try:
                    self.send_response(stub.status)
                    self.send_header("Content-Type", "application/json")
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                except OSError:
                    pass  # client cancelled us mid-write

            def log_message(self, *args):  # silence
                pass

        self.server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self.port = self.server.server_address[1]
        self.thread = threading.Thread(
            target=self.server.serve_forever, daemon=True
        )
        self.thread.start()

    def close(self):
        self.server.shutdown()
        self.server.server_close()

    def client(self, **kwargs) -> ServiceClient:
        kwargs.setdefault("retry", RetryPolicy(retries=0, seed=0))
        return ServiceClient(port=self.port, timeout=10.0, **kwargs)


@pytest.fixture
def replicas():
    created = []

    def make(*args, **kwargs):
        stub = StubReplica(*args, **kwargs)
        created.append(stub)
        return stub

    yield make
    for stub in created:
        stub.close()


class TestHedgePolicy:
    def test_validation(self):
        with pytest.raises(ServiceError):
            HedgePolicy(delay=-1.0)
        with pytest.raises(ServiceError):
            HedgePolicy(percentile=0.0)
        with pytest.raises(ServiceError):
            HedgePolicy(percentile=1.5)
        with pytest.raises(ServiceError):
            HedgePolicy(min_samples=0)
        with pytest.raises(ServiceError):
            HedgePolicy(min_samples=8, max_samples=4)

    def test_fixed_delay_wins(self):
        policy = HedgePolicy(delay=0.25)
        for value in (1.0, 2.0, 3.0):
            policy.observe(value)
        assert policy.current_delay() == 0.25

    def test_initial_delay_until_enough_samples(self):
        policy = HedgePolicy(min_samples=3, initial_delay=0.7)
        policy.observe(0.1)
        policy.observe(0.2)
        assert policy.current_delay() == 0.7

    def test_percentile_of_samples(self):
        policy = HedgePolicy(min_samples=5, percentile=0.5)
        for value in (5.0, 1.0, 4.0, 2.0, 3.0, 6.0, 7.0, 8.0, 9.0, 10.0):
            policy.observe(value)
        # 10 samples, p50 -> sorted index int(0.5*10)-1 = 4 -> 5.0
        assert policy.current_delay() == 5.0
        policy.percentile = 1.0
        assert policy.current_delay() == 10.0

    def test_sample_window_is_bounded(self):
        policy = HedgePolicy(min_samples=1, max_samples=4)
        for value in range(10):
            policy.observe(float(value))
        assert policy.counters()["samples"] == 4


class TestFleetHedging:
    def test_hedge_fires_and_duplicate_wins(self, replicas):
        slow = replicas("slow", delay=1.5)
        fast = replicas("fast", delay=0.0)
        fleet = FleetClient(
            [slow.client(), fast.client()],
            hedge=HedgePolicy(delay=0.1),
            retry=RetryPolicy(retries=0, seed=0),
        )
        handle = fleet.submit({"format": 1})
        assert handle.id == "job-fast"
        assert fleet.hedge.fired == 1
        assert fleet.hedge.won == 1
        # The duplicate (and only it) carried the hedge marker.
        assert all(
            "X-Repro-Hedge" not in req for req in slow.requests
        )
        assert all(
            req.get("X-Repro-Hedge") == "1" for req in fast.requests
        )
        # Follow-ups pin to the issuing replica.
        assert fleet._pinned(handle.id) is fleet.clients[1]

    def test_fast_primary_never_hedges(self, replicas):
        fast = replicas("fast", delay=0.0)
        other = replicas("other", delay=0.0)
        fleet = FleetClient(
            [fast.client(), other.client()],
            hedge=HedgePolicy(delay=5.0),
            retry=RetryPolicy(retries=0, seed=0),
        )
        handle = fleet.submit({"format": 1})
        assert handle.id == "job-fast"
        assert fleet.hedge.fired == 0
        assert other.requests == []

    def test_dead_primary_promotes_hedge_immediately(self, replicas):
        fast = replicas("fast", delay=0.0)
        dead = ServiceClient(
            port=1, timeout=1.0, retry=RetryPolicy(retries=0, seed=0),
        )  # nothing listens on port 1
        fleet = FleetClient(
            [dead, fast.client()],
            hedge=HedgePolicy(delay=30.0),  # would never fire by timer
            retry=RetryPolicy(retries=0, seed=0),
        )
        handle = fleet.submit({"format": 1})
        assert handle.id == "job-fast"
        assert fleet.hedge.fired == 1

    def test_all_replicas_down_raises_with_context(self):
        dead_a = ServiceClient(
            port=1, timeout=1.0, retry=RetryPolicy(retries=0, seed=0),
        )
        dead_b = ServiceClient(
            port=2, timeout=1.0, retry=RetryPolicy(retries=0, seed=0),
        )
        fleet = FleetClient(
            [dead_a, dead_b],
            hedge=HedgePolicy(delay=0.0),
            retry=RetryPolicy(retries=0, seed=0),
        )
        fleet._sleep = lambda _seconds: None
        with pytest.raises(ServiceError) as err:
            fleet.submit({"format": 1})
        assert err.value.kind == "unreachable"
        assert err.value.context["replicas_tried"] == 2
        assert err.value.context["hedge_fired"] is True
        assert err.value.context["retries_used"] == 0
        # The satellite contract: the message alone tells the story.
        assert "replicas_tried=2" in str(err.value)

    def test_authoritative_4xx_is_not_retried(self, replicas):
        bad = replicas("bad", status=400, error_kind="bad-request")
        other = replicas("other", delay=5.0)
        fleet = FleetClient(
            [bad.client(), other.client()],
            hedge=HedgePolicy(delay=10.0),
            retry=RetryPolicy(retries=3, seed=0),
        )
        started = time.monotonic()
        with pytest.raises(ServiceError) as err:
            fleet.submit({"format": 1})
        assert err.value.status == 400
        assert err.value.kind == "bad-request"
        assert "replica=" in str(err.value)
        assert time.monotonic() - started < 4.0  # no retry backoff
        assert len(bad.requests) == 1
        # A 4xx is a healthy server answering: the breaker stays closed.
        assert fleet.clients[0].breaker.state == "closed"

    def test_all_breakers_open_fails_fast(self, replicas):
        fast = replicas("fast")
        tripped = CircuitBreaker(threshold=1, cooldown=60.0)
        tripped.record_failure()
        fleet = FleetClient(
            [fast.client(breaker=tripped)],
            hedge=HedgePolicy(delay=0.0),
        )
        with pytest.raises(CircuitOpenError) as err:
            fleet.submit({"format": 1})
        assert err.value.context["replicas"] == 1
        assert fast.requests == []


class TestFleetPins:
    """The job-id -> replica pin table is bounded and loud on misses."""

    def _fleet(self) -> FleetClient:
        clients = [
            ServiceClient(
                port=1, timeout=1.0, retry=RetryPolicy(retries=0, seed=0),
            ),
            ServiceClient(
                port=2, timeout=1.0, retry=RetryPolicy(retries=0, seed=0),
            ),
        ]
        return FleetClient(
            clients, hedge=HedgePolicy(delay=0.0),
            retry=RetryPolicy(retries=0, seed=0),
        )

    def test_unknown_job_id_raises_instead_of_guessing(self):
        """Job ids are replica-local: falling back to replica 0 would
        turn a client-side lookup bug into a misleading 404 from an
        arbitrary server."""
        fleet = self._fleet()
        with pytest.raises(ServiceError) as err:
            fleet.status("job-nope")
        assert err.value.kind == "unpinned-job"
        assert err.value.status == 404

    def test_result_evicts_pin(self, monkeypatch):
        fleet = self._fleet()
        fleet._remember_pin("job-1", 1)
        monkeypatch.setattr(
            ServiceClient, "result", lambda self, job_id: {"ok": True}
        )
        assert fleet.result("job-1") == {"ok": True}
        assert "job-1" not in fleet._pin
        with pytest.raises(ServiceError) as err:
            fleet.result("job-1")
        assert err.value.kind == "unpinned-job"

    def test_pin_table_is_bounded(self):
        fleet = self._fleet()
        fleet.pin_limit = 8
        for n in range(20):
            fleet._remember_pin(f"job-{n}", n % 2)
        assert len(fleet._pin) == 8
        assert "job-19" in fleet._pin
        assert "job-11" not in fleet._pin


class TestAttemptContext:
    """Satellite: ServiceError carries the attempt history."""

    def test_with_context_folds_into_message(self):
        exc = ServiceError("boom", status=503, kind="unreachable")
        assert exc.with_context(replica="h:1", retries_used=2) is exc
        assert exc.context == {"replica": "h:1", "retries_used": 2}
        assert str(exc) == "boom [replica=h:1, retries_used=2]"

    def test_single_client_attaches_context(self):
        client = ServiceClient(
            port=1, timeout=1.0, retry=RetryPolicy(retries=1, seed=0),
        )
        client._sleep = lambda _seconds: None
        with pytest.raises(ServiceError) as err:
            client.health()
        assert err.value.context["retries_used"] == 1
        assert err.value.context["replica"] == "127.0.0.1:1"
        assert "breaker" in err.value.context

    def test_circuit_open_error_carries_breaker_state(self):
        breaker = CircuitBreaker(threshold=1, cooldown=60.0)
        breaker.record_failure()
        client = ServiceClient(port=1, breaker=breaker)
        with pytest.raises(CircuitOpenError) as err:
            client.health()
        assert err.value.context["breaker"] == "open"
