"""Property-based end-to-end tests: any random assay synthesizes validly.

The validator (:mod:`repro.hls.validate`) replays every paper constraint on
the decoded result, so "synthesize + validate" over random assays is a
strong whole-pipeline property.  ILP solving is exact but slow, so the
random instances stay small; the greedy fallback path is exercised
separately with the ILP disabled via a zero-ish time budget.
"""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.assays import random_assay
from repro.baselines import synthesize_conventional
from repro.hls import SynthesisSpec, synthesize
from repro.hls.validate import collect_violations
from repro.runtime import RetryModel, execute_schedule

FAST = SynthesisSpec(
    max_devices=8, threshold=2, time_limit=5.0, max_iterations=1
)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 500),
    num_ops=st.integers(2, 8),
    ind_frac=st.floats(0.0, 0.5),
)
def test_synthesis_always_valid(seed, num_ops, ind_frac):
    assay = random_assay(
        num_ops, seed=seed, indeterminate_fraction=ind_frac,
        max_duration=12,
    )
    result = synthesize(assay, FAST)
    assert collect_violations(result) == []
    # Makespan expression lists exactly the indeterminate layers.
    terms = result.schedule.indeterminate_terms
    expected = [
        i + 1 for i, layer in enumerate(result.schedule.layers)
        if any(
            assay[uid].is_indeterminate for uid in layer.placements
        )
    ]
    assert terms == expected


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 200), num_ops=st.integers(2, 7))
def test_conventional_always_valid(seed, num_ops):
    assay = random_assay(num_ops, seed=seed, indeterminate_fraction=0.3,
                         max_duration=12)
    result = synthesize_conventional(assay, FAST)
    assert collect_violations(result) == []


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(0, 300),
    num_ops=st.integers(5, 20),
    exec_seed=st.integers(0, 99),
)
def test_greedy_fallback_always_valid_and_executable(seed, num_ops, exec_seed):
    """With the ILP starved (tiny time limit, fallback on), the greedy
    scheduler must still produce a valid, executable hybrid schedule."""
    assay = random_assay(num_ops, seed=seed, indeterminate_fraction=0.3,
                         max_duration=10)
    # Every operation instantiates at most one device, so a cap of
    # num_ops can never bind; the test targets the greedy path, not
    # capacity exhaustion.
    spec = dataclasses.replace(
        FAST, time_limit=0.001, allow_heuristic_fallback=True,
        max_iterations=0, max_devices=num_ops + 2, threshold=3,
    )
    result = synthesize(assay, spec)
    assert collect_violations(result) == []
    report = execute_schedule(
        result.schedule, RetryModel(success_probability=0.5), seed=exec_seed
    )
    assert report.makespan >= result.fixed_makespan


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 100), num_ops=st.integers(3, 8))
def test_cover_objective_dominates_exact(seed, num_ops):
    """COVER binding is a relaxation of EXACT binding: on a single-layer
    problem solved to optimality with identical inputs, the
    component-oriented method's weighted objective is never worse (every
    EXACT-feasible solution is COVER-feasible at the same cost).

    This holds per layer-solve, not across refinement trajectories — the
    transport refinement may land on different terms per method — so the
    property pins a single-layer assay with re-synthesis disabled.
    """
    from hypothesis import assume

    from repro.analysis.stats import objective_value

    assay = random_assay(num_ops, seed=seed, indeterminate_fraction=0.0,
                         max_duration=10)
    spec = dataclasses.replace(FAST, max_iterations=0)
    ours = synthesize(assay, spec)
    conv = synthesize_conventional(assay, spec)
    assume(all(s == "optimal" for s in ours.history[0].layer_statuses))
    assume(all(s == "optimal" for s in conv.history[0].layer_statuses))
    assert objective_value(ours) <= objective_value(conv) + 1e-6
