"""Tests for the valve-actuation program (repro.runtime.actuation)."""

import pytest

from repro.hls import synthesize
from repro.runtime import (
    ValveAction,
    generate_control_program,
)
from repro.operations import AssayBuilder


@pytest.fixture
def result(fast_spec):
    b = AssayBuilder("act")
    load = b.op("load", 3, container="chamber")
    mix = b.op("mix", 6, container="ring", accessories=["pump"],
               after=[load])
    cap = b.op("cap", 4, indeterminate=True, accessories=["cell_trap"],
               after=[mix])
    b.op("read", 2, accessories=["optical_system"], after=[cap])
    return synthesize(b.build(), fast_spec)


class TestControlProgram:
    def test_every_op_sealed(self, result):
        program = generate_control_program(result)
        sealed = {
            e.op_uid for e in program.events if e.action is ValveAction.SEAL
        }
        assert sealed == set(result.assay.uids)

    def test_fixed_ops_opened_indeterminate_open_ended(self, result):
        program = generate_control_program(result)
        opened = {
            e.op_uid for e in program.events if e.action is ValveAction.OPEN
        }
        open_ended = {
            e.op_uid for e in program.events
            if e.action is ValveAction.OPEN_ENDED
        }
        assert open_ended == {"cap"}
        assert opened == set(result.assay.uids) - {"cap"}

    def test_pump_events_only_on_pumped_devices(self, result):
        program = generate_control_program(result)
        for event in program.events:
            if event.action in (ValveAction.PUMP_START, ValveAction.PUMP_STOP):
                device = result.devices[event.device_uid]
                assert "pump" in device.accessories

    def test_route_events_match_paths(self, result):
        program = generate_control_program(result)
        routes = {
            tuple(sorted((e.device_uid, e.peer_device_uid)))
            for e in program.events
            if e.action is ValveAction.ROUTE
        }
        assert routes == result.paths

    def test_events_time_ordered_within_layer(self, result):
        program = generate_control_program(result)
        for layer_index in range(len(result.schedule.layers)):
            times = [e.time for e in program.for_layer(layer_index)]
            assert times == sorted(times)

    def test_switch_count_positive(self, result):
        program = generate_control_program(result)
        assert program.total_switches > 0
        # Seal/open pairs alone give 4 switches per fixed op.
        fixed_ops = sum(
            1 for op in result.assay if not op.is_indeterminate
        )
        assert program.total_switches >= 4 * fixed_ops

    def test_for_device_filter(self, result):
        program = generate_control_program(result)
        some_device = next(iter(result.devices))
        for event in program.for_device(some_device):
            assert some_device in (event.device_uid, event.peer_device_uid)

    def test_render_contains_actions(self, result):
        text = generate_control_program(result).render()
        assert "seal" in text
        assert "t=" in text

    def test_seal_at_op_start_time(self, result):
        program = generate_control_program(result)
        for event in program.events:
            if event.action is ValveAction.SEAL:
                layer_index, placement = result.schedule.find(event.op_uid)
                assert event.time == placement.start
                assert event.layer == layer_index
