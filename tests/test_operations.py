"""Tests for repro.operations (durations, operations, assays, builder)."""

import pytest

from repro.components import Capacity, ContainerKind
from repro.errors import CycleError, SpecificationError
from repro.operations import (
    Assay,
    AssayBuilder,
    Fixed,
    Indeterminate,
    Operation,
)


class TestDuration:
    def test_fixed(self):
        d = Fixed(10)
        assert not d.is_indeterminate
        assert d.scheduled == 10

    def test_indeterminate(self):
        d = Indeterminate(5)
        assert d.is_indeterminate
        assert d.scheduled == 5

    def test_zero_rejected(self):
        with pytest.raises(SpecificationError):
            Fixed(0)

    def test_negative_rejected(self):
        with pytest.raises(SpecificationError):
            Indeterminate(-3)

    def test_non_integer_rejected(self):
        with pytest.raises(SpecificationError):
            Fixed(2.5)  # type: ignore[arg-type]


class TestOperation:
    def test_minimal(self):
        op = Operation("o", Fixed(1))
        assert op.capacity is Capacity.SMALL
        assert op.container is None
        assert op.accessories == frozenset()

    def test_empty_uid_rejected(self):
        with pytest.raises(SpecificationError):
            Operation("", Fixed(1))

    def test_illegal_container_capacity(self):
        with pytest.raises(SpecificationError):
            Operation("o", Fixed(1), capacity=Capacity.TINY,
                      container=ContainerKind.RING)

    def test_accessories_coerced_to_frozenset(self):
        op = Operation("o", Fixed(1), accessories=["pump", "pump"])
        assert op.accessories == frozenset({"pump"})

    def test_allowed_kinds_specified(self):
        op = Operation("o", Fixed(1), container=ContainerKind.RING)
        assert op.allowed_container_kinds == (ContainerKind.RING,)

    def test_allowed_kinds_open_small(self):
        op = Operation("o", Fixed(1), capacity=Capacity.SMALL)
        assert set(op.allowed_container_kinds) == {
            ContainerKind.RING, ContainerKind.CHAMBER
        }

    def test_allowed_kinds_open_tiny(self):
        op = Operation("o", Fixed(1), capacity=Capacity.TINY)
        assert op.allowed_container_kinds == (ContainerKind.CHAMBER,)

    def test_signature_stable(self):
        a = Operation("a", Fixed(1), accessories=["pump", "sieve_valve"])
        b = Operation("b", Fixed(2), accessories=["sieve_valve", "pump"])
        assert a.requirement_signature() == b.requirement_signature()

    def test_signature_distinguishes_container(self):
        a = Operation("a", Fixed(1), container=ContainerKind.RING)
        b = Operation("b", Fixed(1))
        assert a.requirement_signature() != b.requirement_signature()

    def test_covers_subset_accessories(self):
        big = Operation("big", Fixed(1), container=ContainerKind.RING,
                        accessories=["pump", "sieve_valve"])
        small = Operation("small", Fixed(1), container=ContainerKind.RING,
                          accessories=["pump"])
        assert big.covers(small)
        assert not small.covers(big)

    def test_covers_requires_same_capacity(self):
        a = Operation("a", Fixed(1), capacity=Capacity.MEDIUM)
        b = Operation("b", Fixed(1), capacity=Capacity.SMALL)
        assert not a.covers(b)

    def test_indeterminate_flag(self):
        op = Operation("o", Indeterminate(3))
        assert op.is_indeterminate


class TestAssay:
    def build(self):
        a = Assay("t")
        a.add(Operation("p", Fixed(2)))
        a.add(Operation("c", Fixed(3)))
        a.add_dependency("p", "c")
        return a

    def test_parents_children(self):
        a = self.build()
        assert a.children("p") == ["c"]
        assert a.parents("c") == ["p"]

    def test_duplicate_uid_rejected(self):
        a = self.build()
        with pytest.raises(SpecificationError):
            a.add(Operation("p", Fixed(1)))

    def test_dependency_unknown_op(self):
        a = self.build()
        with pytest.raises(SpecificationError):
            a.add_dependency("p", "ghost")

    def test_cycle_rejected_immediately(self):
        a = self.build()
        with pytest.raises(CycleError):
            a.add_dependency("c", "p")

    def test_ancestors_descendants(self):
        a = self.build()
        a.add(Operation("g", Fixed(1)))
        a.add_dependency("c", "g")
        assert a.ancestors("g") == {"p", "c"}
        assert a.descendants("p") == {"c", "g"}

    def test_topological_order(self):
        order = self.build().topological_order()
        assert order.index("p") < order.index("c")

    def test_indeterminate_listing(self):
        a = self.build()
        a.add(Operation("i", Indeterminate(4)))
        assert a.indeterminate_uids == ["i"]
        assert a.num_indeterminate == 1

    def test_total_fixed_work(self):
        assert self.build().total_fixed_work() == 5

    def test_getitem_unknown(self):
        with pytest.raises(SpecificationError):
            self.build()["nope"]

    def test_graph_copy_isolated(self):
        a = self.build()
        g = a.graph
        g.remove_node("p")
        assert "p" in a


class TestReplicate:
    def test_counts_scale(self):
        base = AssayBuilder("b")
        x = base.op("x", 2)
        base.op("y", 3, indeterminate=True, after=[x])
        assay = base.build().replicate(4)
        assert len(assay) == 8
        assert assay.num_indeterminate == 4
        assert len(assay.edges) == 4

    def test_replicas_independent(self):
        base = AssayBuilder("b")
        x = base.op("x", 2)
        base.op("y", 3, after=[x])
        assay = base.build().replicate(2)
        assert assay.children("x#0") == ["y#0"]
        assert assay.children("x#1") == ["y#1"]

    def test_zero_copies_rejected(self):
        a = Assay("e")
        with pytest.raises(SpecificationError):
            a.replicate(0)

    def test_subset(self):
        base = AssayBuilder("b")
        x = base.op("x", 2)
        y = base.op("y", 3, after=[x])
        base.op("z", 1, after=[y])
        sub = base.build().subset(["x", "y"])
        assert len(sub) == 2
        assert sub.edges == [("x", "y")]


class TestBuilder:
    def test_after_accepts_objects_and_uids(self):
        b = AssayBuilder("t")
        first = b.op("first", 1)
        b.op("second", 1, after=[first])
        b.op("third", 1, after=["second"])
        assay = b.build()
        assert assay.parents("third") == ["second"]

    def test_capacity_strings(self):
        b = AssayBuilder("t")
        op = b.op("o", 1, capacity="large")
        assert op.capacity is Capacity.LARGE
        op2 = b.op("o2", 1, capacity="t")
        assert op2.capacity is Capacity.TINY

    def test_container_strings(self):
        b = AssayBuilder("t")
        assert b.op("o", 1, container="ring").container is ContainerKind.RING
        assert b.op("o2", 1, container="ch").container is ContainerKind.CHAMBER

    def test_unknown_capacity(self):
        with pytest.raises(SpecificationError):
            AssayBuilder("t").op("o", 1, capacity="gigantic")

    def test_unknown_container(self):
        with pytest.raises(SpecificationError):
            AssayBuilder("t").op("o", 1, container="bucket")

    def test_indeterminate_flag(self):
        b = AssayBuilder("t")
        op = b.op("o", 5, indeterminate=True)
        assert op.is_indeterminate

    def test_explicit_dependency(self):
        b = AssayBuilder("t")
        x = b.op("x", 1)
        y = b.op("y", 1)
        b.dependency(x, y)
        assert b.build().children("x") == ["y"]
