"""Tests for the MILP presolve (repro.ilp.presolve) and LP export."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ilp import Model, SolveStatus
from repro.ilp.lpformat import model_to_lp, write_lp
from repro.ilp.presolve import presolve


class TestPresolveReductions:
    def test_singleton_row_folds_into_bounds(self):
        m = Model()
        x = m.integer("x", lb=0, ub=100)
        m.add(2 * x <= 9)
        result = presolve(m.to_standard_form())
        assert not result.infeasible
        assert result.rows_removed == 1
        j = x.index
        assert result.form.var_upper[j] == pytest.approx(4)  # floor(4.5)

    def test_redundant_row_dropped(self):
        m = Model()
        x = m.binary("x")
        y = m.binary("y")
        m.add(x + y <= 5)  # always true for binaries
        result = presolve(m.to_standard_form())
        assert result.rows_removed == 1

    def test_activity_tightening(self):
        m = Model()
        x = m.integer("x", lb=0, ub=10)
        y = m.integer("y", lb=0, ub=10)
        m.add(x + y <= 3)
        result = presolve(m.to_standard_form())
        assert result.form.var_upper[x.index] <= 3
        assert result.form.var_upper[y.index] <= 3

    def test_infeasible_bounds(self):
        m = Model()
        x = m.integer("x", lb=0, ub=5)
        m.add(x >= 7)
        assert presolve(m.to_standard_form()).infeasible

    def test_infeasible_row(self):
        m = Model()
        x = m.binary("x")
        y = m.binary("y")
        m.add(x + y >= 3)
        assert presolve(m.to_standard_form()).infeasible

    def test_integer_rounding_inward(self):
        m = Model()
        x = m.integer("x", lb=0, ub=10)
        m.add(3 * x >= 4)  # x >= 4/3 -> x >= 2
        result = presolve(m.to_standard_form())
        assert result.form.var_lower[x.index] == pytest.approx(2)

    def test_continuous_not_rounded(self):
        m = Model()
        x = m.continuous("x", lb=0, ub=10)
        m.add(3 * x >= 4)
        result = presolve(m.to_standard_form())
        assert result.form.var_lower[x.index] == pytest.approx(4 / 3)

    def test_empty_contradictory_row(self):
        m = Model()
        m.binary("x")
        from repro.ilp.model import Constraint
        from repro.ilp.expr import LinExpr

        m.constraints.append(Constraint(LinExpr(), ">=", 1))
        assert presolve(m.to_standard_form()).infeasible


class TestPresolveInBnb:
    def test_presolve_detects_infeasible_fast(self):
        m = Model()
        xs = [m.binary(f"x{i}") for i in range(10)]
        from repro.ilp.expr import LinExpr

        m.add(LinExpr.sum(xs) >= 11)
        sol = m.solve(backend="bnb")
        assert sol.status is SolveStatus.INFEASIBLE

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 500))
    def test_presolve_preserves_optimum(self, seed):
        import random

        rng = random.Random(seed)
        m = Model()
        xs = [m.integer(f"x{i}", lb=0, ub=rng.randint(1, 6)) for i in range(4)]
        from repro.ilp.expr import LinExpr

        for _ in range(3):
            coeffs = [rng.randint(-2, 3) for _ in xs]
            m.add(
                LinExpr.sum(c * x for c, x in zip(coeffs, xs))
                <= rng.randint(2, 10)
            )
        m.minimize(
            LinExpr.sum(rng.randint(-4, 4) * x for x in xs)
        )
        from repro.ilp.bnb import solve_bnb

        with_pre = solve_bnb(m, use_presolve=True)
        without = solve_bnb(m, use_presolve=False)
        assert with_pre.status == without.status
        if with_pre.status.has_solution:
            assert with_pre.objective == pytest.approx(
                without.objective, abs=1e-6
            )


class TestLpFormat:
    def build(self):
        m = Model("demo")
        x = m.binary("od[a,('slot', 0)]")
        y = m.integer("st[a]", lb=0, ub=50)
        m.add(x + 2 * y >= 3, name="dep[a->b]")
        m.minimize(5 * x + y + 7)
        return m, x, y

    def test_sections_present(self):
        m, _, _ = self.build()
        text = model_to_lp(m)
        for section in ("Minimize", "Subject To", "Bounds", "End"):
            assert section in text

    def test_names_sanitized(self):
        m, _, _ = self.build()
        text = model_to_lp(m)
        assert "[" not in text.split("\n", 1)[1]
        assert "(" not in text.split("\n", 1)[1]

    def test_constant_objective_encoded(self):
        m, _, _ = self.build()
        text = model_to_lp(m)
        assert "const_one" in text
        assert "fix_const: const_one = 1" in text

    def test_binaries_and_generals_listed(self):
        m, _, _ = self.build()
        text = model_to_lp(m)
        assert "Binaries" in text
        assert "Generals" in text

    def test_write_to_file(self, tmp_path):
        m, _, _ = self.build()
        path = tmp_path / "model.lp"
        write_lp(m, path)
        assert path.read_text().startswith("\\ model demo")

    def test_maximize_header(self):
        m = Model(sense="max")
        x = m.binary("x")
        m.maximize(x)
        assert "Maximize" in model_to_lp(m)

    def test_duplicate_sanitized_names_disambiguated(self):
        m = Model()
        a = m.binary("v[1]")
        b = m.binary("v(1)")
        m.add(a + b <= 1)
        text = model_to_lp(m)
        # both variables must appear with distinct names
        bounds = [l for l in text.splitlines() if l.startswith(" 0 <= v")]
        names = {l.split("<=")[1].strip() for l in bounds}
        assert len(names) == 2
