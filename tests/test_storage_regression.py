"""Regression lock: ``storage_mode="off"`` is byte-identical to the
pre-storage synthesis flow.

The goldens in ``tests/data/storage_off_case*.json`` were captured with
``save_result(..., deterministic=True)`` before the storage subsystem
existed.  Every storage hook (pressure terms, planner stage, report
block) is gated on the mode, so an off-mode run must reproduce them
byte for byte — any diff means storage leaked into the paper flow.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.assays import benchmark_assay
from repro.hls import SynthesisSpec, synthesize
from repro.io import result_to_json

DATA = Path(__file__).parent / "data"

#: The capture spec: pure-Python greedy scheduling, one pass — fully
#: deterministic on any machine, no solver in the loop.
SPEC = SynthesisSpec(threshold=4, max_iterations=1, scheduler="greedy")


@pytest.mark.parametrize("case", [1, 2, 3])
def test_storage_off_matches_pre_storage_golden(case):
    golden = (DATA / f"storage_off_case{case}.json").read_text()
    result = synthesize(benchmark_assay(case), SPEC)
    assert result.storage_plan is None
    report = result_to_json(result, deterministic=True)
    assert "storage" not in report
    assert json.dumps(report, indent=2) == golden


def test_default_spec_is_storage_off():
    spec = SynthesisSpec()
    assert spec.storage_mode == "off"
    assert spec.storage_pressure_weight() == 0.0
