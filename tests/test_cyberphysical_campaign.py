"""Tests for the Monte-Carlo campaign runner and trace export."""

import json

import pytest

from repro.cyberphysical import (
    CampaignConfig,
    FaultPlan,
    aggregate_stats,
    read_trace,
    run_campaign,
    write_trace,
)
from repro.cyberphysical.campaign import RunRecord, _shard_seeds
from repro.errors import SpecificationError
from repro.hls import SynthesisSpec, synthesize
from repro.runtime import RetryModel


@pytest.fixture(scope="module")
def synthesized():
    from repro.operations import AssayBuilder

    b = AssayBuilder("campaign")
    prep = b.op("prep", 4, container="chamber")
    cap = b.op("cap", 6, indeterminate=True, accessories=["cell_trap"],
               after=[prep])
    b.op("detect", 3, accessories=["optical_system"], after=[cap])
    spec = SynthesisSpec(
        max_devices=5, threshold=2, time_limit=10.0, max_iterations=1
    )
    return synthesize(b.build(), spec)


def _config(**overrides):
    base = dict(
        runs=6,
        seed=0,
        jobs=1,
        policies=("resynth",),
        faults=FaultPlan.parse("exhaust:cap"),
        retry_model=RetryModel(max_attempts=4),
    )
    base.update(overrides)
    return CampaignConfig(**base)


class TestSharding:
    def test_contiguous_balanced(self):
        assert _shard_seeds([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]

    def test_more_shards_than_seeds(self):
        assert _shard_seeds([1, 2], 8) == [[1], [2]]

    def test_config_validation(self):
        with pytest.raises(SpecificationError):
            _config(runs=0)
        with pytest.raises(SpecificationError):
            _config(jobs=0)


class TestCampaign:
    def test_recovery_completes_all_runs(self, synthesized):
        outcome = run_campaign(synthesized, _config())
        assert outcome.stats.runs == 6
        assert outcome.stats.failed == 0
        assert outcome.stats.failure_rate == 0.0
        assert outcome.stats.recoveries == {"resynth": 6}
        assert outcome.stats.resyntheses == 6

    def test_abort_policy_fails_runs(self, synthesized):
        outcome = run_campaign(synthesized, _config(policies=("abort",)))
        assert outcome.stats.failure_rate == 1.0
        assert outcome.stats.completed == 0
        # No completed runs -> empty distribution, not a crash.
        assert outcome.stats.mean_makespan == 0.0

    def test_deterministic_across_invocations(self, synthesized):
        a = run_campaign(synthesized, _config())
        b = run_campaign(synthesized, _config())
        assert a.stats.to_json_text() == b.stats.to_json_text()
        assert a.records == b.records

    def test_jobs_do_not_change_merged_stats(self, synthesized):
        """Acceptance: --jobs N merges byte-identically to --jobs 1."""
        inline = run_campaign(synthesized, _config(jobs=1))
        pooled = run_campaign(synthesized, _config(jobs=2))
        assert inline.stats.to_json_text() == pooled.stats.to_json_text()
        assert [r.seed for r in pooled.records] == [
            r.seed for r in inline.records
        ]
        assert [r.makespan for r in pooled.records] == [
            r.makespan for r in inline.records
        ]

    def test_traces_disabled(self, synthesized):
        outcome = run_campaign(synthesized, _config(keep_traces=False))
        assert all(r.trace == () for r in outcome.records)


class TestTraceExport:
    def test_jsonl_roundtrip(self, synthesized, tmp_path):
        outcome = run_campaign(synthesized, _config(runs=2))
        path = tmp_path / "trace.jsonl"
        count = write_trace(path, outcome.trace_records())
        loaded = read_trace(path)
        assert len(loaded) == count > 0
        kinds = {entry["kind"] for entry in loaded}
        assert {"run_start", "layer_dispatch", "op_fault",
                "policy_attempt", "policy_result",
                "resynthesis_splice", "run_end"} <= kinds
        # Every record is valid standalone JSON with a seed and time.
        for entry in loaded:
            assert "seed" in entry and "time" in entry

    def test_empty_trace_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert write_trace(path, []) == 0
        assert read_trace(path) == []


class TestAggregateStats:
    def _record(self, seed, makespan, completed=True, recoveries=None):
        return RunRecord(
            seed=seed,
            makespan=makespan,
            completed=completed,
            recoveries=recoveries or {},
            faults_fired=1,
            resyntheses=0,
            failed_ops=(),
            trace=(),
        )

    def test_failed_runs_excluded_from_distribution(self):
        records = [
            self._record(0, 100),
            self._record(1, 10, completed=False),
            self._record(2, 200),
        ]
        stats = aggregate_stats(records)
        assert stats.failure_rate == pytest.approx(1 / 3)
        assert stats.best_makespan == 100  # the failed run's 10 is excluded
        assert stats.mean_makespan == 150.0

    def test_order_independent(self):
        records = [self._record(s, 50 + s) for s in range(5)]
        forward = aggregate_stats(records)
        backward = aggregate_stats(list(reversed(records)))
        assert forward.to_json_text() == backward.to_json_text()

    def test_recoveries_summed_by_policy(self):
        records = [
            self._record(0, 10, recoveries={"retry": 2}),
            self._record(1, 10, recoveries={"retry": 1, "rebind": 1}),
        ]
        stats = aggregate_stats(records)
        assert stats.recoveries == {"retry": 3, "rebind": 1}


class TestCliSimulate:
    def test_simulate_command(self, tmp_path, capsys):
        from repro.cli import main
        from repro.io import save_assay
        from repro.operations import AssayBuilder

        b = AssayBuilder("cli-sim")
        cap = b.op("cap", 4, indeterminate=True, accessories=["cell_trap"])
        b.op("detect", 2, accessories=["optical_system"], after=[cap])
        assay_path = tmp_path / "assay.json"
        save_assay(b.build(), assay_path)

        trace_path = tmp_path / "trace.jsonl"
        stats_path = tmp_path / "stats.json"
        code = main([
            "simulate", str(assay_path),
            "--runs", "4", "--jobs", "1",
            "--faults", "exhaust:cap",
            "--policy", "resynth",
            "--max-attempts", "3",
            "--trace-out", str(trace_path),
            "--stats-json", str(stats_path),
            "--max-devices", "4", "--threshold", "2",
            "--time-limit", "5", "--max-iterations", "0",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "failure rate 0.0%" in out
        assert "resynth=4" in out
        stats = json.loads(stats_path.read_text())
        assert stats["failure_rate"] == 0.0
        assert any(
            e["kind"] == "resynthesis_splice" for e in read_trace(trace_path)
        )
