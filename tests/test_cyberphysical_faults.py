"""Tests for the fault model (repro.cyberphysical.faults)."""

import pytest

from repro.cyberphysical import (
    PERSISTENT,
    FaultKind,
    FaultPlan,
    FaultSpec,
)
from repro.errors import SpecificationError


class TestFaultSpecParse:
    def test_exhaust_shorthand(self):
        spec = FaultSpec.parse("exhaust:capture0")
        assert spec.kind is FaultKind.EXHAUST_RETRIES
        assert spec.target == "capture0"
        assert spec.triggers == 1  # transient by default

    def test_device_down_with_layer(self):
        spec = FaultSpec.parse("down:d1@2")
        assert spec.kind is FaultKind.DEVICE_DOWN
        assert spec.target == "d1"
        assert spec.at_layer == 2
        assert spec.triggers == PERSISTENT

    def test_degrade_with_factor(self):
        spec = FaultSpec.parse("slow:d0*2.5")
        assert spec.kind is FaultKind.DEGRADE
        assert spec.factor == 2.5

    def test_degrade_layer_and_factor(self):
        spec = FaultSpec.parse("slow:d0@1*3")
        assert spec.at_layer == 1
        assert spec.factor == 3.0

    @pytest.mark.parametrize(
        "text",
        ["", "exhaust", "exhaust:", "boom:x", "slow:d0*x", "down:d1@x"],
    )
    def test_rejects_malformed(self, text):
        with pytest.raises(SpecificationError):
            FaultSpec.parse(text)

    def test_rejects_bad_factor(self):
        with pytest.raises(SpecificationError):
            FaultSpec(FaultKind.DEGRADE, "d0", factor=1.0)

    def test_json_roundtrip(self):
        spec = FaultSpec.parse("down:d1@2")
        assert FaultSpec.from_json(spec.to_json()) == spec


class TestFaultPlan:
    def test_parse_list(self):
        plan = FaultPlan.parse("exhaust:cap0, down:d1@1, slow:d0*2")
        assert len(plan) == 3
        assert [f.kind for f in plan] == [
            FaultKind.EXHAUST_RETRIES,
            FaultKind.DEVICE_DOWN,
            FaultKind.DEGRADE,
        ]

    def test_empty_plan(self):
        plan = FaultPlan()
        active = plan.activate()
        assert not active.exhausts("anything")
        assert not active.is_down("d0", 0)
        assert active.slowdown("d0", 0) == 1.0


class TestActiveFaults:
    def test_transient_exhaust_consumed(self):
        active = FaultPlan.parse("exhaust:cap").activate()
        assert active.exhausts("cap")
        assert not active.exhausts("cap")  # trigger spent
        assert active.fired == 1

    def test_persistent_down_keeps_firing(self):
        active = FaultPlan.parse("down:d1").activate()
        assert active.device_down("d1", 0)
        assert active.device_down("d1", 3)
        assert active.is_down("d1", 5)

    def test_down_armed_from_layer(self):
        active = FaultPlan.parse("down:d1@2").activate()
        assert not active.device_down("d1", 0)
        assert not active.is_down("d1", 1)
        assert active.device_down("d1", 2)

    def test_scaled_duration_ceils(self):
        active = FaultPlan.parse("slow:d0*2.5").activate()
        assert active.scaled_duration(3, "d0", 0) == 8  # ceil(7.5)
        assert active.scaled_duration(3, "other", 0) == 3

    def test_stacked_degrades_multiply(self):
        active = FaultPlan.parse("slow:d0*2,slow:d0*3").activate()
        assert active.slowdown("d0", 0) == 6.0
