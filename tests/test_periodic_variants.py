"""Multi-variant shared-schedule synthesis tests."""

from __future__ import annotations

import pytest

from repro.errors import SpecificationError
from repro.operations import AssayBuilder
from repro.periodic import (
    derive_variants,
    prefix_variant,
    shared_skeleton,
    synthesize_shared,
    union_assay,
)


def _family():
    """Two variants sharing a prep/capture core with different tails."""
    full = AssayBuilder("full")
    prep = full.op("prep", 4, container="chamber", function="load")
    cap = full.op(
        "capture", 6, indeterminate=True, accessories=["cell_trap"],
        function="capture", after=[prep],
    )
    lyse = full.op("lyse", 5, container="chamber", function="lyse",
                   after=[cap])
    full.op("detect", 3, accessories=["optical_system"], function="detect",
            after=[lyse])

    qc = AssayBuilder("qc")
    prep2 = qc.op("prep", 4, container="chamber", function="load")
    cap2 = qc.op(
        "capture", 6, indeterminate=True, accessories=["cell_trap"],
        function="capture", after=[prep2],
    )
    qc.op("qc_scan", 2, accessories=["optical_system"], function="detect",
          after=[cap2])
    return full.build(), qc.build()


class TestUnion:
    def test_merges_shared_operations(self):
        full, qc = _family()
        union = union_assay([full, qc])
        assert set(union.uids) == {
            "prep", "capture", "lyse", "detect", "qc_scan"
        }
        assert ("prep", "capture") in union.edges
        assert ("capture", "qc_scan") in union.edges

    def test_conflicting_definition_rejected(self):
        full, _qc = _family()
        other = AssayBuilder("other")
        other.op("prep", 9, container="chamber", function="load")
        with pytest.raises(SpecificationError, match="rename it per variant"):
            union_assay([full, other.build()])

    def test_empty_family_rejected(self):
        with pytest.raises(SpecificationError):
            union_assay([])


class TestSkeleton:
    def test_common_core(self):
        full, qc = _family()
        assert shared_skeleton([full, qc]) == ["capture", "prep"]

    def test_single_variant_is_its_own_skeleton(self):
        full, _qc = _family()
        assert shared_skeleton([full]) == sorted(full.uids)


class TestPrefix:
    def test_prefix_is_dependency_closed(self, indeterminate_assay):
        half = prefix_variant(indeterminate_assay, 0.5)
        kept = set(half.uids)
        for parent, child in indeterminate_assay.edges:
            if child in kept:
                assert parent in kept

    def test_fraction_validated(self, linear_assay):
        with pytest.raises(SpecificationError):
            prefix_variant(linear_assay, 0.0)
        with pytest.raises(SpecificationError):
            prefix_variant(linear_assay, 1.5)

    def test_derive_skips_full_fraction(self, linear_assay):
        variants = derive_variants(linear_assay, (1.0, 0.5))
        assert len(variants) == 2
        assert variants[0] is linear_assay
        assert len(variants[1]) == 2


class TestSharedSynthesis:
    def test_one_binding_serves_every_variant(self, fast_spec):
        full, qc = _family()
        shared = synthesize_shared([full, qc], fast_spec)
        assert len(shared.reports) == 2
        assert shared.skeleton == ["capture", "prep"]
        # The whole point: one shared device set vs one set per variant.
        assert shared.shared_devices <= shared.independent_devices
        for report in shared.reports:
            assert report.shared_ii >= 1
            assert report.independent_ii >= 1
            assert report.shared.ii <= report.shared.base_makespan
            assert report.independent.ii <= report.independent.base_makespan

    def test_prefix_family_end_to_end(self, indeterminate_assay, fast_spec):
        variants = derive_variants(indeterminate_assay, (0.5,))
        shared = synthesize_shared(variants, fast_spec)
        by_name = {r.name: r for r in shared.reports}
        assert set(by_name) == {"ind", "ind[0.5]"}
        # The shortened variant can never need a longer interval than the
        # full protocol under the same binding.
        assert by_name["ind[0.5]"].shared_ii <= by_name["ind"].shared_ii
