"""Direct unit tests for the independent validator (repro.hls.validate).

The integration tests exercise the validator through real synthesis runs;
here we fabricate minimal SynthesisResult objects and inject one specific
violation at a time, checking the validator names it (and nothing else).
"""


from repro.components import Capacity, ContainerKind
from repro.devices import GeneralDevice
from repro.hls import SynthesisSpec
from repro.hls.schedule import HybridSchedule, LayerSchedule, OpPlacement
from repro.hls.synthesizer import SynthesisResult
from repro.hls.validate import collect_violations
from repro.layering import layer_assay
from repro.operations import AssayBuilder


def build_assay():
    b = AssayBuilder("v")
    p = b.op("p", 3, container="chamber")
    g = b.op("g", 2, indeterminate=True, accessories=["cell_trap"],
             after=[p])
    b.op("c", 2, container="chamber", after=[g])
    return b.build()


def chamber(uid):
    return GeneralDevice(uid, ContainerKind.CHAMBER, Capacity.SMALL,
                         frozenset({"cell_trap"}))


def valid_result(**overrides):
    assay = build_assay()
    layering = layer_assay(assay, threshold=2)
    l0 = LayerSchedule(index=0)
    l0.place(OpPlacement("p", "d0", 0, 3))
    l0.place(OpPlacement("g", "d1", 3, 2, indeterminate=True))
    l1 = LayerSchedule(index=1)
    l1.place(OpPlacement("c", "d0", 0, 2))
    schedule = HybridSchedule(layers=[l0, l1])
    fields = dict(
        assay=assay,
        spec=SynthesisSpec(max_devices=4),
        layering=layering,
        schedule=schedule,
        devices={"d0": chamber("d0"), "d1": chamber("d1")},
        paths={("d0", "d1")},
        edge_transport={("p", "g"): 0, ("g", "c"): 0},
    )
    fields.update(overrides)
    return SynthesisResult(**fields)


class TestValidResult:
    def test_clean(self):
        assert collect_violations(valid_result()) == []


class TestSingleViolations:
    def test_missing_operation(self):
        result = valid_result()
        del result.schedule.layers[1].placements["c"]
        violations = collect_violations(result)
        assert any("never placed" in v for v in violations)

    def test_wrong_layer(self):
        result = valid_result()
        layer1 = result.schedule.layers[1]
        placement = layer1.placements.pop("c")
        result.schedule.layers[0].place(placement)
        violations = collect_violations(result)
        assert any("layering assigned" in v for v in violations)

    def test_unknown_device(self):
        result = valid_result()
        del result.devices["d1"]
        violations = collect_violations(result)
        assert any("unknown device" in v for v in violations)

    def test_illegal_binding(self):
        # d1 lacks the chamber requirement? Make a ring device instead.
        ring = GeneralDevice("d0", ContainerKind.RING, Capacity.SMALL,
                             frozenset({"cell_trap"}))
        result = valid_result(devices={"d0": ring, "d1": chamber("d1")})
        violations = collect_violations(result)
        assert any("illegally bound" in v for v in violations)

    def test_device_cap_exceeded(self):
        result = valid_result(spec=SynthesisSpec(max_devices=1))
        violations = collect_violations(result)
        assert any("exceed |D|" in v for v in violations)

    def test_dependency_transport_violated(self):
        result = valid_result(edge_transport={("p", "g"): 5, ("g", "c"): 0})
        violations = collect_violations(result)
        assert any("transport 5" in v for v in violations)

    def test_paths_mismatch(self):
        result = valid_result(paths=set())
        violations = collect_violations(result)
        assert any("paths mismatch" in v for v in violations)

    def test_overlap_on_device(self):
        result = valid_result()
        object.__setattr__(
            result.schedule.layers[0].placements["g"], "device_uid", "d0"
        )
        object.__setattr__(
            result.schedule.layers[0].placements["g"], "start", 1
        )
        result.paths = result.schedule.transportation_paths(
            result.assay.edges
        )
        violations = collect_violations(result)
        assert any("overlaps" in v for v in violations)

    def test_rule14_violated(self):
        # Make the fixed op start after the indeterminate minimum end.
        result = valid_result()
        object.__setattr__(
            result.schedule.layers[0].placements["g"], "start", 0
        )
        # g now ends (min) at 2; p starting at 0..3: set p to start at 3.
        object.__setattr__(
            result.schedule.layers[0].placements["p"], "start", 3
        )
        violations = collect_violations(result)
        assert any("minimum completion" in v for v in violations)
        # (the dependency p->g is now also broken; both reported)
        assert any("starts at" in v for v in violations)
