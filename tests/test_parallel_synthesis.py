"""Parallel speculative re-synthesis (repro.hls.parallel + backends).

The headline property: ``jobs=N`` must be a pure wall-clock optimization —
the synthesized result is byte-identical to the sequential run.  The
determinism test pins the configuration to one where every layer solve
terminates on its MIP gap (status ``optimal``); a wall-clock-truncated
solve is not run-to-run deterministic even sequentially, so nothing can be
asserted there (see the ``hls/parallel.py`` module docstring).
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.assays import benchmark_assay
from repro.errors import ReproError, SpecificationError
from repro.hls import (
    SynthesisSpec,
    UidAllocator,
    available_schedulers,
    create_scheduler,
    strict_fingerprint_layer_problem,
    synthesize,
)
from repro.hls.cache import encode_layer_result, materialize_layer_result
from repro.hls.context import PassState, SynthesisContext
from repro.hls.parallel import LayerWork, solve_layer_work
from repro.hls.pipeline import LayeringStage, prepare_layer_problem
from repro.io.json_io import result_to_json

#: All layer solves of case 2 under this spec terminate on the proven MIP
#: gap ("optimal"), which makes whole runs — sequential or parallel —
#: reproducible byte for byte.
DETERMINISTIC_SPEC = SynthesisSpec(
    max_devices=25,
    threshold=4,
    time_limit=60.0,
    mip_gap=0.05,
    max_iterations=2,
)

_RUNS: dict[int, object] = {}


def _run(jobs: int):
    if jobs not in _RUNS:
        _RUNS[jobs] = synthesize(
            benchmark_assay(2), DETERMINISTIC_SPEC, jobs=jobs
        )
    return _RUNS[jobs]


def _report(result) -> str:
    return json.dumps(
        result_to_json(result, deterministic=True), indent=2, sort_keys=True
    )


class TestDeterminism:
    def test_parallel_matches_sequential_byte_for_byte(self):
        """Table 3 case 2: jobs=4 output == jobs=1 output, exactly."""
        assert _report(_run(4)) == _report(_run(1))

    def test_parallel_run_adopted_speculative_solves(self):
        """The identity above is only meaningful if workers actually
        contributed solves (otherwise it compares sequential to
        sequential)."""
        parallel = _run(4)
        assert parallel.speculative_solves > 0
        sequential = _run(1)
        assert sequential.speculative_solves == 0

    def test_speculative_solves_counted_as_misses(self):
        """Adopted worker solves must not masquerade as cache hits — the
        convergence criterion (``all_cache_hits``) depends on it."""
        parallel = _run(4)
        for stats in parallel.solve_stats:
            if stats.speculative:
                assert not stats.cache_hit


def _layer0_problem(assay, spec):
    context = SynthesisContext(assay=assay, spec=spec)
    LayeringStage().run(context)
    return prepare_layer_problem(
        assay,
        context.layering,
        spec,
        context.transport,
        PassState(),
        context.layering.layers[0],
        resynthesis=False,
    )


class TestWireFormat:
    """LayerProblem / LayerSolveResult cross the process boundary intact."""

    def test_layer_problem_pickle_round_trip(self, indeterminate_assay, fast_spec):
        problem = _layer0_problem(indeterminate_assay, fast_spec)
        clone = pickle.loads(pickle.dumps(problem))
        assert strict_fingerprint_layer_problem(
            clone, fast_spec
        ) == strict_fingerprint_layer_problem(problem, fast_spec)

    def test_layer_result_pickle_round_trip(self, indeterminate_assay, fast_spec):
        problem = _layer0_problem(indeterminate_assay, fast_spec)
        result = create_scheduler(fast_spec.scheduler).solve(
            problem, fast_spec, UidAllocator()
        )
        clone = pickle.loads(pickle.dumps(result))
        assert clone.binding == result.binding
        assert clone.schedule.makespan == result.schedule.makespan
        assert [d.uid for d in clone.new_devices] == [
            d.uid for d in result.new_devices
        ]

    def test_worker_entry_point_matches_inline_solve(
        self, indeterminate_assay, fast_spec
    ):
        problem = _layer0_problem(indeterminate_assay, fast_spec)
        work = LayerWork(
            strict_key=strict_fingerprint_layer_problem(problem, fast_spec),
            problem=pickle.loads(pickle.dumps(problem)),
            spec=fast_spec,
            warm_from=None,
        )
        outcome = solve_layer_work(work)
        assert outcome[0] == "ok"
        _tag, entry, stats = outcome
        adopted = materialize_layer_result(entry, problem, UidAllocator())
        inline = create_scheduler(fast_spec.scheduler).solve(
            problem, fast_spec, UidAllocator()
        )
        assert adopted.binding == inline.binding
        assert adopted.schedule.makespan == inline.schedule.makespan
        assert stats.solve_time >= 0

    def test_worker_reports_failures_instead_of_raising(
        self, monkeypatch, fast_spec
    ):
        """A worker error comes back as a tagged tuple: the parent then
        re-solves inline, which reproduces (and properly raises) it."""
        import repro.hls.parallel as parallel_mod

        def boom(name):
            raise ReproError("backend exploded")

        monkeypatch.setattr(parallel_mod, "create_scheduler", boom)
        bad = LayerWork(strict_key="x", problem=None, spec=fast_spec, warm_from=None)
        assert solve_layer_work(bad) == ("error", "backend exploded")

    def test_encode_decode_round_trip(self, indeterminate_assay, fast_spec):
        problem = _layer0_problem(indeterminate_assay, fast_spec)
        result = create_scheduler(fast_spec.scheduler).solve(
            problem, fast_spec, UidAllocator()
        )
        entry = encode_layer_result(problem, result)
        assert entry is not None
        replayed = materialize_layer_result(entry, problem, UidAllocator())
        assert replayed.binding == result.binding
        assert replayed.schedule.makespan == result.schedule.makespan


class TestSchedulerRegistry:
    def test_builtin_backends_registered(self):
        names = available_schedulers()
        assert {"portfolio", "greedy", "ilp-highs", "ilp-bnb"} <= set(names)

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ReproError):
            create_scheduler("simulated-annealing")

    def test_spec_validates_scheduler(self):
        with pytest.raises(SpecificationError):
            SynthesisSpec(scheduler="simulated-annealing")

    def test_backends_expose_names(self):
        for name in available_schedulers():
            assert create_scheduler(name).name == name


class TestUidAllocator:
    def test_sequential_uids(self):
        uids = UidAllocator()
        assert [uids() for _ in range(3)] == ["d0", "d1", "d2"]

    def test_clone_is_independent(self):
        uids = UidAllocator()
        uids()
        twin = uids.clone()
        assert twin() == uids() == "d1"
        twin()
        assert uids.counter == 2 and twin.counter == 3
