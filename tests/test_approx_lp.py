"""Certified synthesis quality: the lp-bound / approx-lp backends and the
bound/gap plumbing through results, reports and the service payload.

Three properties anchor the suite: rounded schedules are *feasible* on
every paper case, every reported ``lower_bound`` really bounds the
achieved objective, and ``--jobs N`` stays byte-identical with the new
backends in the race.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.assays import benchmark_assay
from repro.hls import SynthesisSpec, available_schedulers, synthesize
from repro.ilp import relative_gap
from repro.io.json_io import (
    assay_to_json,
    result_to_json,
    spec_to_json,
)

#: Same pinned configuration as tests/test_parallel_synthesis.py: every
#: layer solve terminates on its MIP gap, making runs reproducible byte
#: for byte.
DETERMINISTIC_KWARGS = dict(
    max_devices=25, threshold=4, time_limit=60.0, mip_gap=0.05,
    max_iterations=2,
)

_RUNS: dict[tuple, object] = {}


def _case_run(case: int):
    """One cheap single-pass approx-lp run per paper case."""
    key = ("case", case)
    if key not in _RUNS:
        spec = SynthesisSpec(
            threshold=4, time_limit=10.0, max_iterations=0,
            scheduler="approx-lp",
        )
        _RUNS[key] = synthesize(benchmark_assay(case), spec)
    return _RUNS[key]


def _jobs_run(scheduler: str, jobs: int):
    key = (scheduler, jobs)
    if key not in _RUNS:
        spec = SynthesisSpec(scheduler=scheduler, **DETERMINISTIC_KWARGS)
        _RUNS[key] = synthesize(benchmark_assay(2), spec, jobs=jobs)
    return _RUNS[key]


def _report(result) -> str:
    return json.dumps(
        result_to_json(result, deterministic=True), indent=2, sort_keys=True
    )


class TestRegistry:
    def test_new_backends_registered(self):
        names = available_schedulers()
        assert "lp-bound" in names
        assert "approx-lp" in names


class TestRoundedFeasibility:
    @pytest.mark.parametrize("case", (1, 2, 3))
    def test_schedule_validates(self, case):
        """Rounded-and-repaired schedules pass full validation on every
        paper case — rounding may only change cost, never feasibility."""
        result = _case_run(case)
        result.validate()

    @pytest.mark.parametrize("case", (1, 2, 3))
    def test_run_is_certified(self, case):
        """The LP bound survives to the result: a finite certificate with
        ``lower_bound <= objective``."""
        result = _case_run(case)
        assert result.lower_bound is not None
        assert math.isfinite(result.lower_bound)
        gap = result.integrality_gap
        assert gap is not None and 0.0 <= gap < 1.0


class TestBoundInvariant:
    @pytest.mark.parametrize("case", (1, 2, 3))
    def test_layer_bounds_below_objectives(self, case):
        """Per-layer: a certified bound never exceeds the achieved layer
        objective, and the recorded gap is the achieved one."""
        result = _case_run(case)
        certified = 0
        for stats in result.solve_stats:
            if stats.lower_bound is None:
                assert stats.integrality_gap is None
                continue
            certified += 1
            assert stats.objective is not None
            assert stats.lower_bound <= stats.objective + 1e-9
            assert stats.integrality_gap == relative_gap(
                stats.objective, stats.lower_bound
            )
        assert certified > 0

    def test_result_json_carries_finite_certificate(self):
        report = result_to_json(_case_run(1), deterministic=True)
        # Strict JSON (allow_nan=False) — no NaN/inf tokens anywhere.
        json.dumps(report, allow_nan=False)
        assert report["lower_bound"] is not None
        assert report["lower_bound"] <= sum(
            s.objective
            for s in _case_run(1).solve_stats
            if s.objective is not None
        ) + 1e-6
        assert report["history"][0]["integrality_gap"] is not None


class TestParallelByteIdentity:
    @pytest.mark.parametrize("scheduler", ("lp-bound", "approx-lp"))
    def test_jobs_match_sequential(self, scheduler):
        """jobs=2 output == jobs=1 output, exactly, for both new backends
        (bound fields included — they ride in SolveStats over the wire)."""
        assert _report(_jobs_run(scheduler, 2)) == _report(
            _jobs_run(scheduler, 1)
        )


class TestDegradedCertificate:
    def test_degraded_job_reports_finite_gap(self):
        """A spec that forces a wall-clock timeout still comes back with a
        certified gap: the degraded re-run pins the lp-bound scheduler and
        widens the LP budget."""
        from repro.service.worker import run_job

        body = {
            "assay": assay_to_json(benchmark_assay(1)),
            "spec": spec_to_json(
                SynthesisSpec(threshold=4, time_limit=0.01, max_iterations=0)
            ),
            "method": "hls",
            "degraded": True,
        }
        tag, payload, _cache = run_job(body)
        assert tag == "ok"
        assert payload["degraded"] is True
        quality = payload["quality"]
        assert quality["lower_bound"] is not None
        assert quality["integrality_gap"] is not None
        assert 0.0 <= quality["integrality_gap"] < 1.0
        json.dumps(payload, allow_nan=False)
