"""Tests for the DOT export (repro.io.dot)."""

from repro.hls import synthesize
from repro.io import assay_to_dot, chip_to_dot
from repro.layering import layer_assay
from repro.operations import AssayBuilder


def sample_assay():
    b = AssayBuilder("dot-demo")
    prep = b.op("prep", 3, container="chamber")
    cap = b.op("cap", 5, indeterminate=True,
               accessories=["cell_trap"], after=[prep])
    b.op("read", 2, accessories=["optical_system"], after=[cap])
    return b.build()


class TestAssayDot:
    def test_contains_all_nodes_and_edges(self):
        assay = sample_assay()
        dot = assay_to_dot(assay)
        for uid in assay.uids:
            assert f'"{uid}"' in dot
        assert '"prep" -> "cap";' in dot
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")

    def test_indeterminate_shape(self):
        dot = assay_to_dot(sample_assay())
        assert "doubleoctagon" in dot

    def test_layer_clusters(self):
        assay = sample_assay()
        layering = layer_assay(assay, threshold=10)
        dot = assay_to_dot(assay, layering)
        assert "cluster_layer0" in dot
        assert "cluster_layer1" in dot

    def test_quoting(self):
        b = AssayBuilder("q")
        b.op('tricky"name', 1)
        dot = assay_to_dot(b.build())
        assert r"\"" in dot


class TestChipDot:
    def test_devices_and_paths(self, fast_spec):
        assay = sample_assay()
        result = synthesize(assay, fast_spec)
        dot = chip_to_dot(result)
        for uid in result.devices:
            assert f'"{uid}"' in dot
        # Every recorded path appears as an undirected edge.
        assert dot.count("dir=none") == result.num_paths

    def test_accessory_labels(self, fast_spec):
        result = synthesize(sample_assay(), fast_spec)
        dot = chip_to_dot(result)
        assert "cell_trap" in dot
