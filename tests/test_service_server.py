"""End-to-end tests for the synthesis service (server + client).

A real server runs in a background thread on an ephemeral port with a
real process pool; the typed client talks to it over HTTP.  Kept fast by
solving only the small fixture assays under tight specs.
"""

import threading

import pytest

from repro.errors import ServiceError
from repro.hls import SynthesisSpec, synthesize
from repro.io import json_result_equal
from repro.io.json_io import assay_to_json, result_to_json
from repro.service import ServerConfig, ServiceClient, run_server


def service_spec() -> SynthesisSpec:
    return SynthesisSpec(
        max_devices=6, threshold=2, time_limit=5.0, max_iterations=0
    )


@pytest.fixture(scope="module")
def client(tmp_path_factory):
    """One live server (thread + process pool) shared by the module."""
    config = ServerConfig(
        port=0,
        workers=2,
        store_dir=str(tmp_path_factory.mktemp("svc") / "store"),
        job_timeout=120.0,
        allow_debug=True,
    )
    started = threading.Event()
    holder = {}

    def announce(server):
        holder["port"] = server.port
        started.set()

    thread = threading.Thread(
        target=run_server, args=(config,), kwargs={"announce": announce},
        daemon=True,
    )
    thread.start()
    assert started.wait(20), "server did not start"
    client = ServiceClient(port=holder["port"], timeout=60.0)
    yield client
    client.shutdown()
    thread.join(20)


class TestEndpoints:
    def test_health(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["workers"] == 2
        assert health["persistent_store"] is True

    def test_metrics_shape(self, client):
        metrics = client.metrics()
        assert "counters" in metrics
        assert "histograms" in metrics
        assert "store" in metrics
        assert "solve_cache" in metrics
        assert metrics["workers"]["pool_size"] == 2

    def test_unknown_route_404(self, client):
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404

    def test_unknown_job_404(self, client):
        with pytest.raises(ServiceError) as err:
            client.status("job-9999")
        assert err.value.status == 404

    def test_malformed_assay_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit({"not": "an assay"})
        assert err.value.status == 400
        assert err.value.kind == "bad-request"

    def test_unknown_method_400(self, client):
        with pytest.raises(ServiceError) as err:
            client.submit({"format": 1}, method="quantum")
        assert err.value.status == 400


class TestSolves:
    def test_server_result_equals_direct(self, client, linear_assay):
        spec = service_spec()
        payload = client.synthesize(linear_assay, spec, deadline=120.0)
        direct = result_to_json(synthesize(linear_assay, spec),
                                deterministic=True)
        assert json_result_equal(payload["result"], direct)
        assert payload["profile"]["totals"]["ilp_solves"] >= 1

    def test_resubmission_hits_the_store(self, client, linear_assay):
        spec = service_spec()
        client.synthesize(linear_assay, spec, deadline=120.0)
        before = client.metrics()["counters"].get("store_hits", 0)
        handle = client.submit(linear_assay, spec)
        assert handle.status == "done"
        assert handle.source == "store"
        after = client.metrics()["counters"]["store_hits"]
        assert after == before + 1

    def test_different_spec_is_a_different_run(self, client, linear_assay):
        spec = service_spec()
        other = SynthesisSpec(
            max_devices=5, threshold=2, time_limit=5.0, max_iterations=0
        )
        a = client.synthesize(linear_assay, spec, deadline=120.0)
        handle = client.submit(linear_assay, other)
        handle = client.wait(handle.id, deadline=120.0)
        assert handle.status == "done"
        b = client.result(handle.id)
        assert a["job"]["fingerprint"] != b["job"]["fingerprint"]

    def test_synthesis_failure_is_structured(self, client, linear_assay):
        bad = SynthesisSpec(
            max_devices=1, threshold=2, time_limit=5.0, max_iterations=0
        )
        handle = client.submit(linear_assay, bad)
        handle = client.wait(handle.id, deadline=120.0)
        if handle.status == "failed":  # 1 device may or may not suffice
            assert handle.error["kind"] in ("synthesis-failed", "bad-request")
            with pytest.raises(ServiceError):
                client.result(handle.id)

    def test_jobs_listing(self, client):
        jobs = client.jobs()
        assert jobs, "previous tests should have left history"
        assert all(j.id.startswith("job-") for j in jobs)


class TestCrashRecovery:
    def test_worker_death_fails_only_that_job(self, client, linear_assay):
        crash = client.submit({"format": 1}, method="debug-crash")
        crash = client.wait(crash.id, deadline=60.0)
        assert crash.status == "failed"
        assert crash.error["kind"] == "worker-crashed"
        # The server survives and keeps solving.
        payload = client.synthesize(
            linear_assay, service_spec(), deadline=120.0
        )
        assert payload["result"]["num_devices"] >= 1
        assert client.metrics()["counters"]["worker_restarts"] >= 1


class TestClientParsing:
    def test_from_address(self):
        client = ServiceClient.from_address("example.org:1234")
        assert (client.host, client.port) == ("example.org", 1234)
        assert ServiceClient.from_address(":8642").host == "127.0.0.1"

    def test_bad_address(self):
        with pytest.raises(ServiceError) as err:
            ServiceClient.from_address("no-port")
        assert err.value.kind == "bad-address"

    def test_unreachable_server(self):
        client = ServiceClient(port=1, timeout=2.0)
        with pytest.raises(ServiceError) as err:
            client.health()
        assert err.value.status == 503

    def test_submit_accepts_raw_dicts(self, client, linear_assay):
        handle = client.submit(assay_to_json(linear_assay))
        handle = client.wait(handle.id, deadline=120.0)
        assert handle.status == "done"
