"""Tests for repro.graphs.maxflow (Edmonds–Karp / Ford–Fulkerson)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphError
from repro.graphs import FlowNetwork, max_flow_min_cut


def network(*edges):
    net = FlowNetwork()
    for src, dst, cap in edges:
        net.add_edge(src, dst, cap)
    return net


class TestBasics:
    def test_single_edge(self):
        cut = max_flow_min_cut(network(("s", "t", 7)), "s", "t")
        assert cut.value == 7

    def test_bottleneck(self):
        cut = max_flow_min_cut(
            network(("s", "a", 5), ("a", "t", 2)), "s", "t"
        )
        assert cut.value == 2

    def test_parallel_edges_merge(self):
        net = network(("s", "t", 2))
        net.add_edge("s", "t", 3)
        assert max_flow_min_cut(net, "s", "t").value == 5

    def test_disconnected_zero_flow(self):
        net = network(("s", "a", 4))
        net.add_node("t")
        cut = max_flow_min_cut(net, "s", "t")
        assert cut.value == 0
        assert "t" in cut.sink_side

    def test_clrs_example(self):
        # Classic CLRS Fig 26 network, max flow 23.
        net = network(
            ("s", "v1", 16), ("s", "v2", 13), ("v1", "v3", 12),
            ("v2", "v1", 4), ("v2", "v4", 14), ("v3", "v2", 9),
            ("v3", "t", 20), ("v4", "v3", 7), ("v4", "t", 4),
        )
        assert max_flow_min_cut(net, "s", "t").value == 23

    def test_negative_capacity_rejected(self):
        with pytest.raises(GraphError):
            network(("a", "b", -1))

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            network(("a", "a", 1))

    def test_missing_endpoint(self):
        with pytest.raises(GraphError):
            max_flow_min_cut(network(("s", "t", 1)), "s", "nope")

    def test_source_equals_sink(self):
        with pytest.raises(GraphError):
            max_flow_min_cut(network(("s", "t", 1)), "s", "s")


class TestCutSides:
    def test_cut_partitions_nodes(self):
        net = network(("s", "a", 3), ("a", "t", 1))
        cut = max_flow_min_cut(net, "s", "t")
        assert cut.source_side | cut.sink_side == set(net.nodes)
        assert not cut.source_side & cut.sink_side

    def test_cut_edges_capacity_equals_value(self):
        net = network(
            ("s", "a", 3), ("s", "b", 2), ("a", "t", 1), ("b", "t", 4)
        )
        cut = max_flow_min_cut(net, "s", "t")
        assert sum(net.capacity(u, v) for u, v in cut.cut_edges) == cut.value

    def test_minimal_sink_side(self):
        # Chain s -> a -> b -> t with uniform capacity: every single edge is
        # a min cut; the minimal sink side is just {t}.
        net = network(("s", "a", 1), ("a", "b", 1), ("b", "t", 1))
        cut = max_flow_min_cut(net, "s", "t")
        assert cut.sink_side_minimal == {"t"}
        # ... and the maximal source side variant puts everything else at s.
        assert cut.source_side == {"s"}

    def test_fig5_style_preference(self):
        # Paper Fig. 5(d): cuts below the join put fewer vertices on the
        # sink side; sink_side_minimal should contain only the sink when a
        # min cut exists directly above it.
        net = network(
            ("src", "a", 1), ("src", "b", 1),
            ("a", "j", 1), ("b", "j", 1), ("j", "t", 1),
        )
        cut = max_flow_min_cut(net, "src", "t")
        assert cut.value == 1
        assert cut.sink_side_minimal == {"t"}


class TestInfiniteCapacity:
    def test_infinite_edge_never_cut(self):
        net = network(
            ("s", "a", float("inf")), ("a", "t", 3)
        )
        cut = max_flow_min_cut(net, "s", "t")
        assert cut.value == 3
        assert ("s", "a") not in cut.cut_edges


@settings(max_examples=50, deadline=None)
@given(
    caps=st.lists(
        st.integers(min_value=0, max_value=10), min_size=6, max_size=6
    )
)
def test_flow_conservation_random_diamond(caps):
    """Max-flow on a random diamond equals the min over all three cuts."""
    c_sa, c_sb, c_ab, c_at, c_bt, c_st = caps
    net = FlowNetwork()
    net.add_edge("s", "a", c_sa)
    net.add_edge("s", "b", c_sb)
    net.add_edge("a", "b", c_ab)
    net.add_edge("a", "t", c_at)
    net.add_edge("b", "t", c_bt)
    net.add_edge("s", "t", c_st)
    cut = max_flow_min_cut(net, "s", "t")
    # Flow never exceeds total out-capacity of s or in-capacity of t.
    assert cut.value <= c_sa + c_sb + c_st
    assert cut.value <= c_at + c_bt + c_st
    # The reported cut is a certificate: crossing capacity == flow value.
    crossing = sum(net.capacity(u, v) for u, v in cut.cut_edges)
    assert crossing == cut.value
