"""Whole-model consistency: solved layer models satisfy their own
constraints, and the decoder agrees with the model's objective terms."""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.assays import random_assay
from repro.hls import SynthesisSpec
from repro.hls.decode import decode_layer_solution
from repro.hls.milp_model import LayerProblem, build_layer_model
from repro.hls.synthesizer import layer_cost
from repro.layering import layer_assay

COUNTER = itertools.count(5000)


def fresh_uid():
    return f"c{next(COUNTER)}"


def first_layer_problem(assay, spec):
    layering = layer_assay(assay, spec.threshold)
    layer = layering.layers[0]
    uids = set(layer.uids)
    ops = [assay[uid] for uid in layer.uids]
    edges = [(p, c) for p, c in assay.edges if p in uids and c in uids]
    transport = {e: spec.transport_default for e in edges}
    release = {
        op.uid: max((transport[e] for e in edges if e[0] == op.uid),
                    default=0)
        for op in ops
    }
    return LayerProblem(
        layer_index=0,
        ops=ops,
        in_layer_edges=edges,
        edge_transport=transport,
        release=release,
        fixed_devices=[],
        free_slots=min(spec.max_devices, len(ops)),
    )


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 400), num_ops=st.integers(2, 7))
def test_solution_satisfies_every_constraint(seed, num_ops):
    """`Model.check` over the solver's own values must be clean — catches
    matrix-export bugs where the solver solves a different model than the
    one we built."""
    assay = random_assay(num_ops, seed=seed, indeterminate_fraction=0.25,
                         max_duration=9)
    spec = SynthesisSpec(max_devices=num_ops + 1, threshold=3, time_limit=8)
    problem = first_layer_problem(assay, spec)
    layer_model = build_layer_model(problem, spec)
    solution = layer_model.model.solve(time_limit=spec.time_limit)
    assert solution.status.has_solution
    assert layer_model.model.check(solution.values) == []


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 300), num_ops=st.integers(2, 6))
def test_decoder_cost_matches_model_objective(seed, num_ops):
    """layer_cost(decoded) == the ILP's objective value (same weighting on
    both sides of the greedy-vs-ILP race)."""
    assay = random_assay(num_ops, seed=seed, indeterminate_fraction=0.0,
                         max_duration=9, edge_probability=0.2)
    spec = SynthesisSpec(max_devices=num_ops + 1, threshold=3, time_limit=8)
    problem = first_layer_problem(assay, spec)
    layer_model = build_layer_model(problem, spec)
    solution = layer_model.model.solve(time_limit=spec.time_limit)
    assert solution.status.name == "OPTIMAL"
    decoded = decode_layer_solution(layer_model, solution, fresh_uid)
    assert layer_cost(decoded, problem, spec) == pytest.approx(
        solution.objective, abs=1e-4
    )
