"""Incremental-ILP tests: model mutation, solver sessions, layer deltas,
and lazy conflict separation (repro.ilp.model / repro.hls.session /
repro.hls.milp_model)."""

import itertools
import sys

import numpy as np
import pytest

from repro.errors import ModelError, SolverError
from repro.hls import SessionPool, SynthesisSpec
from repro.hls.backends import _relaxation_bound, _run_layer_solve
from repro.hls.cache import structural_fingerprint_layer_problem
from repro.hls.milp_model import (
    LayerProblem,
    apply_layer_delta,
    build_layer_model,
    encode_layer_delta,
    ensure_fully_separated,
    separate_conflicts,
    unemitted_violations,
)
from repro.ilp import Model, ModelDelta, SolveStatus, attach, available_backends
from repro.ilp.solve import solve

COUNTER = itertools.count()


def fresh_uid():
    return f"nd{next(COUNTER)}"


def forms_equal(a, b):
    """Byte-identical standard forms (same rows, bounds, objective)."""
    if [v.name for v in a.variables] != [v.name for v in b.variables]:
        return False
    if a.a_matrix.shape != b.a_matrix.shape:
        return False
    dense_a, dense_b = a.a_matrix.toarray(), b.a_matrix.toarray()
    return (
        np.array_equal(dense_a, dense_b)
        and np.array_equal(a.c, b.c)
        and np.array_equal(a.row_lower, b.row_lower)
        and np.array_equal(a.row_upper, b.row_upper)
        and np.array_equal(a.var_lower, b.var_lower)
        and np.array_equal(a.var_upper, b.var_upper)
        and np.array_equal(a.integrality, b.integrality)
        and a.sense == b.sense
        and a.c0 == b.c0
    )


# ---------------------------------------------------------------------------
# Model mutation API
# ---------------------------------------------------------------------------


class TestModelMutation:
    def build(self):
        m = Model("mut")
        x = m.integer("x", lb=0, ub=10)
        y = m.integer("y", lb=0, ub=10)
        m.add(x + y >= 4, name="cover")
        m.minimize(3 * x + 2 * y)
        return m, x, y

    def test_revision_strictly_monotonic(self):
        m, x, y = self.build()
        seen = [m.revision]
        m.set_rhs("cover", 5)
        seen.append(m.revision)
        m.set_coefficient("cover", x, 2.0)
        seen.append(m.revision)
        m.set_variable_bounds(x, ub=8)
        seen.append(m.revision)
        m.set_objective_coefficient(y, 5.0)
        seen.append(m.revision)
        m.set_objective_constant(7.0)
        seen.append(m.revision)
        m.add(x - y <= 3, name="extra")
        seen.append(m.revision)
        m.remove_constraint("extra")
        seen.append(m.revision)
        assert seen == sorted(seen)
        assert len(set(seen)) == len(seen)

    def test_remove_named_constraint_twice_raises(self):
        m, x, y = self.build()
        m.remove_constraint("cover")
        assert not m.has_constraint("cover")
        with pytest.raises(ModelError):
            m.remove_constraint("cover")

    def test_unknown_constraint_lookup_raises(self):
        m, _, _ = self.build()
        with pytest.raises(ModelError):
            m.constraint("nope")

    def test_duplicate_names_resolve_to_most_recent(self):
        # The layer model emits duplicate-named rows (path_in/path_out with
        # several cross-layer parents); the named index must not reject
        # them, and mutation addresses the most recently added row.
        m = Model()
        x = m.binary("x")
        first = m.add(x <= 1, name="dup")
        second = m.add(x >= 0, name="dup")
        assert m.constraint("dup") is second
        assert first in m.constraints

    def test_set_rhs_and_coefficient_reach_standard_form(self):
        m, x, y = self.build()
        m.set_rhs("cover", 6)
        m.set_coefficient("cover", x, 3.0)
        scratch = Model("scratch")
        sx = scratch.integer("x", lb=0, ub=10)
        sy = scratch.integer("y", lb=0, ub=10)
        scratch.add(3 * sx + sy >= 6, name="cover")
        scratch.minimize(3 * sx + 2 * sy)
        assert forms_equal(m.to_standard_form(), scratch.to_standard_form())

    def test_bounds_validation(self):
        m, x, _ = self.build()
        with pytest.raises(ModelError):
            m.set_variable_bounds(x, lb=5, ub=3)

    def test_foreign_variable_rejected(self):
        m, x, _ = self.build()
        other = Model()
        z = other.binary("z")
        with pytest.raises(ModelError):
            m.set_objective_coefficient(z, 1.0)
        with pytest.raises(ModelError):
            m.set_coefficient("cover", z, 1.0)

    def test_delta_batches_mutations(self):
        m, x, y = self.build()
        delta = ModelDelta()
        assert delta.empty and len(delta) == 0
        delta.set_rhs("cover", 6)
        delta.set_variable_bounds(x, ub=7)
        delta.set_objective_constant(1.5)
        assert len(delta) == 3 and not delta.empty
        before = m.revision
        delta.apply_to(m)
        assert m.revision == before + 3
        solution = solve(m, backend=available_backends()[0])
        assert solution.status is SolveStatus.OPTIMAL
        # min 3x+2y+1.5 s.t. x+y>=6 -> all y.
        assert solution.objective == pytest.approx(13.5)

    def test_update_coefficient_on_presolved_away_variable(self):
        # Presolve folds the singleton row on x into its bounds and can
        # eliminate the variable from the reduced form; mutating that
        # coefficient afterwards must still re-solve correctly because
        # each solve re-extracts from the (mutated) model, not from the
        # earlier presolve reduction.
        m = Model("pre")
        x = m.integer("x", lb=0, ub=100)
        y = m.integer("y", lb=0, ub=100)
        m.add(2 * x <= 9, name="cap")  # singleton: folds to x <= 4
        m.add(x + y >= 6, name="cover")
        m.minimize(x + 3 * y)
        first = solve(m, backend="bnb")
        assert first.objective == pytest.approx(4 + 3 * 2)
        m.set_coefficient("cap", x, 4.0)  # now x <= 2
        second = solve(m, backend="bnb")
        assert second.objective == pytest.approx(2 + 3 * 4)


# ---------------------------------------------------------------------------
# Solver sessions on plain ILP models
# ---------------------------------------------------------------------------


def session_backends():
    return list(available_backends())


class TestSolverSessions:
    def knapsack(self):
        m = Model("knap")
        xs = [m.binary(f"x{i}") for i in range(4)]
        weights = [4, 3, 2, 5]
        values = [5, 4, 3, 7]
        m.add(
            sum(w * x for w, x in zip(weights, xs)) <= 7, name="weight"
        )
        m.maximize(sum(v * x for v, x in zip(values, xs)))
        return m, xs

    @pytest.mark.parametrize("backend", session_backends())
    def test_session_matches_direct_solve(self, backend):
        m, _ = self.knapsack()
        direct = solve(m, backend=backend)
        m2, _ = self.knapsack()
        session = attach(m2, backend=backend)
        via_session = session.solve()
        assert via_session.objective == pytest.approx(direct.objective)
        session.close()

    @pytest.mark.parametrize("backend", session_backends())
    def test_delta_resolve_matches_scratch(self, backend):
        m, xs = self.knapsack()
        session = attach(m, backend=backend)
        session.solve()
        delta = ModelDelta()
        delta.set_rhs("weight", 9)
        delta.set_objective_coefficient(xs[0], 9.0)
        session.apply(delta)
        mutated = session.solve()
        scratch = Model("scratch")
        ys = [scratch.binary(f"x{i}") for i in range(4)]
        scratch.add(
            4 * ys[0] + 3 * ys[1] + 2 * ys[2] + 5 * ys[3] <= 9, name="weight"
        )
        scratch.maximize(9 * ys[0] + 4 * ys[1] + 3 * ys[2] + 7 * ys[3])
        expected = solve(scratch, backend=backend)
        assert mutated.objective == pytest.approx(expected.objective)
        session.close()

    def test_highs_session_form_identity_after_mutations(self):
        pytest.importorskip("scipy")
        m, xs = self.knapsack()
        session = attach(m, backend="highs")
        delta = ModelDelta()
        delta.set_rhs("weight", 8)
        delta.set_coefficient("weight", xs[2], 1.0)
        delta.add(xs[0] + xs[1] <= 1, name="pick_one")
        session.apply(delta)
        assert forms_equal(session._form(), m.to_standard_form())
        # Row removal re-indexes the cached extraction.
        removal = ModelDelta()
        removal.remove("pick_one")
        session.apply(removal)
        assert forms_equal(session._form(), m.to_standard_form())
        session.close()

    def test_bnb_session_carries_incumbent(self):
        m, _ = self.knapsack()
        session = attach(m, backend="bnb")
        first = session.solve()
        assert first.status is SolveStatus.OPTIMAL
        assert session._incumbent is not None
        follow = session.solve()
        assert follow.objective == pytest.approx(first.objective)
        assert follow.stats is not None and follow.stats.warm_started
        session.close()
        assert session._incumbent is None

    def test_bnb_session_drops_invalidated_incumbent(self):
        m, xs = self.knapsack()
        session = attach(m, backend="bnb")
        session.solve()
        delta = ModelDelta()
        # Forbid everything the incumbent picked: it no longer validates.
        delta.set_rhs("weight", 2)
        session.apply(delta)
        follow = session.solve()
        assert follow.status is SolveStatus.OPTIMAL
        assert follow.objective == pytest.approx(3.0)  # only x2 fits
        session.close()

    def test_attach_unknown_backend(self):
        m, _ = self.knapsack()
        with pytest.raises(SolverError, match="unknown"):
            attach(m, backend="gurobi")

    def test_missing_scipy_reports_backend_choices(self, monkeypatch):
        # Satellite: backend="highs" without SciPy must raise SolverError
        # naming the missing dependency and the available backends, not a
        # bare ImportError from deep inside the import chain.
        import repro.ilp as ilp_pkg
        import repro.ilp.solve as solve_mod

        monkeypatch.delattr(ilp_pkg, "highs", raising=False)
        monkeypatch.setitem(sys.modules, "repro.ilp.highs", None)
        monkeypatch.setattr(solve_mod, "_HAS_SCIPY", None, raising=False)
        m, _ = self.knapsack()
        with pytest.raises(SolverError, match="SciPy") as excinfo:
            solve(m, backend="highs")
        assert "bnb" in str(excinfo.value)


# ---------------------------------------------------------------------------
# Layer deltas + session pool
# ---------------------------------------------------------------------------


def layer_problem(transport=2, durations=(3, 4, 5), slots=2):
    from repro.operations import Fixed, Operation

    ops = [
        Operation(f"o{i}", Fixed(d)) for i, d in enumerate(durations)
    ]
    edges = [("o0", "o1"), ("o1", "o2")]
    edge_transport = {e: transport for e in edges}
    release = {
        op.uid: max(
            (edge_transport[e] for e in edges if e[0] == op.uid), default=0
        )
        for op in ops
    }
    return LayerProblem(
        layer_index=0,
        ops=ops,
        in_layer_edges=edges,
        edge_transport=edge_transport,
        release=release,
        fixed_devices=[],
        free_slots=slots,
    )


class TestLayerDelta:
    def spec(self, **kwargs):
        kwargs.setdefault("max_devices", 6)
        kwargs.setdefault("time_limit", 10.0)
        return SynthesisSpec(**kwargs)

    def test_delta_model_equals_scratch_build(self):
        spec = self.spec()
        layer_model = build_layer_model(layer_problem(transport=2), spec)
        changed = layer_problem(transport=4)
        encoded = encode_layer_delta(layer_model, changed, spec)
        assert encoded is not None
        delta, horizon = encoded
        assert not delta.empty
        apply_layer_delta(layer_model, changed, delta, horizon)
        scratch = build_layer_model(changed, spec)
        assert forms_equal(
            layer_model.model.to_standard_form(),
            scratch.model.to_standard_form(),
        )
        assert layer_model.problem is changed
        assert layer_model.horizon == scratch.horizon

    def test_delta_declines_structural_change(self):
        spec = self.spec()
        layer_model = build_layer_model(layer_problem(), spec)
        changed = layer_problem(durations=(3, 4, 9))
        assert encode_layer_delta(layer_model, changed, spec) is None

    def test_noop_delta_is_empty(self):
        spec = self.spec()
        problem = layer_problem()
        layer_model = build_layer_model(problem, spec)
        encoded = encode_layer_delta(layer_model, layer_problem(), spec)
        assert encoded is not None
        delta, _ = encoded
        assert delta.empty

    def test_pool_reuses_and_rebuilds(self):
        spec = self.spec()
        pool = SessionPool(capacity=4)
        first = pool.acquire(layer_problem(transport=2), spec)
        assert pool.created == 1 and pool.reused == 0
        again = pool.acquire(layer_problem(transport=5), spec)
        assert again is first
        assert pool.reused == 1
        # A structurally different problem keys a second session.
        other = pool.acquire(layer_problem(durations=(3, 4, 9)), spec)
        assert other is not first
        assert pool.created == 2
        pool.close()
        assert len(pool) == 0

    def test_pool_session_solves_like_scratch(self):
        spec = self.spec()
        pool = SessionPool()
        pool.acquire(layer_problem(transport=2), spec)
        changed = layer_problem(transport=4)
        session = pool.acquire(changed, spec)
        via_session = _run_layer_solve(session.layer_model, session.solver, spec)
        scratch = build_layer_model(changed, spec)
        direct = scratch.model.solve(
            backend=spec.backend, time_limit=spec.time_limit
        )
        assert via_session.status is SolveStatus.OPTIMAL
        assert via_session.objective == pytest.approx(direct.objective)
        pool.close()

    def test_structural_fingerprint_ignores_transport_values(self):
        spec = self.spec()
        a = structural_fingerprint_layer_problem(layer_problem(transport=2), spec)
        b = structural_fingerprint_layer_problem(layer_problem(transport=7), spec)
        c = structural_fingerprint_layer_problem(
            layer_problem(durations=(3, 4, 9)), spec
        )
        assert a == b
        assert a != c

    def test_pool_lru_eviction_closes_sessions(self):
        spec = self.spec()
        pool = SessionPool(capacity=1)
        pool.acquire(layer_problem(), spec)
        pool.acquire(layer_problem(durations=(1, 2, 3)), spec)
        assert len(pool) == 1
        assert pool.evictions == 1


# ---------------------------------------------------------------------------
# Lazy conflict separation
# ---------------------------------------------------------------------------


def contention_problem(n=3, duration=4):
    """n identical ops, no edges, one free slot: all share one device, so
    every pair is a conflict group the solver must sequence."""
    from repro.operations import Fixed, Operation

    ops = [Operation(f"c{i}", Fixed(duration)) for i in range(n)]
    return LayerProblem(
        layer_index=0,
        ops=ops,
        in_layer_edges=[],
        edge_transport={},
        release={op.uid: 0 for op in ops},
        fixed_devices=[],
        free_slots=1,
    )


class TestLazySeparation:
    def spec(self, **kwargs):
        kwargs.setdefault("max_devices", 4)
        kwargs.setdefault("time_limit", 10.0)
        return SynthesisSpec(**kwargs)

    def test_lazy_model_starts_relaxed(self):
        spec = self.spec()
        eager = build_layer_model(contention_problem(), spec)
        lazy = build_layer_model(contention_problem(), spec, lazy_conflicts=True)
        assert eager.fully_separated
        assert not lazy.fully_separated
        assert len(lazy.model.constraints) < len(eager.model.constraints)
        assert len(lazy.conflict_groups) == len(eager.conflict_groups) == 3

    def test_separation_converges_to_conflict_free(self):
        spec = self.spec()
        lazy = build_layer_model(contention_problem(), spec, lazy_conflicts=True)
        solution = _run_layer_solve(lazy, None, spec)
        assert solution.status is SolveStatus.OPTIMAL
        assert not unemitted_violations(lazy, solution.values)
        # All three ops on one device: optimal makespan is serial.
        eager = build_layer_model(contention_problem(), spec)
        reference = eager.model.solve(
            backend=spec.backend, time_limit=spec.time_limit
        )
        assert solution.objective == pytest.approx(reference.objective)

    def test_separate_conflicts_emits_only_violated_groups(self):
        spec = self.spec()
        lazy = build_layer_model(contention_problem(), spec, lazy_conflicts=True)
        solution = lazy.model.solve(
            backend=spec.backend, time_limit=spec.time_limit
        )
        assert solution.status.has_solution
        emitted = separate_conflicts(lazy, solution.values)
        # The relaxed optimum stacks everything at t=0, so at least one
        # pair overlaps; emission is bounded by the total group count.
        assert 0 < len(emitted) <= len(lazy.conflict_groups)
        assert len(lazy.emitted) == len(emitted)

    def test_ensure_fully_separated_completes_model(self):
        spec = self.spec()
        lazy = build_layer_model(contention_problem(), spec, lazy_conflicts=True)
        added = ensure_fully_separated(lazy)
        assert added == 3
        assert lazy.fully_separated
        eager = build_layer_model(contention_problem(), spec)
        assert len(lazy.model.constraints) == len(eager.model.constraints)

    def test_relaxation_bound_separates_first(self):
        spec = self.spec()
        lazy = build_layer_model(contention_problem(), spec, lazy_conflicts=True)
        eager = build_layer_model(contention_problem(), spec)
        relaxed = _relaxation_bound(lazy, spec)
        assert lazy.fully_separated
        assert len(lazy.model.constraints) == len(eager.model.constraints)
        reference = _relaxation_bound(eager, spec)
        assert relaxed is not None and reference is not None
        assert relaxed.objective == pytest.approx(reference.objective)


# ---------------------------------------------------------------------------
# Warm-start objective cutoff
# ---------------------------------------------------------------------------


class TestWarmCutoff:
    def spec(self, **kwargs):
        kwargs.setdefault("max_devices", 4)
        kwargs.setdefault("time_limit", 10.0)
        return SynthesisSpec(**kwargs)

    def test_cutoff_preserves_optimum_and_leaves_model_canonical(self):
        spec = self.spec(warm_cutoff=True)
        layer_model = build_layer_model(contention_problem(), spec)
        rows_before = len(layer_model.model.constraints)
        plain = _run_layer_solve(
            layer_model, None, self.spec()  # cutoff off, no warm start
        )
        assert plain.status is SolveStatus.OPTIMAL
        # Re-solve the same model under a cutoff at its own optimum: the
        # bound is achievable, so the optimum survives the cut.
        bounded = _run_layer_solve(
            layer_model, None, spec, warm_start=plain.values
        )
        assert bounded.status is SolveStatus.OPTIMAL
        assert bounded.objective == pytest.approx(plain.objective)
        # The transient cutoff row is gone afterwards.
        assert not layer_model.model.has_constraint("warm_cutoff")
        assert len(layer_model.model.constraints) == rows_before

    def test_cutoff_row_flows_through_session(self):
        spec = self.spec(warm_cutoff=True)
        pool = SessionPool()
        session = pool.acquire(contention_problem(), spec)
        plain = _run_layer_solve(session.layer_model, session.solver, spec)
        bounded = _run_layer_solve(
            session.layer_model, session.solver, spec, warm_start=plain.values
        )
        assert bounded.objective == pytest.approx(plain.objective)
        assert not session.layer_model.model.has_constraint("warm_cutoff")
        pool.close()

    def test_cutoff_participates_in_solve_fingerprint(self):
        from repro.hls.cache import _spec_token

        base = self.spec()
        assert _spec_token(base) != _spec_token(self.spec(warm_cutoff=True))

    def test_end_to_end_with_cutoff_validates(self, linear_assay, fast_spec):
        import dataclasses

        from repro.hls import synthesize

        spec = dataclasses.replace(fast_spec, warm_cutoff=True, max_iterations=2)
        result = synthesize(linear_assay, spec)
        result.validate()
