"""LP-relaxation bounds (repro.ilp.relaxation) and the certified
bound/gap reporting sweep (relative_gap, bnb dual bounds).

The invariants under test are the ones the synthesis layer relies on:
an *optimal* LP relaxation is a proven lower bound on the integer
optimum, and a solve that proved nothing reports ``None`` — never a
0.0 gap masquerading as "proven optimal".
"""

from __future__ import annotations

import math

import pytest

from repro.errors import SolverError
from repro.ilp import (
    Model,
    SolveStatus,
    relative_gap,
    solve,
    solve_relaxation,
)
from repro.ilp.bnb import solve_bnb

BACKENDS = ("highs", "bnb")


def triangle_cover():
    """Vertex cover on a triangle: ILP optimum 2, LP optimum 1.5."""
    m = Model("triangle-cover")
    x1, x2, x3 = (m.binary(f"x{i}") for i in (1, 2, 3))
    m.add(x1 + x2 >= 1)
    m.add(x2 + x3 >= 1)
    m.add(x1 + x3 >= 1)
    m.minimize(x1 + x2 + x3)
    return m


def cover_chain(n: int = 9):
    """Odd-cycle covers chained together — fractional LP optimum, enough
    branching for bnb limits to bite deterministically."""
    m = Model("cover-chain")
    xs = [m.binary(f"x{i}") for i in range(n)]
    for i in range(n):
        m.add(xs[i] + xs[(i + 1) % n] >= 1)
    m.minimize(sum(((i % 3 + 1) * x for i, x in enumerate(xs)), start=0 * xs[0]))
    return m


class TestRelativeGap:
    def test_absent_bound_is_none_not_zero(self):
        """The headline bug: no bound must never read as a 0.0 gap."""
        assert relative_gap(10.0, None) is None
        assert relative_gap(None, 8.0) is None
        assert relative_gap(None, None) is None

    def test_nonfinite_inputs_are_none(self):
        assert relative_gap(10.0, -math.inf) is None
        assert relative_gap(math.inf, 5.0) is None
        assert relative_gap(10.0, math.nan) is None

    def test_exact_match_is_zero(self):
        assert relative_gap(10.0, 10.0) == 0.0
        assert relative_gap(0.0, 0.0) == 0.0

    def test_tolerance_noise_collapses_to_zero(self):
        assert relative_gap(10.0, 10.0 - 1e-12) == 0.0

    def test_gap_value(self):
        assert relative_gap(10.0, 8.0) == pytest.approx(0.2)


class TestSolveRelaxation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fractional_optimum_bounds_the_ilp(self, backend):
        m = triangle_cover()
        relaxed = solve_relaxation(m, backend=backend)
        assert relaxed.status is SolveStatus.OPTIMAL
        assert relaxed.objective == pytest.approx(1.5)
        assert relaxed.bound == relaxed.objective
        integer = solve(m, backend=backend)
        assert integer.objective == pytest.approx(2.0)
        assert relaxed.bound <= integer.objective

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stats_carry_the_certificate(self, backend):
        relaxed = solve_relaxation(triangle_cover(), backend=backend)
        assert relaxed.stats is not None
        assert relaxed.stats.lower_bound == pytest.approx(1.5)
        assert relaxed.stats.integrality_gap == 0.0

    def test_relax_integrality_zeros_the_mask(self):
        m = triangle_cover()
        assert m.to_standard_form().integrality.any()
        relaxed_form = m.to_standard_form(relax_integrality=True)
        assert not relaxed_form.integrality.any()

    def test_iteration_limited_simplex_certifies_nothing(self):
        relaxed = solve_relaxation(
            cover_chain(), backend="bnb", max_iterations=1
        )
        assert relaxed.status is SolveStatus.TIMEOUT
        assert relaxed.bound is None
        assert relaxed.stats.lower_bound is None
        assert relaxed.stats.integrality_gap is None  # never 0.0

    def test_unknown_backend_rejected(self):
        with pytest.raises(SolverError):
            solve_relaxation(triangle_cover(), backend="simplex2000")


class TestBnbDualBound:
    def test_immediate_timeout_reports_no_bound(self):
        """A zero-budget solve proved nothing: bound absent, gap absent —
        not the incumbent objective, not a 0.0 gap."""
        sol = solve_bnb(cover_chain(), time_limit=0.0)
        assert sol.status is SolveStatus.TIMEOUT
        assert sol.bound is None
        assert sol.stats.lower_bound is None
        assert sol.stats.integrality_gap is None

    def test_warm_started_timeout_keeps_gap_open(self):
        """With a seeded incumbent and zero budget the solve is FEASIBLE,
        but the root subtree is unexplored (-inf sentinel) — the gap must
        stay uncertified instead of collapsing to 0.0."""
        m = cover_chain()
        start = {v: 1.0 for v in m.variables}
        sol = solve_bnb(m, time_limit=0.0, warm_start=start)
        assert sol.status is SolveStatus.FEASIBLE
        assert sol.objective is not None
        assert sol.bound is None
        assert sol.stats.integrality_gap is None

    @pytest.mark.parametrize("node_limit", (1, 2, 3, 5, 8, 100000))
    def test_bound_never_exceeds_objective(self, node_limit):
        """Across every truncation point: a reported bound is a true lower
        bound, and the recorded gap is exactly the achieved one."""
        sol = solve_bnb(cover_chain(), node_limit=node_limit)
        if not sol.status.has_solution:
            assert sol.bound is None
            return
        if sol.status is SolveStatus.OPTIMAL:
            assert sol.bound == pytest.approx(sol.objective)
        if sol.bound is not None:
            assert sol.bound <= sol.objective + 1e-6
            assert sol.stats.integrality_gap == relative_gap(
                sol.stats.objective, sol.stats.lower_bound
            )
        else:
            assert sol.stats.integrality_gap is None

    def test_exhausted_tree_is_certified_optimal(self):
        sol = solve_bnb(triangle_cover())
        assert sol.status is SolveStatus.OPTIMAL
        assert sol.bound == pytest.approx(2.0)
        assert sol.stats.integrality_gap == 0.0
