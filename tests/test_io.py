"""Tests for repro.io (JSON serialization + Gantt rendering)."""

import json

import pytest

from repro.errors import SerializationError
from repro.hls import synthesize
from repro.io import (
    assay_from_json,
    assay_to_json,
    load_assay,
    render_gantt,
    result_to_json,
    save_assay,
    save_result,
)
from repro.operations import AssayBuilder


@pytest.fixture
def assay():
    b = AssayBuilder("roundtrip")
    cap = b.op("cap", 6, indeterminate=True, container="ring",
               capacity="medium", accessories=["pump"], function="capture")
    b.op("detect", 3, accessories=["optical_system"], after=[cap],
         function="detect")
    return b.build()


class TestAssayRoundtrip:
    def test_roundtrip_preserves_everything(self, assay):
        clone = assay_from_json(assay_to_json(assay))
        assert clone.name == assay.name
        assert clone.uids == assay.uids
        assert clone.edges == assay.edges
        for uid in assay.uids:
            a, b = assay[uid], clone[uid]
            assert a.duration == b.duration
            assert a.capacity == b.capacity
            assert a.container == b.container
            assert a.accessories == b.accessories
            assert a.function == b.function

    def test_file_roundtrip(self, assay, tmp_path):
        path = tmp_path / "assay.json"
        save_assay(assay, path)
        clone = load_assay(path)
        assert clone.uids == assay.uids

    def test_json_serializable(self, assay):
        json.dumps(assay_to_json(assay))  # must not raise

    def test_malformed_rejected(self):
        with pytest.raises(SerializationError):
            assay_from_json({"operations": [{"uid": "x"}]})

    def test_bad_format_version(self):
        with pytest.raises(SerializationError):
            assay_from_json({"format": 99, "operations": []})

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_assay(tmp_path / "ghost.json")

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(SerializationError):
            load_assay(path)


class TestResultSerialization:
    def test_result_report(self, assay, fast_spec, tmp_path):
        result = synthesize(assay, fast_spec)
        report = result_to_json(result)
        json.dumps(report)
        assert report["makespan"] == result.makespan_expression
        assert report["num_devices"] == result.num_devices
        assert len(report["layers"]) == result.layering.num_layers
        placed = [
            p["uid"] for layer in report["layers"] for p in layer["placements"]
        ]
        assert sorted(placed) == sorted(assay.uids)

        path = tmp_path / "result.json"
        save_result(result, path)
        assert json.loads(path.read_text())["assay"] == assay.name


class TestGantt:
    def test_contains_devices_and_ops(self, assay, fast_spec):
        result = synthesize(assay, fast_spec)
        text = render_gantt(result.schedule)
        assert "hybrid schedule" in text
        for uid in assay.uids:
            assert uid in text
        for device_uid in result.devices:
            assert device_uid in text

    def test_indeterminate_marked(self, assay, fast_spec):
        result = synthesize(assay, fast_spec)
        assert "~" in render_gantt(result.schedule)

    def test_width_respected(self, assay, fast_spec):
        result = synthesize(assay, fast_spec)
        for line in render_gantt(result.schedule, width=40, labels=False).splitlines():
            assert len(line) <= 60
