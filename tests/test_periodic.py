"""Core tests for the periodic (modulo) scheduling subsystem."""

from __future__ import annotations

import dataclasses

import pytest

from repro.errors import SpecificationError, ValidationError
from repro.hls import SynthesisSpec, synthesize
from repro.periodic import (
    PeriodicSchedule,
    build_periodic_model,
    build_periodic_problem,
    circular_overlap,
    collect_periodic_violations,
    greedy_modulo_schedule,
    ii_lower_bound,
    resource_bound,
    schedule_throughput,
    validate_periodic_schedule,
)
from repro.periodic.model import (
    encode_ii_delta,
    feasible_lengths,
    warm_start_values,
    wrap_bound,
)


class TestCircularOverlap:
    def test_disjoint_within_period(self):
        assert not circular_overlap(0, 3, 3, 3, 10)
        assert not circular_overlap(3, 3, 0, 3, 10)

    def test_plain_overlap(self):
        assert circular_overlap(0, 5, 3, 3, 10)

    def test_wraparound_overlap(self):
        # [8, 12) mod 10 covers [8,10) + [0,2): collides with [1, 3).
        assert circular_overlap(8, 4, 1, 2, 10)
        assert not circular_overlap(8, 2, 1, 2, 10)

    def test_over_capacity_always_overlaps(self):
        assert circular_overlap(0, 6, 6, 6, 10)

    def test_zero_length_never_overlaps(self):
        assert not circular_overlap(0, 0, 0, 5, 10)
        assert not circular_overlap(2, 5, 4, 0, 10)


class TestProblem:
    def test_build_from_result(self, indeterminate_assay, fast_spec):
        result = synthesize(indeterminate_assay, fast_spec)
        problem = build_periodic_problem(result)
        assert set(problem.order) == set(indeterminate_assay.uids)
        assert problem.horizon == result.fixed_makespan
        # Every op occupies its device, so there is at least one interval
        # per operation.
        assert len(problem.intervals) >= len(problem.order)
        positions = {uid: k for k, uid in enumerate(problem.order)}
        for parent, child in problem.edges:
            assert positions[parent] < positions[child]

    def test_baseline_is_periodically_valid_at_makespan(
        self, indeterminate_assay, fast_spec
    ):
        result = synthesize(indeterminate_assay, fast_spec)
        problem = build_periodic_problem(result)
        schedule = PeriodicSchedule(
            problem=problem,
            ii=max(problem.horizon, 1),
            starts=dict(problem.baseline_starts),
        )
        assert collect_periodic_violations(schedule) == []

    def test_restrict_keeps_feasibility(self, indeterminate_assay, fast_spec):
        result = synthesize(indeterminate_assay, fast_spec)
        problem = build_periodic_problem(result)
        keep = {"prep0", "capture0", "lyse0", "detect0"}
        sub = problem.restrict(keep, name="half")
        assert set(sub.order) == keep
        assert sub.horizon == problem.horizon
        schedule = PeriodicSchedule(
            problem=sub, ii=sub.horizon, starts=dict(sub.baseline_starts)
        )
        assert collect_periodic_violations(schedule) == []


class TestBound:
    def test_bound_sandwiched(self, indeterminate_assay, fast_spec):
        result = synthesize(indeterminate_assay, fast_spec)
        problem = build_periodic_problem(result)
        bound, _certificate = ii_lower_bound(problem)
        assert 1 <= bound <= problem.horizon
        assert bound >= 1

    def test_lp_agrees_with_arithmetic(self, linear_assay, fast_spec):
        result = synthesize(linear_assay, fast_spec)
        problem = build_periodic_problem(result)
        bound, _certificate = ii_lower_bound(problem)
        # The LP bound is reported as min(lp, arithmetic), so it can never
        # exceed the arithmetic ResMII.
        assert bound <= resource_bound(problem)


class TestGreedy:
    def test_feasible_at_horizon(self, indeterminate_assay, fast_spec):
        result = synthesize(indeterminate_assay, fast_spec)
        problem = build_periodic_problem(result)
        starts = greedy_modulo_schedule(problem, problem.horizon)
        assert starts is not None
        schedule = PeriodicSchedule(
            problem=problem, ii=problem.horizon, starts=starts
        )
        assert collect_periodic_violations(schedule) == []

    def test_rejects_impossible_ii(self, linear_assay, fast_spec):
        result = synthesize(linear_assay, fast_spec)
        problem = build_periodic_problem(result)
        # II=1 cannot fit any multi-unit occupancy.
        assert greedy_modulo_schedule(problem, 1) is None


class TestModel:
    def test_wrap_bound_monotone(self):
        assert wrap_bound(100, 10) == 11
        assert wrap_bound(100, 100) == 2
        assert wrap_bound(0, 5) >= 1

    def test_feasible_lengths_rejects_long_intervals(
        self, linear_assay, fast_spec
    ):
        result = synthesize(linear_assay, fast_spec)
        problem = build_periodic_problem(result)
        longest = max(
            interval.fixed_length
            for interval in problem.intervals
            if interval.fixed_length is not None
        )
        assert feasible_lengths(problem, longest)
        assert not feasible_lengths(problem, longest - 1)

    def test_warm_start_covers_all_variables(
        self, indeterminate_assay, fast_spec
    ):
        result = synthesize(indeterminate_assay, fast_spec)
        problem = build_periodic_problem(result)
        pmodel = build_periodic_model(problem, problem.horizon)
        values = warm_start_values(pmodel, dict(problem.baseline_starts))
        for var in pmodel.starts.values():
            assert var in values
        for pair in pmodel.pairs:
            assert pair.wrap in values
            assert values[pair.wrap] == int(values[pair.wrap])

    def test_delta_matches_scratch_build(self, linear_assay, fast_spec):
        result = synthesize(linear_assay, fast_spec)
        problem = build_periodic_problem(result)
        pmodel = build_periodic_model(problem, problem.horizon)
        target = max(problem.horizon // 2, 1)
        encode_ii_delta(pmodel, target).apply_to(pmodel.model)
        scratch = build_periodic_model(problem, target)

        def rows(model):
            return {
                c.name: (
                    c.sense,
                    c.rhs,
                    {v.name: coeff for v, coeff in c.expr.terms.items()},
                )
                for c in model.constraints
            }

        def bounds(model):
            return {v.name: (v.lb, v.ub) for v in model.variables}

        assert rows(pmodel.model) == rows(scratch.model)
        assert bounds(pmodel.model) == bounds(scratch.model)


class TestSearch:
    def test_pipelines_below_makespan(self, indeterminate_assay, fast_spec):
        result = synthesize(indeterminate_assay, fast_spec)
        throughput = schedule_throughput(result, fast_spec)
        assert throughput.ii < throughput.base_makespan
        assert throughput.ii >= throughput.lower_bound
        assert throughput.speedup > 1.0
        assert throughput.probes
        validate_periodic_schedule(throughput.schedule)

    def test_stats_carry_certificate(self, indeterminate_assay, fast_spec):
        result = synthesize(indeterminate_assay, fast_spec)
        throughput = schedule_throughput(result, fast_spec)
        assert throughput.stats.backend.startswith("periodic-")
        assert throughput.stats.objective == float(throughput.ii)
        assert throughput.stats.lower_bound is not None
        assert throughput.integrality_gap is not None
        assert throughput.integrality_gap >= 0.0

    def test_target_ii_stops_early(self, indeterminate_assay, fast_spec):
        result = synthesize(indeterminate_assay, fast_spec)
        free = schedule_throughput(result, fast_spec)
        spec = dataclasses.replace(fast_spec, target_ii=free.base_makespan)
        capped = schedule_throughput(result, spec)
        # Floor == makespan: the search window collapses, no probes run.
        assert capped.ii == capped.base_makespan
        assert capped.probes == []
        assert capped.ii >= free.ii

    def test_greedy_scheduler_validates(self, indeterminate_assay, fast_spec):
        result = synthesize(indeterminate_assay, fast_spec)
        spec = dataclasses.replace(fast_spec, throughput_scheduler="greedy")
        throughput = schedule_throughput(result, spec)
        assert throughput.ii <= throughput.base_makespan
        validate_periodic_schedule(throughput.schedule)
        # Greedy never touches the MIP session pool.
        assert throughput.pool_counters == {
            "created": 0, "reused": 0, "rebuilt": 0,
        }


class TestValidator:
    def _problem(self, assay, spec):
        return build_periodic_problem(synthesize(assay, spec))

    def test_rejects_missing_operation(self, linear_assay, fast_spec):
        problem = self._problem(linear_assay, fast_spec)
        starts = dict(problem.baseline_starts)
        starts.pop(problem.order[0])
        schedule = PeriodicSchedule(
            problem=problem, ii=problem.horizon, starts=starts
        )
        assert any(
            "never placed" in v
            for v in collect_periodic_violations(schedule)
        )

    def test_rejects_dependency_tamper(self, linear_assay, fast_spec):
        problem = self._problem(linear_assay, fast_spec)
        starts = dict(problem.baseline_starts)
        parent, child = problem.edges[0]
        starts[child] = starts[parent]  # starts before parent finished
        schedule = PeriodicSchedule(
            problem=problem, ii=problem.horizon, starts=starts
        )
        with pytest.raises(ValidationError):
            validate_periodic_schedule(schedule)

    def test_rejects_modulo_collision(self, indeterminate_assay, fast_spec):
        problem = self._problem(indeterminate_assay, fast_spec)
        # Halving the II without re-timing folds iteration k onto k+1;
        # for this two-branch assay the devices collide.
        schedule = PeriodicSchedule(
            problem=problem,
            ii=max(problem.horizon // 4, 1),
            starts=dict(problem.baseline_starts),
        )
        violations = collect_periodic_violations(schedule)
        assert violations

    def test_rejects_nonpositive_ii(self, linear_assay, fast_spec):
        problem = self._problem(linear_assay, fast_spec)
        schedule = PeriodicSchedule(
            problem=problem, ii=0, starts=dict(problem.baseline_starts)
        )
        assert collect_periodic_violations(schedule)


class TestSpecValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(SpecificationError, match="throughput_mode"):
            SynthesisSpec(throughput_mode="sometimes")

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SpecificationError, match="throughput_scheduler"):
            SynthesisSpec(throughput_scheduler="magic")

    def test_bad_target_ii_rejected(self):
        with pytest.raises(SpecificationError, match="target_ii"):
            SynthesisSpec(target_ii=0)

    def test_bad_variant_fraction_rejected(self):
        with pytest.raises(SpecificationError, match="fraction"):
            SynthesisSpec(throughput_variants=(1.5,))
