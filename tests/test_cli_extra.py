"""Tests for the analysis/layout CLI subcommands (stats, dot, place)."""

import pytest

from repro.cli import main
from repro.io import save_assay
from repro.operations import AssayBuilder


@pytest.fixture
def assay_file(tmp_path):
    b = AssayBuilder("cli-extra")
    x = b.op("x", 3, container="ring", accessories=["pump"])
    y = b.op("y", 4, indeterminate=True, accessories=["cell_trap"], after=[x])
    b.op("z", 2, accessories=["optical_system"], after=[y])
    path = tmp_path / "assay.json"
    save_assay(b.build(), path)
    return path


FAST_ARGS = ["--time-limit", "5", "--max-iterations", "0",
             "--max-devices", "5"]


class TestStatsCommand:
    def test_outputs_metrics(self, assay_file, capsys):
        assert main(["stats", str(assay_file)] + FAST_ARGS) == 0
        out = capsys.readouterr().out
        assert "peak parallelism" in out
        assert "storage crossings" in out

    def test_profile_flag(self, assay_file, capsys, tmp_path):
        import json

        json_path = tmp_path / "profile.json"
        assert main(
            ["stats", str(assay_file), "--profile",
             "--profile-json", str(json_path)] + FAST_ARGS
        ) == 0
        out = capsys.readouterr().out
        assert "solve profile" in out
        assert "totals:" in out
        on_disk = json.loads(json_path.read_text())
        assert "0" in on_disk and on_disk["0"]["passes"]


class TestDotCommand:
    def test_assay_view(self, assay_file, capsys):
        assert main(["dot", str(assay_file)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert '"x" -> "y"' in out

    def test_assay_view_with_layers(self, assay_file, capsys):
        assert main(["dot", str(assay_file), "--layers"]) == 0
        assert "cluster_layer" in capsys.readouterr().out

    def test_chip_view(self, assay_file, capsys):
        assert main(
            ["dot", str(assay_file), "--view", "chip"] + FAST_ARGS
        ) == 0
        out = capsys.readouterr().out
        assert "neato" in out


class TestPlaceCommand:
    def test_grid_printed(self, assay_file, capsys):
        assert main(["place", str(assay_file), "--seed", "3"] + FAST_ARGS) == 0
        out = capsys.readouterr().out
        assert "weighted channel length" in out or "nothing to place" in out
