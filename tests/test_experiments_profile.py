"""Solve-telemetry profiles: construction, formatting, JSON round-trip."""

import json

from repro.experiments import export_profiles, format_profile, synthesis_profile
from repro.hls import SynthesisSpec, synthesize
from repro.ilp import SolveStats


def small_result(indeterminate_assay):
    spec = SynthesisSpec(
        max_devices=6, threshold=2, time_limit=10, max_iterations=1
    )
    return synthesize(indeterminate_assay, spec)


def test_profile_shape(indeterminate_assay):
    result = small_result(indeterminate_assay)
    profile = synthesis_profile(result)
    assert profile["num_layers"] == result.layering.num_layers
    assert len(profile["passes"]) == len(result.history)
    totals = profile["totals"]
    assert totals["ilp_solves"] + totals["cache_hits"] == sum(
        len(p["layers"]) for p in profile["passes"]
    )
    assert totals["nodes"] == result.total_nodes


def test_profile_json_round_trip(indeterminate_assay):
    result = small_result(indeterminate_assay)
    profile = synthesis_profile(result)
    reloaded = json.loads(json.dumps(profile))
    assert reloaded == profile
    # Every layer record round-trips through SolveStats.
    for pass_record in reloaded["passes"]:
        for layer in pass_record["layers"]:
            stats = SolveStats.from_dict(layer)
            assert stats.to_dict() == layer


def test_format_profile(indeterminate_assay):
    result = small_result(indeterminate_assay)
    text = format_profile(synthesis_profile(result))
    assert "totals:" in text
    assert "backend" in text
    for record in result.history:
        assert record.label in text


def test_export_profiles(indeterminate_assay, tmp_path):
    result = small_result(indeterminate_assay)
    profile = synthesis_profile(result)
    path = tmp_path / "profiles.json"
    export_profiles({2: profile}, str(path))
    on_disk = json.loads(path.read_text())
    assert on_disk == {"2": profile}
