"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.hls import SynthesisSpec
from repro.operations import AssayBuilder


@pytest.fixture
def fast_spec() -> SynthesisSpec:
    """A spec sized for unit tests: small |D|, tight solver budget."""
    return SynthesisSpec(
        max_devices=6,
        threshold=2,
        time_limit=10.0,
        max_iterations=1,
    )


@pytest.fixture
def linear_assay():
    """Four fixed ops in a chain: load -> mix -> heat -> detect."""
    b = AssayBuilder("linear")
    load = b.op("load", 3, container="chamber", function="load")
    mix = b.op(
        "mix", 8, container="ring", accessories=["pump"], function="mix",
        after=[load],
    )
    heat = b.op(
        "heat", 12, accessories=["heating_pad"], function="heat", after=[mix]
    )
    b.op(
        "detect", 2, accessories=["optical_system"], function="detect",
        after=[heat],
    )
    return b.build()


@pytest.fixture
def indeterminate_assay():
    """Two parallel branches, each ending in work after an indeterminate
    capture — exercises layering + hybrid scheduling end to end."""
    b = AssayBuilder("ind")
    for k in range(2):
        prep = b.op(f"prep{k}", 4, container="chamber", function="load")
        cap = b.op(
            f"capture{k}", 6, indeterminate=True,
            accessories=["cell_trap"], function="capture", after=[prep],
        )
        lyse = b.op(f"lyse{k}", 5, container="chamber", function="lyse",
                    after=[cap])
        b.op(f"detect{k}", 3, accessories=["optical_system"],
             function="detect", after=[lyse])
    return b.build()


@pytest.fixture
def diamond_assay():
    """Diamond dependency: one source feeding two middles joining in a sink."""
    b = AssayBuilder("diamond")
    src = b.op("src", 5, container="chamber")
    mid1 = b.op("mid1", 7, container="chamber", after=[src])
    mid2 = b.op("mid2", 9, container="chamber", after=[src])
    b.op("sink", 4, container="chamber", after=[mid1, mid2])
    return b.build()
