"""Tests for client resilience: retries, backoff, circuit breaker
(repro.service.client)."""

import json
import socket
import threading

import pytest

from repro.errors import CircuitOpenError, ServiceError
from repro.service import CircuitBreaker, RetryPolicy, ServiceClient


class FlakyServer:
    """A real TCP server that fails the first N requests (by slamming
    the connection or answering 500), then serves 200s."""

    def __init__(self, failures: int, mode: str = "close"):
        self.failures = failures
        self.mode = mode
        self.requests = 0
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self.port = self._sock.getsockname()[1]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while not self._stop.is_set():
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            with conn:
                try:
                    conn.recv(65536)
                except OSError:
                    continue
                self.requests += 1
                if self.requests <= self.failures:
                    if self.mode == "close":
                        continue  # slam the door: transport error
                    if self.mode == "404":
                        body = json.dumps({
                            "error": {"kind": "unknown-job",
                                      "message": "no such job"}
                        }).encode()
                        status = "404 Not Found"
                    else:
                        body = json.dumps({
                            "error": {"kind": "internal", "message": "boom"}
                        }).encode()
                        status = "500 Internal Server Error"
                else:
                    body = json.dumps({"status": "ok"}).encode()
                    status = "200 OK"
                head = (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: application/json\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"Connection: close\r\n\r\n"
                ).encode()
                try:
                    conn.sendall(head + body)
                except OSError:
                    continue

    def close(self):
        self._stop.set()
        self._sock.close()


@pytest.fixture
def sleeps(monkeypatch):
    """Capture every retry sleep instead of actually sleeping."""
    captured = []

    def fake_sleep(client):
        client._sleep = captured.append
        return captured

    return fake_sleep


class TestRetries:
    def test_transport_errors_retry_until_success(self, sleeps):
        server = FlakyServer(failures=2, mode="close")
        try:
            client = ServiceClient(
                port=server.port, timeout=5.0, retry=RetryPolicy(seed=7)
            )
            captured = sleeps(client)
            assert client.health() == {"status": "ok"}
            assert server.requests == 3
            # The sleeps are exactly the seeded full-jitter schedule.
            expected = RetryPolicy(seed=7)
            assert captured == [expected.backoff(0), expected.backoff(1)]
        finally:
            server.close()

    def test_5xx_retries(self, sleeps):
        server = FlakyServer(failures=1, mode="500")
        try:
            client = ServiceClient(
                port=server.port, timeout=5.0, retry=RetryPolicy(seed=1)
            )
            sleeps(client)
            assert client.health() == {"status": "ok"}
            assert server.requests == 2
        finally:
            server.close()

    def test_retries_exhaust_with_the_last_error(self, sleeps):
        server = FlakyServer(failures=99, mode="close")
        try:
            client = ServiceClient(
                port=server.port, timeout=5.0,
                retry=RetryPolicy(retries=2, seed=0),
                breaker=CircuitBreaker(threshold=50),
            )
            captured = sleeps(client)
            with pytest.raises(ServiceError) as err:
                client.health()
            assert err.value.kind == "unreachable"
            assert server.requests == 3  # 1 try + 2 retries
            assert len(captured) == 2
        finally:
            server.close()

    def test_4xx_never_retries(self, sleeps):
        server = FlakyServer(failures=99, mode="404")
        try:
            client = ServiceClient(
                port=server.port, timeout=5.0, retry=RetryPolicy(seed=0)
            )
            captured = sleeps(client)
            with pytest.raises(ServiceError) as err:
                client.health()
            assert err.value.status == 404
            assert err.value.kind == "unknown-job"
            assert server.requests == 1  # no retries for client errors
            assert captured == []
        finally:
            server.close()

    def test_backoff_is_bounded_and_jittered(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.5, seed=42)
        delays = [policy.backoff(k) for k in range(8)]
        assert all(0.0 <= d <= 0.5 for d in delays)
        assert delays[0] <= 0.1  # first ceiling is base_delay
        # Seeded: the schedule reproduces exactly.
        again = RetryPolicy(base_delay=0.1, max_delay=0.5, seed=42)
        assert [again.backoff(k) for k in range(8)] == delays


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            threshold=3, cooldown=10.0, clock=lambda: clock[0]
        )
        assert breaker.state == CircuitBreaker.CLOSED
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_admits_one_probe(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            threshold=1, cooldown=10.0, clock=lambda: clock[0]
        )
        breaker.record_failure()
        assert not breaker.allow()

        clock[0] = 11.0
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # everyone else fails fast

    def test_probe_success_closes(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            threshold=1, cooldown=10.0, clock=lambda: clock[0]
        )
        breaker.record_failure()
        clock[0] = 11.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_for_another_cooldown(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            threshold=1, cooldown=10.0, clock=lambda: clock[0]
        )
        breaker.record_failure()
        clock[0] = 11.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        clock[0] = 20.0  # cooldown restarts from the probe failure
        assert breaker.state == CircuitBreaker.OPEN
        clock[0] = 22.0
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_client_fails_fast_when_open(self, sleeps):
        server = FlakyServer(failures=99, mode="close")
        try:
            clock = [0.0]
            client = ServiceClient(
                port=server.port, timeout=5.0,
                retry=RetryPolicy(retries=10, seed=0),
                breaker=CircuitBreaker(
                    threshold=2, cooldown=30.0, clock=lambda: clock[0]
                ),
            )
            sleeps(client)
            with pytest.raises(ServiceError):
                client.health()
            # The breaker opened mid-retry-loop: only `threshold`
            # requests ever hit the wire, not 1+retries.
            assert server.requests == 2
            with pytest.raises(CircuitOpenError):
                client.health()  # fails locally, no network traffic
            assert server.requests == 2
        finally:
            server.close()

    def test_breaker_validates_threshold(self):
        with pytest.raises(ServiceError):
            CircuitBreaker(threshold=0)
