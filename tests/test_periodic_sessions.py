"""Session reuse across II probes and solver-degradation behavior."""

from __future__ import annotations

import dataclasses
import importlib

import pytest

from repro.errors import SolverError
from repro.hls import synthesize
from repro.periodic import schedule_throughput, validate_periodic_schedule


@pytest.fixture
def pipelined_result(indeterminate_assay, fast_spec):
    return synthesize(indeterminate_assay, fast_spec)


class TestSessionReuse:
    def test_probes_share_one_session(self, pipelined_result, fast_spec):
        spec = dataclasses.replace(fast_spec, throughput_scheduler="ilp")
        throughput = schedule_throughput(pipelined_result, spec)
        counters = throughput.pool_counters
        ilp_probes = [p for p in throughput.probes if p.scheduler == "ilp"]
        # One encode, every further probe a delta re-solve on the same
        # pooled session.
        assert counters["created"] == 1
        assert counters["rebuilt"] == 0
        assert counters["reused"] == len(ilp_probes) - 1

    def test_disabled_sessions_rebuild_each_probe(
        self, pipelined_result, fast_spec
    ):
        spec = dataclasses.replace(
            fast_spec,
            throughput_scheduler="ilp",
            enable_solver_sessions=False,
        )
        throughput = schedule_throughput(pipelined_result, spec)
        counters = throughput.pool_counters
        assert counters["created"] == 0
        assert counters["reused"] == 0
        assert counters["rebuilt"] == len(throughput.probes)

    def test_sessions_do_not_change_the_answer(
        self, pipelined_result, fast_spec
    ):
        """Delta re-solves and scratch encodes land byte-identical results."""
        on = schedule_throughput(
            pipelined_result,
            dataclasses.replace(fast_spec, throughput_scheduler="ilp"),
        )
        off = schedule_throughput(
            pipelined_result,
            dataclasses.replace(
                fast_spec,
                throughput_scheduler="ilp",
                enable_solver_sessions=False,
            ),
        )
        assert on.ii == off.ii
        assert on.schedule.starts == off.schedule.starts
        assert [(p.ii, p.feasible) for p in on.probes] == [
            (p.ii, p.feasible) for p in off.probes
        ]


class TestDegradation:
    def test_missing_scipy_degrades_to_greedy(
        self, pipelined_result, fast_spec, monkeypatch
    ):
        """No MIP backend: auto warns once and falls back to greedy."""
        solve_mod = importlib.import_module("repro.ilp.solve")

        def _no_highs():
            raise SolverError("backend 'highs' requires SciPy (test)")

        monkeypatch.setattr(solve_mod, "_import_highs", _no_highs)
        spec = dataclasses.replace(fast_spec, backend="highs")
        with pytest.warns(RuntimeWarning, match="degrading to the greedy"):
            throughput = schedule_throughput(pipelined_result, spec)
        assert throughput.degraded
        assert throughput.ii <= throughput.base_makespan
        validate_periodic_schedule(throughput.schedule)
        # The pool never got a working session.
        assert throughput.pool_counters["created"] == 0

    def test_explicit_ilp_scheduler_surfaces_the_error(
        self, pipelined_result, fast_spec, monkeypatch
    ):
        """scheduler=ilp is a hard request: no silent greedy substitution."""
        solve_mod = importlib.import_module("repro.ilp.solve")

        def _no_highs():
            raise SolverError("backend 'highs' requires SciPy (test)")

        monkeypatch.setattr(solve_mod, "_import_highs", _no_highs)
        spec = dataclasses.replace(
            fast_spec, backend="highs", throughput_scheduler="ilp"
        )
        with pytest.raises(SolverError):
            schedule_throughput(pipelined_result, spec)

    def test_degraded_result_matches_pure_greedy(
        self, pipelined_result, fast_spec, monkeypatch
    ):
        solve_mod = importlib.import_module("repro.ilp.solve")

        def _no_highs():
            raise SolverError("no scipy")

        monkeypatch.setattr(solve_mod, "_import_highs", _no_highs)
        with pytest.warns(RuntimeWarning):
            degraded = schedule_throughput(
                pipelined_result,
                dataclasses.replace(fast_spec, backend="highs"),
            )
        greedy = schedule_throughput(
            pipelined_result,
            dataclasses.replace(fast_spec, throughput_scheduler="greedy"),
        )
        assert degraded.ii == greedy.ii
        assert degraded.schedule.starts == greedy.schedule.starts
