"""Tests for the chaos harness and graceful degradation
(repro.service.chaos, hls.backends.degraded_spec)."""

import pytest

from repro.hls import SynthesisSpec
from repro.hls.backends import DEGRADED_SCHEDULER, degraded_spec
from repro.io.json_io import assay_to_json, spec_to_json
from repro.service import ChaosConfig, ServiceClient, format_chaos, run_chaos
from repro.service.chaos import _ServerHarness
from repro.service.server import ServerConfig


def body_for(assay, **spec_kwargs) -> dict:
    spec = SynthesisSpec(
        max_devices=6, threshold=2, time_limit=10.0, max_iterations=0,
        **spec_kwargs,
    )
    return {"assay": assay_to_json(assay), "spec": spec_to_json(spec)}


class TestDegradedSpec:
    def test_forces_lp_bound_single_pass(self):
        spec = SynthesisSpec(threshold=4, max_iterations=3)
        fallback = degraded_spec(spec)
        assert fallback.scheduler == DEGRADED_SCHEDULER == "lp-bound"
        assert fallback.max_iterations == 0
        assert fallback.threshold == spec.threshold  # layering unchanged
        # The degraded pass never runs the exact ILP, so the wall-clock
        # limit only caps the LP bound solve — it must not inherit the
        # tiny budget that caused the degradation in the first place.
        assert fallback.time_limit >= 10.0

    def test_idempotent(self):
        spec = degraded_spec(SynthesisSpec())
        assert degraded_spec(spec) == spec


class TestDegradedServer:
    """An ILP job that blows its wall-clock budget comes back flagged
    ``degraded`` instead of failing."""

    def test_timeout_yields_degraded_result(self, tmp_path):
        from repro.assays import benchmark_assay

        config = ServerConfig(
            port=0, workers=1, store_dir=str(tmp_path / "store"),
        )
        harness = _ServerHarness(config)
        harness.start()
        client = ServiceClient(port=harness.port, timeout=30.0)
        try:
            body = body_for(
                benchmark_assay(1), mip_gap=0.05,
            )
            # 0.75s is far below the ~8s ILP solve but far above the
            # dispatch latency of an idle server.
            handle = client.submit(body["assay"], body["spec"], timeout=0.75)
            handle = client.wait(handle.id, deadline=120.0)
            assert handle.status == "done"
            payload = client.result(handle.id)
            assert payload.get("degraded") is True
            assert payload["result"]["makespan"]

            metrics = client.metrics()
            assert metrics["counters"]["jobs_degraded"] == 1
            # Degraded results are never persisted: the store still
            # holds only canonical full-fidelity solves.
            assert metrics["gauges"]["store_entries"] == 0
        finally:
            harness.graceful_stop(client)

    def test_degrade_false_opts_out(self, tmp_path):
        from repro.assays import benchmark_assay

        config = ServerConfig(
            port=0, workers=1, store_dir=str(tmp_path / "store"),
        )
        harness = _ServerHarness(config)
        harness.start()
        client = ServiceClient(port=harness.port, timeout=30.0)
        try:
            body = body_for(benchmark_assay(1), mip_gap=0.05)
            handle = client.submit(
                body["assay"], body["spec"], timeout=0.75, degrade=False,
            )
            handle = client.wait(handle.id, deadline=60.0)
            assert handle.status == "failed"
            assert handle.error["kind"] == "timeout"
        finally:
            harness.graceful_stop(client)


class TestChaosCampaign:
    def test_fixture_campaign_is_ok(self, linear_assay, indeterminate_assay,
                                    tmp_path):
        """The full campaign — worker kill, store corruption, torn
        journal, crash/replay — over two tiny fixture assays.  The
        slow-solve fault stays off: fixture solves finish in tens of
        milliseconds, below any usable timeout (the degrade path is
        covered by TestDegradedServer on a real benchmark case)."""
        config = ChaosConfig(
            seed=7,
            jobs=2,
            requests=[body_for(linear_assay), body_for(indeterminate_assay)],
            workdir=str(tmp_path),
            workers=2,
            deadline=120.0,
            slow_solve=False,
        )
        report = run_chaos(config)
        rendered = format_chaos(report)
        assert report.ok, rendered

        # 2 base bodies + 1 extra variant + 1 slow-solve body (its own
        # solve class) + 2 wave-2 variants, every one verified
        # byte-identical.
        assert report.submitted == 6
        assert report.verified == 6
        assert report.lost == 0 and report.mismatched == 0
        # wave 2 (2 jobs, minus any that land before the stop under a
        # loaded machine) + the fabricated store.put-window record,
        # which always replays.
        assert report.replayed == report.replayed_expected
        assert 1 <= report.replayed <= 3
        assert report.worker_crashes == 1
        # Two corruptible entries (base[1] + extra; base[0] is spared
        # for the journal-store replay path), all quarantined.
        assert report.corruptions_injected == 2
        assert report.corruptions == 2
        assert report.quarantined == 2
        assert report.torn_records >= 1
        assert "verdict        : OK" in rendered

    def test_empty_campaign_rejected(self):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError):
            run_chaos(ChaosConfig(requests=[]))
