"""Tests for the per-layer ILP model + decoder (repro.hls.milp_model/decode).

These tests build single-layer problems directly (bypassing the layering)
to pin down individual constraint families of the paper's model.
"""

import itertools

import pytest

from repro.components import Capacity, ContainerKind
from repro.devices import BindingMode, GeneralDevice
from repro.errors import InfeasibleError
from repro.hls import SynthesisSpec
from repro.hls.decode import decode_layer_solution
from repro.hls.milp_model import LayerProblem, build_layer_model
from repro.operations import Fixed, Indeterminate, Operation

COUNTER = itertools.count()


def fresh_uid():
    return f"nd{next(COUNTER)}"


def solve_problem(problem, spec=None):
    spec = spec or SynthesisSpec(max_devices=8, time_limit=10)
    layer_model = build_layer_model(problem, spec)
    solution = layer_model.model.solve(time_limit=spec.time_limit)
    assert solution.status.has_solution, solution.status
    return decode_layer_solution(layer_model, solution, fresh_uid)


def problem_for(ops, edges=(), transport=0, fixed=(), slots=4, **kwargs):
    edge_transport = {e: transport for e in edges}
    release = {
        op.uid: max(
            (edge_transport[e] for e in edges if e[0] == op.uid), default=0
        )
        for op in ops
    }
    return LayerProblem(
        layer_index=0,
        ops=list(ops),
        in_layer_edges=list(edges),
        edge_transport=edge_transport,
        release=release,
        fixed_devices=list(fixed),
        free_slots=slots,
        **kwargs,
    )


class TestBindingConstraints:
    def test_every_op_bound_once(self):
        ops = [Operation(f"o{i}", Fixed(3)) for i in range(3)]
        result = solve_problem(problem_for(ops))
        assert set(result.binding) == {"o0", "o1", "o2"}

    def test_requirements_respected_on_new_devices(self):
        op = Operation(
            "mix", Fixed(5), container=ContainerKind.RING,
            accessories=frozenset({"pump"}),
        )
        result = solve_problem(problem_for([op]))
        device = result.new_devices[0]
        assert device.container is ContainerKind.RING
        assert "pump" in device.accessories

    def test_capacity_class_matched(self):
        op = Operation("o", Fixed(5), capacity=Capacity.LARGE)
        result = solve_problem(problem_for([op]))
        assert result.new_devices[0].capacity is Capacity.LARGE
        assert result.new_devices[0].container is ContainerKind.RING

    def test_reuses_fixed_device(self):
        device = GeneralDevice(
            "inherited", ContainerKind.RING, Capacity.SMALL,
            frozenset({"pump"}),
        )
        op = Operation("mix", Fixed(5), container=ContainerKind.RING,
                       accessories=frozenset({"pump"}))
        result = solve_problem(problem_for([op], fixed=[device], slots=4))
        # Reuse is free; a new device costs area+processing.
        assert result.binding["mix"] == "inherited"
        assert not result.new_devices

    def test_infeasible_without_any_device(self):
        op = Operation("o", Fixed(5))
        with pytest.raises(InfeasibleError):
            build_layer_model(
                problem_for([op], slots=0), SynthesisSpec(max_devices=1)
            )

    def test_ops_share_device_when_serial(self):
        ops = [Operation("a", Fixed(3)), Operation("b", Fixed(3))]
        result = solve_problem(
            problem_for(ops, edges=[("a", "b")])
        )
        # Same requirements, dependency-ordered: cheapest is one device.
        assert result.binding["a"] == result.binding["b"]

    def test_parallel_identical_ops_split_when_time_dominant(self):
        ops = [Operation("a", Fixed(10)), Operation("b", Fixed(10))]
        result = solve_problem(problem_for(ops))
        # With time weight >> device cost, run them in parallel.
        assert result.binding["a"] != result.binding["b"]
        assert result.schedule.makespan == 10


class TestConflictConstraints:
    def test_same_device_implies_disjoint_times(self):
        spec = SynthesisSpec(
            max_devices=1, time_limit=10,
        )
        ops = [Operation("a", Fixed(4)), Operation("b", Fixed(6))]
        result = solve_problem(problem_for(ops, slots=1), spec)
        pa, pb = result.schedule["a"], result.schedule["b"]
        assert pa.device_uid == pb.device_uid
        assert pa.end <= pb.start or pb.end <= pa.start

    def test_release_margin_blocks_back_to_back(self):
        # a ships to c with transport 5: its device is busy 5 extra units.
        ops = [
            Operation("a", Fixed(4)),
            Operation("b", Fixed(4)),
            Operation("c", Fixed(2)),
        ]
        problem = problem_for(
            ops, edges=[("a", "c")], transport=5, slots=1
        )
        result = solve_problem(problem, SynthesisSpec(max_devices=1, time_limit=10))
        pa, pb = result.schedule["a"], result.schedule["b"]
        if pb.start >= pa.start:  # b follows a on the single device
            assert pb.start >= pa.end + 5


class TestDependencies:
    def test_transport_separates_parent_child(self):
        ops = [Operation("p", Fixed(4)), Operation("c", Fixed(2))]
        result = solve_problem(
            problem_for(ops, edges=[("p", "c")], transport=3)
        )
        assert result.schedule["c"].start >= result.schedule["p"].end + 3

    def test_zero_transport_allows_immediate(self):
        ops = [Operation("p", Fixed(4)), Operation("c", Fixed(2))]
        result = solve_problem(problem_for(ops, edges=[("p", "c")]))
        assert result.schedule["c"].start == result.schedule["p"].end


class TestIndeterminateRules:
    def test_indeterminate_ends_layer(self):
        ops = [
            Operation("w1", Fixed(6)),
            Operation("w2", Fixed(9)),
            Operation("cap", Indeterminate(4)),
        ]
        result = solve_problem(problem_for(ops))
        cap = result.schedule["cap"]
        latest_start = max(p.start for p in result.schedule.placements.values())
        assert latest_start <= cap.end

    def test_two_indeterminate_different_devices(self):
        ops = [
            Operation("i1", Indeterminate(5)),
            Operation("i2", Indeterminate(5)),
        ]
        result = solve_problem(problem_for(ops))
        assert result.binding["i1"] != result.binding["i2"]

    def test_fixed_before_indeterminate_on_shared_device(self):
        # Single device: the fixed op must fully precede the open-ended one.
        ops = [
            Operation("w", Fixed(6)),
            Operation("cap", Indeterminate(4)),
        ]
        result = solve_problem(
            problem_for(ops, slots=1), SynthesisSpec(max_devices=1, time_limit=10)
        )
        assert result.schedule["cap"].start >= result.schedule["w"].end


class TestExactMode:
    def exact_spec(self):
        return SynthesisSpec(
            max_devices=8, time_limit=10, binding_mode=BindingMode.EXACT
        )

    def test_different_signatures_never_share(self):
        rich = Operation("rich", Fixed(3), container=ContainerKind.RING,
                         accessories=frozenset({"pump", "sieve_valve"}))
        poor = Operation("poor", Fixed(3), container=ContainerKind.RING,
                         accessories=frozenset({"pump"}))
        result = solve_problem(
            problem_for([rich, poor], edges=[("rich", "poor")]),
            self.exact_spec(),
        )
        assert result.binding["rich"] != result.binding["poor"]

    def test_same_signature_shares(self):
        a = Operation("a", Fixed(3), accessories=frozenset({"pump"}))
        b = Operation("b", Fixed(3), accessories=frozenset({"pump"}))
        result = solve_problem(
            problem_for([a, b], edges=[("a", "b")]), self.exact_spec()
        )
        assert result.binding["a"] == result.binding["b"]

    def test_new_devices_carry_signature(self):
        op = Operation("o", Fixed(3), accessories=frozenset({"pump"}))
        result = solve_problem(problem_for([op]), self.exact_spec())
        assert result.new_devices[0].signature == op.requirement_signature()


class TestPathCounting:
    def test_cross_device_edge_creates_path(self):
        # Two ops with incompatible containers MUST sit on different
        # devices; the dependency between them then needs a path.
        a = Operation("a", Fixed(3), capacity=Capacity.LARGE)  # ring only
        b = Operation("b", Fixed(3), capacity=Capacity.TINY)   # chamber only
        problem = problem_for([a, b], edges=[("a", "b")])
        spec = SynthesisSpec(max_devices=8, time_limit=10)
        layer_model = build_layer_model(problem, spec)
        solution = layer_model.model.solve(time_limit=10)
        used_paths = sum(
            solution.int_value(v) for v in layer_model.path_vars.values()
        )
        assert used_paths == 1

    def test_existing_path_is_free(self):
        d1 = GeneralDevice("x1", ContainerKind.RING, Capacity.LARGE)
        d2 = GeneralDevice("x2", ContainerKind.CHAMBER, Capacity.TINY)
        a = Operation("a", Fixed(3), capacity=Capacity.LARGE)
        b = Operation("b", Fixed(3), capacity=Capacity.TINY)
        problem = problem_for(
            [a, b], edges=[("a", "b")], fixed=[d1, d2], slots=0,
            existing_paths={("x1", "x2")},
        )
        spec = SynthesisSpec(max_devices=8, time_limit=10)
        layer_model = build_layer_model(problem, spec)
        # No path variable should have been created for the free pair.
        assert not layer_model.path_vars
