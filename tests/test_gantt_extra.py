"""Additional rendering tests: Gantt edge cases and ILP status helpers."""

import pytest

from repro.hls.schedule import HybridSchedule, LayerSchedule, OpPlacement
from repro.ilp import Model, SolveStatus
from repro.ilp.status import Solution
from repro.io import render_gantt


class TestGanttEdgeCases:
    def test_empty_schedule(self):
        text = render_gantt(HybridSchedule())
        assert "hybrid schedule" in text

    def test_empty_layer(self):
        sched = HybridSchedule(layers=[LayerSchedule(index=0)])
        text = render_gantt(sched)
        assert "layer 0" in text

    def test_tiny_op_still_visible(self):
        layer = LayerSchedule(index=0)
        layer.place(OpPlacement("blink", "d0", 0, 1))
        layer.place(OpPlacement("long", "d0", 1, 500))
        text = render_gantt(HybridSchedule(layers=[layer]), width=50)
        assert "=" in text
        assert "blink@0" in text

    def test_labels_disabled(self):
        layer = LayerSchedule(index=0)
        layer.place(OpPlacement("op", "d0", 0, 5))
        text = render_gantt(
            HybridSchedule(layers=[layer]), labels=False
        )
        assert "op@0" not in text

    def test_indeterminate_tail_extends(self):
        layer = LayerSchedule(index=0)
        layer.place(OpPlacement("fixed", "d0", 0, 20))
        layer.place(OpPlacement("cap", "d1", 0, 5, indeterminate=True))
        text = render_gantt(HybridSchedule(layers=[layer]), labels=False)
        # the cap row is hatched to the end of the layer window
        cap_row = next(l for l in text.splitlines() if l.startswith("      d1"))
        assert cap_row.rstrip().endswith("~|")


class TestSolveStatusHelpers:
    @pytest.mark.parametrize(
        "status,expected",
        [
            (SolveStatus.OPTIMAL, True),
            (SolveStatus.FEASIBLE, True),
            (SolveStatus.INFEASIBLE, False),
            (SolveStatus.UNBOUNDED, False),
            (SolveStatus.TIMEOUT, False),
        ],
    )
    def test_has_solution(self, status, expected):
        assert status.has_solution is expected

    def test_int_value_rejects_fractional(self):
        m = Model()
        x = m.continuous("x", lb=0, ub=1)
        solution = Solution(
            status=SolveStatus.OPTIMAL, objective=0.5, values={x: 0.5}
        )
        with pytest.raises(ValueError):
            solution.int_value(x)

    def test_int_value_rounds_close(self):
        m = Model()
        x = m.integer("x", lb=0, ub=5)
        solution = Solution(
            status=SolveStatus.OPTIMAL, objective=3.0,
            values={x: 2.9999999},
        )
        assert solution.int_value(x) == 3
