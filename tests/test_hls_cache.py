"""Tests for the cross-pass layer-solve cache (repro.hls.cache)."""

import dataclasses

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.assays import random_assay
from repro.hls import LayerSolveCache, SynthesisSpec, synthesize
from repro.hls.cache import fingerprint_layer_problem
from repro.hls.milp_model import LayerProblem
from repro.hls.synthesizer import _solve_layer
from repro.hls.transport import TransportEstimator
from repro.layering import layer_assay
from repro.operations import AssayBuilder


def make_allocator(prefix="d"):
    counter = [0]

    def allocate():
        uid = f"{prefix}{counter[0]}"
        counter[0] += 1
        return uid

    return allocate


def first_layer_problem(assay, spec, fixed_devices=()):
    """A LayerProblem for the assay's first layer, as _run_pass builds it."""
    layering = layer_assay(assay, spec.threshold)
    layer = layering.layers[0]
    uids = set(layer.uids)
    ops = [assay[uid] for uid in layer.uids]
    in_edges = [(p, c) for p, c in assay.edges if p in uids and c in uids]
    transport = TransportEstimator(assay, spec)
    fixed = list(fixed_devices)
    return LayerProblem(
        layer_index=layer.index,
        ops=ops,
        in_layer_edges=in_edges,
        edge_transport={e: transport.edge_time(*e) for e in in_edges},
        release={u: transport.release_time(u, within=uids) for u in layer.uids},
        fixed_devices=fixed,
        free_slots=max(0, spec.max_devices - len(fixed)),
        incoming=[],
        outgoing=[],
        existing_paths=set(),
    )


def structurally_equal(fresh, replay, problem):
    """Compare two layer results modulo device-uid renaming."""
    assert replay.objective == fresh.objective
    assert replay.solver_status == fresh.solver_status
    assert set(replay.binding) == set(fresh.binding)

    # Op -> device assignment must be the same partition under a bijection.
    mapping = {}
    for uid in fresh.binding:
        a, b = fresh.binding[uid], replay.binding[uid]
        assert mapping.setdefault(a, b) == b, "device mapping not a function"
    assert len(set(mapping.values())) == len(mapping), "mapping not injective"

    # Placements: identical timing per op.
    for uid in fresh.binding:
        pf, pr = fresh.schedule[uid], replay.schedule[uid]
        assert (pf.start, pf.duration, pf.indeterminate) == (
            pr.start, pr.duration, pr.indeterminate
        )
    assert replay.schedule.makespan == fresh.schedule.makespan

    # New devices: same configurations in the same slot order.
    def config(d):
        return (d.container, d.capacity, frozenset(d.accessories), d.signature)

    assert [config(d) for d in replay.new_devices] == [
        config(d) for d in fresh.new_devices
    ]
    return True


class TestFingerprint:
    def spec(self):
        return SynthesisSpec(max_devices=6, threshold=3, time_limit=5)

    def assay(self):
        b = AssayBuilder("fp")
        a = b.op("a", 3, container="chamber")
        b.op("b", 5, container="ring", accessories=["pump"], after=[a])
        return b.build()

    def test_deterministic(self):
        spec = self.spec()
        problem = first_layer_problem(self.assay(), spec)
        assert fingerprint_layer_problem(
            problem, spec
        ) == fingerprint_layer_problem(problem, spec)

    def test_invariant_under_fixed_device_renaming(self):
        from repro.components import Capacity, ContainerKind
        from repro.devices import GeneralDevice

        spec = self.spec()

        def dev(uid):
            return GeneralDevice(uid, ContainerKind.CHAMBER, Capacity.SMALL)

        p1 = first_layer_problem(self.assay(), spec, fixed_devices=[dev("d0")])
        p2 = first_layer_problem(
            self.assay(), spec, fixed_devices=[dev("d99")]
        )
        assert fingerprint_layer_problem(
            p1, spec
        ) == fingerprint_layer_problem(p2, spec)

    def test_sensitive_to_transport(self):
        spec = self.spec()
        problem = first_layer_problem(self.assay(), spec)
        changed = dataclasses.replace(
            problem,
            edge_transport={
                e: t + 1 for e, t in problem.edge_transport.items()
            },
        )
        if problem.edge_transport:
            assert fingerprint_layer_problem(
                problem, spec
            ) != fingerprint_layer_problem(changed, spec)

    def test_sensitive_to_free_slots(self):
        spec = self.spec()
        problem = first_layer_problem(self.assay(), spec)
        changed = dataclasses.replace(
            problem, free_slots=problem.free_slots - 1
        )
        assert fingerprint_layer_problem(
            problem, spec
        ) != fingerprint_layer_problem(changed, spec)

    def test_sensitive_to_weights(self):
        spec = self.spec()
        problem = first_layer_problem(self.assay(), spec)
        other = dataclasses.replace(
            spec, weights=dataclasses.replace(spec.weights, paths=99.0)
        )
        assert fingerprint_layer_problem(
            problem, spec
        ) != fingerprint_layer_problem(problem, other)


class TestReplay:
    def test_miss_then_hit(self):
        spec = SynthesisSpec(max_devices=6, threshold=3, time_limit=5)
        b = AssayBuilder("replay")
        a = b.op("a", 3, container="chamber")
        b.op("b", 5, container="ring", accessories=["pump"], after=[a])
        problem = first_layer_problem(b.build(), spec)

        cache = LayerSolveCache()
        assert cache.lookup(problem, spec, make_allocator()) is None
        assert (cache.hits, cache.misses) == (0, 1)

        fresh = _solve_layer(problem, spec, make_allocator())
        cache.store(problem, spec, fresh)
        replay = cache.lookup(problem, spec, make_allocator("r"))
        assert replay is not None
        assert (cache.hits, cache.misses) == (1, 1)
        assert replay.stats is not None and replay.stats.cache_hit
        assert structurally_equal(fresh, replay, problem)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 300), num_ops=st.integers(2, 7))
    def test_replay_matches_fresh_solve(self, seed, num_ops):
        """Property: a cache hit reproduces the fresh solve exactly
        (schedule timing, binding partition, objective), modulo uids."""
        spec = SynthesisSpec(
            max_devices=8, threshold=3, time_limit=5, max_iterations=0
        )
        assay = random_assay(
            num_ops, seed=seed, indeterminate_fraction=0.2, max_duration=10
        )
        problem = first_layer_problem(assay, spec)
        fresh = _solve_layer(problem, spec, make_allocator())
        cache = LayerSolveCache()
        cache.store(problem, spec, fresh)
        replay = cache.lookup(problem, spec, make_allocator("r"))
        assert replay is not None
        assert structurally_equal(fresh, replay, problem)


class TestSynthesisWithCache:
    def test_cache_disabled_matches_enabled(self, indeterminate_assay):
        base = SynthesisSpec(
            max_devices=6, threshold=2, time_limit=10, max_iterations=2
        )
        on = synthesize(indeterminate_assay, base)
        off = synthesize(
            indeterminate_assay,
            dataclasses.replace(base, enable_solve_cache=False),
        )
        assert on.fixed_makespan == off.fixed_makespan
        assert on.num_devices == off.num_devices
        assert on.num_paths == off.num_paths
        assert [r.fixed_makespan for r in on.history] == [
            r.fixed_makespan for r in off.history
        ]
        assert off.cache_hits == 0
        assert off.ilp_solves == len(off.solve_stats)

    def test_telemetry_attached_to_every_layer(self, indeterminate_assay):
        spec = SynthesisSpec(
            max_devices=6, threshold=2, time_limit=10, max_iterations=1
        )
        result = synthesize(indeterminate_assay, spec)
        num_layers = result.layering.num_layers
        for record in result.history:
            assert len(record.layer_stats) == num_layers
            for stats in record.layer_stats:
                assert stats.layer >= 0
                assert stats.status
                assert stats.backend
        assert result.ilp_solves + result.cache_hits == len(result.solve_stats)

    def test_negative_threshold_iterates_to_convergence(self, diamond_assay):
        """With a negative improvement threshold, the loop continues through
        zero-improvement passes and terminates on a fully replayed pass."""
        spec = SynthesisSpec(
            max_devices=6,
            threshold=2,
            time_limit=10,
            max_iterations=4,
            improvement_threshold=-1.0,
        )
        result = synthesize(diamond_assay, spec)
        last = result.history[-1]
        # Converged before exhausting the iteration budget: the final pass
        # replayed every layer from the cache.
        if len(result.history) <= spec.max_iterations:
            assert last.layer_stats
            assert all(s.cache_hit for s in last.layer_stats)
        assert result.cache_hits > 0

    def test_converged_resynthesis_hits_cache(self):
        """Once transport and inventory stop changing, later passes replay
        at least one layer from the cache instead of re-solving it."""
        from repro.assays import gene_expression_assay

        spec = SynthesisSpec(
            max_devices=10, threshold=5, time_limit=10, max_iterations=3
        )
        result = synthesize(gene_expression_assay(cells=3), spec)
        if len(result.history) >= 3:
            assert result.cache_hits > 0
        # Never more ILP solves than problems posed.
        posed = sum(len(r.layer_stats) for r in result.history)
        assert result.ilp_solves <= posed


class TestLRUBound:
    def spec(self):
        return SynthesisSpec(max_devices=6, threshold=3, time_limit=5)

    def problem_for(self, seed, num_ops=3):
        assay = random_assay(
            num_ops, seed=seed, indeterminate_fraction=0.0, max_duration=8
        )
        return first_layer_problem(assay, self.spec())

    def fill(self, cache, count):
        spec = self.spec()
        for seed in range(count):
            problem = self.problem_for(seed)
            if cache.lookup(problem, spec, make_allocator()) is None:
                cache.store(
                    problem, spec, _solve_layer(problem, spec, make_allocator())
                )

    def test_capacity_bounds_entries(self):
        cache = LayerSolveCache(capacity=2)
        self.fill(cache, 4)
        assert len(cache) <= 2
        assert cache.evictions >= 2

    def test_unbounded_by_default(self):
        cache = LayerSolveCache()
        self.fill(cache, 4)
        assert cache.evictions == 0
        assert len(cache) == 4

    def test_lookup_refreshes_recency(self):
        spec = self.spec()
        cache = LayerSolveCache(capacity=2)
        first = self.problem_for(0)
        second = self.problem_for(1)
        for problem in (first, second):
            cache.store(
                problem, spec, _solve_layer(problem, spec, make_allocator())
            )
        # Touch `first`, then insert a third entry: `second` is evicted.
        assert cache.lookup(first, spec, make_allocator()) is not None
        third = self.problem_for(2)
        cache.store(third, spec, _solve_layer(third, spec, make_allocator()))
        assert cache.lookup(first, spec, make_allocator("x")) is not None
        assert cache.lookup(second, spec, make_allocator("y")) is None

    def test_counters_shape(self):
        cache = LayerSolveCache(capacity=8)
        self.fill(cache, 2)
        counters = cache.counters()
        assert counters["entries"] == 2
        assert counters["capacity"] == 8
        assert counters["misses"] >= 2
        assert counters["evictions"] == 0

    def test_spec_capacity_flows_into_result_counters(self, linear_assay):
        import dataclasses as _dc

        spec = _dc.replace(self.spec(), solve_cache_capacity=7,
                           max_iterations=0)
        result = synthesize(linear_assay, spec)
        assert result.cache_counters["capacity"] == 7
        assert result.cache_counters["entries"] >= 0


class TestExportImport:
    def spec(self):
        return SynthesisSpec(max_devices=6, threshold=3, time_limit=5)

    def test_round_trip_replays(self):
        spec = self.spec()
        b = AssayBuilder("exp")
        a = b.op("a", 3, container="chamber")
        b.op("b", 5, container="ring", accessories=["pump"], after=[a])
        problem = first_layer_problem(b.build(), spec)
        source = LayerSolveCache()
        fresh = _solve_layer(problem, spec, make_allocator())
        source.store(problem, spec, fresh)

        target = LayerSolveCache()
        added = target.import_entries(source.export_entries())
        assert added == 1
        replay = target.lookup(problem, spec, make_allocator("r"))
        assert replay is not None
        assert structurally_equal(fresh, replay, problem)

    def test_export_limit_keeps_most_recent(self):
        spec = self.spec()
        cache = LayerSolveCache()
        problems = []
        for seed in range(3):
            assay = random_assay(3, seed=seed, indeterminate_fraction=0.0,
                                 max_duration=8)
            problem = first_layer_problem(assay, spec)
            problems.append(problem)
            cache.store(
                problem, spec, _solve_layer(problem, spec, make_allocator())
            )
        limited = cache.export_entries(limit=1)
        assert len(limited) == 1
        target = LayerSolveCache()
        target.import_entries(limited)
        assert target.lookup(problems[-1], spec, make_allocator()) is not None

    def test_import_is_idempotent(self):
        spec = self.spec()
        b = AssayBuilder("idem")
        b.op("a", 3, container="chamber")
        problem = first_layer_problem(b.build(), spec)
        cache = LayerSolveCache()
        cache.store(problem, spec, _solve_layer(problem, spec, make_allocator()))
        entries = cache.export_entries()
        target = LayerSolveCache()
        assert target.import_entries(entries) == 1
        assert target.import_entries(entries) == 0
        assert len(target) == 1


class TestRunFingerprint:
    def test_stable_and_sensitive(self, linear_assay, indeterminate_assay):
        from repro.hls import fingerprint_run

        spec = SynthesisSpec(max_devices=6, threshold=3, time_limit=5)
        assert fingerprint_run(linear_assay, spec) == fingerprint_run(
            linear_assay, spec
        )
        assert fingerprint_run(linear_assay, spec) != fingerprint_run(
            indeterminate_assay, spec
        )
        assert fingerprint_run(linear_assay, spec) != fingerprint_run(
            linear_assay, spec, method="conventional"
        )
        tighter = dataclasses.replace(spec, max_devices=5)
        assert fingerprint_run(linear_assay, spec) != fingerprint_run(
            linear_assay, tighter
        )

    def test_ignores_performance_knobs(self, linear_assay):
        from repro.hls import fingerprint_run

        spec = SynthesisSpec(max_devices=6, threshold=3, time_limit=5)
        tuned = dataclasses.replace(
            spec, jobs=8, enable_solve_cache=False, solve_cache_capacity=3,
        )
        assert fingerprint_run(linear_assay, spec) == fingerprint_run(
            linear_assay, tuned
        )

    def test_survives_json_round_trip(self, indeterminate_assay):
        from repro.hls import fingerprint_run
        from repro.io.json_io import (
            assay_from_json,
            assay_to_json,
            spec_from_json,
            spec_to_json,
        )

        spec = SynthesisSpec(max_devices=6, threshold=3, time_limit=5)
        direct = fingerprint_run(indeterminate_assay, spec)
        wired = fingerprint_run(
            assay_from_json(assay_to_json(indeterminate_assay)),
            spec_from_json(spec_to_json(spec)),
        )
        assert direct == wired
