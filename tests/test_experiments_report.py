"""Tests for the experiment report formatting (repro.experiments)."""

from repro.experiments.report import format_table2, format_table3
from repro.experiments.table2 import PAPER_TABLE2, Table2Row
from repro.experiments.table3 import PAPER_TABLE3, Table3Row


def make_row(case=1, method="Our", exe="94m", devices=4, paths=2):
    return Table2Row(
        case=case,
        method=method,
        num_ops=16,
        num_indeterminate=0,
        exe_time=exe,
        fixed_makespan=94,
        num_devices=devices,
        num_paths=paths,
        runtime_seconds=12.5,
        layer_statuses=["optimal"],
    )


class TestTable2Format:
    def test_columns_present(self):
        text = format_table2([make_row()])
        assert "Exe.Time" in text and "#D." in text and "#P." in text
        assert "94m" in text and "12.5" in text

    def test_paper_rows_interleaved(self):
        text = format_table2([make_row()], include_paper=True)
        assert "(paper)" in text
        assert "220m" in text  # paper's case-1 Our value

    def test_paper_rows_suppressed(self):
        text = format_table2([make_row()], include_paper=False)
        assert "(paper)" not in text

    def test_conv_maps_to_conv_paper_row(self):
        text = format_table2([make_row(method="Conv.")])
        assert "225m" in text

    def test_row_columns_tuple(self):
        row = make_row()
        assert row.columns[0] == 1
        assert row.columns[2] == "94m"


class TestTable3Format:
    def test_improvements(self):
        row = Table3Row(case=2, exe_times=[295, 247, 244],
                        devices=[21, 21, 21])
        imps = row.improvements
        assert imps[0] == (295 - 247) / 295
        assert row.total_improvement == (295 - 244) / 295

    def test_format_includes_paper(self):
        row = Table3Row(case=2, exe_times=[300, 250], devices=[20, 20])
        text = format_table3([row])
        assert "295m" in text  # paper initial
        assert "300m" in text and "250m" in text

    def test_short_history_padded(self):
        row = Table3Row(case=3, exe_times=[641], devices=[24])
        text = format_table3([row])
        assert "-" in text

    def test_zero_history_improvement(self):
        row = Table3Row(case=2, exe_times=[], devices=[])
        assert row.total_improvement == 0.0


class TestPaperConstants:
    def test_paper_table2_complete(self):
        for case in (1, 2, 3):
            assert set(PAPER_TABLE2[case]) == {"conv", "ours"}
            for exe, devices, paths in PAPER_TABLE2[case].values():
                assert exe.endswith("m") or "+I_" in exe
                assert devices > 0 and paths > 0

    def test_paper_table3_shape(self):
        for case in (2, 3):
            exe = PAPER_TABLE3[case]["exe"]
            assert exe[0] > exe[1] > exe[2]  # monotone improvement
            devices = PAPER_TABLE3[case]["devices"]
            assert len(set(devices)) == 1  # flat device counts


class TestProfileGuards:
    """synthesis_profile / format_profile / export stay valid with zero
    solves, empty passes, and foreign or missing keys."""

    def empty_profile(self):
        return {
            "assay": "empty",
            "num_layers": 0,
            "passes": [],
            "totals": {
                "passes": 0, "cache_hits": 0, "ilp_solves": 0,
                "speculative_solves": 0, "nodes": 0,
                "simplex_iterations": 0, "build_time": 0.0,
                "solve_time": 0.0, "mean_solve_time": 0.0, "runtime": 0.0,
            },
        }

    def test_zero_solve_profile_formats(self):
        from repro.experiments import format_profile

        text = format_profile(self.empty_profile())
        assert "0 layer solve(s)" in text

    def test_missing_totals_keys_format(self):
        from repro.experiments import format_profile

        assert "totals:" in format_profile({"passes": [], "totals": {}})
        assert "totals:" in format_profile({})

    def test_zero_solve_export_is_valid_json(self, tmp_path):
        import json

        from repro.experiments import export_profiles

        out = tmp_path / "profiles.json"
        export_profiles({0: self.empty_profile()}, str(out))
        data = json.loads(out.read_text())
        assert data["0"]["totals"]["ilp_solves"] == 0

    def test_nan_totals_rejected_not_emitted(self, tmp_path):
        import pytest

        from repro.errors import SerializationError
        from repro.experiments import export_profiles

        profile = self.empty_profile()
        profile["totals"]["runtime"] = float("nan")
        with pytest.raises(SerializationError):
            export_profiles({0: profile}, str(tmp_path / "bad.json"))

    def test_real_profile_has_guarded_mean(self, linear_assay):
        from repro.experiments import synthesis_profile
        from repro.hls import SynthesisSpec, synthesize

        result = synthesize(
            linear_assay,
            SynthesisSpec(max_devices=6, threshold=2, time_limit=5,
                          max_iterations=0),
        )
        totals = synthesis_profile(result)["totals"]
        if totals["ilp_solves"]:
            expected = totals["solve_time"] / totals["ilp_solves"]
            assert abs(totals["mean_solve_time"] - expected) < 1e-9
        else:
            assert totals["mean_solve_time"] == 0.0

    def test_solve_stats_from_dict_ignores_unknown_keys(self):
        from repro.ilp import SolveStats

        stats = SolveStats.from_dict(
            {"layer": 2, "backend": "highs", "from_the_future": True}
        )
        assert stats.layer == 2
        assert stats.backend == "highs"

    def test_stats_profile_json_valid_for_fixed_assay(
        self, linear_assay, tmp_path
    ):
        import json

        from repro.cli import main
        from repro.io import save_assay

        path = tmp_path / "assay.json"
        save_assay(linear_assay, path)
        out = tmp_path / "profile.json"
        code = main([
            "stats", str(path), "--time-limit", "5",
            "--max-iterations", "0", "--profile-json", str(out),
        ])
        assert code == 0
        json.loads(out.read_text())


class TestDeterministicProfile:
    def test_strips_wall_clock_fields(self):
        from repro.experiments import deterministic_profile

        profile = {
            "passes": [{
                "label": "Initial",
                "stage_timings": {"layering": 0.5},
                "layers": [{"layer": 0, "build_time": 0.2,
                            "solve_time": 1.5, "nodes": 7}],
            }],
            "totals": {"ilp_solves": 1, "build_time": 0.2,
                       "solve_time": 1.5, "mean_solve_time": 1.5,
                       "runtime": 2.0},
        }
        out = deterministic_profile(profile)
        layer = out["passes"][0]["layers"][0]
        assert layer["build_time"] == 0.0 and layer["solve_time"] == 0.0
        assert layer["nodes"] == 7  # solver work is deterministic, kept
        assert out["passes"][0]["stage_timings"] == {}
        assert out["totals"]["runtime"] == 0.0
        assert out["totals"]["ilp_solves"] == 1
        # The input is untouched.
        assert profile["totals"]["runtime"] == 2.0

    def test_identical_runs_export_identically(self, linear_assay):
        import json

        from repro.experiments import deterministic_profile, synthesis_profile
        from repro.hls import SynthesisSpec, synthesize

        spec = SynthesisSpec(max_devices=6, threshold=2, time_limit=5,
                             max_iterations=0)
        a = deterministic_profile(
            synthesis_profile(synthesize(linear_assay, spec))
        )
        b = deterministic_profile(
            synthesis_profile(synthesize(linear_assay, spec))
        )
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
