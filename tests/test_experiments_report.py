"""Tests for the experiment report formatting (repro.experiments)."""

from repro.experiments.report import format_table2, format_table3
from repro.experiments.table2 import PAPER_TABLE2, Table2Row
from repro.experiments.table3 import PAPER_TABLE3, Table3Row


def make_row(case=1, method="Our", exe="94m", devices=4, paths=2):
    return Table2Row(
        case=case,
        method=method,
        num_ops=16,
        num_indeterminate=0,
        exe_time=exe,
        fixed_makespan=94,
        num_devices=devices,
        num_paths=paths,
        runtime_seconds=12.5,
        layer_statuses=["optimal"],
    )


class TestTable2Format:
    def test_columns_present(self):
        text = format_table2([make_row()])
        assert "Exe.Time" in text and "#D." in text and "#P." in text
        assert "94m" in text and "12.5" in text

    def test_paper_rows_interleaved(self):
        text = format_table2([make_row()], include_paper=True)
        assert "(paper)" in text
        assert "220m" in text  # paper's case-1 Our value

    def test_paper_rows_suppressed(self):
        text = format_table2([make_row()], include_paper=False)
        assert "(paper)" not in text

    def test_conv_maps_to_conv_paper_row(self):
        text = format_table2([make_row(method="Conv.")])
        assert "225m" in text

    def test_row_columns_tuple(self):
        row = make_row()
        assert row.columns[0] == 1
        assert row.columns[2] == "94m"


class TestTable3Format:
    def test_improvements(self):
        row = Table3Row(case=2, exe_times=[295, 247, 244],
                        devices=[21, 21, 21])
        imps = row.improvements
        assert imps[0] == (295 - 247) / 295
        assert row.total_improvement == (295 - 244) / 295

    def test_format_includes_paper(self):
        row = Table3Row(case=2, exe_times=[300, 250], devices=[20, 20])
        text = format_table3([row])
        assert "295m" in text  # paper initial
        assert "300m" in text and "250m" in text

    def test_short_history_padded(self):
        row = Table3Row(case=3, exe_times=[641], devices=[24])
        text = format_table3([row])
        assert "-" in text

    def test_zero_history_improvement(self):
        row = Table3Row(case=2, exe_times=[], devices=[])
        assert row.total_improvement == 0.0


class TestPaperConstants:
    def test_paper_table2_complete(self):
        for case in (1, 2, 3):
            assert set(PAPER_TABLE2[case]) == {"conv", "ours"}
            for exe, devices, paths in PAPER_TABLE2[case].values():
                assert exe.endswith("m") or "+I_" in exe
                assert devices > 0 and paths > 0

    def test_paper_table3_shape(self):
        for case in (2, 3):
            exe = PAPER_TABLE3[case]["exe"]
            assert exe[0] > exe[1] > exe[2]  # monotone improvement
            devices = PAPER_TABLE3[case]["devices"]
            assert len(set(devices)) == 1  # flat device counts
