#!/usr/bin/env python
"""Case study: single-cell gene expression profiling with hybrid scheduling.

Reproduces the paper's benchmark case 2 (Zhong et al. 2008) at a reduced
scale so it runs in seconds: four parallel single-cell pipelines, each
starting with an *indeterminate* cell-capture operation.  Shows

* how the layering algorithm separates the indeterminate captures from the
  downstream chemistry,
* the hybrid schedule with its symbolic ``I_1`` term,
* a simulated cyberphysical run resolving that term (cells captured with
  ~53 % per-attempt success, as reported for single-cell traps [11]).

Run with::

    python examples/gene_expression_profiling.py
"""

from repro import SynthesisSpec, synthesize
from repro.assays import gene_expression_assay
from repro.io import render_gantt
from repro.runtime import RetryModel, execute_schedule


def main() -> None:
    assay = gene_expression_assay(cells=4)  # 28 ops, 4 indeterminate
    print(f"{assay.name}: {len(assay)} operations, "
          f"{assay.num_indeterminate} indeterminate")

    spec = SynthesisSpec(
        max_devices=12, threshold=10, time_limit=15.0, max_iterations=1,
    )
    result = synthesize(assay, spec)

    print(f"\nlayering: {result.layering.num_layers} layers")
    for layer in result.layering.layers:
        ind = len(layer.indeterminate_uids)
        print(f"  layer {layer.index}: {len(layer)} ops "
              f"({ind} indeterminate)")

    print(f"\nscheduled execution time: {result.makespan_expression}")
    print(f"devices: {result.num_devices}, paths: {result.num_paths}")
    print()
    print(render_gantt(result.schedule, width=64, labels=False))

    # Cyberphysical run: sample actual capture durations.
    print("\nsimulated runs (per-attempt capture success 53%):")
    for seed in range(3):
        report = execute_schedule(
            result.schedule, RetryModel(success_probability=0.53), seed=seed
        )
        retries = {
            uid: tries for uid, tries in report.attempts.items() if tries > 1
        }
        print(
            f"  run {seed}: realized makespan {report.makespan}m "
            f"(scheduled {result.fixed_makespan}m "
            f"+ I_1={report.realized_terms.get(1, 0)}m); "
            f"retries: {retries or 'none'}"
        )


if __name__ == "__main__":
    main()
