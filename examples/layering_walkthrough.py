#!/usr/bin/env python
"""Algorithm walkthrough: layering + min-cut eviction (paper Figs. 4 & 5).

Builds the dependency structures the paper uses to illustrate Algorithm 1
and prints each decision the algorithm makes:

* Fig. 4 — dependency-based allocation by the modified maximum-independent-
  set pass;
* Fig. 5 — eviction pricing: storage (min-cut value) first, number of
  removed ancestor operations second.

Run with::

    python examples/layering_walkthrough.py
"""

from repro import Assay, Fixed, Indeterminate, Operation
from repro.layering import eviction_cost, layer_assay


def fig4() -> None:
    print("=" * 64)
    print("Fig. 4 — dependency-based allocation")
    print("=" * 64)
    assay = Assay("fig4")
    for uid in ("o1", "o2", "o3", "side1", "side2"):
        assay.add(Operation(uid, Fixed(5)))
    assay.add(Operation("oa", Indeterminate(8)))
    assay.add(Operation("ob", Indeterminate(8)))
    assay.add_dependency("o1", "oa")      # o1 -> oa (indeterminate)
    assay.add_dependency("oa", "o2")      # oa -> o2 -> ob (indeterminate)
    assay.add_dependency("o2", "ob")
    assay.add_dependency("ob", "o3")
    assay.add_dependency("side1", "side2")  # independent side chain

    result = layer_assay(assay, threshold=10)
    for layer in result.layers:
        ind = ", ".join(layer.indeterminate_uids) or "-"
        print(f"layer {layer.index}: {', '.join(layer.uids)}")
        print(f"          indeterminate tail: {ind}")
    print(
        "\noa is selected first (no indeterminate ancestor); its\n"
        "descendants o2/ob/o3 move to later layers; the side chain has no\n"
        "indeterminate dependency and fills layer 0."
    )


def fig5() -> None:
    print()
    print("=" * 64)
    print("Fig. 5 — min-cut eviction pricing")
    print("=" * 64)
    assay = Assay("fig5")
    # o1: single ancestor chain  a1 -> o1
    assay.add(Operation("a1", Fixed(3)))
    assay.add(Operation("o1", Indeterminate(5)))
    assay.add_dependency("a1", "o1")
    # o2: two parents b1, b2 -> o2
    for uid in ("b1", "b2"):
        assay.add(Operation(uid, Fixed(3)))
    assay.add(Operation("o2", Indeterminate(5)))
    assay.add_dependency("b1", "o2")
    assay.add_dependency("b2", "o2")
    # o3: chain c1 -> c2 -> c3 -> o3
    for uid in ("c1", "c2", "c3"):
        assay.add(Operation(uid, Fixed(3)))
    assay.add(Operation("o3", Indeterminate(5)))
    assay.add_dependency("c1", "c2")
    assay.add_dependency("c2", "c3")
    assay.add_dependency("c3", "o3")

    layer = set(assay.uids)
    graph = assay.graph
    print(f"{'op':<4} {'storage':>8} {'#removed':>9}  removed set")
    for uid in ("o1", "o2", "o3"):
        cost = eviction_cost(layer, graph, uid)
        print(
            f"{uid:<4} {cost.storage:>8} {len(cost.removed):>9}  "
            f"{sorted(cost.removed)}"
        )
    print(
        "\neviction priority: o1 (or o3) before o2 — less reagent storage;\n"
        "among equal-storage cuts the one removing fewer operations wins\n"
        "(the paper's c2-over-c1 preference in Fig. 5(d))."
    )


if __name__ == "__main__":
    fig4()
    fig5()
