#!/usr/bin/env python
"""Produce a complete chip datasheet for a synthesized assay.

Ties the analysis extensions together: synthesize the ChIP workload
(extension assay), then emit everything a wet-lab/chip-design handoff
needs — schedule statistics, critical-path bound, storage demand, valve
and control-port estimates, the valve actuation program, and SVG drawings
of the schedule and the placed chip.

Run with::

    python examples/chip_datasheet.py [output_dir]
"""

import sys
from pathlib import Path

from repro import SynthesisSpec, synthesize
from repro.analysis import critical_path, schedule_stats, storage_report
from repro.analysis.stats import format_stats
from repro.assays import chip_assay
from repro.components.control import chip_control
from repro.io.svg import placement_to_svg, schedule_to_svg
from repro.layout import GridPlacer, layout_refined_transport
from repro.runtime import generate_control_program


def main() -> None:
    out_dir = Path(sys.argv[1] if len(sys.argv) > 1 else "datasheet")
    out_dir.mkdir(exist_ok=True)

    assay = chip_assay(samples=3)  # 27 ops, 3 indeterminate
    spec = SynthesisSpec(
        max_devices=10, threshold=3, time_limit=10.0, max_iterations=1,
    )
    result = synthesize(assay, spec)

    print(f"=== {assay.name} ===")
    print(f"execution time : {result.makespan_expression}")

    # -- schedule statistics ------------------------------------------------
    stats = schedule_stats(result.schedule)
    print("\n-- schedule --")
    print(format_stats(stats))

    cp = critical_path(assay, result.edge_transport)
    print(f"\ncritical path  : {cp.length_with_transport}m "
          f"through {' -> '.join(cp.uids[:4])}...")
    slack = result.fixed_makespan - cp.length_with_transport
    print(f"schedule slack : {slack}m over the dependency bound")

    # -- storage ------------------------------------------------------------
    storage = storage_report(result)
    print(f"\n-- storage --\ncross-layer reagents: {storage.total_crossings}"
          f" (peak buffered: {storage.peak_demand})")

    # -- control layer -----------------------------------------------------
    control = chip_control(result)
    print(f"\n-- control layer --\nvalves: {control.valves}, "
          f"control ports: {control.control_ports}")
    program = generate_control_program(result)
    print(f"actuation events: {len(program)}, "
          f"valve switches: {program.total_switches}")
    (out_dir / "control_program.txt").write_text(program.render())

    # -- drawings -----------------------------------------------------------
    (out_dir / "schedule.svg").write_text(schedule_to_svg(result.schedule))
    estimator = layout_refined_transport(
        assay, spec, result.schedule.binding, placer=GridPlacer(seed=11),
    )
    if estimator.last_placement is not None:
        (out_dir / "chip.svg").write_text(
            placement_to_svg(result, estimator.last_placement)
        )
    print(f"\nwrote {out_dir}/schedule.svg, {out_dir}/chip.svg, "
          f"{out_dir}/control_program.txt")


if __name__ == "__main__":
    main()
