#!/usr/bin/env python
"""Quickstart: describe an assay, synthesize it, inspect the result.

A minimal PCR-style protocol: sample loading, rotary mixing, thermocycling,
fluorescence readout.  Run with::

    python examples/quickstart.py
"""

from repro import AssayBuilder, SynthesisSpec, synthesize
from repro.io import render_gantt


def main() -> None:
    # 1. Describe the protocol as component-oriented operations: each op
    #    states the container, capacity, and accessories it needs — not a
    #    functional "type".
    b = AssayBuilder("pcr-demo")
    load = b.op(
        "load_sample", 3,
        container="chamber", capacity="small", function="load",
    )
    mix = b.op(
        "mix_reagents", 8,
        container="ring", accessories=["pump"], function="mix",
        after=[load],
    )
    amplify = b.op(
        "thermocycle", 35,
        accessories=["heating_pad"], function="heat",
        after=[mix],
    )
    b.op(
        "read_fluorescence", 2,
        accessories=["optical_system"], function="detect",
        after=[amplify],
    )
    assay = b.build()

    # 2. Synthesize: the engine decides which devices to integrate on the
    #    chip, binds every operation, and schedules the whole assay.
    spec = SynthesisSpec(max_devices=5, time_limit=10.0)
    result = synthesize(assay, spec)

    # 3. Inspect.
    print(f"assay          : {assay.name} ({len(assay)} operations)")
    print(f"execution time : {result.makespan_expression}")
    print(f"devices used   : {result.num_devices}")
    for uid, device in sorted(result.devices.items()):
        ops_on_device = [
            op for op, dev in result.schedule.binding.items() if dev == uid
        ]
        print(f"   {device}  runs {', '.join(ops_on_device)}")
    print(f"flow paths     : {result.num_paths}")
    print()
    print(render_gantt(result.schedule))


if __name__ == "__main__":
    main()
