#!/usr/bin/env python
"""Extending the component catalog: a droplet-on-demand electrode array.

The paper's central pitch is that a *component-oriented* description "can
easily be extended and thus adapted to continuous biological innovations"
(contribution I).  This example registers a brand-new accessory type —
a dielectrophoresis (DEP) electrode array — and synthesizes an assay that
uses it, without touching a single line of library code.

Run with::

    python examples/component_extension.py
"""

import dataclasses

from repro import AssayBuilder, SynthesisSpec, synthesize
from repro.components import Accessory, standard_registry
from repro.components.costs import default_cost_model


def main() -> None:
    # 1. Register the new accessory.  Short code must be unique; 'e' is
    #    free (p/h/o/s/c are taken by the standard five).
    registry = standard_registry()
    dep_array = registry.register(
        Accessory(
            "dep_electrodes", "e",
            "dielectrophoresis electrode array for label-free cell sorting",
        )
    )
    print(f"registered: {dep_array.name} ({dep_array.description})")

    # 2. Price it.  Electrode arrays need an extra metal layer: expensive.
    costs = default_cost_model()
    costs.accessory_processing["dep_electrodes"] = 7.0

    # 3. Use it like any built-in component.
    b = AssayBuilder("dep-sorting")
    load = b.op("load_cells", 4, container="chamber", capacity="medium")
    sort = b.op(
        "dep_sort", 12, container="chamber", capacity="medium",
        accessories=["dep_electrodes", "pump"], function="sort",
        after=[load],
    )
    collect = b.op(
        "collect", 3, container="chamber", capacity="small",
        accessories=["pump"], after=[sort],
    )
    b.op(
        "verify", 2, accessories=["optical_system", "dep_electrodes"],
        capacity="small", after=[collect],
    )
    assay = b.build()

    spec = SynthesisSpec(
        max_devices=5, time_limit=10.0, registry=registry, cost_model=costs,
    )
    result = synthesize(assay, spec)

    print(f"\nexecution time: {result.makespan_expression}")
    for uid, device in sorted(result.devices.items()):
        marker = " <-- carries the new accessory" if (
            "dep_electrodes" in device.accessories
        ) else ""
        print(f"  {device}{marker}")

    # 4. The cover-binding rule applies to new components too: 'verify'
    #    (optical + DEP) and 'dep_sort' (DEP + pump) could share a device
    #    integrating the union — the ILP decides by cost.
    conv = synthesize(
        assay,
        dataclasses.replace(
            spec,
            binding_mode=__import__("repro").BindingMode.EXACT,
        ),
    )
    print(
        f"\ncomponent-oriented: {result.num_devices} devices / "
        f"{result.fixed_makespan}m;  conventional exact-matching: "
        f"{conv.num_devices} devices / {conv.fixed_makespan}m"
    )


if __name__ == "__main__":
    main()
