#!/usr/bin/env python
"""Why hybrid scheduling: compare against the fully-static alternative.

Operations with indeterminate duration (single-cell capture) cannot sit in
a fixed time slot.  A purely static scheduler must budget the *worst case*
for each of them; the hybrid schedule instead ends its layer the moment the
last capture actually succeeds.  This example quantifies the difference on
the RT-qPCR benchmark (reduced scale) by Monte-Carlo simulation.

Run with::

    python examples/hybrid_vs_static.py
"""

import statistics

from repro import SynthesisSpec, synthesize
from repro.assays import rtqpcr_assay
from repro.runtime import RetryModel, execute_schedule


def main() -> None:
    assay = rtqpcr_assay(cells=4)  # 24 ops, 4 indeterminate captures
    spec = SynthesisSpec(
        max_devices=12, threshold=4, time_limit=15.0, max_iterations=1,
    )
    result = synthesize(assay, spec)
    print(f"scheduled: {result.makespan_expression} "
          f"({result.num_devices} devices)")

    retry = RetryModel(success_probability=0.53, max_attempts=12)
    runs = [
        execute_schedule(result.schedule, retry, seed=s) for s in range(200)
    ]
    makespans = [r.makespan for r in runs]

    # The static alternative must reserve worst-case slots: every capture
    # op budgeted at max_attempts * minimum duration.
    worst_extra = 0
    for layer in result.schedule.layers:
        ind = [p for p in layer.placements.values() if p.indeterminate]
        if ind:
            worst_extra += max(
                (retry.max_attempts - 1) * p.duration for p in ind
            )
    static_makespan = result.fixed_makespan + worst_extra

    print(f"\nMonte-Carlo over {len(runs)} runs:")
    print(f"  hybrid mean makespan : {statistics.mean(makespans):8.1f}m")
    print(f"  hybrid 95th pct      : "
          f"{sorted(makespans)[int(0.95 * len(makespans))]:8.1f}m")
    print(f"  hybrid worst         : {max(makespans):8.1f}m")
    print(f"  static worst-case    : {static_makespan:8.1f}m")
    saving = 1 - statistics.mean(makespans) / static_makespan
    print(f"\nhybrid scheduling saves {saving:.0%} of chip time on average "
          "versus worst-case static reservation.")


if __name__ == "__main__":
    main()
