#!/usr/bin/env python
"""Closing the layout loop: place the synthesized chip, re-estimate transport.

The paper refines transportation times from path-usage *ranks* because the
physical layout is unknown during synthesis (Sec. 4.1).  This example goes
one step further with ``repro.layout``: after a first synthesis pass it
places the bound devices on a grid (simulated annealing over usage-weighted
Manhattan lengths), derives per-path transport times from the *placed
distances*, and re-synthesizes against them.

Run with::

    python examples/chip_placement.py
"""

from repro import SynthesisSpec, synthesize
from repro.assays import kinase_assay
from repro.layout import GridPlacer, LayoutTransportEstimator


def main() -> None:
    assay = kinase_assay()
    spec = SynthesisSpec(max_devices=10, time_limit=10.0, max_iterations=0)

    # Pass 1: synthesize with the constant transport estimate.
    first = synthesize(assay, spec)
    print(f"pass 1 (constant transport): {first.makespan_expression}, "
          f"{first.num_devices} devices, {first.num_paths} paths")

    # Place the chip.
    estimator = LayoutTransportEstimator(
        assay, spec, placer=GridPlacer(iterations=6000, seed=7),
        units_per_cell=1.0,
    )
    estimator.refine(first.schedule.binding)
    placement = estimator.last_placement
    assert placement is not None
    print("\nplaced chip (usage-weighted annealing):")
    print(placement.layout.render())
    print(f"weighted channel length {placement.cost:g} "
          f"({placement.improvement:.0%} better than the initial grid)")
    print("\nper-path transport times from placed distances:")
    for pair, time_units in sorted(estimator.path_time.items()):
        usage = estimator.path_usage[pair]
        print(f"  {pair[0]:>4} <-> {pair[1]:<4} "
              f"used {usage}x -> {time_units} time units")

    # Pass 2: synthesize against the layout-derived transport times.
    second = synthesize(assay, spec, transport=estimator)
    print(f"\npass 2 (layout-driven transport): {second.makespan_expression}, "
          f"{second.num_devices} devices, {second.num_paths} paths")
    delta = first.fixed_makespan - second.fixed_makespan
    if delta >= 0:
        print(f"layout feedback improved the makespan by {delta} time units")
    else:
        print(f"layout feedback cost {-delta} time units (placement-derived "
              "transports were larger than the optimistic constants)")


if __name__ == "__main__":
    main()
