"""Typed, fault-tolerant Python client for the synthesis service.

Stdlib-only (``http.client``).  Every method raises
:class:`~repro.errors.ServiceError` carrying the server's structured
error (kind + message + HTTP status) on any non-2xx response, so callers
never parse error bodies themselves.

Resilience (all per-client, all tunable):

* **Bounded retries** — connection errors and 5xx responses are retried
  up to :attr:`RetryPolicy.retries` times with exponential backoff and
  *full jitter* (each sleep is uniform in ``[0, base * 2**attempt]``,
  capped at :attr:`RetryPolicy.max_delay`).  4xx responses are never
  retried: the request itself is wrong, repeating it cannot help.
* **Circuit breaker** — after :attr:`CircuitBreaker.threshold`
  consecutive transport failures the breaker *opens* and requests fail
  fast locally (:class:`~repro.errors.CircuitOpenError`, no network
  traffic) until :attr:`CircuitBreaker.cooldown` elapses; the first
  request after the cooldown is a *half-open* probe — success closes the
  breaker, failure re-opens it for another cooldown.
* **Idempotent resubmission** — ``POST /jobs`` is safe to retry because
  the server coalesces submissions on the canonical run fingerprint and
  answers repeats from the result store; :meth:`ServiceClient.synthesize`
  additionally resubmits the same body when a server restart invalidated
  a job id mid-wait (the replayed job has a fresh id but the same
  fingerprint, so the resubmission re-attaches to it — or to its stored
  result).
* **No connection leaks** — each attempt uses one ``HTTPConnection``
  closed in a ``finally`` on every path (success, HTTP error, transport
  error, JSON error).
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from queue import Empty, SimpleQueue
from typing import Any, Callable

from ..errors import CircuitOpenError, ServiceError
from ..hls.spec import SynthesisSpec
from ..io.json_io import assay_to_json, spec_to_json
from ..operations.assay import Assay


@dataclass
class RetryPolicy:
    """Backoff schedule for transient transport failures.

    ``seed`` pins the jitter RNG so tests can assert the exact sleep
    sequence; production clients leave it ``None`` (OS entropy).
    """

    #: retry attempts *after* the first try (0 = no retries).
    retries: int = 4
    #: backoff base, seconds; attempt ``k`` sleeps uniform[0, base*2**k].
    base_delay: float = 0.1
    #: hard cap on any single sleep, seconds.
    max_delay: float = 5.0
    seed: int | None = None
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ServiceError("retries must be >= 0", status=400)
        if self.base_delay < 0 or self.max_delay < 0:
            raise ServiceError("delays must be >= 0", status=400)
        self._rng = random.Random(self.seed)

    def backoff(self, attempt: int) -> float:
        """The sleep before retry ``attempt`` (0-based): full jitter."""
        ceiling = min(self.max_delay, self.base_delay * (2 ** attempt))
        return self._rng.uniform(0.0, ceiling)


class CircuitBreaker:
    """Per-client circuit breaker over consecutive transport failures.

    ``clock`` is injectable for tests (defaults to ``time.monotonic``).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        threshold: int = 5,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ServiceError("breaker threshold must be >= 1", status=400)
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return self.CLOSED
        if self._clock() - self._opened_at >= self.cooldown:
            return self.HALF_OPEN
        return self.OPEN

    def allow(self) -> bool:
        """Whether a request may go out now.

        In the half-open state exactly one in-flight probe is admitted;
        further requests fail fast until the probe reports back.
        """
        state = self.state
        if state == self.CLOSED:
            return True
        if state == self.HALF_OPEN and not self._probing:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self._probing = False
        self._failures += 1
        if self._failures >= self.threshold:
            self._opened_at = self._clock()


@dataclass
class JobHandle:
    """Client-side view of one submitted job."""

    id: str
    fingerprint: str
    status: str
    source: str
    coalesced: int
    error: dict | None

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "JobHandle":
        return cls(
            id=data["id"],
            fingerprint=data["fingerprint"],
            status=data["status"],
            source=data.get("source", ""),
            coalesced=int(data.get("coalesced", 0)),
            error=data.get("error"),
        )

    @property
    def finished(self) -> bool:
        return self.status in ("done", "failed", "cancelled")


class ServiceClient:
    """Blocking HTTP client; one instance per server address."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8642,
        timeout: float = 120.0,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        #: injectable for tests (captures the exact backoff schedule).
        self._sleep: Callable[[float], None] = time.sleep

    @classmethod
    def from_address(cls, address: str, timeout: float = 120.0
                     ) -> "ServiceClient":
        """Parse ``host:port`` (or bare ``:port`` for localhost)."""
        host, _, port_text = address.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            raise ServiceError(
                f"bad server address {address!r} (expected host:port)",
                status=400, kind="bad-address",
            ) from None
        return cls(host=host or "127.0.0.1", port=port, timeout=timeout)

    # -- transport -------------------------------------------------------

    def _attempt(
        self, method: str, path: str, payload: bytes | None
    ) -> dict[str, Any]:
        """One request over one connection, closed on every path."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"Content-Type": "application/json"} if payload else {}
            try:
                connection.request(method, path, body=payload, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"cannot reach synthesis server at "
                    f"{self.host}:{self.port}: {exc}",
                    status=503, kind="unreachable",
                ) from exc
            try:
                data = json.loads(raw) if raw else {}
            except json.JSONDecodeError as exc:
                raise ServiceError(
                    f"non-JSON response from server: {exc}",
                    status=502, kind="bad-response",
                ) from exc
            if response.status >= 400:
                error = data.get("error") or {}
                raise ServiceError(
                    error.get("message", f"HTTP {response.status}"),
                    status=response.status,
                    kind=error.get("kind", "error"),
                )
            return data
        finally:
            connection.close()

    @staticmethod
    def _retryable(exc: ServiceError) -> bool:
        """Transport failures and 5xx retry; 4xx never does."""
        return exc.kind in ("unreachable", "bad-response") or exc.status >= 500

    def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> dict[str, Any]:
        if not self.breaker.allow():
            raise CircuitOpenError(
                f"circuit open for {self.host}:{self.port} "
                f"(cooling down after {self.breaker.threshold} "
                f"consecutive failures)"
            ).with_context(
                replica=f"{self.host}:{self.port}",
                breaker=self.breaker.state,
            )
        payload = json.dumps(body).encode() if body is not None else None
        attempt = 0
        while True:
            try:
                data = self._attempt(method, path, payload)
            except ServiceError as exc:
                # Attach the attempt history so a fleet failure is
                # debuggable from the exception alone.
                exc.with_context(
                    replica=f"{self.host}:{self.port}",
                    retries_used=attempt,
                    breaker=self.breaker.state,
                )
                if not self._retryable(exc):
                    # The server answered; only its answer was a 4xx.
                    self.breaker.record_success()
                    raise
                self.breaker.record_failure()
                if attempt >= self.retry.retries or not self.breaker.allow():
                    exc.with_context(breaker=self.breaker.state)
                    raise
                self._sleep(self.retry.backoff(attempt))
                attempt += 1
                continue
            self.breaker.record_success()
            return data

    # -- endpoints -------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/health")

    def metrics(self) -> dict[str, Any]:
        return self._request("GET", "/metrics")

    def shutdown(self) -> None:
        self._request("POST", "/shutdown")

    def _submit_body(
        self,
        assay: "Assay | dict",
        spec: "SynthesisSpec | dict | None" = None,
        method: str = "hls",
        priority: int = 0,
        timeout: float | None = None,
        degrade: bool | None = None,
    ) -> dict[str, Any]:
        body: dict[str, Any] = {
            "assay": assay_to_json(assay) if isinstance(assay, Assay)
            else assay,
            "method": method,
            "priority": priority,
        }
        if spec is not None:
            body["spec"] = (
                spec_to_json(spec) if isinstance(spec, SynthesisSpec)
                else spec
            )
        if timeout is not None:
            body["timeout"] = timeout
        if degrade is not None:
            body["degrade"] = degrade
        return body

    def submit(
        self,
        assay: "Assay | dict",
        spec: "SynthesisSpec | dict | None" = None,
        method: str = "hls",
        priority: int = 0,
        timeout: float | None = None,
        degrade: bool | None = None,
    ) -> JobHandle:
        """Submit one synthesis run; returns immediately with a handle.

        Safe to retry/resubmit: the server coalesces on the canonical
        run fingerprint, so a duplicate attaches to the in-flight job or
        is answered from the result store.  ``degrade=False`` opts the
        job out of the greedy-scheduler fallback after an ILP timeout.
        """
        body = self._submit_body(
            assay, spec, method=method, priority=priority,
            timeout=timeout, degrade=degrade,
        )
        data = self._request("POST", "/jobs", body)
        return JobHandle.from_json(data["job"])

    def jobs(self) -> list[JobHandle]:
        data = self._request("GET", "/jobs")
        return [JobHandle.from_json(entry) for entry in data["jobs"]]

    def status(self, job_id: str, wait: float = 0.0) -> JobHandle:
        path = f"/jobs/{job_id}"
        if wait > 0:
            path += f"?wait={wait:g}"
        return JobHandle.from_json(self._request("GET", path)["job"])

    def cancel(self, job_id: str) -> JobHandle:
        return JobHandle.from_json(
            self._request("DELETE", f"/jobs/{job_id}")["job"]
        )

    def result(self, job_id: str) -> dict[str, Any]:
        """The finished job's payload: {"result": ..., "profile": ...}."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def wait(self, job_id: str, deadline: float = 600.0) -> JobHandle:
        """Block (long-polling) until the job finishes or ``deadline``."""
        end = time.monotonic() + deadline
        while True:
            remaining = end - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"job {job_id} not finished within {deadline:g}s",
                    status=408, kind="wait-timeout",
                )
            handle = self.status(job_id, wait=min(remaining, 30.0))
            if handle.finished:
                return handle

    def synthesize(
        self,
        assay: "Assay | dict",
        spec: "SynthesisSpec | dict | None" = None,
        method: str = "hls",
        deadline: float = 600.0,
        degrade: bool | None = None,
    ) -> dict[str, Any]:
        """Submit, wait, and return the result payload in one call.

        Survives a server restart mid-wait: a restarted server replays
        its journal, so the job lives on under a fresh id — when the old
        id comes back 404, the same body is resubmitted and re-attaches
        by fingerprint (to the replayed job, or straight to its stored
        result).  Raises :class:`ServiceError` with the job's structured
        error when the solve fails.
        """
        body = self._submit_body(
            assay, spec, method=method, degrade=degrade,
        )
        end = time.monotonic() + deadline
        resubmissions = 0
        handle = JobHandle.from_json(
            self._request("POST", "/jobs", body)["job"]
        )
        while True:
            remaining = end - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"job {handle.id} not finished within {deadline:g}s",
                    status=408, kind="wait-timeout",
                )
            try:
                handle = self.wait(handle.id, deadline=remaining)
                if handle.status != "done":
                    error = handle.error or {}
                    raise ServiceError(
                        error.get(
                            "message", f"job {handle.id} {handle.status}"
                        ),
                        status=500,
                        kind=error.get("kind", handle.status),
                    )
                return self.result(handle.id)
            except ServiceError as exc:
                # A restarted server knows the fingerprint, not our job
                # id; resubmit the identical body to re-attach.
                if exc.kind != "unknown-job" or resubmissions >= 3:
                    raise
                resubmissions += 1
                handle = JobHandle.from_json(
                    self._request("POST", "/jobs", body)["job"]
                )


class HedgePolicy:
    """When to fire a duplicate request at a second replica.

    The hedge delay adapts to observed latency: once ``min_samples``
    request durations have been recorded, the delay is the configured
    ``percentile`` of the recent sample window; before that (or with a
    fixed ``delay``) the static value applies.  ``clock`` is injectable
    so tests control both the measured latencies and the firing time.
    """

    def __init__(
        self,
        delay: float | None = None,
        percentile: float = 0.95,
        min_samples: int = 8,
        initial_delay: float = 1.0,
        max_samples: int = 128,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if delay is not None and delay < 0:
            raise ServiceError("hedge delay must be >= 0", status=400)
        if not 0.0 < percentile <= 1.0:
            raise ServiceError(
                "hedge percentile must be in (0, 1]", status=400
            )
        if min_samples < 1 or max_samples < min_samples:
            raise ServiceError("bad hedge sample bounds", status=400)
        #: fixed hedge delay, seconds; ``None`` adapts to the percentile.
        self.delay = delay
        self.percentile = percentile
        self.min_samples = min_samples
        #: delay used until enough samples accumulate.
        self.initial_delay = initial_delay
        self.clock = clock
        self._samples: deque[float] = deque(maxlen=max_samples)
        #: hedges actually fired.
        self.fired = 0
        #: hedges whose duplicate finished first.
        self.won = 0

    def observe(self, seconds: float) -> None:
        """Record one completed request's duration."""
        self._samples.append(seconds)

    def current_delay(self) -> float:
        """Seconds to wait before hedging the in-flight request."""
        if self.delay is not None:
            return self.delay
        if len(self._samples) < self.min_samples:
            return self.initial_delay
        ordered = sorted(self._samples)
        index = min(
            len(ordered) - 1,
            max(0, int(self.percentile * len(ordered)) - 1)
            if self.percentile < 1.0
            else len(ordered) - 1,
        )
        return ordered[index]

    def counters(self) -> dict[str, Any]:
        return {
            "fired": self.fired,
            "won": self.won,
            "samples": len(self._samples),
            "current_delay": self.current_delay(),
        }


class _HedgedAttempt:
    """One request on one replica whose socket a peer thread can close.

    Unlike :meth:`ServiceClient._attempt`, the connection is held on the
    instance so the losing side of a hedge race can be cancelled from
    the winner's thread — closing the socket makes the blocked read
    raise, and the connection is still closed in a ``finally`` on every
    path.
    """

    def __init__(
        self,
        client: "ServiceClient",
        method: str,
        path: str,
        payload: bytes | None,
        hedged: bool,
    ) -> None:
        self.client = client
        self.method = method
        self.path = path
        self.payload = payload
        self.hedged = hedged
        self._connection: http.client.HTTPConnection | None = None
        self._cancelled = False
        self._lock = threading.Lock()

    def cancel(self) -> None:
        """Abort the attempt: close its socket out from under it."""
        with self._lock:
            self._cancelled = True
            if self._connection is not None:
                try:
                    self._connection.close()
                except OSError:  # pragma: no cover - close is best-effort
                    pass

    def execute(self) -> dict[str, Any]:
        connection = http.client.HTTPConnection(
            self.client.host, self.client.port,
            timeout=self.client.timeout,
        )
        with self._lock:
            if self._cancelled:
                connection.close()
                raise ServiceError(
                    "hedged attempt cancelled before start",
                    status=499, kind="hedge-cancelled",
                )
            self._connection = connection
        try:
            headers = (
                {"Content-Type": "application/json"} if self.payload else {}
            )
            if self.hedged:
                headers["X-Repro-Hedge"] = "1"
            try:
                connection.request(
                    self.method, self.path, body=self.payload,
                    headers=headers,
                )
                response = connection.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                if self._cancelled:
                    raise ServiceError(
                        "hedged attempt cancelled mid-flight",
                        status=499, kind="hedge-cancelled",
                    ) from exc
                raise ServiceError(
                    f"cannot reach synthesis server at "
                    f"{self.client.host}:{self.client.port}: {exc}",
                    status=503, kind="unreachable",
                ) from exc
            try:
                data = json.loads(raw) if raw else {}
            except json.JSONDecodeError as exc:
                raise ServiceError(
                    f"non-JSON response from server: {exc}",
                    status=502, kind="bad-response",
                ) from exc
            if response.status >= 400:
                error = data.get("error") or {}
                raise ServiceError(
                    error.get("message", f"HTTP {response.status}"),
                    status=response.status,
                    kind=error.get("kind", "error"),
                )
            return data
        finally:
            connection.close()


class FleetClient:
    """Client over N replicas: hedged submits, pinned follow-ups.

    Submissions (``POST /jobs``) are safe to hedge — the fleet coalesces
    them on the run fingerprint across replicas, so a duplicate attaches
    to the in-flight solve instead of recomputing.  Job *ids* however
    are replica-local, so every status/result/cancel call is pinned to
    the replica that issued the handle.

    Per-replica :class:`CircuitBreaker` instances keep one dead replica
    from absorbing traffic; the outer :class:`RetryPolicy` composes
    *around* hedged attempts (one backoff cycle may span two replicas).
    """

    def __init__(
        self,
        clients: "list[ServiceClient]",
        hedge: "HedgePolicy | None" = None,
        retry: "RetryPolicy | None" = None,
    ) -> None:
        if not clients:
            raise ServiceError(
                "fleet client needs at least one replica", status=400
            )
        self.clients = list(clients)
        self.hedge = hedge if hedge is not None else HedgePolicy()
        self.retry = retry if retry is not None else RetryPolicy()
        #: job id -> index of the replica that issued it.  Bounded LRU
        #: (plus explicit eviction when a result is retrieved) so a
        #: long-lived campaign client never leaks one entry per job.
        self._pin: "OrderedDict[str, int]" = OrderedDict()
        #: most pinned job ids retained before the oldest are dropped.
        self.pin_limit = 4096
        #: injectable for tests.
        self._sleep: Callable[[float], None] = time.sleep

    @classmethod
    def from_addresses(
        cls,
        addresses: str,
        timeout: float = 120.0,
        hedge: "HedgePolicy | None" = None,
    ) -> "FleetClient":
        """Parse ``host:port,host:port,...`` into a fleet client."""
        clients = [
            ServiceClient.from_address(part.strip(), timeout=timeout)
            for part in addresses.split(",") if part.strip()
        ]
        return cls(clients, hedge=hedge)

    # -- hedged transport -------------------------------------------------

    def _launch(
        self,
        index: int,
        method: str,
        path: str,
        payload: bytes | None,
        hedged: bool,
        attempts: dict,
        results: SimpleQueue,
    ) -> None:
        attempt = _HedgedAttempt(
            self.clients[index], method, path, payload, hedged
        )
        attempts[index] = attempt

        def _run() -> None:
            try:
                results.put((index, True, attempt.execute()))
            except ServiceError as exc:
                results.put((index, False, exc))

        threading.Thread(target=_run, daemon=True).start()

    def _hedged_once(
        self, method: str, path: str, body: dict | None
    ) -> tuple[dict[str, Any], int]:
        """One hedged round: primary attempt, duplicate after the hedge
        delay, first success wins, loser cancelled.  Returns ``(data,
        replica_index)``."""
        payload = json.dumps(body).encode() if body is not None else None
        order = [
            index for index, client in enumerate(self.clients)
            if client.breaker.allow()
        ]
        if not order:
            raise CircuitOpenError(
                "every replica's circuit is open"
            ).with_context(replicas=len(self.clients))
        results: SimpleQueue = SimpleQueue()
        attempts: dict[int, _HedgedAttempt] = {}
        started = self.hedge.clock()
        primary = order[0]
        self._launch(primary, method, path, payload, False,
                     attempts, results)
        can_hedge = len(order) > 1
        hedge_delay = self.hedge.current_delay() if can_hedge else None
        hedge_fired = False
        failures: list[ServiceError] = []
        outstanding = 1

        def _fire_hedge() -> None:
            nonlocal hedge_fired, outstanding
            self._launch(order[1], method, path, payload, True,
                         attempts, results)
            hedge_fired = True
            outstanding += 1
            self.hedge.fired += 1

        while True:
            timeout = None
            if hedge_delay is not None and not hedge_fired:
                remaining = started + hedge_delay - self.hedge.clock()
                if remaining <= 0:
                    _fire_hedge()
                    continue
                timeout = remaining
            try:
                index, ok, value = results.get(timeout=timeout)
            except Empty:
                continue
            client = self.clients[index]
            if ok:
                client.breaker.record_success()
                self.hedge.observe(self.hedge.clock() - started)
                if hedge_fired and index != primary:
                    self.hedge.won += 1
                for other, attempt in attempts.items():
                    if other != index:
                        attempt.cancel()
                return value, index
            exc = value
            if exc.kind == "hedge-cancelled":
                outstanding -= 1
                continue  # the loser we cancelled ourselves
            if not ServiceClient._retryable(exc):
                # An authoritative 4xx answer — the request itself is
                # wrong on every replica; cancel the race and raise.
                client.breaker.record_success()
                for other, attempt in attempts.items():
                    if other != index:
                        attempt.cancel()
                raise exc.with_context(
                    replica=f"{client.host}:{client.port}",
                    hedge_fired=hedge_fired,
                )
            client.breaker.record_failure()
            failures.append(exc.with_context(
                replica=f"{client.host}:{client.port}",
            ))
            outstanding -= 1
            if not hedge_fired and can_hedge:
                # Primary failed fast: promote the hedge immediately.
                _fire_hedge()
                continue
            if outstanding == 0:
                raise failures[-1].with_context(
                    hedge_fired=hedge_fired,
                    replicas_tried=len(failures),
                )

    def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[dict[str, Any], int]:
        attempt = 0
        while True:
            try:
                return self._hedged_once(method, path, body)
            except CircuitOpenError:
                raise
            except ServiceError as exc:
                if (
                    not ServiceClient._retryable(exc)
                    or attempt >= self.retry.retries
                ):
                    raise exc.with_context(retries_used=attempt)
                self._sleep(self.retry.backoff(attempt))
                attempt += 1

    # -- endpoints --------------------------------------------------------

    def _remember_pin(self, job_id: str, index: int) -> None:
        self._pin[job_id] = index
        self._pin.move_to_end(job_id)
        while len(self._pin) > self.pin_limit:
            self._pin.popitem(last=False)

    def _pinned(self, job_id: str) -> "ServiceClient":
        index = self._pin.get(job_id)
        if index is None:
            # Job ids are replica-local: guessing a replica would turn a
            # client-side lookup bug into a misleading unknown-job 404.
            raise ServiceError(
                f"job {job_id} is not pinned to any replica (it was not "
                f"submitted through this client, or its pin was dropped "
                f"after the result was retrieved)",
                status=404, kind="unpinned-job",
            )
        self._pin.move_to_end(job_id)
        return self.clients[index]

    def submit(
        self,
        assay: Any,
        spec: Any = None,
        method: str = "hls",
        priority: int = 0,
        timeout: float | None = None,
        degrade: bool | None = None,
    ) -> JobHandle:
        body = self.clients[0]._submit_body(
            assay, spec, method=method, priority=priority,
            timeout=timeout, degrade=degrade,
        )
        data, index = self._request("POST", "/jobs", body)
        handle = JobHandle.from_json(data["job"])
        self._remember_pin(handle.id, index)
        return handle

    def status(self, job_id: str, wait: float = 0.0) -> JobHandle:
        return self._pinned(job_id).status(job_id, wait=wait)

    def result(self, job_id: str) -> dict[str, Any]:
        data = self._pinned(job_id).result(job_id)
        # Terminal: the payload is in hand, the pin has done its job.
        self._pin.pop(job_id, None)
        return data

    def cancel(self, job_id: str) -> JobHandle:
        return self._pinned(job_id).cancel(job_id)

    def wait(self, job_id: str, deadline: float = 600.0) -> JobHandle:
        return self._pinned(job_id).wait(job_id, deadline=deadline)

    def health(self, index: int = 0) -> dict[str, Any]:
        return self.clients[index].health()

    def metrics(self, index: int = 0) -> dict[str, Any]:
        return self.clients[index].metrics()

    def synthesize(
        self,
        assay: Any,
        spec: Any = None,
        method: str = "hls",
        deadline: float = 600.0,
        degrade: bool | None = None,
    ) -> dict[str, Any]:
        """Hedged submit + pinned wait + result, with unknown-job
        resubmission (a restarted or failed-over replica knows the
        fingerprint, not our job id — the re-hedged resubmission lands
        wherever the fleet answers first)."""
        body = self.clients[0]._submit_body(
            assay, spec, method=method, degrade=degrade,
        )
        end = time.monotonic() + deadline
        resubmissions = 0
        data, index = self._request("POST", "/jobs", body)
        handle = JobHandle.from_json(data["job"])
        self._remember_pin(handle.id, index)
        while True:
            remaining = end - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"job {handle.id} not finished within {deadline:g}s",
                    status=408, kind="wait-timeout",
                )
            client = self.clients[index]
            try:
                handle = client.wait(handle.id, deadline=remaining)
                if handle.status != "done":
                    error = handle.error or {}
                    raise ServiceError(
                        error.get(
                            "message", f"job {handle.id} {handle.status}"
                        ),
                        status=500,
                        kind=error.get("kind", handle.status),
                    )
                payload = client.result(handle.id)
                self._pin.pop(handle.id, None)
                return payload
            except ServiceError as exc:
                if exc.kind not in ("unknown-job", "unreachable") \
                        or resubmissions >= 3:
                    raise
                resubmissions += 1
                data, index = self._request("POST", "/jobs", body)
                handle = JobHandle.from_json(data["job"])
                self._remember_pin(handle.id, index)

    def counters(self) -> dict[str, Any]:
        return {
            "replicas": [
                f"{client.host}:{client.port}" for client in self.clients
            ],
            "breakers": [client.breaker.state for client in self.clients],
            "hedge": self.hedge.counters(),
        }


__all__ = [
    "CircuitBreaker",
    "FleetClient",
    "HedgePolicy",
    "JobHandle",
    "RetryPolicy",
    "ServiceClient",
]
