"""Typed, fault-tolerant Python client for the synthesis service.

Stdlib-only (``http.client``).  Every method raises
:class:`~repro.errors.ServiceError` carrying the server's structured
error (kind + message + HTTP status) on any non-2xx response, so callers
never parse error bodies themselves.

Resilience (all per-client, all tunable):

* **Bounded retries** — connection errors and 5xx responses are retried
  up to :attr:`RetryPolicy.retries` times with exponential backoff and
  *full jitter* (each sleep is uniform in ``[0, base * 2**attempt]``,
  capped at :attr:`RetryPolicy.max_delay`).  4xx responses are never
  retried: the request itself is wrong, repeating it cannot help.
* **Circuit breaker** — after :attr:`CircuitBreaker.threshold`
  consecutive transport failures the breaker *opens* and requests fail
  fast locally (:class:`~repro.errors.CircuitOpenError`, no network
  traffic) until :attr:`CircuitBreaker.cooldown` elapses; the first
  request after the cooldown is a *half-open* probe — success closes the
  breaker, failure re-opens it for another cooldown.
* **Idempotent resubmission** — ``POST /jobs`` is safe to retry because
  the server coalesces submissions on the canonical run fingerprint and
  answers repeats from the result store; :meth:`ServiceClient.synthesize`
  additionally resubmits the same body when a server restart invalidated
  a job id mid-wait (the replayed job has a fresh id but the same
  fingerprint, so the resubmission re-attaches to it — or to its stored
  result).
* **No connection leaks** — each attempt uses one ``HTTPConnection``
  closed in a ``finally`` on every path (success, HTTP error, transport
  error, JSON error).
"""

from __future__ import annotations

import http.client
import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from ..errors import CircuitOpenError, ServiceError
from ..hls.spec import SynthesisSpec
from ..io.json_io import assay_to_json, spec_to_json
from ..operations.assay import Assay


@dataclass
class RetryPolicy:
    """Backoff schedule for transient transport failures.

    ``seed`` pins the jitter RNG so tests can assert the exact sleep
    sequence; production clients leave it ``None`` (OS entropy).
    """

    #: retry attempts *after* the first try (0 = no retries).
    retries: int = 4
    #: backoff base, seconds; attempt ``k`` sleeps uniform[0, base*2**k].
    base_delay: float = 0.1
    #: hard cap on any single sleep, seconds.
    max_delay: float = 5.0
    seed: int | None = None
    _rng: random.Random = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ServiceError("retries must be >= 0", status=400)
        if self.base_delay < 0 or self.max_delay < 0:
            raise ServiceError("delays must be >= 0", status=400)
        self._rng = random.Random(self.seed)

    def backoff(self, attempt: int) -> float:
        """The sleep before retry ``attempt`` (0-based): full jitter."""
        ceiling = min(self.max_delay, self.base_delay * (2 ** attempt))
        return self._rng.uniform(0.0, ceiling)


class CircuitBreaker:
    """Per-client circuit breaker over consecutive transport failures.

    ``clock`` is injectable for tests (defaults to ``time.monotonic``).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        threshold: int = 5,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ServiceError("breaker threshold must be >= 1", status=400)
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return self.CLOSED
        if self._clock() - self._opened_at >= self.cooldown:
            return self.HALF_OPEN
        return self.OPEN

    def allow(self) -> bool:
        """Whether a request may go out now.

        In the half-open state exactly one in-flight probe is admitted;
        further requests fail fast until the probe reports back.
        """
        state = self.state
        if state == self.CLOSED:
            return True
        if state == self.HALF_OPEN and not self._probing:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> None:
        self._probing = False
        self._failures += 1
        if self._failures >= self.threshold:
            self._opened_at = self._clock()


@dataclass
class JobHandle:
    """Client-side view of one submitted job."""

    id: str
    fingerprint: str
    status: str
    source: str
    coalesced: int
    error: dict | None

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "JobHandle":
        return cls(
            id=data["id"],
            fingerprint=data["fingerprint"],
            status=data["status"],
            source=data.get("source", ""),
            coalesced=int(data.get("coalesced", 0)),
            error=data.get("error"),
        )

    @property
    def finished(self) -> bool:
        return self.status in ("done", "failed", "cancelled")


class ServiceClient:
    """Blocking HTTP client; one instance per server address."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8642,
        timeout: float = 120.0,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        #: injectable for tests (captures the exact backoff schedule).
        self._sleep: Callable[[float], None] = time.sleep

    @classmethod
    def from_address(cls, address: str, timeout: float = 120.0
                     ) -> "ServiceClient":
        """Parse ``host:port`` (or bare ``:port`` for localhost)."""
        host, _, port_text = address.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            raise ServiceError(
                f"bad server address {address!r} (expected host:port)",
                status=400, kind="bad-address",
            ) from None
        return cls(host=host or "127.0.0.1", port=port, timeout=timeout)

    # -- transport -------------------------------------------------------

    def _attempt(
        self, method: str, path: str, payload: bytes | None
    ) -> dict[str, Any]:
        """One request over one connection, closed on every path."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            headers = {"Content-Type": "application/json"} if payload else {}
            try:
                connection.request(method, path, body=payload, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"cannot reach synthesis server at "
                    f"{self.host}:{self.port}: {exc}",
                    status=503, kind="unreachable",
                ) from exc
            try:
                data = json.loads(raw) if raw else {}
            except json.JSONDecodeError as exc:
                raise ServiceError(
                    f"non-JSON response from server: {exc}",
                    status=502, kind="bad-response",
                ) from exc
            if response.status >= 400:
                error = data.get("error") or {}
                raise ServiceError(
                    error.get("message", f"HTTP {response.status}"),
                    status=response.status,
                    kind=error.get("kind", "error"),
                )
            return data
        finally:
            connection.close()

    @staticmethod
    def _retryable(exc: ServiceError) -> bool:
        """Transport failures and 5xx retry; 4xx never does."""
        return exc.kind in ("unreachable", "bad-response") or exc.status >= 500

    def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> dict[str, Any]:
        if not self.breaker.allow():
            raise CircuitOpenError(
                f"circuit open for {self.host}:{self.port} "
                f"(cooling down after {self.breaker.threshold} "
                f"consecutive failures)"
            )
        payload = json.dumps(body).encode() if body is not None else None
        attempt = 0
        while True:
            try:
                data = self._attempt(method, path, payload)
            except ServiceError as exc:
                if not self._retryable(exc):
                    # The server answered; only its answer was a 4xx.
                    self.breaker.record_success()
                    raise
                self.breaker.record_failure()
                if attempt >= self.retry.retries or not self.breaker.allow():
                    raise
                self._sleep(self.retry.backoff(attempt))
                attempt += 1
                continue
            self.breaker.record_success()
            return data

    # -- endpoints -------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/health")

    def metrics(self) -> dict[str, Any]:
        return self._request("GET", "/metrics")

    def shutdown(self) -> None:
        self._request("POST", "/shutdown")

    def _submit_body(
        self,
        assay: "Assay | dict",
        spec: "SynthesisSpec | dict | None" = None,
        method: str = "hls",
        priority: int = 0,
        timeout: float | None = None,
        degrade: bool | None = None,
    ) -> dict[str, Any]:
        body: dict[str, Any] = {
            "assay": assay_to_json(assay) if isinstance(assay, Assay)
            else assay,
            "method": method,
            "priority": priority,
        }
        if spec is not None:
            body["spec"] = (
                spec_to_json(spec) if isinstance(spec, SynthesisSpec)
                else spec
            )
        if timeout is not None:
            body["timeout"] = timeout
        if degrade is not None:
            body["degrade"] = degrade
        return body

    def submit(
        self,
        assay: "Assay | dict",
        spec: "SynthesisSpec | dict | None" = None,
        method: str = "hls",
        priority: int = 0,
        timeout: float | None = None,
        degrade: bool | None = None,
    ) -> JobHandle:
        """Submit one synthesis run; returns immediately with a handle.

        Safe to retry/resubmit: the server coalesces on the canonical
        run fingerprint, so a duplicate attaches to the in-flight job or
        is answered from the result store.  ``degrade=False`` opts the
        job out of the greedy-scheduler fallback after an ILP timeout.
        """
        body = self._submit_body(
            assay, spec, method=method, priority=priority,
            timeout=timeout, degrade=degrade,
        )
        data = self._request("POST", "/jobs", body)
        return JobHandle.from_json(data["job"])

    def jobs(self) -> list[JobHandle]:
        data = self._request("GET", "/jobs")
        return [JobHandle.from_json(entry) for entry in data["jobs"]]

    def status(self, job_id: str, wait: float = 0.0) -> JobHandle:
        path = f"/jobs/{job_id}"
        if wait > 0:
            path += f"?wait={wait:g}"
        return JobHandle.from_json(self._request("GET", path)["job"])

    def cancel(self, job_id: str) -> JobHandle:
        return JobHandle.from_json(
            self._request("DELETE", f"/jobs/{job_id}")["job"]
        )

    def result(self, job_id: str) -> dict[str, Any]:
        """The finished job's payload: {"result": ..., "profile": ...}."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def wait(self, job_id: str, deadline: float = 600.0) -> JobHandle:
        """Block (long-polling) until the job finishes or ``deadline``."""
        end = time.monotonic() + deadline
        while True:
            remaining = end - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"job {job_id} not finished within {deadline:g}s",
                    status=408, kind="wait-timeout",
                )
            handle = self.status(job_id, wait=min(remaining, 30.0))
            if handle.finished:
                return handle

    def synthesize(
        self,
        assay: "Assay | dict",
        spec: "SynthesisSpec | dict | None" = None,
        method: str = "hls",
        deadline: float = 600.0,
        degrade: bool | None = None,
    ) -> dict[str, Any]:
        """Submit, wait, and return the result payload in one call.

        Survives a server restart mid-wait: a restarted server replays
        its journal, so the job lives on under a fresh id — when the old
        id comes back 404, the same body is resubmitted and re-attaches
        by fingerprint (to the replayed job, or straight to its stored
        result).  Raises :class:`ServiceError` with the job's structured
        error when the solve fails.
        """
        body = self._submit_body(
            assay, spec, method=method, degrade=degrade,
        )
        end = time.monotonic() + deadline
        resubmissions = 0
        handle = JobHandle.from_json(
            self._request("POST", "/jobs", body)["job"]
        )
        while True:
            remaining = end - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"job {handle.id} not finished within {deadline:g}s",
                    status=408, kind="wait-timeout",
                )
            try:
                handle = self.wait(handle.id, deadline=remaining)
                if handle.status != "done":
                    error = handle.error or {}
                    raise ServiceError(
                        error.get(
                            "message", f"job {handle.id} {handle.status}"
                        ),
                        status=500,
                        kind=error.get("kind", handle.status),
                    )
                return self.result(handle.id)
            except ServiceError as exc:
                # A restarted server knows the fingerprint, not our job
                # id; resubmit the identical body to re-attach.
                if exc.kind != "unknown-job" or resubmissions >= 3:
                    raise
                resubmissions += 1
                handle = JobHandle.from_json(
                    self._request("POST", "/jobs", body)["job"]
                )


__all__ = [
    "CircuitBreaker",
    "JobHandle",
    "RetryPolicy",
    "ServiceClient",
]
