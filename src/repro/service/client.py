"""Typed Python client for the synthesis service.

Stdlib-only (``http.client``).  Every method raises
:class:`~repro.errors.ServiceError` carrying the server's structured
error (kind + message + HTTP status) on any non-2xx response, so callers
never parse error bodies themselves.
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass
from typing import Any

from ..errors import ServiceError
from ..hls.spec import SynthesisSpec
from ..io.json_io import assay_to_json, spec_to_json
from ..operations.assay import Assay


@dataclass
class JobHandle:
    """Client-side view of one submitted job."""

    id: str
    fingerprint: str
    status: str
    source: str
    coalesced: int
    error: dict | None

    @classmethod
    def from_json(cls, data: dict[str, Any]) -> "JobHandle":
        return cls(
            id=data["id"],
            fingerprint=data["fingerprint"],
            status=data["status"],
            source=data.get("source", ""),
            coalesced=int(data.get("coalesced", 0)),
            error=data.get("error"),
        )

    @property
    def finished(self) -> bool:
        return self.status in ("done", "failed", "cancelled")


class ServiceClient:
    """Blocking HTTP client; one instance per server address."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8642,
        timeout: float = 120.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    @classmethod
    def from_address(cls, address: str, timeout: float = 120.0
                     ) -> "ServiceClient":
        """Parse ``host:port`` (or bare ``:port`` for localhost)."""
        host, _, port_text = address.rpartition(":")
        try:
            port = int(port_text)
        except ValueError:
            raise ServiceError(
                f"bad server address {address!r} (expected host:port)",
                status=400, kind="bad-address",
            ) from None
        return cls(host=host or "127.0.0.1", port=port, timeout=timeout)

    # -- transport -------------------------------------------------------

    def _request(
        self, method: str, path: str, body: dict | None = None
    ) -> dict[str, Any]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = json.dumps(body).encode() if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            try:
                connection.request(method, path, body=payload, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"cannot reach synthesis server at "
                    f"{self.host}:{self.port}: {exc}",
                    status=503, kind="unreachable",
                ) from exc
            try:
                data = json.loads(raw) if raw else {}
            except json.JSONDecodeError as exc:
                raise ServiceError(
                    f"non-JSON response from server: {exc}",
                    status=502, kind="bad-response",
                ) from exc
            if response.status >= 400:
                error = data.get("error") or {}
                raise ServiceError(
                    error.get("message", f"HTTP {response.status}"),
                    status=response.status,
                    kind=error.get("kind", "error"),
                )
            return data
        finally:
            connection.close()

    # -- endpoints -------------------------------------------------------

    def health(self) -> dict[str, Any]:
        return self._request("GET", "/health")

    def metrics(self) -> dict[str, Any]:
        return self._request("GET", "/metrics")

    def shutdown(self) -> None:
        self._request("POST", "/shutdown")

    def submit(
        self,
        assay: "Assay | dict",
        spec: "SynthesisSpec | dict | None" = None,
        method: str = "hls",
        priority: int = 0,
        timeout: float | None = None,
    ) -> JobHandle:
        """Submit one synthesis run; returns immediately with a handle."""
        body: dict[str, Any] = {
            "assay": assay_to_json(assay) if isinstance(assay, Assay)
            else assay,
            "method": method,
            "priority": priority,
        }
        if spec is not None:
            body["spec"] = (
                spec_to_json(spec) if isinstance(spec, SynthesisSpec)
                else spec
            )
        if timeout is not None:
            body["timeout"] = timeout
        data = self._request("POST", "/jobs", body)
        return JobHandle.from_json(data["job"])

    def jobs(self) -> list[JobHandle]:
        data = self._request("GET", "/jobs")
        return [JobHandle.from_json(entry) for entry in data["jobs"]]

    def status(self, job_id: str, wait: float = 0.0) -> JobHandle:
        path = f"/jobs/{job_id}"
        if wait > 0:
            path += f"?wait={wait:g}"
        return JobHandle.from_json(self._request("GET", path)["job"])

    def cancel(self, job_id: str) -> JobHandle:
        return JobHandle.from_json(
            self._request("DELETE", f"/jobs/{job_id}")["job"]
        )

    def result(self, job_id: str) -> dict[str, Any]:
        """The finished job's payload: {"result": ..., "profile": ...}."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def wait(self, job_id: str, deadline: float = 600.0) -> JobHandle:
        """Block (long-polling) until the job finishes or ``deadline``."""
        end = time.monotonic() + deadline
        while True:
            remaining = end - time.monotonic()
            if remaining <= 0:
                raise ServiceError(
                    f"job {job_id} not finished within {deadline:g}s",
                    status=408, kind="wait-timeout",
                )
            handle = self.status(job_id, wait=min(remaining, 30.0))
            if handle.finished:
                return handle

    def synthesize(
        self,
        assay: "Assay | dict",
        spec: "SynthesisSpec | dict | None" = None,
        method: str = "hls",
        deadline: float = 600.0,
    ) -> dict[str, Any]:
        """Submit, wait, and return the result payload in one call.

        Raises :class:`ServiceError` with the job's structured error when
        the solve fails.
        """
        handle = self.submit(assay, spec, method=method)
        handle = self.wait(handle.id, deadline=deadline)
        if handle.status != "done":
            error = handle.error or {}
            raise ServiceError(
                error.get("message", f"job {handle.id} {handle.status}"),
                status=500,
                kind=error.get("kind", handle.status),
            )
        return self.result(handle.id)


__all__ = ["JobHandle", "ServiceClient"]
