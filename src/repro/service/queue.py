"""Priority job queue with request coalescing and backpressure.

Pure synchronous data structure — the asyncio server drives it from one
event loop, so no locking is needed.  Three properties matter:

* **Coalescing** — two in-flight submissions (pending *or* running) of
  the same run fingerprint share one job: the second submit returns the
  first job's id instead of queueing a duplicate solve.
* **Priority** — pending jobs dispatch highest ``priority`` first
  (ties: submission order).
* **Backpressure** — at most ``capacity`` *pending* jobs; beyond that,
  :meth:`submit` raises :class:`~repro.errors.ServiceError` with status
  429, which the server returns verbatim instead of buffering unbounded
  work.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Any

from ..errors import ServiceError


class JobStatus(enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def finished(self) -> bool:
        return self in (JobStatus.DONE, JobStatus.FAILED, JobStatus.CANCELLED)


@dataclass
class Job:
    """One submitted synthesis run."""

    id: str
    fingerprint: str
    #: the worker wire payload (assay/spec/method JSON).
    request: dict[str, Any]
    priority: int = 0
    timeout: float | None = None
    status: JobStatus = JobStatus.PENDING
    #: how this job's result was produced: "solve", "store", or "" while
    #: unfinished.
    source: str = ""
    #: structured failure: {"kind": ..., "message": ...}.
    error: dict[str, str] | None = None
    #: response payload ({"result": ..., "profile": ...}) once done.
    payload: dict[str, Any] | None = None
    #: additional submissions coalesced onto this job.
    coalesced: int = 0
    #: True when the fingerprint is being computed by a peer replica —
    #: the job never dispatches locally; the server polls the shared
    #: store (or reclaims the orphaned claim) until it resolves.
    remote: bool = False
    submitted_at: float = field(default_factory=time.time)
    started_at: float | None = None
    finished_at: float | None = None

    def describe(self) -> dict[str, Any]:
        """JSON view for the status endpoints (no result payload)."""
        return {
            "id": self.id,
            "fingerprint": self.fingerprint,
            "status": self.status.value,
            "priority": self.priority,
            "source": self.source,
            "coalesced": self.coalesced,
            "remote": self.remote,
            "error": self.error,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


class JobQueue:
    """Bounded, coalescing priority queue over :class:`Job` objects."""

    def __init__(self, capacity: int = 64, history: int = 256) -> None:
        if capacity < 1:
            raise ServiceError("queue capacity must be >= 1", status=500)
        self.capacity = capacity
        #: finished jobs retained for status queries (FIFO-bounded).
        self.history = history
        self._jobs: dict[str, Job] = {}
        #: fingerprint -> job id for pending/running jobs (coalesce map).
        self._inflight: dict[str, str] = {}
        self._heap: list[tuple[int, int, str]] = []
        self._ids = itertools.count(1)
        self._seq = itertools.count(1)
        self.pending = 0
        #: jobs failed by :meth:`next_job` because their budget elapsed
        #: while queued; the server drains this to signal their waiters.
        self.expired: list[Job] = []

    # -- submission ------------------------------------------------------

    def submit(
        self,
        fingerprint: str,
        request: dict[str, Any],
        priority: int = 0,
        timeout: float | None = None,
        force: bool = False,
    ) -> tuple[Job, bool]:
        """Enqueue a run; returns ``(job, coalesced)``.

        An in-flight job with the same fingerprint absorbs the submission
        (``coalesced=True``) regardless of the new request's priority —
        the solve is already underway or queued.  Raises
        :class:`ServiceError` (429) when the pending backlog is full,
        unless ``force`` is set (journal replay must never drop an
        already-acknowledged job on the floor).
        """
        existing_id = self._inflight.get(fingerprint)
        if existing_id is not None:
            job = self._jobs[existing_id]
            job.coalesced += 1
            return job, True
        if not force and self.pending >= self.capacity:
            raise ServiceError(
                f"queue full ({self.pending} pending jobs)",
                status=429,
                kind="queue-full",
            )
        job = Job(
            id=f"job-{next(self._ids)}",
            fingerprint=fingerprint,
            request=request,
            priority=priority,
            timeout=timeout,
        )
        self._jobs[job.id] = job
        self._inflight[fingerprint] = job.id
        heapq.heappush(self._heap, (-priority, next(self._seq), job.id))
        self.pending += 1
        self._prune_history()
        return job, False

    def admit_finished(self, job: Job) -> None:
        """Register a job that never queues (store hit at submit time)."""
        self._jobs[job.id] = job
        self._prune_history()

    def make_job(self, fingerprint: str, request: dict[str, Any],
                 priority: int = 0) -> Job:
        """A fresh job object with a queue-unique id (not enqueued)."""
        return Job(
            id=f"job-{next(self._ids)}",
            fingerprint=fingerprint,
            request=request,
            priority=priority,
        )

    def submit_remote(
        self,
        fingerprint: str,
        request: dict[str, Any],
        priority: int = 0,
        timeout: float | None = None,
    ) -> Job:
        """Register a job whose fingerprint a peer replica is computing.

        The job starts RUNNING (it occupies no pending slot and never
        dispatches to a local worker) but joins the coalesce map, so
        further local submissions of the fingerprint attach to it.  The
        server's peer-await task resolves it from the shared store or
        requeues it via :meth:`requeue` if the peer dies.
        """
        job = Job(
            id=f"job-{next(self._ids)}",
            fingerprint=fingerprint,
            request=request,
            priority=priority,
            timeout=timeout,
            status=JobStatus.RUNNING,
            remote=True,
        )
        job.started_at = time.time()
        self._jobs[job.id] = job
        self._inflight[fingerprint] = job.id
        self._prune_history()
        return job

    def requeue(self, job: Job) -> None:
        """Put a peer-awaited job back on the local dispatch heap.

        Called when the peer computing the fingerprint died and this
        replica reclaimed the orphaned claim: the job converts from
        remote-await to an ordinary pending job.
        """
        job.remote = False
        job.status = JobStatus.PENDING
        job.started_at = None
        self._jobs[job.id] = job
        self._inflight[job.fingerprint] = job.id
        heapq.heappush(self._heap, (-job.priority, next(self._seq), job.id))
        self.pending += 1

    def inflight_job(self, fingerprint: str) -> Job | None:
        """The pending/running job holding ``fingerprint``, if any."""
        job_id = self._inflight.get(fingerprint)
        return self._jobs.get(job_id) if job_id is not None else None

    # -- dispatch --------------------------------------------------------

    def next_job(self) -> Job | None:
        """Pop the highest-priority pending job and mark it running.

        A pending job whose wall-clock budget already elapsed while it
        sat in the queue is failed with ``kind: timeout`` instead of
        dispatched (appended to :attr:`expired` so the server can signal
        its waiters) — running it would only time out mid-solve and cost
        a pool rebuild.
        """
        while self._heap:
            _, _, job_id = heapq.heappop(self._heap)
            job = self._jobs.get(job_id)
            if job is None or job.status is not JobStatus.PENDING:
                continue  # cancelled while queued
            if (
                job.timeout is not None
                and time.time() - job.submitted_at > job.timeout
            ):
                self.fail(
                    job, "timeout",
                    f"job spent its whole {job.timeout:g}s budget queued",
                )
                self.expired.append(job)
                continue
            self.pending -= 1
            job.status = JobStatus.RUNNING
            job.started_at = time.time()
            return job
        return None

    # -- completion ------------------------------------------------------

    def finish(
        self, job: Job, payload: dict[str, Any], source: str = "solve"
    ) -> None:
        job.status = JobStatus.DONE
        job.payload = payload
        job.source = source
        job.finished_at = time.time()
        self._inflight.pop(job.fingerprint, None)

    def fail(self, job: Job, kind: str, message: str) -> None:
        if job.status is JobStatus.PENDING:
            self.pending -= 1  # failed without ever dispatching
        job.status = JobStatus.FAILED
        job.error = {"kind": kind, "message": message}
        job.finished_at = time.time()
        self._inflight.pop(job.fingerprint, None)

    def cancel(self, job_id: str) -> Job:
        """Cancel a pending job; running/finished jobs are not cancellable.

        A job that absorbed coalesced submissions detaches one waiter
        instead of cancelling: the other submitters still expect the
        shared solve, so the job stays in flight (its ``coalesced`` count
        drops by one) and the caller gets the still-live job back.
        """
        job = self.get(job_id)
        if job.coalesced > 0 and not job.status.finished:
            job.coalesced -= 1
            return job
        if job.status is not JobStatus.PENDING:
            raise ServiceError(
                f"job {job_id} is {job.status.value}, not cancellable",
                status=409,
                kind="not-cancellable",
            )
        job.status = JobStatus.CANCELLED
        job.finished_at = time.time()
        self.pending -= 1
        self._inflight.pop(job.fingerprint, None)
        return job

    # -- queries ---------------------------------------------------------

    def get(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(
                f"unknown job {job_id}", status=404, kind="unknown-job"
            )
        return job

    def jobs(self) -> list[Job]:
        """All known jobs, newest first."""
        return sorted(
            self._jobs.values(), key=lambda job: job.submitted_at, reverse=True
        )

    @property
    def depth(self) -> int:
        return self.pending

    def _prune_history(self) -> None:
        finished = [
            job for job in self._jobs.values() if job.status.finished
        ]
        overflow = len(finished) - self.history
        if overflow <= 0:
            return
        finished.sort(key=lambda job: job.finished_at or job.submitted_at)
        for job in finished[:overflow]:
            del self._jobs[job.id]


__all__ = ["Job", "JobQueue", "JobStatus"]
