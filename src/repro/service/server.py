"""Asyncio synthesis server: local HTTP/JSON API over a process pool.

Stdlib only — ``asyncio.start_server`` with a deliberately minimal
HTTP/1.1 handler (every response closes the connection), a bounded
:class:`~concurrent.futures.ProcessPoolExecutor` doing the actual
solves, and three cooperating pieces from this package:

* :class:`~repro.service.queue.JobQueue` — priority dispatch, request
  coalescing, 429 backpressure;
* :class:`~repro.service.store.ResultStore` — persistent
  fingerprint-keyed results: a repeated submission is answered from disk
  without ever entering the synthesis pipeline;
* :class:`~repro.service.metrics.ServiceMetrics` — counters and latency
  histograms exposed at ``/metrics``.

Endpoints (all JSON)::

    GET    /health             liveness + config summary
    GET    /metrics            counters, histograms, worker utilization
    POST   /jobs               submit {assay, spec?, method?, priority?}
    GET    /jobs               all known jobs, newest first
    GET    /jobs/<id>          one job's status (?wait=SECONDS long-polls)
    GET    /jobs/<id>/result   the result payload (409 until done)
    DELETE /jobs/<id>          cancel a pending job
    POST   /shutdown           graceful stop

Failure isolation: a worker process dying mid-solve (OOM-kill, crash)
fails *only* the jobs in flight on the broken pool — each with a
structured ``worker-crashed`` error — then the pool is rebuilt and the
server keeps serving.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from urllib.parse import parse_qs, urlparse

from ..errors import SerializationError, ServiceError
from ..hls import SynthesisSpec, fingerprint_run
from ..hls.cache import LayerSolveCache
from ..io.json_io import assay_from_json, spec_from_json, spec_to_json
from .journal import JobJournal
from .lease import FleetCoordinator
from .metrics import ServiceMetrics
from .queue import Job, JobQueue, JobStatus
from .store import ResultStore
from .worker import _DEBUG_CRASH, run_job

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error",
}

#: Largest accepted request body (a case-3-sized assay is ~50 KiB).
MAX_BODY_BYTES = 8 * 1024 * 1024


@dataclass
class ServerConfig:
    """Everything the ``serve`` verb exposes."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; resolved port in SynthesisServer.port
    workers: int = 2
    queue_capacity: int = 32
    store_dir: str | None = None
    store_capacity: int = 256
    #: default per-job wall-clock budget, seconds (request may lower it).
    job_timeout: float = 900.0
    #: ship layer-solve-cache exports to workers (cross-process warm
    #: starts) and merge their exports back.
    share_cache: bool = True
    #: most-recently-used cache entries shipped per job.
    cache_export_limit: int = 256
    #: enable the ``debug-crash`` test method (kills a worker mid-job).
    allow_debug: bool = False
    #: durable job journal directory; ``None`` derives ``<store_dir>/
    #: journal`` when a store dir is set (no store dir = no journal).
    journal_dir: str | None = None
    #: records per journal segment before rotation + compaction.
    journal_segment_records: int = 1024
    #: after an ILP job exceeds its wall-clock budget, re-run it once on
    #: the LP-bound scheduler (greedy schedule + certified LP lower bound)
    #: and return the result flagged ``degraded`` with its integrality gap
    #: (each submission may opt out with ``degrade: false``).
    enable_degrade: bool = True
    #: wall-clock budget for the degraded (LP-bound) re-run, seconds.
    degraded_timeout: float = 120.0
    #: ``/health`` reports ``degraded_mode`` once the worker pool was
    #: rebuilt more than this many times inside ``restart_window``.
    restart_threshold: int = 3
    restart_window: float = 300.0
    #: stable replica identity for fleet mode (``None`` derives
    #: ``replica-<pid>``); setting it implies ``fleet=True``.
    replica_id: str | None = None
    #: share the store directory with peer replicas: lease/fencing on
    #: ``index.json``, cross-replica coalescing via the in-flight table.
    #: Requires ``store_dir``.
    fleet: bool = False
    #: store-lease heartbeat timeout — a holder silent this long may be
    #: taken over by a peer (epoch bump fences the old holder).
    lease_ttl: float = 10.0
    #: lease/claim heartbeat cadence of the maintenance loop, seconds.
    heartbeat_interval: float = 2.0
    #: in-flight claim liveness timeout — a claim whose owner stopped
    #: beating this long is reclaimed by a peer.
    claim_ttl: float = 30.0
    #: store-poll cadence while awaiting a peer's in-flight result.
    peer_poll_interval: float = 0.25
    #: how often the maintenance loop checks the journal's compaction
    #: thresholds, seconds.
    compact_interval: float = 5.0
    #: closed-segment bytes that trigger a background compaction step.
    compact_min_bytes: int = 64 * 1024
    #: oldest-closed-segment age (seconds) that triggers one too.
    compact_min_age: float = 300.0


class SynthesisServer:
    """One service instance: queue + pool + store + HTTP front end."""

    def __init__(self, config: ServerConfig | None = None) -> None:
        self.config = config or ServerConfig()
        self.queue = JobQueue(capacity=self.config.queue_capacity)
        fleet_on = bool(
            (self.config.fleet or self.config.replica_id)
            and self.config.store_dir
        )
        self.replica_id = self.config.replica_id or (
            f"replica-{os.getpid()}" if fleet_on else "solo"
        )
        self.fleet: FleetCoordinator | None = None
        if fleet_on:
            assert self.config.store_dir is not None
            self.fleet = FleetCoordinator(
                self.config.store_dir,
                self.replica_id,
                lease_ttl=self.config.lease_ttl,
                claim_ttl=self.config.claim_ttl,
            )
        self.store = ResultStore(
            self.config.store_dir,
            capacity=self.config.store_capacity,
            lease=self.fleet.lease if self.fleet is not None else None,
        )
        journal_dir = self.config.journal_dir
        if journal_dir is None and self.config.store_dir is not None:
            # Fleet replicas keep per-replica journals: the journal is a
            # single-writer append log, unlike the shared store.
            name = f"journal-{self.replica_id}" if fleet_on else "journal"
            journal_dir = str(Path(self.config.store_dir) / name)
        self.journal = JobJournal(
            journal_dir,
            segment_records=self.config.journal_segment_records,
            compact_min_bytes=self.config.compact_min_bytes,
            compact_min_age=self.config.compact_min_age,
        )
        self.metrics = ServiceMetrics(replica_id=self.replica_id)
        self.metrics.workers = self.config.workers
        self.metrics.gauge("queue_depth", lambda: self.queue.depth)
        self.metrics.gauge("jobs_running", lambda: self._running)
        self.metrics.gauge("store_entries", lambda: len(self.store))
        self.metrics.gauge("shared_cache_entries", lambda: len(self._cache))
        if self.fleet is not None:
            self.metrics.gauge(
                "lease_state", lambda: self.fleet.lease.state
            )
            self.metrics.gauge(
                "lease_epoch", lambda: self.fleet.lease.epoch
            )
            self.metrics.gauge(
                "lease_takeovers", lambda: self.fleet.lease.takeovers
            )
        #: cross-job layer-solve cache (canonical entries, see hls/cache).
        self._cache = LayerSolveCache(
            capacity=max(1024, self.config.cache_export_limit)
        )
        self._pool: ProcessPoolExecutor | None = None
        self._server: asyncio.AbstractServer | None = None
        self._dispatcher: asyncio.Task | None = None
        self._maintenance: asyncio.Task | None = None
        self._sem: asyncio.Semaphore | None = None
        self._work_available: asyncio.Event | None = None
        self._stopped: asyncio.Event | None = None
        self._events: dict[str, asyncio.Event] = {}
        #: fingerprints this replica claimed in the shared in-flight
        #: table (released when the owning job finishes).
        self._claims: set[str] = set()
        self._running = 0
        self._stopping = False
        #: monotonic timestamps of recent pool rebuilds (degraded-mode
        #: detection window).
        self._restarts: deque[float] = deque()

    # -- lifecycle -------------------------------------------------------

    @property
    def port(self) -> int:
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._sem = asyncio.Semaphore(self.config.workers)
        self._work_available = asyncio.Event()
        self._stopped = asyncio.Event()
        if self.fleet is not None:
            self.fleet.start()
        self._replay_journal()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        if self.fleet is not None or self.journal.enabled:
            self._maintenance = asyncio.create_task(self._maintenance_loop())
        if self.queue.depth:
            self._work_available.set()

    def _replay_journal(self) -> None:
        """Recover jobs that were pending/running at the last crash.

        Idempotent via whole-run fingerprints: a replayed job whose
        fingerprint already has a store entry completes immediately
        without re-entering the pipeline; duplicates among the replayed
        jobs coalesce.  Replayed jobs bypass queue backpressure — they
        were already acknowledged once.
        """
        for entry in self.journal.replay():
            fingerprint = entry["fingerprint"]
            payload = self.store.get(fingerprint) if fingerprint else None
            if payload is not None:
                job = self.queue.make_job(
                    fingerprint, {}, entry.get("priority", 0)
                )
                self.queue.finish(job, payload, source="journal-store")
                self.queue.admit_finished(job)
                self.metrics.inc("store_hits")
            elif self._peer_owns(fingerprint):
                # A live peer is already computing this fingerprint:
                # await its shared-store result instead of re-solving.
                job = self.queue.submit_remote(
                    fingerprint,
                    entry.get("request") or {},
                    priority=int(entry.get("priority") or 0),
                    timeout=entry.get("timeout"),
                )
                self.journal.record_submitted(job)
                self.metrics.inc("peer_coalesce_hits")
                asyncio.create_task(self._await_peer(job))
            else:
                job, coalesced = self.queue.submit(
                    fingerprint,
                    entry.get("request") or {},
                    priority=int(entry.get("priority") or 0),
                    timeout=entry.get("timeout"),
                    force=True,
                )
                if not coalesced:
                    self.journal.record_submitted(job)
            self.metrics.inc("journal_replayed")
        self.journal.forget_replayed()

    def _peer_owns(self, fingerprint: str) -> bool:
        """Claim the fingerprint in the shared in-flight table; True when
        a *live* peer already holds it (we must await, not compute).

        No-op (False) outside fleet mode or when a local job already
        holds the fingerprint (plain local coalescing applies).  A
        granted claim — including a stale claim reclaimed from a dead
        replica — is remembered in ``_claims`` for heartbeats + release.
        """
        if self.fleet is None or not fingerprint:
            return False
        if self.queue.inflight_job(fingerprint) is not None:
            return False
        granted, _entry = self.fleet.claim(fingerprint)
        if granted:
            self._claims.add(fingerprint)
            return False
        return True

    async def serve_until_stopped(self) -> None:
        assert self._stopped is not None
        await self._stopped.wait()

    async def stop(self, crash: bool = False) -> None:
        """Stop serving.  ``crash=True`` simulates a dead replica: the
        lease and in-flight claims are *not* released, so peers must
        exercise stale-lease takeover and orphaned-claim reclaim (the
        chaos harness uses this)."""
        if self._stopping:
            return
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in (self._dispatcher, self._maintenance):
            if task is not None:
                task.cancel()
                try:
                    await task
                except asyncio.CancelledError:
                    pass
        self._dispatcher = None
        self._maintenance = None
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        if self.fleet is not None:
            self.fleet.stop(crash=crash)
        self.journal.close()
        if self._stopped is not None:
            self._stopped.set()

    async def _maintenance_loop(self) -> None:
        """Background heartbeat + threshold-gated journal compaction.

        Lease/claim heartbeats are inline (sub-millisecond file ops);
        compaction steps run in a worker thread so a large segment
        rewrite never stalls the event loop.
        """
        interval = self.config.compact_interval
        if self.fleet is not None:
            interval = min(interval, self.config.heartbeat_interval)
        interval = max(0.05, interval)
        last_compact = time.monotonic()
        while True:
            await asyncio.sleep(interval)
            if self.fleet is not None:
                held_before = self.fleet.lease.held
                self.fleet.maintain(self._claims)
                if self.fleet.lease.held and not held_before:
                    self.metrics.inc("lease_acquired")
                if self.fleet.lease.held:
                    # Fold entries follower replicas wrote into the LRU
                    # bound — only the holder sees + enforces eviction.
                    swept = self.store.sweep()
                    if swept:
                        self.metrics.inc("store_sweep_adoptions", swept)
            if (
                self.journal.enabled
                and time.monotonic() - last_compact
                >= self.config.compact_interval
            ):
                last_compact = time.monotonic()
                duration = await asyncio.to_thread(
                    self.journal.maybe_compact
                )
                if duration is not None:
                    self.metrics.observe("compaction_seconds", duration)
                    self.metrics.inc("journal_compactions")

    def _get_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.config.workers
            )
        return self._pool

    def _reset_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
        self.metrics.inc("worker_restarts")
        self._restarts.append(time.monotonic())

    def _degraded_mode(self) -> bool:
        """Whether pool rebuilds are frequent enough to flag degradation."""
        horizon = time.monotonic() - self.config.restart_window
        while self._restarts and self._restarts[0] < horizon:
            self._restarts.popleft()
        return len(self._restarts) > self.config.restart_threshold

    # -- dispatch --------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._sem is not None and self._work_available is not None
        while True:
            await self._sem.acquire()
            job = None
            while job is None:
                job = self.queue.next_job()
                self._drain_expired()
                if job is None:
                    self._work_available.clear()
                    await self._work_available.wait()
            self.journal.record_started(job)
            asyncio.create_task(self._run_job(job))

    def _drain_expired(self) -> None:
        """Account for jobs the queue failed because they out-waited
        their own wall-clock budget."""
        while self.queue.expired:
            job = self.queue.expired.pop()
            self.journal.record_failed(job)
            self.metrics.inc("jobs_timeout")
            self.metrics.inc("jobs_failed")
            self._signal_done(job)

    async def _run_job(self, job: Job) -> None:
        assert self._sem is not None
        loop = asyncio.get_running_loop()
        started = time.monotonic()
        self._running += 1
        self.metrics.observe(
            "queue_wait_seconds", max(0.0, time.time() - job.submitted_at)
        )
        try:
            request = dict(job.request)
            if self.config.share_cache and request.get("method") == "hls":
                request["cache"] = self._cache.export_entries(
                    limit=self.config.cache_export_limit
                )
            timeout = min(
                job.timeout or self.config.job_timeout,
                self.config.job_timeout,
            )
            outcome = await asyncio.wait_for(
                loop.run_in_executor(self._get_pool(), run_job, request),
                timeout=timeout,
            )
        except asyncio.TimeoutError:
            self.metrics.inc("jobs_timeout")
            # The abandoned solve still occupies a worker; rebuild the
            # pool so the slot is genuinely reclaimed.
            self._reset_pool()
            if not await self._run_degraded(job, request):
                self.queue.fail(
                    job, "timeout",
                    f"job exceeded its {timeout:g}s wall-clock budget",
                )
                self.journal.record_failed(job)
                self.metrics.inc("jobs_failed")
        except BrokenProcessPool:
            self.queue.fail(
                job, "worker-crashed",
                "worker process died mid-solve; the pool was rebuilt",
            )
            self.journal.record_failed(job)
            self.metrics.inc("jobs_failed")
            self._reset_pool()
        except Exception as exc:  # pragma: no cover - defensive
            self.queue.fail(job, "internal", str(exc))
            self.journal.record_failed(job)
            self.metrics.inc("jobs_failed")
        else:
            self._absorb_outcome(job, outcome)
        finally:
            elapsed = time.monotonic() - started
            self.metrics.busy_seconds += elapsed
            self.metrics.observe("solve_seconds", elapsed)
            self._running -= 1
            self._signal_done(job)
            self._sem.release()

    async def _run_degraded(self, job: Job, request: dict) -> bool:
        """Re-run a timed-out job once on the greedy scheduler.

        Returns True when the job finished with a ``degraded``-flagged
        payload.  The degraded result is returned to the waiters but
        *not* stored: the store holds only canonical full-fidelity
        results, so a future resubmission re-attempts the real solve.
        """
        if not self.config.enable_degrade:
            return False
        if request.get("degrade") is False:
            return False
        if request.get("method") not in ("hls", "conventional"):
            return False
        loop = asyncio.get_running_loop()
        degraded_request = {
            key: value for key, value in request.items() if key != "cache"
        } | {"degraded": True}
        try:
            outcome = await asyncio.wait_for(
                loop.run_in_executor(
                    self._get_pool(), run_job, degraded_request
                ),
                timeout=self.config.degraded_timeout,
            )
        except (asyncio.TimeoutError, BrokenProcessPool):
            self._reset_pool()
            return False
        except Exception:  # pragma: no cover - defensive
            return False
        if not outcome or outcome[0] != "ok":
            return False
        _tag, payload, _export = outcome
        payload["degraded"] = True
        self.queue.finish(job, payload, source="degraded")
        self.journal.record_finished(job)
        self.metrics.inc("jobs_degraded")
        self.metrics.inc("jobs_completed")
        return True

    def _absorb_outcome(self, job: Job, outcome: tuple) -> None:
        if not outcome or outcome[0] != "ok":
            _tag, kind, message = outcome
            self.queue.fail(job, kind, message)
            self.journal.record_failed(job)
            self.metrics.inc("jobs_failed")
            return
        _tag, payload, cache_export = outcome
        if self.config.share_cache and cache_export:
            self._cache.import_entries(cache_export)
        # Store first, then journal: a crash in between replays the job,
        # finds the store entry, and completes it immediately.
        self.store.put(job.fingerprint, payload)
        self.queue.finish(job, payload, source="solve")
        self.journal.record_finished(job)
        self.metrics.inc("jobs_completed")
        #: actual local solves — the fleet's exactly-once accounting.
        self.metrics.inc("solve_jobs")
        totals = (payload.get("profile") or {}).get("totals") or {}
        self.metrics.inc("solve_ilp_solves", int(totals.get("ilp_solves", 0)))
        self.metrics.inc("solve_cache_hits", int(totals.get("cache_hits", 0)))

    async def _await_peer(self, job: Job) -> None:
        """Resolve a job whose fingerprint a peer replica is computing.

        Polls the shared store until the peer's result lands; if the
        peer dies instead (its claim goes stale), this replica reclaims
        the claim and converts the job into an ordinary local solve —
        zero lost jobs either way.
        """
        assert self.fleet is not None
        interval = max(0.01, self.config.peer_poll_interval)
        deadline = (
            time.monotonic() + job.timeout
            if job.timeout is not None else None
        )
        while not self._stopping:
            # probe() is a dict lookup + stat — safe on the event loop
            # every poll tick; the full read + checksum verification in
            # get() runs once, when the peer's entry file appears.
            payload = (
                self.store.get(job.fingerprint)
                if self.store.probe(job.fingerprint) else None
            )
            if payload is not None:
                self.queue.finish(job, payload, source="peer")
                self.journal.record_finished(job)
                self.metrics.inc("peer_results")
                self.metrics.inc("jobs_completed")
                self._signal_done(job)
                return
            if deadline is not None and time.monotonic() > deadline:
                self.queue.fail(
                    job, "timeout",
                    f"peer-awaited job exceeded its "
                    f"{job.timeout:g}s budget",
                )
                self.journal.record_failed(job)
                self.metrics.inc("jobs_failed")
                self._signal_done(job)
                return
            granted, _entry = self.fleet.claim(job.fingerprint)
            if granted:
                self._claims.add(job.fingerprint)
                payload = self.store.get(job.fingerprint)
                if payload is not None:
                    # The peer finished and released its claim between
                    # our store probe and the claim — serve the stored
                    # result, don't recompute.
                    self.queue.finish(job, payload, source="peer")
                    self.journal.record_finished(job)
                    self.metrics.inc("peer_results")
                    self.metrics.inc("jobs_completed")
                    self._signal_done(job)
                    return
                # The peer's claim went stale (it died): the orphan is
                # ours now — compute locally.
                self.queue.requeue(job)
                self.metrics.inc("peer_reclaims")
                assert self._work_available is not None
                self._work_available.set()
                return
            await asyncio.sleep(interval)

    def _signal_done(self, job: Job) -> None:
        if (
            self.fleet is not None
            and job.status.finished
            and job.fingerprint in self._claims
        ):
            self._claims.discard(job.fingerprint)
            self.fleet.release(job.fingerprint)
        event = self._events.pop(job.id, None)
        if event is not None:
            event.set()

    # -- submission ------------------------------------------------------

    def _submit(self, body: dict) -> tuple[int, dict]:
        if not isinstance(body, dict):
            raise ServiceError(
                "request body must be a JSON object", status=400,
                kind="bad-request",
            )
        method = body.get("method", "hls")
        if method == _DEBUG_CRASH and self.config.allow_debug:
            return self._submit_debug_crash(body)
        if method not in ("hls", "conventional"):
            raise ServiceError(
                f"unknown method {method!r}", status=400, kind="bad-request"
            )
        try:
            assay = assay_from_json(body.get("assay") or {})
            spec_data = body.get("spec")
            spec = spec_from_json(spec_data) if spec_data else SynthesisSpec()
        except SerializationError as exc:
            raise ServiceError(str(exc), status=400, kind="bad-request")

        fingerprint = fingerprint_run(assay, spec, method)
        priority = int(body.get("priority", 0))
        timeout = body.get("timeout")
        self.metrics.inc("jobs_submitted")

        payload = self.store.get(fingerprint)
        if payload is not None:
            self.metrics.inc("store_hits")
            job = self.queue.make_job(fingerprint, {}, priority)
            self.queue.finish(job, payload, source="store")
            self.queue.admit_finished(job)
            return 202, {"job": job.describe()}
        self.metrics.inc("store_misses")

        request = {
            "assay": body["assay"],
            "spec": spec_to_json(spec),
            "method": method,
            "deterministic": True,
        }
        if body.get("degrade") is False:
            request["degrade"] = False
        timeout_value = float(timeout) if timeout else None
        if self._peer_owns(fingerprint):
            job = self.queue.submit_remote(
                fingerprint, request, priority=priority,
                timeout=timeout_value,
            )
            self.journal.record_submitted(job)
            self.metrics.inc("peer_coalesce_hits")
            asyncio.create_task(self._await_peer(job))
            return 202, {"job": job.describe()}
        try:
            job, coalesced = self.queue.submit(
                fingerprint, request, priority=priority,
                timeout=timeout_value,
            )
        except ServiceError:
            # Queue-full (429): give back the in-flight claim _peer_owns
            # just granted us, or the maintenance loop would heartbeat it
            # forever and peers would await a solve nobody is running.
            if self.fleet is not None and fingerprint in self._claims:
                self._claims.discard(fingerprint)
                self.fleet.release(fingerprint)
            raise
        if coalesced:
            self.metrics.inc("coalesce_hits")
        else:
            self.journal.record_submitted(job)
            assert self._work_available is not None
            self._work_available.set()
        return 202, {"job": job.describe()}

    def _submit_debug_crash(self, body: dict) -> tuple[int, dict]:
        """Queue a job whose worker kills itself (crash-recovery tests)."""
        self.metrics.inc("jobs_submitted")
        job, _ = self.queue.submit(
            f"debug-crash-{time.monotonic_ns()}",
            {"method": _DEBUG_CRASH},
            priority=int(body.get("priority", 0)),
        )
        assert self._work_available is not None
        self._work_available.set()
        return 202, {"job": job.describe()}

    # -- HTTP front end --------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, body = await asyncio.wait_for(
                    self._read_request(reader), timeout=30.0
                )
            except (asyncio.TimeoutError, asyncio.IncompleteReadError,
                    ConnectionError):
                return
            except ServiceError as exc:
                self._write_response(writer, exc.status, _error_body(exc))
                return
            try:
                status, payload = await self._route(method, path, body)
            except ServiceError as exc:
                status, payload = exc.status, _error_body(exc)
            except Exception as exc:  # pragma: no cover - defensive
                status, payload = 500, {
                    "error": {"kind": "internal", "message": str(exc)}
                }
            self._write_response(writer, status, payload)
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, dict | None]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise ConnectionError("empty request")
        parts = request_line.split()
        if len(parts) != 3:
            raise ServiceError(
                f"malformed request line {request_line!r}",
                status=400, kind="bad-request",
            )
        method, path, _version = parts
        headers: dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        if headers.get("x-repro-hedge"):
            # The client's hedge policy fired this as a duplicate of a
            # slow request to a peer — counted for fleet observability.
            self.metrics.inc("hedged_requests")
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise ServiceError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
                status=413, kind="payload-too-large",
            )
        body: dict | None = None
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ServiceError(
                    f"request body is not valid JSON: {exc}",
                    status=400, kind="bad-request",
                )
        return method.upper(), path, body

    async def _route(
        self, method: str, path: str, body: dict | None
    ) -> tuple[int, dict]:
        parsed = urlparse(path)
        segments = [s for s in parsed.path.split("/") if s]
        query = parse_qs(parsed.query)

        if segments == ["health"] and method == "GET":
            return 200, self._health()
        if segments == ["metrics"] and method == "GET":
            snapshot = self.metrics.snapshot() | {
                "store": self.store.counters(),
                "solve_cache": self._cache.counters(),
                "journal": self.journal.counters(),
            }
            if self.fleet is not None:
                snapshot["replica"] = self.fleet.counters()
            else:
                snapshot["replica"] = {"replica_id": self.replica_id}
            return 200, snapshot
        if segments == ["shutdown"] and method == "POST":
            asyncio.get_running_loop().call_soon(
                lambda: asyncio.ensure_future(self.stop())
            )
            return 200, {"status": "stopping"}
        if segments == ["jobs"]:
            if method == "POST":
                return self._submit(body or {})
            if method == "GET":
                return 200, {
                    "jobs": [job.describe() for job in self.queue.jobs()]
                }
            raise ServiceError("use GET or POST", status=405, kind="bad-method")
        if len(segments) == 2 and segments[0] == "jobs":
            if method == "GET":
                return await self._job_status(segments[1], query)
            if method == "DELETE":
                job = self.queue.cancel(segments[1])
                if job.status is JobStatus.CANCELLED:
                    self.journal.record_cancelled(job)
                    self.metrics.inc("jobs_cancelled")
                    self._signal_done(job)
                else:
                    # A coalesced waiter detached; the shared job lives.
                    self.metrics.inc("jobs_detached")
                return 200, {"job": job.describe()}
            raise ServiceError(
                "use GET or DELETE", status=405, kind="bad-method"
            )
        if (
            len(segments) == 3
            and segments[0] == "jobs"
            and segments[2] == "result"
            and method == "GET"
        ):
            return self._job_result(segments[1])
        raise ServiceError(
            f"no route for {method} {parsed.path}", status=404,
            kind="not-found",
        )

    def _health(self) -> dict:
        return {
            "status": "degraded" if self._degraded_mode() else "ok",
            "degraded_mode": self._degraded_mode(),
            "uptime_seconds": round(
                time.monotonic() - self.metrics.started, 3
            ),
            "workers": self.config.workers,
            "queue_capacity": self.config.queue_capacity,
            "queue_depth": self.queue.depth,
            "jobs_running": self._running,
            "store_entries": len(self.store),
            "persistent_store": self.store.root is not None,
            "journal": self.journal.enabled,
            "replica_id": self.replica_id,
            "lease": (
                self.fleet.lease.state if self.fleet is not None else None
            ),
        }

    async def _job_status(
        self, job_id: str, query: dict
    ) -> tuple[int, dict]:
        job = self.queue.get(job_id)
        wait = float(query.get("wait", [0])[0] or 0)
        if wait > 0 and not job.status.finished:
            event = self._events.setdefault(job.id, asyncio.Event())
            try:
                await asyncio.wait_for(event.wait(), timeout=min(wait, 60.0))
            except asyncio.TimeoutError:
                pass
        return 200, {"job": job.describe()}

    def _job_result(self, job_id: str) -> tuple[int, dict]:
        job = self.queue.get(job_id)
        if job.status is JobStatus.DONE:
            assert job.payload is not None
            return 200, {"job": job.describe()} | job.payload
        if job.status is JobStatus.FAILED:
            return 409, {"job": job.describe(), "error": job.error}
        raise ServiceError(
            f"job {job_id} is {job.status.value}; no result yet",
            status=409, kind="not-finished",
        )

    def _write_response(
        self, writer: asyncio.StreamWriter, status: int, payload: dict
    ) -> None:
        data = json.dumps(payload).encode()
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(data)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + data)


def _error_body(exc: ServiceError) -> dict:
    return {"error": {"kind": exc.kind, "message": str(exc)}}


def run_server(config: ServerConfig | None = None, announce=None) -> None:
    """Run a server until ``/shutdown`` or KeyboardInterrupt.

    ``announce`` is called once with the started server (the CLI prints
    the bound address; tests grab the port).
    """

    async def _main() -> None:
        server = SynthesisServer(config)
        await server.start()
        if announce is not None:
            announce(server)
        try:
            await server.serve_until_stopped()
        finally:
            await server.stop()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        pass


__all__ = ["MAX_BODY_BYTES", "ServerConfig", "SynthesisServer", "run_server"]
