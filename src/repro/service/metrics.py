"""Service telemetry: counters, gauges, and latency histograms.

Everything is plain in-process state exported as one JSON document at
``/metrics`` — no third-party metrics client, no background threads.  The
histogram uses fixed log-spaced buckets (Prometheus style: each bucket
counts observations ``<=`` its upper bound) so dashboards can derive
quantile estimates without the service storing raw samples.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

#: Upper bounds (seconds) for latency histograms; +inf is implicit.
DEFAULT_BUCKETS = (
    0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
    60.0, 120.0, 300.0,
)


@dataclass
class Histogram:
    """Cumulative-bucket latency histogram (seconds)."""

    buckets: tuple[float, ...] = DEFAULT_BUCKETS
    counts: list[int] = field(default_factory=list)
    total: int = 0
    sum: float = 0.0
    maximum: float = 0.0

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.buckets) + 1)

    def observe(self, value: float) -> None:
        self.total += 1
        self.sum += value
        self.maximum = max(self.maximum, value)
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.total if self.total else 0.0

    def to_dict(self) -> dict:
        return {
            "count": self.total,
            "sum": round(self.sum, 6),
            "mean": round(self.mean, 6),
            "max": round(self.maximum, 6),
            "buckets": {
                f"le_{bound:g}": count
                for bound, count in zip(self.buckets, self.counts)
            }
            | {"le_inf": self.counts[-1]},
        }


class ServiceMetrics:
    """All counters/gauges/histograms of one server instance."""

    def __init__(self, replica_id: str = "solo") -> None:
        self.started = time.monotonic()
        #: stable replica identity (fleet mode); "solo" otherwise.
        self.replica_id = replica_id
        self._counters: dict[str, int] = {}
        self._histograms: dict[str, Histogram] = {}
        #: seconds of worker-slot occupancy, accumulated per finished job.
        self.busy_seconds = 0.0
        #: current pool size (set by the server; utilization denominator).
        self.workers = 1
        #: gauge callbacks polled at snapshot time (queue depth, running).
        self._gauges: dict[str, object] = {}

    # -- counters --------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def count(self, name: str) -> int:
        return self._counters.get(name, 0)

    # -- histograms ------------------------------------------------------

    def observe(self, name: str, seconds: float) -> None:
        self._histograms.setdefault(name, Histogram()).observe(seconds)

    # -- gauges ----------------------------------------------------------

    def gauge(self, name: str, fn) -> None:
        """Register a zero-argument callable polled at snapshot time."""
        self._gauges[name] = fn

    # -- export ----------------------------------------------------------

    def snapshot(self) -> dict:
        uptime = time.monotonic() - self.started
        busy = self.busy_seconds
        capacity = uptime * max(1, self.workers)
        gauges = {}
        for name, fn in self._gauges.items():
            try:
                gauges[name] = fn()
            except Exception:
                gauges[name] = None
        return {
            "replica_id": self.replica_id,
            "uptime_seconds": round(uptime, 3),
            "counters": dict(sorted(self._counters.items())),
            "gauges": gauges,
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in sorted(self._histograms.items())
            },
            "workers": {
                "pool_size": self.workers,
                "busy_seconds": round(busy, 3),
                "utilization": round(min(1.0, busy / capacity), 4)
                if capacity
                else 0.0,
            },
        }


__all__ = ["DEFAULT_BUCKETS", "Histogram", "ServiceMetrics"]
