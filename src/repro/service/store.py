"""Persistent, fingerprint-keyed synthesis-result store.

Treats finished synthesis runs as addressable artifacts (cf. Tseng et
al., *Storage and Caching: Synthesis of Flow-based Microfluidic
Biochips*): the key is the canonical whole-run fingerprint from
:func:`repro.hls.cache.fingerprint_run`, the value is the deterministic
:func:`repro.io.json_io.result_to_json` payload (plus the solve profile),
so a stored entry is byte-for-byte the response a fresh solve would have
produced.

Guarantees:

* **Durable atomic writes** — entries land via ``tmp file + fsync +
  os.replace`` followed by a directory fsync; a crash or power loss
  mid-write never leaves a truncated or empty entry visible.
* **Checksummed envelopes** — every entry records the SHA-256 of its
  canonical payload JSON; a bit-flipped, truncated, or otherwise
  corrupted entry is detected on read, moved to a ``quarantine/``
  subdirectory for post-mortem, and counted (``corruptions``) — reads
  never crash, they miss.
* **Schema versioning** — every entry records ``STORE_SCHEMA``; entries
  written by an incompatible version read as misses and are dropped
  (not quarantined: they are well-formed, just foreign).
* **LRU size bound** — at most ``capacity`` entries on disk; the
  least-recently-*used* entry is evicted first, with recency persisted in
  a small index file so restarts keep the order.
* **Fleet sharing** — pass a :class:`~repro.service.lease.StoreLease`
  and N replicas may point at one directory.  Entry files are
  content-addressed + checksummed + atomically replaced, so any
  non-fenced replica may write them; ``index.json`` (recency/eviction)
  is written only by the lease *holder*, under the lease's advisory
  lock, with the holder's epoch embedded — a holder that observes a
  newer epoch on disk fences itself and skips the write instead of
  clobbering the live holder's index.  Fenced replicas keep results in
  a process-local memory overflow (``rejected_writes`` counts them) so
  their own waiters are still served.  The holder's periodic
  :meth:`~ResultStore.sweep` folds entries follower replicas wrote into
  its recency map, so the LRU size bound holds fleet-wide, not just for
  the holder's own writes.
* **Verified-fingerprint cache** — the SHA-256 verification runs on the
  first read of each fingerprint per process; repeat ``get()`` hits
  skip re-hashing (``verifications`` counts actual checksum runs).

``root=None`` gives a purely in-memory store with identical semantics —
used when the server runs without ``--store`` and by unit tests.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

from ..errors import SerializationError

if TYPE_CHECKING:  # pragma: no cover
    from .lease import StoreLease

#: Bump on any incompatible change to the entry layout.
#: 2: entries carry a ``checksum`` (SHA-256 of the canonical payload).
STORE_SCHEMA = 2

_INDEX_NAME = "index.json"
_QUARANTINE_DIR = "quarantine"

#: non-entry ``*.json`` files sharing the store directory in fleet mode
#: (lease record + in-flight table) — never adopted, never evicted.
_RESERVED_NAMES = {_INDEX_NAME, "lease.json", "inflight.json"}


def _fsync_dir(path: Path) -> None:
    """fsync a directory so a just-replaced entry survives power loss."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _atomic_write_text(path: Path, text: str) -> None:
    """Durably replace ``path`` with ``text``.

    The tmp file is fsync'd before ``os.replace`` and the directory is
    fsync'd after, so a power loss at any point leaves either the old
    complete entry or the new complete entry — never a visible empty or
    torn file.
    """
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def payload_checksum(payload: dict[str, Any]) -> str:
    """SHA-256 of the canonical (sorted-key) JSON of ``payload``."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


class ResultStore:
    """On-disk (or in-memory) LRU store of synthesis-result payloads."""

    def __init__(
        self,
        root: "str | Path | None" = None,
        capacity: int = 256,
        lease: "StoreLease | None" = None,
    ) -> None:
        if capacity < 1:
            raise SerializationError("store capacity must be >= 1")
        self.root = Path(root) if root is not None else None
        self.capacity = capacity
        #: fleet lease (None for the classic single-writer store).
        self.lease = lease
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.puts = 0
        #: corrupted/truncated entries detected on read (and quarantined).
        self.corruptions = 0
        #: checksum verifications actually performed (first read per
        #: fingerprint per process; repeat hits skip re-hashing).
        self.verifications = 0
        #: writes refused because this replica's lease was fenced.
        self.rejected_writes = 0
        #: entries written by a peer replica and adopted on read.
        self.adoptions = 0
        #: fingerprints whose payload this process has already verified.
        self._verified: set[str] = set()
        #: fingerprint -> last-use stamp, oldest first; doubles as the
        #: in-memory payload map when ``root`` is None.
        self._recency: dict[str, int] = {}
        self._memory: dict[str, dict] = {}
        self._clock = 0
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._load_index()

    # -- index persistence ----------------------------------------------

    def _index_path(self) -> Path:
        assert self.root is not None
        return self.root / _INDEX_NAME

    def _load_index(self) -> None:
        try:
            data = json.loads(self._index_path().read_text())
            entries = data.get("recency", {})
        except (OSError, json.JSONDecodeError, AttributeError):
            entries = {}
        known = {
            path.stem for path in self.root.glob("*.json")
            if path.name not in _RESERVED_NAMES
        }
        ordered = sorted(
            (stamp, fp) for fp, stamp in entries.items() if fp in known
        )
        self._recency = {fp: stamp for stamp, fp in ordered}
        # Entries on disk but absent from the index (index write lost in a
        # crash) are adopted as least-recently-used.
        adopted = sorted(known - set(self._recency))
        if adopted:
            self._recency = {fp: 0 for fp in adopted} | self._recency
        self._clock = max(self._recency.values(), default=0)

    def _save_index(self) -> None:
        if self.root is None:
            return
        if self.lease is not None:
            if not self.lease.may_write_index():
                # Followers/fenced replicas keep recency in memory only;
                # the holder owns eviction order for the shared files.
                return
            self._save_index_fenced()
            return
        _atomic_write_text(
            self._index_path(),
            json.dumps({"schema": STORE_SCHEMA, "recency": self._recency}),
        )

    def _save_index_fenced(self) -> None:
        """Holder-only index write with the lost-update guard.

        Under the lease's advisory lock: read the epoch embedded in the
        on-disk index; a *newer* epoch means another replica took over
        while we weren't looking — fence ourselves and skip the write
        rather than clobbering the live holder's index.
        """
        assert self.lease is not None
        with self.lease.lock():
            try:
                data = json.loads(self._index_path().read_text())
                disk_epoch = int(data.get("epoch", 0))
            except (OSError, json.JSONDecodeError, AttributeError,
                    TypeError, ValueError):
                disk_epoch = 0
            if disk_epoch > self.lease.epoch:
                self.lease.fence()
                self.rejected_writes += 1
                return
            _atomic_write_text(
                self._index_path(),
                json.dumps({
                    "schema": STORE_SCHEMA,
                    "epoch": self.lease.epoch,
                    "recency": self._recency,
                }),
            )

    # -- core API --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._recency)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._recency

    def _entry_path(self, fingerprint: str) -> Path:
        assert self.root is not None
        return self.root / f"{fingerprint}.json"

    def quarantine_dir(self) -> Path:
        assert self.root is not None
        return self.root / _QUARANTINE_DIR

    def _touch(self, fingerprint: str) -> None:
        self._clock += 1
        self._recency.pop(fingerprint, None)
        self._recency[fingerprint] = self._clock
        self._save_index()

    def _read_entry(self, fingerprint: str) -> dict[str, Any]:
        """Parse + verify one on-disk entry.

        Raises ``SerializationError`` for *foreign* entries (schema
        mismatch — drop silently) and ``ValueError`` for *corrupted*
        ones (unparseable, truncated, empty, checksum mismatch —
        quarantine).  The checksum is hashed only on the first read per
        fingerprint per process; later reads trust the verified cache.
        """
        path = self._entry_path(fingerprint)
        text = path.read_text()
        if not text.strip():
            raise ValueError("empty entry file")
        try:
            envelope = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"unparseable entry: {exc}") from exc
        if not isinstance(envelope, dict):
            raise ValueError("entry is not a JSON object")
        if envelope.get("schema") != STORE_SCHEMA:
            raise SerializationError(
                f"foreign schema {envelope.get('schema')!r}"
            )
        if "payload" not in envelope or "checksum" not in envelope:
            raise ValueError("entry envelope is missing required fields")
        payload = envelope["payload"]
        if fingerprint not in self._verified:
            self.verifications += 1
            if payload_checksum(payload) != envelope["checksum"]:
                raise ValueError("payload checksum mismatch")
            self._verified.add(fingerprint)
        return payload

    def probe(self, fingerprint: str) -> bool:
        """Cheap presence probe: is an entry likely available for get()?

        A dictionary lookup plus at most one ``stat`` — no file reads,
        no checksum work — so an event loop may poll it tightly while
        awaiting a peer's in-flight result.  ``True`` is a hint, not a
        promise: the subsequent :meth:`get` still performs the full
        read + verification and may miss.
        """
        if fingerprint in self._recency or fingerprint in self._memory:
            return True
        if self.root is None:
            return False
        return self._entry_path(fingerprint).exists()

    def get(self, fingerprint: str) -> dict[str, Any] | None:
        """The stored payload for ``fingerprint``, or ``None`` (a miss).

        A hit refreshes the entry's recency.  Schema-incompatible entries
        are dropped; corrupted or truncated entries are moved to
        ``quarantine/`` and counted — both read as misses.  With a fleet
        lease, unindexed entries a peer replica wrote are probed on disk
        and adopted, and the fenced-replica memory overflow is consulted.
        """
        if fingerprint not in self._recency:
            if fingerprint in self._memory and self.root is not None:
                # Fenced-replica overflow: computed here but refused a
                # shared write; still a hit for our own waiters.
                self.hits += 1
                return self._memory[fingerprint]
            if self.lease is not None and self.root is not None:
                return self._adopt(fingerprint)
            self.misses += 1
            return None
        if self.root is None:
            self.hits += 1
            self._touch(fingerprint)
            return self._memory[fingerprint]
        try:
            payload = self._read_entry(fingerprint)
        except (SerializationError, OSError):
            self._drop(fingerprint)
            self.misses += 1
            return None
        except ValueError:
            self._quarantine(fingerprint)
            self.misses += 1
            return None
        self.hits += 1
        self._touch(fingerprint)
        return payload

    def _adopt(self, fingerprint: str) -> dict[str, Any] | None:
        """Probe the shared directory for an entry a peer wrote.

        Fleet replicas keep recency in memory (only the lease holder
        writes the index), so a fingerprint a peer just stored is not in
        ``_recency`` — but its checksummed entry file is on disk.  A
        successful read verifies and adopts it.
        """
        path = self._entry_path(fingerprint)
        if not path.exists():
            self.misses += 1
            return None
        try:
            payload = self._read_entry(fingerprint)
        except (SerializationError, OSError):
            self.misses += 1
            return None
        except ValueError:
            self._quarantine(fingerprint)
            self.misses += 1
            return None
        self.hits += 1
        self.adoptions += 1
        self._touch(fingerprint)
        return payload

    def put(self, fingerprint: str, payload: dict[str, Any]) -> None:
        """Store ``payload`` under ``fingerprint`` (atomic, LRU-evicting).

        A fenced fleet replica never writes shared files: the payload
        lands in a process-local memory overflow instead (counted in
        ``rejected_writes``) so this replica's own waiters still get it.
        """
        self.puts += 1
        if self.root is not None and self.lease is not None \
                and not self.lease.may_write_entries():
            self.rejected_writes += 1
            self._memory[fingerprint] = payload
            return
        if self.root is None:
            self._memory[fingerprint] = payload
        else:
            envelope = {
                "schema": STORE_SCHEMA,
                "fingerprint": fingerprint,
                "stored_at": time.time(),
                "checksum": payload_checksum(payload),
                "payload": payload,
            }
            try:
                _atomic_write_text(
                    self._entry_path(fingerprint), json.dumps(envelope)
                )
            except OSError as exc:
                raise SerializationError(
                    f"cannot write store entry {fingerprint[:12]}…: {exc}"
                ) from exc
            # We just hashed + wrote the canonical envelope ourselves.
            self._verified.add(fingerprint)
        self._touch(fingerprint)
        while len(self._recency) > self.capacity:
            oldest = next(iter(self._recency))
            # _drop is lease-aware: followers only forget local recency,
            # unlinking shared files is the lease holder's job.
            self._drop(oldest)
            self.evictions += 1

    def _quarantine(self, fingerprint: str) -> None:
        """Move a corrupted entry aside for post-mortem, never delete it."""
        self.corruptions += 1
        self._recency.pop(fingerprint, None)
        self._verified.discard(fingerprint)
        if self.root is None:
            return
        if self.lease is not None and not self.lease.may_write_index():
            # Non-holders never move shared files (a move could race the
            # holder replacing the entry with a fresh good write); the
            # holder quarantines it on its own next read.
            return
        source = self._entry_path(fingerprint)
        target_dir = self.quarantine_dir()
        try:
            target_dir.mkdir(parents=True, exist_ok=True)
            os.replace(source, target_dir / source.name)
        except OSError:
            try:
                source.unlink(missing_ok=True)
            except OSError:
                pass
        self._save_index()

    def _drop(self, fingerprint: str) -> None:
        self._recency.pop(fingerprint, None)
        self._memory.pop(fingerprint, None)
        self._verified.discard(fingerprint)
        if self.lease is not None and not self.lease.may_write_index():
            return  # non-holders never unlink shared files
        if self.root is not None:
            try:
                self._entry_path(fingerprint).unlink(missing_ok=True)
            except OSError:
                pass
            self._save_index()

    def sweep(self) -> int:
        """Fold peer-written entries into the LRU bound (holder only).

        Follower replicas write entry files but never the index, so the
        lease holder's ``_recency`` map does not see them — without this
        the shared directory would grow past ``capacity``.  The holder's
        maintenance loop calls this periodically: unindexed entry files
        are adopted as least-recently-used (oldest mtime first, so a
        peer write nobody ever read is the first eviction candidate) and
        the capacity bound is then enforced as usual.  Returns the
        number of entries adopted.
        """
        if self.root is None:
            return 0
        if self.lease is not None and not self.lease.may_write_index():
            return 0
        unindexed: list[tuple[float, str]] = []
        try:
            names = os.listdir(self.root)
        except OSError:
            return 0
        for name in names:
            if not name.endswith(".json") or name in _RESERVED_NAMES:
                continue
            fingerprint = name[: -len(".json")]
            if fingerprint in self._recency:
                continue
            try:
                mtime = (self.root / name).stat().st_mtime
            except OSError:
                continue  # evicted/quarantined mid-scan
            unindexed.append((mtime, fingerprint))
        if not unindexed:
            return 0
        self._recency = {
            fp: 0 for _mtime, fp in sorted(unindexed)
        } | self._recency
        self.adoptions += len(unindexed)
        evicted = False
        while len(self._recency) > self.capacity:
            oldest = next(iter(self._recency))
            self._drop(oldest)
            self.evictions += 1
            evicted = True
        if not evicted:
            self._save_index()  # _drop persists; adoption-only must too
        return len(unindexed)

    def quarantined(self) -> list[str]:
        """Names of quarantined entry files (empty for in-memory stores)."""
        if self.root is None:
            return []
        directory = self.quarantine_dir()
        if not directory.is_dir():
            return []
        return sorted(path.name for path in directory.glob("*.json"))

    def counters(self) -> dict[str, int]:
        return {
            "entries": len(self._recency),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "puts": self.puts,
            "corruptions": self.corruptions,
            "quarantined": len(self.quarantined()),
            "verifications": self.verifications,
            "rejected_writes": self.rejected_writes,
            "adoptions": self.adoptions,
        }


__all__ = ["STORE_SCHEMA", "ResultStore", "payload_checksum"]
