"""Durable job journal: a write-ahead log of job lifecycle transitions.

The server appends one JSONL record per lifecycle transition
(``submitted`` / ``started`` / ``finished`` / ``failed`` /
``cancelled``), fsync'd before the call returns, so the set of jobs that
were pending or running at any crash point is always reconstructible
from disk.  On startup the server calls :meth:`JobJournal.replay`, which
returns exactly those open jobs (the ``submitted`` record carries the
full worker request, so a job can be re-enqueued without the original
client), re-records them under fresh ids, and then calls
:meth:`JobJournal.forget_replayed` to delete the pre-crash segments.

Durability discipline:

* **Append-only segments** — records land in ``segment-NNNNNN.jsonl``;
  every append is flushed and ``os.fsync``'d before returning, so an
  acknowledged submission survives a power loss.
* **Torn tails are expected** — a crash mid-append leaves a partial last
  line; replay skips it (counted in ``torn_records``) instead of
  failing.  Only the final line of a segment can be torn, because every
  earlier line was fsync'd as a prefix of the file.
* **Atomic rotation** — when the active segment reaches
  ``segment_records`` records it is closed and a new one started;
  rotation itself is O(1) (no scan).
* **Incremental background compaction** — the journal tracks the set of
  terminal job ids in memory (seeded by one startup scan, updated on
  every terminal append).  :meth:`JobJournal.maybe_compact` fires only
  when closed segments exceed a byte or age threshold, and then rewrites
  a bounded number of segments per run, strictly oldest-first, dropping
  records of terminal jobs (survivors rewritten via ``tmp + fsync +
  os.replace``, empty segments deleted).  Oldest-first order makes
  per-segment compaction crash-safe against job *resurrection*: a job's
  ``submitted`` record always precedes its terminal record in segment
  order, so by the time a terminal record could be dropped the
  submission is already gone; a leftover orphan terminal record is
  harmless (replay only re-enqueues from ``submitted``).  Stale ``.tmp``
  files from a crash mid-compaction are swept at startup; a torn
  rewrite is never visible because of the atomic replace.

``root=None`` disables the journal entirely: every method is a cheap
no-op and :meth:`replay` returns ``[]`` — the in-memory server
configuration keeps its exact pre-journal behavior.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from .queue import Job

#: Bump on any incompatible change to the record layout.
JOURNAL_SCHEMA = 1

#: Events that end a job's lifecycle (no replay needed).
TERMINAL_EVENTS = frozenset({"finished", "failed", "cancelled"})

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".jsonl"


def _fsync_path(path: Path) -> None:
    """fsync a file or directory by path (best effort on exotic FS)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class JobJournal:
    """Append-only, segment-rotating JSONL journal of job transitions."""

    def __init__(
        self,
        root: "str | Path | None" = None,
        segment_records: int = 1024,
        compact_min_bytes: int = 64 * 1024,
        compact_min_age: float = 300.0,
        compact_segments_per_run: int = 8,
    ) -> None:
        self.root = Path(root) if root is not None else None
        self.segment_records = max(1, segment_records)
        #: closed-segment bytes that arm :meth:`maybe_compact`.
        self.compact_min_bytes = max(0, compact_min_bytes)
        #: oldest-closed-segment age (seconds) that arms it too.
        self.compact_min_age = max(0.0, compact_min_age)
        #: closed segments rewritten per :meth:`maybe_compact` run.
        self.compact_segments_per_run = max(1, compact_segments_per_run)
        #: records appended by this instance (all events).
        self.appended = 0
        #: torn (partial) trailing lines skipped during replay.
        self.torn_records = 0
        #: open jobs returned by the last :meth:`replay`.
        self.replayed = 0
        #: records dropped by compaction (terminal-job records).
        self.compacted = 0
        #: segment rotations performed by this instance.
        self.rotations = 0
        #: threshold-triggered incremental compaction runs.
        self.compaction_runs = 0
        #: append failures swallowed (disk full, EIO); the server keeps
        #: serving but durability is degraded — surfaced at /metrics.
        self.write_errors = 0
        self._active: Path | None = None
        self._active_count = 0
        self._handle = None
        #: job ids whose terminal event has been journalled — the
        #: incremental compactor's working set (seeded by one startup
        #: scan, then maintained on every terminal append).
        self._terminal: set[str] = set()
        #: segments frozen by :meth:`replay`, deleted by
        #: :meth:`forget_replayed`.
        self._frozen: list[Path] = []
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._sweep_tmp()
            self._open_active()
            self._seed_terminal()

    @property
    def enabled(self) -> bool:
        return self.root is not None

    # -- segment management ---------------------------------------------

    def _segments(self) -> list[Path]:
        """All segment files, oldest first (numeric order)."""
        assert self.root is not None
        return sorted(
            path
            for path in self.root.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}")
            if not path.name.endswith(".tmp")
        )

    def _segment_number(self, path: Path) -> int:
        stem = path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
        try:
            return int(stem)
        except ValueError:
            return 0

    def _segment_path(self, number: int) -> Path:
        assert self.root is not None
        return self.root / f"{_SEGMENT_PREFIX}{number:06d}{_SEGMENT_SUFFIX}"

    def _open_active(self) -> None:
        """(Re)open the newest segment for appending, creating if needed."""
        assert self.root is not None
        segments = self._segments()
        if segments:
            self._active = segments[-1]
            self._active_count = sum(
                1 for _ in _iter_records(self._active)
            )
            # A crash mid-append can leave a torn tail with no newline;
            # appending straight after it would corrupt the next record
            # too, so terminate the torn line first.
            try:
                raw = self._active.read_bytes()
                if raw and not raw.endswith(b"\n"):
                    with open(self._active, "ab") as handle:
                        handle.write(b"\n")
            except OSError:
                pass
        else:
            self._active = self._segment_path(1)
            self._active_count = 0
        self._handle = open(self._active, "a", encoding="utf-8")

    def _sweep_tmp(self) -> None:
        """Remove tmp files a crash mid-compaction left behind.

        A ``.tmp`` is only ever a partially written rewrite whose atomic
        replace never happened — the original segment is still intact.
        """
        assert self.root is not None
        for tmp in self.root.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}.tmp"):
            try:
                tmp.unlink()
            except OSError:
                pass

    def _seed_terminal(self) -> None:
        """One startup scan seeding the terminal-id set for incremental
        compaction; afterwards :meth:`_append` keeps it current."""
        assert self.root is not None
        self._terminal = set()
        for segment in self._segments():
            records, _ = _read_records(segment)
            for record in records:
                if record.get("event") in TERMINAL_EVENTS:
                    job_id = record.get("id")
                    if job_id:
                        self._terminal.add(job_id)

    def _rotate(self) -> None:
        """Close the active segment and start the next one (O(1) — the
        background compactor owns scanning, not the append path)."""
        assert self.root is not None and self._active is not None
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
        number = self._segment_number(self._active) + 1
        self._active = self._segment_path(number)
        self._active_count = 0
        self._handle = open(self._active, "a", encoding="utf-8")
        _fsync_path(self.root)
        self.rotations += 1

    # -- appends ---------------------------------------------------------

    def _append(self, record: dict[str, Any]) -> None:
        if self.root is None or self._handle is None:
            return
        record = {"schema": JOURNAL_SCHEMA, "ts": time.time()} | record
        try:
            self._handle.write(json.dumps(record) + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError:
            self.write_errors += 1
            return
        self.appended += 1
        if record.get("event") in TERMINAL_EVENTS and record.get("id"):
            self._terminal.add(record["id"])
        self._active_count += 1
        if self._active_count >= self.segment_records:
            try:
                self._rotate()
            except OSError:
                self.write_errors += 1

    def record_submitted(self, job: "Job") -> None:
        """Journal a new job; the record carries the full worker request."""
        self._append({
            "event": "submitted",
            "id": job.id,
            "fingerprint": job.fingerprint,
            "request": job.request,
            "priority": job.priority,
            "timeout": job.timeout,
        })

    def record_started(self, job: "Job") -> None:
        self._append({
            "event": "started", "id": job.id,
            "fingerprint": job.fingerprint,
        })

    def record_finished(self, job: "Job") -> None:
        self._append({
            "event": "finished", "id": job.id,
            "fingerprint": job.fingerprint, "source": job.source,
        })

    def record_failed(self, job: "Job") -> None:
        error = job.error or {}
        self._append({
            "event": "failed", "id": job.id,
            "fingerprint": job.fingerprint, "kind": error.get("kind", ""),
        })

    def record_cancelled(self, job: "Job") -> None:
        self._append({
            "event": "cancelled", "id": job.id,
            "fingerprint": job.fingerprint,
        })

    # -- replay ----------------------------------------------------------

    def replay(self) -> list[dict[str, Any]]:
        """The jobs open (pending or running) at the last shutdown/crash.

        Returns one dict per open job — ``{"id", "fingerprint",
        "request", "priority", "timeout", "was_running"}`` — in original
        submission order.  Rotates first, freezing the pre-crash history
        into closed segments, so the caller's re-enqueued replacements
        (journalled afresh into the new active segment) never share a
        file with the records they supersede; once they are durably
        re-journalled the caller invokes :meth:`forget_replayed` to drop
        the frozen segments.
        """
        if self.root is None:
            return []
        self._rotate()
        self._frozen = [s for s in self._segments() if s != self._active]
        submitted: dict[str, dict[str, Any]] = {}
        last_event: dict[str, str] = {}
        torn = 0
        for segment in self._frozen:
            records, segment_torn = _read_records(segment)
            torn += segment_torn
            for record in records:
                job_id = record.get("id")
                event = record.get("event")
                if not job_id or not event:
                    continue
                if event == "submitted":
                    submitted[job_id] = record
                last_event[job_id] = event
        self.torn_records += torn
        open_jobs = []
        for job_id, record in submitted.items():
            if last_event.get(job_id) in TERMINAL_EVENTS:
                continue
            open_jobs.append({
                "id": job_id,
                "fingerprint": record.get("fingerprint", ""),
                "request": record.get("request") or {},
                "priority": int(record.get("priority") or 0),
                "timeout": record.get("timeout"),
                "was_running": last_event.get(job_id) == "started",
            })
        self.replayed = len(open_jobs)
        return open_jobs

    def forget_replayed(self) -> None:
        """Delete the segments frozen by the last :meth:`replay`.

        Called after replayed jobs have been re-journalled (fsync'd)
        under fresh ids in the new active segment, so the frozen segments
        carry no information the new one lacks.  A crash between the
        re-journalling and this deletion merely replays twice — which is
        idempotent: duplicates coalesce on their fingerprint or complete
        immediately from the result store.
        """
        if self.root is None:
            return
        for segment in self._frozen:
            try:
                segment.unlink()
            except OSError:
                pass
        self._frozen = []
        _fsync_path(self.root)
        # The deleted segments carried most of the tracked terminal ids;
        # re-seed from what actually remains on disk.
        self._seed_terminal()

    # -- compaction ------------------------------------------------------

    def _closed_segments(self) -> list[Path]:
        """Closed (non-active, non-frozen) segments, oldest first."""
        frozen = set(self._frozen)
        return [
            segment for segment in self._segments()
            if segment != self._active and segment not in frozen
        ]

    def closed_bytes(self) -> int:
        """Total on-disk bytes across closed segments."""
        if self.root is None:
            return 0
        total = 0
        for segment in self._closed_segments():
            try:
                total += segment.stat().st_size
            except OSError:
                pass
        return total

    def pending_compaction(self) -> bool:
        """Whether closed segments exceed the byte or age threshold."""
        if self.root is None:
            return False
        closed = self._closed_segments()
        if not closed:
            return False
        if self.closed_bytes() >= self.compact_min_bytes:
            return True
        try:
            oldest_age = time.time() - closed[0].stat().st_mtime
        except OSError:
            return False
        return oldest_age >= self.compact_min_age

    def _compact_segment(self, segment: Path, terminal: set[str]) -> None:
        """Rewrite one closed segment without terminal-job records.

        Crash-tolerant: survivors land in a ``.tmp`` that is fsync'd and
        atomically replaces the original — a crash mid-rewrite leaves
        the intact original plus a stale tmp (swept at next startup).
        """
        records, _ = _read_records(segment)
        survivors = [
            record for record in records
            if record.get("id") not in terminal
        ]
        if len(survivors) == len(records):
            return
        self.compacted += len(records) - len(survivors)
        if not survivors:
            try:
                segment.unlink()
            except OSError:
                pass
            return
        tmp = segment.with_name(segment.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            for record in survivors:
                handle.write(json.dumps(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, segment)

    def compact_step(self, max_segments: "int | None" = None) -> int:
        """Incrementally compact up to ``max_segments`` closed segments.

        Segments are processed strictly **oldest-first**: a job's
        ``submitted`` record always precedes its terminal record in
        segment order, so dropping terminal jobs per-segment in this
        order can never resurrect one on replay — at worst an orphan
        terminal record survives in a newer segment, and replay only
        re-enqueues from ``submitted`` records.  Returns the number of
        segments examined.
        """
        if self.root is None:
            return 0
        if max_segments is None:
            max_segments = self.compact_segments_per_run
        done = 0
        for segment in self._closed_segments():
            if done >= max_segments:
                break
            try:
                self._compact_segment(segment, self._terminal)
            except OSError:
                self.write_errors += 1
            done += 1
        if done:
            _fsync_path(self.root)
        return done

    def maybe_compact(self) -> "float | None":
        """Run one bounded compaction step iff a threshold is armed.

        Returns the step's wall-clock duration in seconds, or ``None``
        when nothing was due — the server's maintenance loop feeds the
        duration into the compaction histogram.
        """
        if not self.pending_compaction():
            return None
        start = time.perf_counter()
        self.compact_step()
        self.compaction_runs += 1
        return time.perf_counter() - start

    def compact(self) -> None:
        """Full compaction: every closed segment, terminal set rebuilt
        from a complete scan.  Kept for explicit/administrative use; the
        hot path uses :meth:`maybe_compact` instead.
        """
        if self.root is None:
            return
        self._seed_terminal()
        self.compact_step(max_segments=len(self._closed_segments()))

    # -- introspection ---------------------------------------------------

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except (OSError, ValueError):
                pass
            self._handle.close()
            self._handle = None

    def counters(self) -> dict[str, int]:
        return {
            "enabled": int(self.enabled),
            "appended": self.appended,
            "replayed": self.replayed,
            "torn_records": self.torn_records,
            "compacted": self.compacted,
            "compaction_runs": self.compaction_runs,
            "rotations": self.rotations,
            "write_errors": self.write_errors,
            "segments": len(self._segments()) if self.enabled else 0,
            "closed_bytes": self.closed_bytes(),
        }


def _iter_records(path: Path):
    records, _torn = _read_records(path)
    return iter(records)


def _read_records(path: Path) -> tuple[list[dict[str, Any]], int]:
    """Parse a segment; returns ``(records, torn_line_count)``.

    A torn record can only be the last line of the file (every earlier
    line was fsync'd whole before the next append started), but the
    parser tolerates garbage anywhere rather than trusting that.
    """
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return [], 0
    records: list[dict[str, Any]] = []
    torn = 0
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            torn += 1
            continue
        if isinstance(record, dict):
            records.append(record)
        else:
            torn += 1
    return records, torn


__all__ = ["JOURNAL_SCHEMA", "TERMINAL_EVENTS", "JobJournal"]
