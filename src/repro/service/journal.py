"""Durable job journal: a write-ahead log of job lifecycle transitions.

The server appends one JSONL record per lifecycle transition
(``submitted`` / ``started`` / ``finished`` / ``failed`` /
``cancelled``), fsync'd before the call returns, so the set of jobs that
were pending or running at any crash point is always reconstructible
from disk.  On startup the server calls :meth:`JobJournal.replay`, which
returns exactly those open jobs (the ``submitted`` record carries the
full worker request, so a job can be re-enqueued without the original
client), re-records them under fresh ids, and then calls
:meth:`JobJournal.forget_replayed` to delete the pre-crash segments.

Durability discipline:

* **Append-only segments** — records land in ``segment-NNNNNN.jsonl``;
  every append is flushed and ``os.fsync``'d before returning, so an
  acknowledged submission survives a power loss.
* **Torn tails are expected** — a crash mid-append leaves a partial last
  line; replay skips it (counted in ``torn_records``) instead of
  failing.  Only the final line of a segment can be torn, because every
  earlier line was fsync'd as a prefix of the file.
* **Atomic rotation + compaction** — when the active segment reaches
  ``segment_records`` records it is closed and a new one started; closed
  segments are then compacted (records of terminal jobs dropped, the
  survivor rewritten via ``tmp + fsync + os.replace``, empty segments
  deleted) so the journal's footprint tracks the *open* job set, not the
  server's lifetime traffic.

``root=None`` disables the journal entirely: every method is a cheap
no-op and :meth:`replay` returns ``[]`` — the in-memory server
configuration keeps its exact pre-journal behavior.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from .queue import Job

#: Bump on any incompatible change to the record layout.
JOURNAL_SCHEMA = 1

#: Events that end a job's lifecycle (no replay needed).
TERMINAL_EVENTS = frozenset({"finished", "failed", "cancelled"})

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".jsonl"


def _fsync_path(path: Path) -> None:
    """fsync a file or directory by path (best effort on exotic FS)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class JobJournal:
    """Append-only, segment-rotating JSONL journal of job transitions."""

    def __init__(
        self,
        root: "str | Path | None" = None,
        segment_records: int = 1024,
    ) -> None:
        self.root = Path(root) if root is not None else None
        self.segment_records = max(1, segment_records)
        #: records appended by this instance (all events).
        self.appended = 0
        #: torn (partial) trailing lines skipped during replay.
        self.torn_records = 0
        #: open jobs returned by the last :meth:`replay`.
        self.replayed = 0
        #: records dropped by compaction (terminal-job records).
        self.compacted = 0
        #: segment rotations performed by this instance.
        self.rotations = 0
        #: append failures swallowed (disk full, EIO); the server keeps
        #: serving but durability is degraded — surfaced at /metrics.
        self.write_errors = 0
        self._active: Path | None = None
        self._active_count = 0
        self._handle = None
        #: segments frozen by :meth:`replay`, deleted by
        #: :meth:`forget_replayed`.
        self._frozen: list[Path] = []
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
            self._open_active()

    @property
    def enabled(self) -> bool:
        return self.root is not None

    # -- segment management ---------------------------------------------

    def _segments(self) -> list[Path]:
        """All segment files, oldest first (numeric order)."""
        assert self.root is not None
        return sorted(
            path
            for path in self.root.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}")
            if not path.name.endswith(".tmp")
        )

    def _segment_number(self, path: Path) -> int:
        stem = path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
        try:
            return int(stem)
        except ValueError:
            return 0

    def _segment_path(self, number: int) -> Path:
        assert self.root is not None
        return self.root / f"{_SEGMENT_PREFIX}{number:06d}{_SEGMENT_SUFFIX}"

    def _open_active(self) -> None:
        """(Re)open the newest segment for appending, creating if needed."""
        assert self.root is not None
        segments = self._segments()
        if segments:
            self._active = segments[-1]
            self._active_count = sum(
                1 for _ in _iter_records(self._active)
            )
            # A crash mid-append can leave a torn tail with no newline;
            # appending straight after it would corrupt the next record
            # too, so terminate the torn line first.
            try:
                raw = self._active.read_bytes()
                if raw and not raw.endswith(b"\n"):
                    with open(self._active, "ab") as handle:
                        handle.write(b"\n")
            except OSError:
                pass
        else:
            self._active = self._segment_path(1)
            self._active_count = 0
        self._handle = open(self._active, "a", encoding="utf-8")

    def _rotate(self) -> None:
        """Close the active segment and start the next one, then compact."""
        assert self.root is not None and self._active is not None
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
        number = self._segment_number(self._active) + 1
        self._active = self._segment_path(number)
        self._active_count = 0
        self._handle = open(self._active, "a", encoding="utf-8")
        _fsync_path(self.root)
        self.rotations += 1
        self.compact()

    # -- appends ---------------------------------------------------------

    def _append(self, record: dict[str, Any]) -> None:
        if self.root is None or self._handle is None:
            return
        record = {"schema": JOURNAL_SCHEMA, "ts": time.time()} | record
        try:
            self._handle.write(json.dumps(record) + "\n")
            self._handle.flush()
            os.fsync(self._handle.fileno())
        except OSError:
            self.write_errors += 1
            return
        self.appended += 1
        self._active_count += 1
        if self._active_count >= self.segment_records:
            try:
                self._rotate()
            except OSError:
                self.write_errors += 1

    def record_submitted(self, job: "Job") -> None:
        """Journal a new job; the record carries the full worker request."""
        self._append({
            "event": "submitted",
            "id": job.id,
            "fingerprint": job.fingerprint,
            "request": job.request,
            "priority": job.priority,
            "timeout": job.timeout,
        })

    def record_started(self, job: "Job") -> None:
        self._append({
            "event": "started", "id": job.id,
            "fingerprint": job.fingerprint,
        })

    def record_finished(self, job: "Job") -> None:
        self._append({
            "event": "finished", "id": job.id,
            "fingerprint": job.fingerprint, "source": job.source,
        })

    def record_failed(self, job: "Job") -> None:
        error = job.error or {}
        self._append({
            "event": "failed", "id": job.id,
            "fingerprint": job.fingerprint, "kind": error.get("kind", ""),
        })

    def record_cancelled(self, job: "Job") -> None:
        self._append({
            "event": "cancelled", "id": job.id,
            "fingerprint": job.fingerprint,
        })

    # -- replay ----------------------------------------------------------

    def replay(self) -> list[dict[str, Any]]:
        """The jobs open (pending or running) at the last shutdown/crash.

        Returns one dict per open job — ``{"id", "fingerprint",
        "request", "priority", "timeout", "was_running"}`` — in original
        submission order.  Rotates first, freezing the pre-crash history
        into closed segments, so the caller's re-enqueued replacements
        (journalled afresh into the new active segment) never share a
        file with the records they supersede; once they are durably
        re-journalled the caller invokes :meth:`forget_replayed` to drop
        the frozen segments.
        """
        if self.root is None:
            return []
        self._rotate()
        self._frozen = [s for s in self._segments() if s != self._active]
        submitted: dict[str, dict[str, Any]] = {}
        last_event: dict[str, str] = {}
        torn = 0
        for segment in self._frozen:
            records, segment_torn = _read_records(segment)
            torn += segment_torn
            for record in records:
                job_id = record.get("id")
                event = record.get("event")
                if not job_id or not event:
                    continue
                if event == "submitted":
                    submitted[job_id] = record
                last_event[job_id] = event
        self.torn_records += torn
        open_jobs = []
        for job_id, record in submitted.items():
            if last_event.get(job_id) in TERMINAL_EVENTS:
                continue
            open_jobs.append({
                "id": job_id,
                "fingerprint": record.get("fingerprint", ""),
                "request": record.get("request") or {},
                "priority": int(record.get("priority") or 0),
                "timeout": record.get("timeout"),
                "was_running": last_event.get(job_id) == "started",
            })
        self.replayed = len(open_jobs)
        return open_jobs

    def forget_replayed(self) -> None:
        """Delete the segments frozen by the last :meth:`replay`.

        Called after replayed jobs have been re-journalled (fsync'd)
        under fresh ids in the new active segment, so the frozen segments
        carry no information the new one lacks.  A crash between the
        re-journalling and this deletion merely replays twice — which is
        idempotent: duplicates coalesce on their fingerprint or complete
        immediately from the result store.
        """
        if self.root is None:
            return
        for segment in self._frozen:
            try:
                segment.unlink()
            except OSError:
                pass
        self._frozen = []
        _fsync_path(self.root)

    # -- compaction ------------------------------------------------------

    def compact(self) -> None:
        """Drop terminal-job records from closed segments.

        The active segment is never rewritten (it is mid-append); closed
        segments are rewritten atomically without records of jobs whose
        terminal event has been journalled anywhere, and deleted outright
        when nothing survives.
        """
        if self.root is None:
            return
        segments = self._segments()
        terminal: set[str] = set()
        for segment in segments:
            records, _ = _read_records(segment)
            for record in records:
                if record.get("event") in TERMINAL_EVENTS:
                    terminal.add(record.get("id", ""))
        for segment in segments:
            if segment == self._active:
                continue
            records, _ = _read_records(segment)
            survivors = [
                record for record in records
                if record.get("id") not in terminal
            ]
            if len(survivors) == len(records):
                continue
            self.compacted += len(records) - len(survivors)
            if not survivors:
                try:
                    segment.unlink()
                except OSError:
                    pass
                continue
            tmp = segment.with_name(segment.name + ".tmp")
            with open(tmp, "w", encoding="utf-8") as handle:
                for record in survivors:
                    handle.write(json.dumps(record) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, segment)
        _fsync_path(self.root)

    # -- introspection ---------------------------------------------------

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except (OSError, ValueError):
                pass
            self._handle.close()
            self._handle = None

    def counters(self) -> dict[str, int]:
        return {
            "enabled": int(self.enabled),
            "appended": self.appended,
            "replayed": self.replayed,
            "torn_records": self.torn_records,
            "compacted": self.compacted,
            "rotations": self.rotations,
            "write_errors": self.write_errors,
            "segments": len(self._segments()) if self.enabled else 0,
        }


def _iter_records(path: Path):
    records, _torn = _read_records(path)
    return iter(records)


def _read_records(path: Path) -> tuple[list[dict[str, Any]], int]:
    """Parse a segment; returns ``(records, torn_line_count)``.

    A torn record can only be the last line of the file (every earlier
    line was fsync'd whole before the next append started), but the
    parser tolerates garbage anywhere rather than trusting that.
    """
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return [], 0
    records: list[dict[str, Any]] = []
    torn = 0
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            torn += 1
            continue
        if isinstance(record, dict):
            records.append(record)
        else:
            torn += 1
    return records, torn


__all__ = ["JOURNAL_SCHEMA", "TERMINAL_EVENTS", "JobJournal"]
