"""Chaos-injection harness for the synthesis service.

Runs a *real* in-process server (thread + asyncio + process pool) and a
deterministic fault campaign against it, in the spirit of the
cyberphysical runtime's fault plans (:mod:`repro.cyberphysical.faults`):
the faults are declared up front, injected at fixed points, and the
whole campaign is reproducible from its seed.  Four fault kinds map the
PR-2 vocabulary onto the service layer:

* **worker-kill** — a worker process dies mid-job (SIGKILL semantics via
  the gated ``debug-crash`` method); the job must fail structured
  (``worker-crashed``) and the server must keep serving.
* **slow-solve** — a job whose wall-clock budget is far below its solve
  time; the server must answer with a ``degraded``-flagged greedy
  result instead of failing.
* **store-corrupt** — finished entries are truncated to zero bytes or
  payload-tampered under an intact envelope; reads must quarantine them
  (never crash) and re-solve.
* **journal-crash** — the server is hard-stopped with jobs still
  pending/running, and the journal tail is torn mid-record; a restarted
  server must replay the journal and finish every interrupted job.

The campaign's verdict (:class:`ChaosReport`) checks the tentpole
invariants: every submitted job reaches a terminal state, every
corruption lands in ``quarantine/`` with the ``corruptions`` counter
matching, the journal replay count is exactly the number of jobs open at
the crash, and every non-degraded result is byte-identical to a
fault-free in-process solve of the same request.

Determinism note: the spec *variants* the campaign fabricates differ
only in ``improvement_threshold`` under ``max_iterations=0`` — a knob
that changes the run fingerprint (so each variant is a distinct job)
but provably cannot change the result when no refinement pass may run —
which lets one fault-free baseline solve per case verify every variant.
The slow-solve body is the exception: it lowers ``max_devices`` so its
layer problems differ from everything the server's warm layer-solve
cache holds — the solve cannot be shortcut inside the fault's tiny
budget — and it therefore carries its own baseline.
"""

from __future__ import annotations

import asyncio
import json
import random
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import ServiceError
from .client import RetryPolicy, ServiceClient
from .server import ServerConfig, SynthesisServer
from .worker import run_job

#: improvement_threshold values carving distinct fingerprints out of the
#: same solve class (inert under max_iterations=0; see module docstring).
_VARIANT_EXTRA = 0.011
_VARIANT_WAVE2 = 0.013


@dataclass
class ChaosConfig:
    """One deterministic chaos campaign."""

    seed: int = 0
    #: duplicate submissions layered on wave 1 (coalescing/store-hit
    #: pressure); the CLI's ``--jobs``.
    jobs: int = 2
    #: paper benchmark cases to build requests from (ignored when
    #: ``requests`` is given).
    cases: tuple[int, ...] = (1, 2)
    #: explicit submission bodies ``{"assay": ..., "spec": ...}``
    #: (tests use tiny fixture assays here).
    requests: "list[dict] | None" = None
    #: parent directory for the campaign's store + journal; a fresh
    #: subdirectory is always created (system temp dir when ``None``)
    #: and left behind for post-mortem inspection.
    workdir: str | None = None
    workers: int = 2
    #: per-layer ILP budget for the generated case specs.
    time_limit: float = 30.0
    #: client-side wait per job, seconds.
    deadline: float = 600.0
    # -- fault toggles / tuning -----------------------------------------
    kill_worker: bool = True
    slow_solve: bool = True
    #: wall-clock budget of the slow-solve job; must sit between the
    #: idle-server dispatch latency (ms) and the solve time.
    slow_timeout: float = 0.5
    corrupt_store: bool = True
    torn_journal: bool = True


@dataclass
class ChaosReport:
    """Campaign outcome; ``ok`` is the CI verdict."""

    #: the campaign's store/journal directory (post-mortem artifact).
    workdir: str = ""
    #: unique requests whose results the campaign must account for.
    submitted: int = 0
    verified: int = 0
    #: expected results that never reached a terminal ``done`` state.
    lost: int = 0
    #: non-degraded results that differed from the fault-free baseline.
    mismatched: int = 0
    degraded_observed: int = 0
    degraded_expected: int = 0
    worker_crashes: int = 0
    worker_crashes_expected: int = 0
    replayed: int = 0
    replayed_expected: int = 0
    corruptions: int = 0
    corruptions_injected: int = 0
    quarantined: int = 0
    torn_records: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.lost == 0
            and self.mismatched == 0
            and self.verified == self.submitted
            and self.degraded_observed >= self.degraded_expected
            and self.worker_crashes >= self.worker_crashes_expected
            and self.replayed == self.replayed_expected
            and self.corruptions >= self.corruptions_injected
            # every detected corruption must be quarantined, not lost.
            and self.quarantined == self.corruptions
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "workdir": self.workdir,
            "submitted": self.submitted,
            "verified": self.verified,
            "lost": self.lost,
            "mismatched": self.mismatched,
            "degraded_observed": self.degraded_observed,
            "degraded_expected": self.degraded_expected,
            "worker_crashes": self.worker_crashes,
            "worker_crashes_expected": self.worker_crashes_expected,
            "replayed": self.replayed,
            "replayed_expected": self.replayed_expected,
            "corruptions": self.corruptions,
            "corruptions_injected": self.corruptions_injected,
            "quarantined": self.quarantined,
            "torn_records": self.torn_records,
            "notes": self.notes,
        }


def format_chaos(report: ChaosReport) -> str:
    lines = [
        f"verdict        : {'OK' if report.ok else 'FAILED'}",
        f"jobs           : {report.submitted} unique requests, "
        f"{report.verified} verified, {report.lost} lost, "
        f"{report.mismatched} mismatched",
        f"degraded       : {report.degraded_observed} observed "
        f"(expected >= {report.degraded_expected})",
        f"worker crashes : {report.worker_crashes} "
        f"(expected >= {report.worker_crashes_expected})",
        f"journal replay : {report.replayed} jobs "
        f"(expected {report.replayed_expected}), "
        f"{report.torn_records} torn record(s) skipped",
        f"store          : {report.corruptions} corruption(s) detected "
        f"({report.corruptions_injected} injected), "
        f"{report.quarantined} quarantined",
        f"workdir        : {report.workdir}",
    ]
    lines.extend(f"note           : {note}" for note in report.notes)
    return "\n".join(lines)


# -- request fabrication -------------------------------------------------


def _case_body(case: int, time_limit: float) -> dict:
    from ..assays import benchmark_assay
    from ..hls import SynthesisSpec
    from ..io.json_io import assay_to_json, spec_to_json

    spec = SynthesisSpec(
        threshold=4, mip_gap=0.05, time_limit=time_limit, max_iterations=0
    )
    return {
        "assay": assay_to_json(benchmark_assay(case)),
        "spec": spec_to_json(spec),
    }


def _variant(body: dict, improvement_threshold: float) -> dict:
    """A distinct-fingerprint body in the same solve class as ``body``."""
    spec = dict(body.get("spec") or {})
    spec["improvement_threshold"] = improvement_threshold
    spec["max_iterations"] = 0
    return {**body, "spec": spec}


def _slow_body(body: dict) -> dict:
    """A body in a *different* solve class: lowering ``max_devices``
    changes every layer ILP's device-configuration constraints (the
    layering threshold alone may not — single-layer cases keep the same
    layer problem), so the server's shared layer-solve cache (warmed by
    wave 1) cannot shortcut the solve and the slow-solve fault's tiny
    budget reliably times out.  Needs its own fault-free baseline."""
    from ..hls import SynthesisSpec

    spec = dict(body.get("spec") or {})
    base = spec.get("max_devices", SynthesisSpec().max_devices)
    spec["max_devices"] = max(1, int(base) - 1)
    spec["max_iterations"] = 0
    return {**body, "spec": spec}


def _open_jobs_in_journal(journal_dir: Path) -> int:
    """Count jobs with a ``submitted`` record and no terminal record —
    exactly the set a restarted server must replay.  Torn lines are
    skipped, as the journal's own reader does."""
    from .journal import TERMINAL_EVENTS

    submitted: set = set()
    terminal: set = set()
    for segment in sorted(journal_dir.glob("segment-*.jsonl")):
        for line in segment.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            job_id = record.get("id")
            event = record.get("event")
            if not job_id or not event:
                continue
            if event == "submitted":
                submitted.add(job_id)
            elif event in TERMINAL_EVENTS:
                terminal.add(job_id)
    return len(submitted - terminal)


def _body_key(body: dict) -> str:
    return json.dumps(
        {"assay": body["assay"], "spec": body.get("spec")}, sort_keys=True
    )


def _result_bytes(payload: dict) -> str:
    return json.dumps(payload["result"], sort_keys=True)


# -- in-process server harness -------------------------------------------


class _ServerHarness:
    """One service instance on a background thread, hard-stoppable."""

    def __init__(self, config: ServerConfig) -> None:
        self.config = config
        self._started = threading.Event()
        self._server: SynthesisServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        async def _main() -> None:
            server = SynthesisServer(self.config)
            await server.start()
            self._server = server
            self._loop = asyncio.get_running_loop()
            self._started.set()
            try:
                await server.serve_until_stopped()
            finally:
                await server.stop()

        try:
            asyncio.run(_main())
        except Exception:  # noqa: BLE001 - surfaced via start() timeout
            self._started.set()

    def start(self) -> None:
        self._thread.start()
        if not self._started.wait(30) or self._server is None:
            raise ServiceError("chaos server did not start", status=500)

    @property
    def port(self) -> int:
        assert self._server is not None
        return self._server.port

    @property
    def server(self) -> SynthesisServer:
        assert self._server is not None
        return self._server

    def hard_stop(self, crash: bool = False) -> None:
        """Stop without draining: pending/running jobs stay open —
        exactly what a crash leaves behind for the journal to replay.
        ``crash=True`` additionally keeps the store lease and in-flight
        claims on disk (a dead replica releases nothing), forcing peers
        through stale-lease takeover and orphaned-claim reclaim."""
        assert self._loop is not None and self._server is not None
        server = self._server
        self._loop.call_soon_threadsafe(
            lambda: asyncio.ensure_future(server.stop(crash=crash))
        )
        self._thread.join(30)

    def graceful_stop(self, client: ServiceClient) -> None:
        try:
            client.shutdown()
        except ServiceError:
            self.hard_stop()
            return
        self._thread.join(30)


# -- fault injection -----------------------------------------------------


def _tamper_entry(path: Path) -> None:
    """Flip the stored payload under an intact envelope: the JSON still
    parses, only the checksum can catch it."""
    envelope = json.loads(path.read_text())
    payload = envelope.get("payload") or {}
    payload["result"] = {"tampered": True, "was": payload.get("result")}
    envelope["payload"] = payload
    # Deliberately NOT recomputing the checksum.
    path.write_text(json.dumps(envelope))


def _truncate_entry(path: Path) -> None:
    """A torn write / lost power artifact: a visible zero-byte entry."""
    path.write_text("")


def _corrupt_store_entries(
    store_dir: Path, spare: set[str], rng: random.Random
) -> list[str]:
    """Corrupt up to two entries (one truncation, one payload tamper),
    never touching fingerprints in ``spare``.  Returns the corrupted
    fingerprints."""
    candidates = sorted(
        path.stem
        for path in store_dir.glob("*.json")
        if path.name != "index.json" and path.stem not in spare
    )
    rng.shuffle(candidates)
    corrupted = []
    modes = [_truncate_entry, _tamper_entry]
    for fingerprint, mode in zip(candidates, modes):
        mode(store_dir / f"{fingerprint}.json")
        corrupted.append(fingerprint)
    return corrupted


def _tear_journal(journal_dir: Path, fabricated: "dict | None") -> int:
    """Append crash artifacts to the active journal segment: optionally a
    *valid* submitted record (simulating a crash in the window between
    ``store.put`` and the ``finished`` record) and always a torn,
    half-written record.  Returns the torn-record count (1)."""
    segments = sorted(journal_dir.glob("segment-*.jsonl"))
    if not segments:
        return 0
    active = segments[-1]
    with open(active, "a", encoding="utf-8") as handle:
        if fabricated is not None:
            handle.write(json.dumps(fabricated) + "\n")
        handle.write('{"schema": 1, "event": "finished", "id": "job-to')
    return 1


# -- the campaign --------------------------------------------------------


def run_chaos(config: ChaosConfig) -> ChaosReport:
    """Run one deterministic chaos campaign; see the module docstring."""
    rng = random.Random(config.seed)
    report = ChaosReport()

    if config.requests is not None:
        bodies_base = [dict(body) for body in config.requests]
    else:
        bodies_base = [
            _case_body(case, config.time_limit) for case in config.cases
        ]
    if not bodies_base:
        raise ServiceError("chaos campaign needs at least one request",
                           status=400, kind="bad-request")

    extra = _variant(bodies_base[0], _VARIANT_EXTRA)
    degraded_body = _slow_body(bodies_base[0])
    wave1 = bodies_base + [extra]
    wave2 = [_variant(body, _VARIANT_WAVE2) for body in bodies_base]

    def _baseline_solve(body: dict) -> str:
        outcome = run_job({
            "assay": body["assay"], "spec": body.get("spec"),
            "method": "hls", "deterministic": True,
        })
        if not outcome or outcome[0] != "ok":
            raise ServiceError(
                f"baseline solve failed: {outcome!r}", status=500
            )
        return _result_bytes(outcome[1])

    # Fault-free ground truth: one in-process solve per solve class
    # (improvement-threshold variants share their base body's result by
    # construction; the slow-solve body shifts the layering threshold
    # and so carries its own truth).
    baseline: dict[str, str] = {}
    for index, body in enumerate(bodies_base):
        truth = _baseline_solve(body)
        variants = [body, wave2[index]]
        if index == 0:
            variants.append(extra)
        for variant in variants:
            baseline[_body_key(variant)] = truth
    baseline[_body_key(degraded_body)] = _baseline_solve(degraded_body)

    workdir = Path(tempfile.mkdtemp(
        prefix="repro-chaos-", dir=config.workdir
    ))
    report.workdir = str(workdir)
    store_dir = workdir / "store"
    journal_dir = store_dir / "journal"
    server_config = ServerConfig(
        port=0,
        workers=config.workers,
        store_dir=str(store_dir),
        job_timeout=max(config.deadline, 120.0),
        allow_debug=True,
    )

    def _wait(client: ServiceClient, job_id: str, label: str):
        """Wait out one job; a lost (never-terminal) job is recorded,
        not raised — the campaign must always reach its verdict."""
        try:
            return client.wait(job_id, deadline=config.deadline)
        except ServiceError as exc:
            report.lost += 1
            report.notes.append(f"{label} job {job_id} never finished: {exc}")
            return None

    # ---- phase A: live traffic -----------------------------------------
    harness_a = _ServerHarness(server_config)
    harness_a.start()
    client_a = ServiceClient(
        port=harness_a.port, timeout=60.0,
        retry=RetryPolicy(seed=config.seed),
    )

    fingerprints: dict[str, str] = {}
    submissions = list(wave1) + [
        bodies_base[i % len(bodies_base)] for i in range(config.jobs)
    ]
    handles = []
    for body in submissions:
        handle = client_a.submit(body["assay"], body.get("spec"))
        fingerprints[_body_key(body)] = handle.fingerprint
        handles.append(handle)
    for handle in handles:
        done = _wait(client_a, handle.id, "wave-1")
        if done is not None and done.status != "done":
            report.notes.append(
                f"wave-1 job {done.id} ended {done.status!r}: {done.error!r}"
            )

    # ---- phase A': worker-kill (after wave 1 — a dying worker fails
    # every job in flight on its pool, which is the point, but the
    # campaign wants exactly one structured casualty) -------------------
    if config.kill_worker:
        report.worker_crashes_expected = 1
        crash = client_a.submit({"format": 1}, method="debug-crash")
        crash = _wait(client_a, crash.id, "worker-kill")
        if crash is None:
            pass
        elif crash.status == "failed" and (
            (crash.error or {}).get("kind") == "worker-crashed"
        ):
            report.worker_crashes = 1
        else:
            report.notes.append(
                f"worker-kill fault produced {crash.status!r} "
                f"({crash.error!r}), expected a worker-crashed failure"
            )

    # ---- phase A'': slow-solve → degraded result (idle server, so the
    # job dispatches within milliseconds and times out mid-solve) -------
    if config.slow_solve:
        report.degraded_expected = 1
        handle = client_a.submit(
            degraded_body["assay"], degraded_body.get("spec"),
            timeout=config.slow_timeout,
        )
        fingerprints[_body_key(degraded_body)] = handle.fingerprint
        done = _wait(client_a, handle.id, "slow-solve")
        if done is None:
            pass
        elif done.status == "done":
            payload = client_a.result(done.id)
            if payload.get("degraded") is True:
                report.degraded_observed += 1
            else:
                report.notes.append(
                    "slow-solve job finished without a degraded flag"
                )
        else:
            report.notes.append(
                f"slow-solve job ended {done.status!r}: {done.error!r}"
            )

    # ---- phase B: crash with jobs in flight ----------------------------
    for body in wave2:
        handle = client_a.submit(body["assay"], body.get("spec"))
        fingerprints[_body_key(body)] = handle.fingerprint
    harness_a.hard_stop()

    # ---- phase C: corrupt disk state -----------------------------------
    spare_fingerprint = fingerprints[_body_key(bodies_base[0])]
    if config.torn_journal:
        # A valid record for an already-stored fingerprint simulates a
        # crash between store.put and the finished record: replay must
        # complete it immediately from the store.
        fabricated = {
            "schema": 1, "ts": 0.0, "event": "submitted",
            "id": "job-fabricated", "fingerprint": spare_fingerprint,
            "request": {
                "assay": bodies_base[0]["assay"],
                "spec": bodies_base[0].get("spec"),
                "method": "hls", "deterministic": True,
            },
            "priority": 0, "timeout": None,
        }
        report.torn_records = _tear_journal(journal_dir, fabricated)

    # The replay expectation is read off the journal itself: wave-2 jobs
    # that were still open at the crash (a warm layer-solve cache can
    # finish one before the stop lands) plus the fabricated record.
    report.replayed_expected = _open_jobs_in_journal(journal_dir)

    if config.corrupt_store:
        corrupted = _corrupt_store_entries(
            store_dir, spare={spare_fingerprint}, rng=rng
        )
        report.corruptions_injected = len(corrupted)

    # ---- phase D: restart, replay, verify ------------------------------
    harness_b = _ServerHarness(server_config)
    harness_b.start()
    client_b = ServiceClient(
        port=harness_b.port, timeout=60.0,
        retry=RetryPolicy(seed=config.seed + 1),
    )

    expected = list(wave1) + [degraded_body] + wave2
    report.submitted = len(expected)
    for body in expected:
        key = _body_key(body)
        try:
            handle = client_b.submit(body["assay"], body.get("spec"))
        except ServiceError as exc:
            report.lost += 1
            report.notes.append(f"verification submit failed: {exc}")
            continue
        done = _wait(client_b, handle.id, "verification")
        if done is None:
            continue
        if done.status != "done":
            report.lost += 1
            report.notes.append(
                f"verification job for {key[:48]}… ended "
                f"{done.status!r}: {done.error!r}"
            )
            continue
        payload = client_b.result(done.id)
        if payload.get("degraded"):
            # Degraded results are flagged, never byte-compared.
            report.degraded_observed += 1
            report.verified += 1
            continue
        if _result_bytes(payload) == baseline[key]:
            report.verified += 1
        else:
            report.mismatched += 1
            report.notes.append(f"result mismatch for {key[:48]}…")

    metrics = client_b.metrics()
    counters = metrics.get("counters", {})
    store_block = metrics.get("store", {})
    journal_block = metrics.get("journal", {})
    report.replayed = int(counters.get("journal_replayed", 0))
    report.corruptions = int(store_block.get("corruptions", 0))
    report.quarantined = int(store_block.get("quarantined", 0))
    report.torn_records = max(
        report.torn_records, int(journal_block.get("torn_records", 0))
    )
    harness_b.graceful_stop(client_b)

    return report


# -- fleet scenario ------------------------------------------------------

#: distinct-fingerprint variants for the fleet phases (same inert knob).
_VARIANT_COALESCE = 0.011
_VARIANT_FLEET_WAVE2 = 0.013
_VARIANT_PARTITION = 0.017


@dataclass
class FleetChaosConfig:
    """One deterministic multi-replica chaos campaign."""

    seed: int = 0
    #: paper benchmark cases (ignored when ``requests`` is given).
    cases: tuple[int, ...] = (1,)
    #: explicit submission bodies (tests use tiny fixture assays).
    requests: "list[dict] | None" = None
    workdir: str | None = None
    workers: int = 1
    time_limit: float = 30.0
    deadline: float = 600.0
    # -- fleet protocol tuning (small values keep the campaign fast) ----
    lease_ttl: float = 2.0
    heartbeat_interval: float = 0.2
    claim_ttl: float = 3.0
    peer_poll_interval: float = 0.1
    #: run the partition/fencing phase (suspend the holder's heartbeats,
    #: let a peer take over, resume → the old holder must self-fence).
    partition: bool = True
    #: journal-segment size + compaction pressure for the bounded-bytes
    #: check (tiny values make compaction fire during the campaign).
    journal_segment_records: int = 4
    compact_interval: float = 0.2
    #: closed journal bytes the campaign tolerates at the end (the
    #: compactor must keep the footprint bounded under sustained load).
    journal_bytes_bound: int = 65536


@dataclass
class FleetChaosReport:
    """Multi-replica campaign outcome; ``ok`` is the CI verdict."""

    workdir: str = ""
    replicas: int = 2
    submitted: int = 0
    verified: int = 0
    lost: int = 0
    mismatched: int = 0
    #: fleet-wide solve count for the cross-replica-coalesced
    #: fingerprint (must be exactly 1 — exactly-once computation).
    coalesce_solves: int = -1
    #: submissions answered from a peer's in-flight solve or its shared
    #: store entry (informational).
    peer_served: int = 0
    #: stale-lease takeovers observed across the fleet.
    takeovers: int = 0
    #: store writes rejected on the fenced replica.
    fenced_writes: int = 0
    fenced_expected: int = 0
    replayed: int = 0
    replayed_expected: int = 0
    torn_records: int = 0
    corruptions: int = 0
    quarantined: int = 0
    #: threshold-triggered background compaction runs across the fleet.
    compaction_runs: int = 0
    #: closed journal bytes across all replica journals at the end.
    journal_bytes: int = 0
    journal_bytes_bound: int = 65536
    #: final fencing epoch of the surviving holder.
    epoch_final: int = 0
    notes: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (
            self.lost == 0
            and self.mismatched == 0
            and self.verified == self.submitted
            and self.coalesce_solves == 1
            and self.takeovers >= 1
            and self.fenced_writes >= self.fenced_expected
            and self.replayed == self.replayed_expected
            and self.corruptions == 0
            and self.quarantined == 0
            and self.compaction_runs >= 1
            and self.journal_bytes <= self.journal_bytes_bound
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "workdir": self.workdir,
            "replicas": self.replicas,
            "submitted": self.submitted,
            "verified": self.verified,
            "lost": self.lost,
            "mismatched": self.mismatched,
            "coalesce_solves": self.coalesce_solves,
            "peer_served": self.peer_served,
            "takeovers": self.takeovers,
            "fenced_writes": self.fenced_writes,
            "fenced_expected": self.fenced_expected,
            "replayed": self.replayed,
            "replayed_expected": self.replayed_expected,
            "torn_records": self.torn_records,
            "corruptions": self.corruptions,
            "quarantined": self.quarantined,
            "compaction_runs": self.compaction_runs,
            "journal_bytes": self.journal_bytes,
            "journal_bytes_bound": self.journal_bytes_bound,
            "epoch_final": self.epoch_final,
            "notes": self.notes,
        }


def format_fleet_chaos(report: FleetChaosReport) -> str:
    lines = [
        f"verdict        : {'OK' if report.ok else 'FAILED'}",
        f"jobs           : {report.submitted} unique requests, "
        f"{report.verified} verified, {report.lost} lost, "
        f"{report.mismatched} mismatched",
        f"coalescing     : {report.coalesce_solves} solve(s) for the "
        f"shared fingerprint (expected exactly 1), "
        f"{report.peer_served} peer-served submission(s)",
        f"lease          : {report.takeovers} takeover(s), final epoch "
        f"{report.epoch_final}, {report.fenced_writes} fenced write(s) "
        f"(expected >= {report.fenced_expected})",
        f"journal        : {report.replayed} replayed "
        f"(expected {report.replayed_expected}), "
        f"{report.torn_records} torn record(s), "
        f"{report.compaction_runs} compaction run(s), "
        f"{report.journal_bytes} closed byte(s) "
        f"(bound {report.journal_bytes_bound})",
        f"store          : {report.corruptions} corruption(s), "
        f"{report.quarantined} quarantined (both must be 0)",
        f"workdir        : {report.workdir}",
    ]
    lines.extend(f"note           : {note}" for note in report.notes)
    return "\n".join(lines)


def _poll(predicate, timeout: float, interval: float = 0.05) -> bool:
    """Spin until ``predicate()`` or ``timeout`` seconds elapse."""
    import time as _time

    end = _time.monotonic() + timeout
    while _time.monotonic() < end:
        if predicate():
            return True
        _time.sleep(interval)
    return bool(predicate())


def run_fleet_chaos(config: FleetChaosConfig) -> FleetChaosReport:
    """Run one deterministic multi-replica chaos campaign.

    Phases: (1) two replicas over one store, wave-1 traffic on the
    holder; (2) cross-replica coalescing — the same fingerprint
    submitted to both replicas must compute exactly once fleet-wide;
    (3) kill the lease holder with jobs in flight — the follower must
    take over the lease, reclaim the orphaned in-flight claims, and
    finish everything; a restart of the dead replica must replay its
    journal losslessly over crash artifacts (torn tail, stale tmp);
    (4) partition the new holder — a peer takes over, the resumed
    holder must fence itself and degrade to read-only store access
    while still serving its own results; (5) resubmit everything and
    byte-compare against fault-free single-process baselines.
    """
    report = FleetChaosReport(
        journal_bytes_bound=config.journal_bytes_bound
    )

    if config.requests is not None:
        bodies_base = [dict(body) for body in config.requests]
    else:
        bodies_base = [
            _case_body(case, config.time_limit) for case in config.cases
        ]
    if not bodies_base:
        raise ServiceError("fleet chaos needs at least one request",
                           status=400, kind="bad-request")

    coalesce_body = _variant(bodies_base[0], _VARIANT_COALESCE)
    wave2 = [_variant(body, _VARIANT_FLEET_WAVE2) for body in bodies_base]
    partition_body = _variant(bodies_base[0], _VARIANT_PARTITION)

    def _baseline_solve(body: dict) -> str:
        outcome = run_job({
            "assay": body["assay"], "spec": body.get("spec"),
            "method": "hls", "deterministic": True,
        })
        if not outcome or outcome[0] != "ok":
            raise ServiceError(
                f"baseline solve failed: {outcome!r}", status=500
            )
        return _result_bytes(outcome[1])

    # One fault-free single-process baseline per solve class: the
    # improvement-threshold variants provably share their base body's
    # result (max_iterations=0), so each base solve verifies its whole
    # variant family byte-for-byte.
    baseline: dict[str, str] = {}
    for index, body in enumerate(bodies_base):
        truth = _baseline_solve(body)
        variants = [body, wave2[index]]
        if index == 0:
            variants.extend([coalesce_body, partition_body])
        for variant in variants:
            baseline[_body_key(variant)] = truth

    workdir = Path(tempfile.mkdtemp(
        prefix="repro-fleet-chaos-", dir=config.workdir
    ))
    report.workdir = str(workdir)
    store_dir = workdir / "store"

    def _replica_config(replica_id: str) -> ServerConfig:
        return ServerConfig(
            port=0,
            workers=config.workers,
            store_dir=str(store_dir),
            job_timeout=max(config.deadline, 120.0),
            replica_id=replica_id,
            fleet=True,
            lease_ttl=config.lease_ttl,
            heartbeat_interval=config.heartbeat_interval,
            claim_ttl=config.claim_ttl,
            peer_poll_interval=config.peer_poll_interval,
            journal_segment_records=config.journal_segment_records,
            compact_interval=config.compact_interval,
            compact_min_bytes=1,
            compact_min_age=3600.0,
        )

    def _client(harness: _ServerHarness, salt: int) -> ServiceClient:
        return ServiceClient(
            port=harness.port, timeout=60.0,
            retry=RetryPolicy(seed=config.seed + salt),
        )

    def _wait(client: ServiceClient, job_id: str, label: str):
        try:
            done = client.wait(job_id, deadline=config.deadline)
        except ServiceError as exc:
            report.lost += 1
            report.notes.append(
                f"{label} job {job_id} never finished: {exc}"
            )
            return None
        if done.status != "done":
            report.lost += 1
            report.notes.append(
                f"{label} job {done.id} ended {done.status!r}: "
                f"{done.error!r}"
            )
            return None
        return done

    def _solve_count(client: ServiceClient) -> int:
        counters = client.metrics().get("counters", {})
        return int(counters.get("solve_jobs", 0))

    # ---- phase 1: two replicas over one store --------------------------
    harness_1 = _ServerHarness(_replica_config("r1"))
    harness_1.start()
    client_1 = _client(harness_1, 0)
    if not _poll(lambda: harness_1.server.fleet.lease.held, 10.0):
        report.notes.append("replica r1 never acquired the lease")
    harness_2 = _ServerHarness(_replica_config("r2"))
    harness_2.start()
    client_2 = _client(harness_2, 1)

    for body in bodies_base:
        handle = client_1.submit(body["assay"], body.get("spec"))
        _wait(client_1, handle.id, "wave-1")

    # ---- phase 2: cross-replica coalescing -----------------------------
    solves_before = _solve_count(client_1) + _solve_count(client_2)
    handle_a = client_1.submit(
        coalesce_body["assay"], coalesce_body.get("spec")
    )
    # Submit the identical fingerprint to the peer immediately: r1 holds
    # the in-flight claim, so r2 must await r1's shared result instead
    # of recomputing (or, if r1 already finished, serve its store entry).
    handle_b = client_2.submit(
        coalesce_body["assay"], coalesce_body.get("spec")
    )
    done_a = _wait(client_1, handle_a.id, "coalesce-r1")
    done_b = _wait(client_2, handle_b.id, "coalesce-r2")
    if done_b is not None and done_b.source in ("peer", "store"):
        report.peer_served += 1
    report.coalesce_solves = (
        _solve_count(client_1) + _solve_count(client_2) - solves_before
    )
    if done_a is not None and done_b is not None:
        payload_a = client_1.result(done_a.id)
        payload_b = client_2.result(done_b.id)
        if _result_bytes(payload_a) != _result_bytes(payload_b):
            report.mismatched += 1
            report.notes.append(
                "coalesced fingerprint returned different bytes on the "
                "two replicas"
            )

    # ---- phase 3: kill the lease holder with jobs in flight ------------
    for body in wave2:
        client_1.submit(body["assay"], body.get("spec"))
    harness_1.hard_stop(crash=True)
    journal_1 = store_dir / "journal-r1"
    report.replayed_expected = _open_jobs_in_journal(journal_1)

    # The follower must notice the stale lease and take over.
    if not _poll(
        lambda: harness_2.server.fleet.lease.held,
        timeout=max(10.0, config.lease_ttl * 10),
    ):
        report.notes.append("replica r2 never took over the lease")
    report.takeovers = harness_2.server.fleet.lease.takeovers

    # Resubmit the in-flight wave to the survivor: the dead replica's
    # claims must go stale and be reclaimed, never waited on forever.
    for body in wave2:
        handle = client_2.submit(body["assay"], body.get("spec"))
        done = _wait(client_2, handle.id, "takeover")
        if done is None:
            continue
        payload = client_2.result(done.id)
        if _result_bytes(payload) != baseline[_body_key(body)]:
            report.mismatched += 1
            report.notes.append("takeover result mismatch")

    # Crash artifacts: a torn journal tail + a stale index tmp; the
    # restarted replica must replay losslessly over both.
    report.torn_records = _tear_journal(journal_1, None)
    (store_dir / "index.json.tmp").write_text("{\"torn\": tr")

    harness_1b = _ServerHarness(_replica_config("r1"))
    harness_1b.start()
    client_1b = _client(harness_1b, 2)
    replay_counters = client_1b.metrics().get("counters", {})
    report.replayed = int(replay_counters.get("journal_replayed", 0))
    # Replayed jobs resolve from the shared store (r2 already finished
    # them); wait until none are open so the verdict is race-free.
    _poll(
        lambda: all(
            handle.finished for handle in client_1b.jobs()
        ),
        timeout=config.deadline,
    )

    # ---- phase 4: partition the holder → fencing -----------------------
    if config.partition:
        report.fenced_expected = 1
        holder = harness_2.server
        survivor = harness_1b.server
        holder.fleet.lease.suspend()
        if not _poll(
            lambda: survivor.fleet.lease.held,
            timeout=max(10.0, config.lease_ttl * 10),
        ):
            report.notes.append(
                "replica r1 never took the lease from the partitioned "
                "holder"
            )
        report.takeovers += survivor.fleet.lease.takeovers
        holder.fleet.lease.resume()
        if not _poll(
            lambda: holder.fleet.lease.fenced,
            timeout=max(10.0, config.lease_ttl * 10),
        ):
            report.notes.append(
                "partitioned replica never fenced itself after resume"
            )
        # The fenced replica must still answer fresh work — from its
        # process-local overflow, without writing shared files.
        handle = client_2.submit(
            partition_body["assay"], partition_body.get("spec")
        )
        done = _wait(client_2, handle.id, "fenced")
        if done is not None:
            payload = client_2.result(done.id)
            if _result_bytes(payload) != baseline[_body_key(partition_body)]:
                report.mismatched += 1
                report.notes.append("fenced-replica result mismatch")
        store_block = client_2.metrics().get("store", {})
        report.fenced_writes = int(store_block.get("rejected_writes", 0))
        report.epoch_final = survivor.fleet.lease.epoch
    else:
        report.epoch_final = harness_2.server.fleet.lease.epoch

    # ---- phase 5: full verification on the surviving holder ------------
    expected = list(bodies_base) + [coalesce_body] + list(wave2)
    if config.partition:
        expected.append(partition_body)
    report.submitted = len(expected)
    verify_client = client_1b if config.partition else client_2
    for body in expected:
        key = _body_key(body)
        try:
            handle = verify_client.submit(body["assay"], body.get("spec"))
        except ServiceError as exc:
            report.lost += 1
            report.notes.append(f"verification submit failed: {exc}")
            continue
        done = _wait(verify_client, handle.id, "verification")
        if done is None:
            continue
        payload = verify_client.result(done.id)
        if _result_bytes(payload) == baseline[key]:
            report.verified += 1
        else:
            report.mismatched += 1
            report.notes.append(f"result mismatch for {key[:48]}…")

    # Compaction quiesce: with ``compact_min_bytes=1`` any rotation arms
    # the compactor, so wait until every closed segment has been drained
    # before reading the journal verdict — otherwise the bounded-bytes
    # and runs>=1 checks race the maintenance tick.
    # (A replica whose closed segments all vanished can only have got
    # there through the compactor, so ``not pending`` also implies the
    # runs>=1 verdict input on any replica that rotated.)
    for harness in (harness_1b, harness_2):
        server = harness.server
        if not _poll(
            lambda s=server: not s.journal.pending_compaction(),
            timeout=30.0,
        ):
            report.notes.append(
                f"replica {server.replica_id} compactor never quiesced"
            )

    # ---- verdict inputs across the fleet -------------------------------
    for client in (client_1b, client_2):
        try:
            metrics = client.metrics()
        except ServiceError:
            continue
        store_block = metrics.get("store", {})
        journal_block = metrics.get("journal", {})
        counters = metrics.get("counters", {})
        report.corruptions += int(store_block.get("corruptions", 0))
        report.quarantined += int(store_block.get("quarantined", 0))
        report.compaction_runs += int(
            journal_block.get("compaction_runs", 0)
        )
        report.journal_bytes += int(journal_block.get("closed_bytes", 0))
        report.peer_served += int(counters.get("peer_coalesce_hits", 0))
        report.torn_records = max(
            report.torn_records, int(journal_block.get("torn_records", 0))
        )

    quarantine_dir = store_dir / "quarantine"
    if quarantine_dir.is_dir() and any(quarantine_dir.glob("*.json")):
        report.quarantined = max(report.quarantined, 1)
        report.notes.append("quarantine directory is not empty")

    harness_2.graceful_stop(client_2)
    harness_1b.graceful_stop(client_1b)
    return report


__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "FleetChaosConfig",
    "FleetChaosReport",
    "format_chaos",
    "format_fleet_chaos",
    "run_chaos",
    "run_fleet_chaos",
]
