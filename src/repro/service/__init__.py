"""Synthesis-as-a-service: async job server, persistent result store.

Turns the one-shot CLI flow into a long-lived local service: jobs
(assay + spec) arrive over a stdlib HTTP/JSON API, run on a bounded
process pool, and land in a persistent store keyed by the canonical
whole-run fingerprint (:func:`repro.hls.cache.fingerprint_run`) — so a
repeated submission is answered from disk without re-entering the
synthesis pipeline, and concurrent identical submissions coalesce onto
one solve.

Fault tolerance (this layer's robustness contract):

* :mod:`~repro.service.journal` — durable write-ahead log of job
  lifecycle transitions; a restarted server replays it and finishes
  every job that was pending or running at the crash.
* :mod:`~repro.service.store` — per-entry SHA-256 checksums; corrupted
  or truncated entries are quarantined and re-solved, never crash a
  read.
* :mod:`~repro.service.client` — bounded retries with full-jitter
  backoff, a per-client circuit breaker, and fingerprint-idempotent
  resubmission across server restarts.
* graceful degradation — an ILP job that exceeds its wall-clock budget
  is re-run once on the greedy scheduler and returned flagged
  ``degraded`` (opt out per submission with ``degrade: false``).
* :mod:`~repro.service.chaos` — deterministic fault-injection campaigns
  (worker kills, slow solves, store corruption, journal-tearing
  crashes) against a real in-process server, with a byte-identity
  verdict against fault-free solves; the ``fleet`` scenario runs the
  same campaign across multiple replicas sharing one store.
* :mod:`~repro.service.lease` — crash-safe lease/fencing protocol that
  lets several replicas share one store directory: a single epoch-fenced
  index writer, stale-lease takeover, and a shared in-flight claim table
  for cross-replica request coalescing.

Pieces: :mod:`~repro.service.store` (atomic, versioned, LRU-bounded
result store), :mod:`~repro.service.queue` (priority queue, coalescing,
429 backpressure), :mod:`~repro.service.server` /
:mod:`~repro.service.client` (endpoints + typed client),
:mod:`~repro.service.metrics` (counters and latency histograms at
``/metrics``), :mod:`~repro.service.worker` (process-pool entry with
cross-process layer-solve-cache warm starts).  CLI verbs: ``serve``,
``submit``, ``jobs``, ``chaos``; ``table2``/``table3`` accept
``--via-server``.
"""

from .chaos import (
    ChaosConfig,
    ChaosReport,
    FleetChaosConfig,
    FleetChaosReport,
    format_chaos,
    format_fleet_chaos,
    run_chaos,
    run_fleet_chaos,
)
from .client import (
    CircuitBreaker,
    FleetClient,
    HedgePolicy,
    JobHandle,
    RetryPolicy,
    ServiceClient,
)
from .journal import JOURNAL_SCHEMA, JobJournal
from .lease import (
    LEASE_SCHEMA,
    FileLock,
    FleetCoordinator,
    InflightTable,
    StoreLease,
)
from .metrics import ServiceMetrics
from .queue import Job, JobQueue, JobStatus
from .server import ServerConfig, SynthesisServer, run_server
from .store import STORE_SCHEMA, ResultStore, payload_checksum
from .worker import run_job

__all__ = [
    "ChaosConfig",
    "ChaosReport",
    "CircuitBreaker",
    "FileLock",
    "FleetChaosConfig",
    "FleetChaosReport",
    "FleetClient",
    "FleetCoordinator",
    "HedgePolicy",
    "InflightTable",
    "Job",
    "JobHandle",
    "JobJournal",
    "JobQueue",
    "JobStatus",
    "JOURNAL_SCHEMA",
    "LEASE_SCHEMA",
    "ResultStore",
    "RetryPolicy",
    "STORE_SCHEMA",
    "ServerConfig",
    "ServiceClient",
    "ServiceMetrics",
    "StoreLease",
    "SynthesisServer",
    "format_chaos",
    "format_fleet_chaos",
    "payload_checksum",
    "run_chaos",
    "run_fleet_chaos",
    "run_server",
    "run_job",
]
