"""Synthesis-as-a-service: async job server, persistent result store.

Turns the one-shot CLI flow into a long-lived local service: jobs
(assay + spec) arrive over a stdlib HTTP/JSON API, run on a bounded
process pool, and land in a persistent store keyed by the canonical
whole-run fingerprint (:func:`repro.hls.cache.fingerprint_run`) — so a
repeated submission is answered from disk without re-entering the
synthesis pipeline, and concurrent identical submissions coalesce onto
one solve.

Pieces: :mod:`~repro.service.store` (atomic, versioned, LRU-bounded
result store), :mod:`~repro.service.queue` (priority queue, coalescing,
429 backpressure), :mod:`~repro.service.server` /
:mod:`~repro.service.client` (endpoints + typed client),
:mod:`~repro.service.metrics` (counters and latency histograms at
``/metrics``), :mod:`~repro.service.worker` (process-pool entry with
cross-process layer-solve-cache warm starts).  CLI verbs: ``serve``,
``submit``, ``jobs``; ``table2``/``table3`` accept ``--via-server``.
"""

from .client import JobHandle, ServiceClient
from .metrics import ServiceMetrics
from .queue import Job, JobQueue, JobStatus
from .server import ServerConfig, SynthesisServer, run_server
from .store import STORE_SCHEMA, ResultStore
from .worker import run_job

__all__ = [
    "Job",
    "JobHandle",
    "JobQueue",
    "JobStatus",
    "ResultStore",
    "STORE_SCHEMA",
    "ServerConfig",
    "ServiceClient",
    "ServiceMetrics",
    "SynthesisServer",
    "run_server",
    "run_job",
]
