"""Crash-safe lease/fencing protocol for multi-replica store sharing.

N synthesis servers may point at one checksummed
:class:`~repro.service.store.ResultStore` directory.  Entry files are
content-addressed (fingerprint-keyed, checksummed, written via
``tmp + fsync + os.replace``), so concurrent writers of the *same*
fingerprint are harmless — the only real mutual-exclusion hazard is
``index.json`` (LRU recency + eviction decisions).  This module provides
the fleet's coordination primitives:

* :class:`FileLock` — an advisory cross-process lock file
  (``O_CREAT | O_EXCL``) with stale-lock breaking, guarding the short
  read-modify-write critical sections below.  Lock *files* are broken
  after ``stale_after`` seconds so a crashed holder never wedges the
  fleet.
* :class:`StoreLease` — a single-writer lease over the store directory.
  The lease record (``lease.json``) carries the owner, a monotonically
  increasing **epoch** (the fencing token), and a heartbeat timestamp.
  A replica whose heartbeats go stale for longer than ``ttl`` loses the
  lease: any peer may take over, bumping the epoch.  Every index write
  must present the current epoch; a replica holding a superseded epoch
  *fences itself* and degrades to read-only store access instead of
  corrupting shared state.  Epochs never decrease, even across release /
  re-acquire cycles, so a resurrected stale writer can always be told
  apart from the live one.
* :class:`InflightTable` — a small shared sidecar file
  (``inflight.json``, guarded by the same advisory-lock discipline)
  mapping fingerprints to the replica currently computing them.  Before
  enqueueing, a replica claims the fingerprint; a claim already held by
  a live peer means the job is awaited (polling the shared store)
  rather than recomputed.  Claims carry heartbeats too: a claim whose
  owner died is reclaimed after ``ttl`` seconds, so an orphaned
  in-flight job never blocks the fleet.
* :class:`FleetCoordinator` — the per-server glue: one lease + one
  in-flight table + the periodic maintenance step the server's
  heartbeat loop drives.

All timestamps use a wall clock (``time.time``) because they are
compared *across processes*; the clock is injectable for tests.
"""

from __future__ import annotations

import itertools
import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Iterable

from ..errors import ServiceError

#: Bump on any incompatible change to the lease / in-flight layouts.
LEASE_SCHEMA = 1

_LEASE_NAME = "lease.json"
_LEASE_LOCK = "lease.lock"
_INFLIGHT_NAME = "inflight.json"
_INFLIGHT_LOCK = "inflight.lock"

#: process-unique suffix source for lock tokens + stale-break renames.
_LOCK_IDS = itertools.count(1)


def _fsync_dir(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _atomic_write_json(path: Path, data: dict) -> None:
    """Durably replace ``path`` with ``data`` (tmp + fsync + replace)."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(data))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)


def _read_json(path: Path) -> "dict | None":
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    return data if isinstance(data, dict) else None


class FileLock:
    """Advisory cross-process lock: an ``O_EXCL``-created lock file.

    The critical sections it guards are millisecond-long read-modify-
    writes, so ``stale_after`` (seconds before a leftover lock file from
    a crashed holder is broken) can be far above any legitimate hold
    time while still unwedging the fleet quickly.
    """

    def __init__(
        self,
        path: "str | Path",
        timeout: float = 10.0,
        stale_after: float = 10.0,
        pause: float = 0.005,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = Path(path)
        self.timeout = timeout
        self.stale_after = stale_after
        self.pause = pause
        self._clock = clock
        #: this acquisition's identity, written into the lock file so
        #: release() never unlinks a lock it does not own.
        self._token: str | None = None
        #: stale lock files broken (crashed holder evidence).
        self.broken = 0

    def _new_token(self) -> str:
        return f"{os.getpid()}-{next(_LOCK_IDS)} {self._clock():.6f}"

    def acquire(self) -> None:
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                self._break_if_stale()
                if time.monotonic() >= deadline:
                    raise ServiceError(
                        f"could not acquire {self.path.name} within "
                        f"{self.timeout:g}s",
                        status=503, kind="lock-timeout",
                    )
                time.sleep(self.pause)
                continue
            self._token = self._new_token()
            try:
                os.write(fd, self._token.encode())
            finally:
                os.close(fd)
            return

    def release(self) -> None:
        token, self._token = self._token, None
        try:
            # Unlink only our own lock file: if a peer judged us stale
            # and broke the lock (we held past ``stale_after``), the file
            # at ``path`` now belongs to a new holder — leave it alone.
            if token is not None and self.path.read_text() != token:
                return
            self.path.unlink(missing_ok=True)
        except OSError:
            pass

    def _break_if_stale(self) -> None:
        """Break a lock file whose holder stopped making progress.

        Breaking is rename-then-verify: the file is atomically renamed
        to a breaker-unique name, the staleness decision is re-checked
        on the renamed file (rename preserves mtime), and only then is
        it unlinked.  Two waiters can both judge the same file stale,
        but ``os.rename`` lets exactly one of them move it; the loser's
        rename fails with ENOENT instead of unlinking a fresh lock a
        racing acquirer created in the meantime.  If the verify step
        finds a *fresh* mtime (we moved a live holder's lock created
        after our stat), the file is linked straight back.
        """
        try:
            age = self._clock() - self.path.stat().st_mtime
        except OSError:
            return  # already gone
        if age <= self.stale_after:
            return
        doomed = self.path.with_name(
            f"{self.path.name}.break-{os.getpid()}-{next(_LOCK_IDS)}"
        )
        try:
            os.rename(self.path, doomed)
        except OSError:
            return  # another waiter broke it first
        try:
            moved_age = self._clock() - doomed.stat().st_mtime
        except OSError:
            return
        if moved_age > self.stale_after:
            try:
                doomed.unlink()
            except OSError:
                pass
            self.broken += 1
            return
        # Our staleness decision predates a racing break + re-acquire:
        # the file we moved is a live holder's fresh lock.  Restore it
        # via ``os.link`` (which, unlike rename, never clobbers a lock
        # an even-faster acquirer created at ``path`` meanwhile).
        try:
            os.link(doomed, self.path)
        except OSError:
            pass
        try:
            doomed.unlink()
        except OSError:
            pass

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class StoreLease:
    """Single-writer lease with epoch fencing over a store directory.

    States:

    * ``held`` — this replica owns the lease (its epoch is current); it
      may write ``index.json`` and evict entries.
    * ``follower`` — a live peer owns the lease; this replica reads the
      shared store, writes only content-addressed entry files, and keeps
      trying to acquire (it takes over the moment the holder's
      heartbeats go stale).
    * ``fenced`` — this replica *was* the holder but its epoch has been
      superseded (a peer took over after its heartbeats went stale, or a
      newer epoch appeared in ``index.json`` mid-write).  A fenced
      replica degrades to read-only store access for the rest of its
      life: it never writes shared files again, but keeps serving
      results from memory.
    """

    HELD = "held"
    FOLLOWER = "follower"
    FENCED = "fenced"

    def __init__(
        self,
        root: "str | Path",
        replica_id: str,
        ttl: float = 10.0,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if ttl <= 0:
            raise ServiceError("lease ttl must be > 0", status=400)
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.replica_id = replica_id
        self.ttl = ttl
        self._clock = clock
        self._lock = FileLock(
            self.root / _LEASE_LOCK, stale_after=ttl, clock=clock
        )
        #: this replica's fencing token while held (0 = never held).
        self.epoch = 0
        self._state = self.FOLLOWER
        #: acquisitions that displaced a different (stale) owner.
        self.takeovers = 0
        self.acquisitions = 0
        self.heartbeats = 0
        #: times this replica fenced itself (observed a newer epoch).
        self.fences = 0
        #: chaos hook: a "partitioned" replica cannot reach the shared
        #: directory — heartbeats and acquisitions silently stop landing.
        self._suspended = False

    # -- state ------------------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    @property
    def held(self) -> bool:
        return self._state == self.HELD

    @property
    def fenced(self) -> bool:
        return self._state == self.FENCED

    def may_write_entries(self) -> bool:
        """Content-addressed entry files may be written by any replica
        that has not been fenced (identical-content replaces are benign;
        a fenced replica must stop touching shared state entirely)."""
        return self._state != self.FENCED

    def may_write_index(self) -> bool:
        return self._state == self.HELD

    def fence(self) -> None:
        """Demote to read-only: our fencing token was superseded."""
        if self._state != self.FENCED:
            self._state = self.FENCED
            self.fences += 1

    # -- chaos hooks ------------------------------------------------------

    def suspend(self) -> None:
        """Simulate a network partition from the shared directory."""
        self._suspended = True

    def resume(self) -> None:
        self._suspended = False

    # -- protocol ---------------------------------------------------------

    def _path(self) -> Path:
        return self.root / _LEASE_NAME

    def _expired(self, record: dict, now: float) -> bool:
        beat = float(record.get("heartbeat_at") or 0.0)
        return now - beat > self.ttl

    def try_acquire(self) -> bool:
        """Acquire the lease if it is free, ours, or stale.

        Every takeover bumps the epoch, so a previous holder that comes
        back from the dead holds a provably superseded token.  A fenced
        replica stays fenced — it must restart (fresh process, follower
        state) to rejoin the fleet as a writer.
        """
        if self._suspended or self._state == self.FENCED:
            return self.held
        with self._lock:
            now = self._clock()
            record = _read_json(self._path())
            owner = record.get("owner") if record else None
            epoch = int(record.get("epoch", 0)) if record else 0
            if record is not None and owner == self.replica_id:
                if self.held and epoch == self.epoch:
                    # Still ours: refresh the heartbeat in passing.
                    record["heartbeat_at"] = now
                    _atomic_write_json(self._path(), record)
                    return True
                # Our id but not our epoch (a previous incarnation of
                # this replica): take over with a fresh token.
                owner = None if self._expired(record, now) else owner
            if record is None or not owner or self._expired(record, now):
                new_epoch = epoch + 1
                _atomic_write_json(self._path(), {
                    "schema": LEASE_SCHEMA,
                    "owner": self.replica_id,
                    "epoch": new_epoch,
                    "acquired_at": now,
                    "heartbeat_at": now,
                    "ttl": self.ttl,
                })
                if record is not None and owner not in (
                    None, "", self.replica_id
                ):
                    self.takeovers += 1
                self.epoch = new_epoch
                self._state = self.HELD
                self.acquisitions += 1
                return True
            return False

    def heartbeat(self) -> bool:
        """Refresh the heartbeat; returns False (and fences) when the
        on-disk lease no longer carries our owner+epoch."""
        if not self.held:
            return False
        if self._suspended:
            # Partitioned: the write never lands, but the replica still
            # *believes* it is the holder — exactly the stale writer the
            # fencing checks must catch later.
            return True
        with self._lock:
            record = _read_json(self._path())
            if (
                record is None
                or record.get("owner") != self.replica_id
                or int(record.get("epoch", -1)) != self.epoch
            ):
                self.fence()
                return False
            record["heartbeat_at"] = self._clock()
            _atomic_write_json(self._path(), record)
            self.heartbeats += 1
            return True

    def release(self) -> None:
        """Give the lease up cleanly (graceful shutdown): the record
        keeps its epoch (monotonicity) but drops the owner, so a peer
        acquires immediately instead of waiting out the ttl."""
        if not self.held or self._suspended:
            self._state = (
                self.FOLLOWER if self._state == self.HELD else self._state
            )
            return
        with self._lock:
            record = _read_json(self._path())
            if (
                record is not None
                and record.get("owner") == self.replica_id
                and int(record.get("epoch", -1)) == self.epoch
            ):
                _atomic_write_json(self._path(), {
                    "schema": LEASE_SCHEMA,
                    "owner": None,
                    "epoch": self.epoch,
                    "released_at": self._clock(),
                    "ttl": self.ttl,
                })
        self._state = self.FOLLOWER

    def lock(self) -> FileLock:
        """The advisory lock guarding lease + index read-modify-writes."""
        return self._lock

    def counters(self) -> dict[str, Any]:
        return {
            "state": self._state,
            "epoch": self.epoch,
            "ttl": self.ttl,
            "acquisitions": self.acquisitions,
            "takeovers": self.takeovers,
            "heartbeats": self.heartbeats,
            "fences": self.fences,
            "locks_broken": self._lock.broken,
        }


class InflightTable:
    """Shared fingerprint → computing-replica claims (coalescing sidecar).

    One small JSON file, every mutation a locked read-modify-write with
    an atomic replace — the same durability discipline as the lease.
    Claims carry heartbeats; :meth:`claim` reclaims entries whose owner
    stopped beating for longer than ``ttl`` (a crashed replica's orphan
    never blocks the fingerprint for good).
    """

    def __init__(
        self,
        root: "str | Path",
        replica_id: str,
        ttl: float = 30.0,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.replica_id = replica_id
        self.ttl = ttl
        self._clock = clock
        self._lock = FileLock(
            self.root / _INFLIGHT_LOCK, stale_after=max(ttl, 5.0),
            clock=clock,
        )
        self.claims = 0
        #: claim attempts refused because a live peer holds the entry.
        self.conflicts = 0
        #: stale (dead-replica) claims taken over.
        self.reclaims = 0
        self.releases = 0

    def _path(self) -> Path:
        return self.root / _INFLIGHT_NAME

    def _load(self) -> dict[str, dict]:
        data = _read_json(self._path())
        table = data.get("claims") if data else None
        return dict(table) if isinstance(table, dict) else {}

    def _store(self, table: dict[str, dict]) -> None:
        _atomic_write_json(
            self._path(), {"schema": LEASE_SCHEMA, "claims": table}
        )

    def _stale(self, entry: dict, now: float) -> bool:
        beat = float(entry.get("heartbeat_at") or 0.0)
        return now - beat > self.ttl

    def claim(self, fingerprint: str) -> "tuple[bool, dict | None]":
        """Try to claim ``fingerprint``; returns ``(granted, entry)``.

        Denied (``granted=False``) only when a *live* peer holds the
        claim — the returned entry names it.  Stale claims are taken
        over; re-claiming our own entry refreshes it.
        """
        with self._lock:
            now = self._clock()
            table = self._load()
            entry = table.get(fingerprint)
            if entry is not None:
                if (
                    entry.get("replica") != self.replica_id
                    and not self._stale(entry, now)
                ):
                    self.conflicts += 1
                    return False, dict(entry)
                if (
                    entry.get("replica") != self.replica_id
                    and self._stale(entry, now)
                ):
                    self.reclaims += 1
            table[fingerprint] = {
                "replica": self.replica_id,
                "claimed_at": now,
                "heartbeat_at": now,
            }
            self._store(table)
            self.claims += 1
            return True, dict(table[fingerprint])

    def peek(self, fingerprint: str) -> "dict | None":
        """The current claim for ``fingerprint`` (no lock, read only)."""
        entry = self._load().get(fingerprint)
        return dict(entry) if entry is not None else None

    def release(self, fingerprint: str) -> None:
        """Drop our claim (no-op when a peer re-claimed it meanwhile)."""
        with self._lock:
            table = self._load()
            entry = table.get(fingerprint)
            if entry is not None and entry.get("replica") == self.replica_id:
                del table[fingerprint]
                self._store(table)
                self.releases += 1

    def release_all(self) -> None:
        """Graceful shutdown: drop every claim this replica holds."""
        with self._lock:
            table = self._load()
            ours = [
                fp for fp, entry in table.items()
                if entry.get("replica") == self.replica_id
            ]
            for fp in ours:
                del table[fp]
            if ours:
                self._store(table)
                self.releases += len(ours)

    def beat(self, fingerprints: Iterable[str]) -> None:
        """Refresh the heartbeat on our live claims."""
        wanted = set(fingerprints)
        if not wanted:
            return
        with self._lock:
            now = self._clock()
            table = self._load()
            touched = False
            for fp in wanted:
                entry = table.get(fp)
                if entry is not None and entry.get("replica") == self.replica_id:
                    entry["heartbeat_at"] = now
                    touched = True
            if touched:
                self._store(table)

    def counters(self) -> dict[str, Any]:
        return {
            "claims": self.claims,
            "conflicts": self.conflicts,
            "reclaims": self.reclaims,
            "releases": self.releases,
            "entries": len(self._load()),
        }


class FleetCoordinator:
    """Per-server fleet glue: one lease + one in-flight table.

    The server calls :meth:`start` once, :meth:`maintain` from its
    heartbeat loop, :meth:`claim`/:meth:`release` around job dispatch,
    and :meth:`stop` on shutdown (``crash=True`` simulates a dead
    replica: nothing is released, so peers must exercise the stale-lease
    takeover and orphaned-claim reclaim paths).
    """

    def __init__(
        self,
        store_dir: "str | Path",
        replica_id: str,
        lease_ttl: float = 10.0,
        claim_ttl: float = 30.0,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.replica_id = replica_id
        self.lease = StoreLease(
            store_dir, replica_id, ttl=lease_ttl, clock=clock
        )
        self.inflight = InflightTable(
            store_dir, replica_id, ttl=claim_ttl, clock=clock
        )

    def start(self) -> bool:
        return self.lease.try_acquire()

    def maintain(self, running_fingerprints: Iterable[str] = ()) -> None:
        """One heartbeat tick: renew (or chase) the lease, refresh our
        in-flight claims."""
        if self.lease.held:
            self.lease.heartbeat()
        elif not self.lease.fenced:
            self.lease.try_acquire()
        self.inflight.beat(running_fingerprints)

    def claim(self, fingerprint: str) -> "tuple[bool, dict | None]":
        return self.inflight.claim(fingerprint)

    def release(self, fingerprint: str) -> None:
        self.inflight.release(fingerprint)

    def stop(self, crash: bool = False) -> None:
        if crash:
            return
        self.inflight.release_all()
        self.lease.release()

    def counters(self) -> dict[str, Any]:
        return {
            "replica_id": self.replica_id,
            "lease": self.lease.counters(),
            "inflight": self.inflight.counters(),
        }


__all__ = [
    "LEASE_SCHEMA",
    "FileLock",
    "FleetCoordinator",
    "InflightTable",
    "StoreLease",
]
