"""Worker-process entry point for service solves.

Mirrors the wire discipline of :mod:`repro.hls.parallel`: the parent
ships a small picklable request, the worker returns a tagged tuple, and
*all* expected failures travel as data — a worker never lets a
:class:`~repro.errors.ReproError` escape as a pickled traceback.

The request also carries an optional export of the parent's
:class:`~repro.hls.cache.LayerSolveCache` (canonical, uid-free entries).
The worker imports it before solving and returns its own export, so
layer solves warm-start across *processes*: a re-submission of a similar
assay replays earlier layer solves even though every job may land on a
different pool worker.
"""

from __future__ import annotations

import math
import os
from typing import Any

from ..errors import ReproError
from ..hls.cache import LayerSolveCache

#: Request key enabling the crash hook below.
_DEBUG_CRASH = "debug-crash"


def _certificate(value: "float | None") -> "float | None":
    """Nullable-float guard: a NaN/inf certificate proves nothing and
    travels as ``null``, never as an unparseable JSON token."""
    if value is None or not math.isfinite(value):
        return None
    return float(value)


def run_job(request: dict[str, Any]) -> tuple:
    """Solve one synthesis job; returns ``("ok", payload, cache_export)``
    or ``("error", kind, message)``.

    ``request`` keys: ``assay`` (assay JSON), ``spec`` (spec JSON or
    None), ``method`` ("hls" | "conventional"), ``cache`` (entries from
    :meth:`LayerSolveCache.export_entries` or None), ``deterministic``
    (bool, default True), ``degraded`` (bool: re-run after a wall-clock
    timeout — the spec is pinned to the LP-bound scheduler via
    :func:`repro.hls.backends.degraded_spec`, so the payload carries a
    certified integrality gap in ``"quality"`` alongside the
    ``"degraded": true`` flag).
    """
    if request.get("method") == _DEBUG_CRASH:
        # Test hook (gated behind ServerConfig.allow_debug): die the way a
        # real worker does when the OS kills it mid-solve.
        os._exit(1)
    try:
        from ..baselines import synthesize_conventional
        from ..experiments.report import synthesis_profile
        from ..hls import SynthesisSpec, synthesize
        from ..io.json_io import (
            assay_from_json,
            result_to_json,
            spec_from_json,
        )

        assay = assay_from_json(request["assay"])
        spec_data = request.get("spec")
        spec = spec_from_json(spec_data) if spec_data else SynthesisSpec()
        degraded = bool(request.get("degraded"))
        if degraded:
            from ..hls.backends import degraded_spec

            spec = degraded_spec(spec)
        cache = LayerSolveCache(capacity=spec.solve_cache_capacity)
        if request.get("cache"):
            cache.import_entries(request["cache"])

        method = request.get("method", "hls")
        if method == "conventional":
            result = synthesize_conventional(assay, spec, jobs=1)
        elif method == "hls":
            result = synthesize(assay, spec, cache=cache, jobs=1)
        else:
            return ("error", "bad-request", f"unknown method {method!r}")

        payload = {
            "result": result_to_json(
                result, deterministic=request.get("deterministic", True)
            ),
            "profile": synthesis_profile(result),
            # Certified quality of the run: proven lower bound on the total
            # layer objective and the relative gap (null = uncertified).
            # Degraded re-runs in particular report "within X% of optimal"
            # here instead of only a bare flag.
            "quality": {
                "lower_bound": _certificate(result.lower_bound),
                "integrality_gap": _certificate(result.integrality_gap),
            },
        }
        storage_plan = getattr(result, "storage_plan", None)
        if storage_plan is not None:
            # Summary of the synthesized storage decisions (full plan is
            # inside payload["result"]["storage"]); absent in off mode so
            # pre-storage payloads are unchanged.
            payload["storage"] = {
                "mode": storage_plan.mode,
                "held": storage_plan.held_count,
                "channel": storage_plan.channel_count,
                "reservoir": storage_plan.reservoir_count,
                "demand": storage_plan.demand,
                "reservoirs": len(storage_plan.reservoirs),
                "total_cost": storage_plan.total_cost,
            }
            payload["quality"]["storage_demand"] = storage_plan.demand
            payload["quality"]["storage_cost"] = storage_plan.total_cost
        if method == "hls" and spec.throughput_mode == "periodic":
            # Steady-state re-timing of the one-shot result; absent in
            # off mode so pre-throughput payloads are unchanged.
            from ..periodic import schedule_throughput

            throughput = schedule_throughput(result, spec)
            payload["periodic"] = {
                "ii": throughput.ii,
                "base_makespan": throughput.base_makespan,
                "latency": throughput.latency,
                "lower_bound": _certificate(throughput.lower_bound),
                "integrality_gap": _certificate(
                    throughput.integrality_gap
                ),
                "validated": True,
                "scheduler": throughput.scheduler,
                "degraded": throughput.degraded,
                "probes": len(throughput.probes),
            }
            payload["quality"]["ii"] = throughput.ii
            payload["quality"]["ii_lower_bound"] = _certificate(
                throughput.lower_bound
            )
        if degraded:
            payload["degraded"] = True
        return ("ok", payload, cache.export_entries())
    except ReproError as exc:
        return ("error", "synthesis-failed", str(exc))
    except (KeyError, TypeError, ValueError) as exc:
        return ("error", "bad-request", f"malformed job request: {exc}")


__all__ = ["run_job"]
