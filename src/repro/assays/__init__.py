"""Benchmark assay reconstructions.

The paper evaluates on three bioassays taken from the microfluidics
literature, scaled by replicating the protocol until the operation counts
are 16, 70 and 120 (with 0, 10 and 20 indeterminate operations):

* case 1 — kinase activity radioassay, Fang et al. 2010 (paper ref [10]);
* case 2 — single-cell gene expression profiling, Zhong et al. 2008 ([7]);
* case 3 — single-cell RT-qPCR, White et al. 2011 ([17]).

The exact operation tables were never published; these reconstructions
follow the protocol descriptions in the cited papers (see each module's
docstring) and reproduce the paper's operation counts exactly.
"""

from .chip_assay import chip_assay
from .gene_expression import gene_expression_assay
from .generator import random_assay
from .kinase import kinase_assay
from .rtqpcr import rtqpcr_assay

CASE_BUILDERS = {
    1: kinase_assay,
    2: gene_expression_assay,
    3: rtqpcr_assay,
}


def benchmark_assay(case: int):
    """The paper's benchmark assay for ``case`` in {1, 2, 3}."""
    try:
        return CASE_BUILDERS[case]()
    except KeyError:
        raise ValueError(f"unknown benchmark case {case}; pick 1, 2 or 3") from None


__all__ = [
    "chip_assay",
    "kinase_assay",
    "gene_expression_assay",
    "rtqpcr_assay",
    "random_assay",
    "benchmark_assay",
    "CASE_BUILDERS",
]
