"""Parameterized random assay generator.

Used by property-based tests and stress benchmarks: generates valid DAGs of
component-oriented operations with controllable size, dependency density,
and indeterminate-operation fraction.  Deterministic for a given seed.
"""

from __future__ import annotations

import random

from ..components.containers import Capacity, ContainerKind, allowed_capacities
from ..operations.assay import Assay
from ..operations.duration import Fixed, Indeterminate
from ..operations.operation import Operation

_ACCESSORY_POOL = (
    "pump",
    "heating_pad",
    "optical_system",
    "sieve_valve",
    "cell_trap",
)


def random_assay(
    num_ops: int = 20,
    *,
    seed: int = 0,
    edge_probability: float = 0.15,
    indeterminate_fraction: float = 0.15,
    max_duration: int = 30,
    max_accessories: int = 2,
) -> Assay:
    """Generate a random valid assay.

    Edges only go from lower to higher op index, so the result is always a
    DAG.  An operation marked indeterminate keeps its forward edges (its
    descendants simply land in later layers).
    """
    rng = random.Random(seed)
    assay = Assay(f"random-{seed}-{num_ops}")

    for i in range(num_ops):
        indeterminate = rng.random() < indeterminate_fraction
        duration = max(1, rng.randint(1, max_duration))
        kind = rng.choice([None, ContainerKind.RING, ContainerKind.CHAMBER])
        if kind is None:
            capacity = rng.choice(list(Capacity))
        else:
            capacity = rng.choice(list(allowed_capacities(kind)))
        accessories = frozenset(
            rng.sample(_ACCESSORY_POOL, rng.randint(0, max_accessories))
        )
        assay.add(
            Operation(
                uid=f"op{i}",
                duration=(
                    Indeterminate(duration) if indeterminate else Fixed(duration)
                ),
                capacity=capacity,
                container=kind,
                accessories=accessories,
                function=rng.choice(
                    ["mix", "heat", "detect", "wash", "capture", "culture"]
                ),
            )
        )

    for i in range(num_ops):
        for j in range(i + 1, num_ops):
            if rng.random() < edge_probability:
                assay.add_dependency(f"op{i}", f"op{j}")
    return assay
