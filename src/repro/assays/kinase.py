"""Case 1 — kinase activity radioassay (Fang et al., Cancer Res. 2010).

The chip of the paper's Fig. 2: bead columns are formed behind sieve
valves, a large liquid sample is mixed through the column by the flow
reversal protocol (mixing *without* a mixer — the motivating example of the
component-oriented concept), followed by washing, elution, on-chip
neutralization, incubation with the radioactive ATP probe, and readout.

One assay run is 8 operations; the paper replicates to 16 operations
(2 parallel patient samples) with **no indeterminate operations**.
"""

from __future__ import annotations

from ..operations.assay import Assay
from ..operations.builder import AssayBuilder

#: Operation count the paper reports for this case.
PAPER_NUM_OPS = 16
PAPER_NUM_INDETERMINATE = 0


def kinase_protocol() -> Assay:
    """One run of the kinase radioassay protocol (8 operations)."""
    b = AssayBuilder("kinase")
    load_beads = b.op(
        "load_beads", 5, container="chamber", capacity="small",
        accessories=["sieve_valve", "pump"], function="load",
    )
    load_sample = b.op(
        "load_sample", 4, container="chamber", capacity="medium",
        function="load",
    )
    # Flow-reversal mixing through the bead column (Fig. 2(b)-(e)): a
    # chamber with sieve valves and a pump, NOT a ring mixer.
    mix = b.op(
        "mix_flow_reversal", 30, container="chamber", capacity="medium",
        accessories=["sieve_valve", "pump"], function="mix",
        after=[load_beads, load_sample],
    )
    wash = b.op(
        "wash", 10, container="chamber", capacity="small",
        accessories=["sieve_valve"], function="wash", after=[mix],
    )
    elute = b.op(
        "elute", 8, container="chamber", capacity="small",
        accessories=["sieve_valve", "pump"], function="elute", after=[wash],
    )
    # Neutralization is a plain mixing step; the container kind is left
    # open — it may run in a ring mixer or any suitable chamber.
    neutralize = b.op(
        "neutralize", 6, capacity="small", accessories=["pump"],
        function="mix", after=[elute],
    )
    incubate = b.op(
        "incubate", 25, container="chamber", capacity="small",
        accessories=["heating_pad"], function="heat", after=[neutralize],
    )
    b.op(
        "detect", 6, container="chamber", capacity="small",
        accessories=["optical_system"], function="detect", after=[incubate],
    )
    return b.build()


def kinase_assay(samples: int = 2) -> Assay:
    """The paper's case 1: ``samples`` parallel runs (default 16 ops)."""
    assay = kinase_protocol().replicate(samples)
    assay.name = "kinase-radioassay"
    return assay
