"""Case 3 — high-throughput single-cell RT-qPCR (White et al., PNAS 2011).

Hundreds of single cells are captured in passive cell traps, washed, lysed,
reverse-transcribed, and quantified by qPCR with real-time fluorescence
readout.  Capture is **indeterminate** (single-cell occupancy must be
verified); qPCR thermocycling needs *precise time control* (the paper's
argument for pre-generated schedules, Sec. 1) and both a heating pad and an
optical system on the same device.

One pipeline is 6 operations with 1 indeterminate; the paper replicates to
120 operations / 20 indeterminate (20 cells).  With the indeterminate
threshold at 10, layering yields two indeterminate layers — the
``+I_1+I_2`` makespan of Table 2.
"""

from __future__ import annotations

from ..operations.assay import Assay
from ..operations.builder import AssayBuilder

PAPER_NUM_OPS = 120
PAPER_NUM_INDETERMINATE = 20


def rtqpcr_protocol() -> Assay:
    """One single-cell RT-qPCR pipeline (6 operations, 1 indeterminate)."""
    b = AssayBuilder("rtqpcr")
    capture = b.op(
        "capture_cell", 6, indeterminate=True, container="chamber",
        capacity="tiny", accessories=["cell_trap"], function="capture",
    )
    wash = b.op(
        "wash", 5, container="chamber", capacity="tiny",
        accessories=["sieve_valve"], function="wash", after=[capture],
    )
    lyse = b.op(
        "lyse", 8, container="chamber", capacity="tiny",
        function="lyse", after=[wash],
    )
    rt = b.op(
        "reverse_transcribe", 45, container="chamber", capacity="small",
        accessories=["heating_pad"], function="heat", after=[lyse],
    )
    qpcr = b.op(
        "qpcr", 35, container="ring", capacity="small",
        accessories=["heating_pad", "optical_system", "pump"],
        function="heat", after=[rt],
    )
    b.op(
        "analyze", 4, container="chamber", capacity="small",
        accessories=["optical_system"], function="detect", after=[qpcr],
    )
    return b.build()


def rtqpcr_assay(cells: int = 20) -> Assay:
    """The paper's case 3: ``cells`` parallel pipelines (default 120 ops)."""
    assay = rtqpcr_protocol().replicate(cells)
    assay.name = "single-cell-rtqpcr"
    return assay
