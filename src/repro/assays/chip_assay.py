"""Extension workload — microfluidic chromatin immunoprecipitation (ChIP).

Wu et al., "Automated microfluidic chromatin immunoprecipitation from
2,000 cells", Lab on a Chip 2009 — the paper's reference [14], cited for
operations that need precise time control.  Not part of the paper's
evaluation; included as a fourth, wash-dominated workload: ChIP spends
most of its chip time cycling antibody-bead washes behind sieve valves,
stressing device reuse very differently from the capture-dominated
benchmarks.

One run is 9 operations with 1 indeterminate (antibody-chromatin binding
is verified by bead fluorescence before proceeding).
"""

from __future__ import annotations

from ..operations.assay import Assay
from ..operations.builder import AssayBuilder


def chip_protocol() -> Assay:
    """One ChIP run (9 operations, 1 indeterminate)."""
    b = AssayBuilder("chip")
    lyse = b.op(
        "lyse_cells", 10, container="chamber", capacity="medium",
        function="lyse",
    )
    shear = b.op(
        "shear_chromatin", 15, container="ring", capacity="medium",
        accessories=["pump"], function="mix", after=[lyse],
    )
    load_beads = b.op(
        "load_ab_beads", 5, container="chamber", capacity="small",
        accessories=["sieve_valve", "pump"], function="load",
    )
    # Antibody-chromatin binding: long mixing over the bead column with
    # fluorescence verification -> indeterminate.
    bind = b.op(
        "bind_chromatin", 45, indeterminate=True, container="chamber",
        capacity="medium",
        accessories=["sieve_valve", "pump", "optical_system"],
        function="mix", after=[shear, load_beads],
    )
    wash1 = b.op(
        "wash_low_salt", 8, container="chamber", capacity="small",
        accessories=["sieve_valve"], function="wash", after=[bind],
    )
    wash2 = b.op(
        "wash_high_salt", 8, container="chamber", capacity="small",
        accessories=["sieve_valve"], function="wash", after=[wash1],
    )
    wash3 = b.op(
        "wash_licl", 8, container="chamber", capacity="small",
        accessories=["sieve_valve"], function="wash", after=[wash2],
    )
    elute = b.op(
        "elute_reverse_crosslink", 30, container="chamber", capacity="small",
        accessories=["sieve_valve", "heating_pad"], function="heat",
        after=[wash3],
    )
    b.op(
        "purify_dna", 12, container="chamber", capacity="small",
        accessories=["sieve_valve", "pump"], function="wash", after=[elute],
    )
    return b.build()


def chip_assay(samples: int = 4) -> Assay:
    """``samples`` parallel ChIP runs (default 36 ops, 4 indeterminate)."""
    assay = chip_protocol().replicate(samples)
    assay.name = "chromatin-immunoprecipitation"
    return assay
