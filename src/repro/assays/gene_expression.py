"""Case 2 — single-cell gene expression profiling (Zhong et al., LoC 2008).

The chip of the paper's Fig. 1: mixers integrated with cell-separation
modules.  Single human embryonic stem cells are isolated in the U-shaped
cell-separation part of a ring mixer (the separation valves close off part
of the mixer's flow channel), lysed, their mRNA captured on bead columns,
washed, reverse-transcribed into cDNA on a heated chamber, purified, and
collected for detection.

Cell isolation is **indeterminate**: whether exactly one cell was captured
must be verified (fluorescent imaging, ~53 % single-cell success rate per
attempt), so the operation reruns until it succeeds.

One pipeline is 7 operations with 1 indeterminate; the paper replicates to
70 operations / 10 indeterminate (10 single cells processed in parallel).
"""

from __future__ import annotations

from ..operations.assay import Assay
from ..operations.builder import AssayBuilder

PAPER_NUM_OPS = 70
PAPER_NUM_INDETERMINATE = 10


def gene_expression_protocol() -> Assay:
    """One single-cell pipeline (7 operations, 1 indeterminate)."""
    b = AssayBuilder("geneexpr")
    # Cell isolation in the cell-separation module of a ring mixer: the
    # operation monopolizes the ring (Fig. 1(b)) — bound to a mixer despite
    # not being a mixing operation.
    capture = b.op(
        "capture_cell", 8, indeterminate=True, container="ring",
        capacity="small", accessories=["pump"], function="capture",
    )
    lyse = b.op(
        "lyse", 6, container="chamber", capacity="small",
        function="lyse", after=[capture],
    )
    capture_mrna = b.op(
        "capture_mrna", 12, container="chamber", capacity="small",
        accessories=["sieve_valve"], function="capture", after=[lyse],
    )
    wash = b.op(
        "wash", 8, container="chamber", capacity="small",
        accessories=["sieve_valve"], function="wash", after=[capture_mrna],
    )
    cdna = b.op(
        "synthesize_cdna", 40, container="chamber", capacity="small",
        accessories=["heating_pad"], function="heat", after=[wash],
    )
    purify = b.op(
        "purify", 10, container="chamber", capacity="small",
        accessories=["sieve_valve", "pump"], function="wash", after=[cdna],
    )
    b.op(
        "collect", 4, container="chamber", capacity="small",
        accessories=["optical_system"], function="detect", after=[purify],
    )
    return b.build()


def gene_expression_assay(cells: int = 10) -> Assay:
    """The paper's case 2: ``cells`` parallel pipelines (default 70 ops)."""
    assay = gene_expression_protocol().replicate(cells)
    assay.name = "gene-expression-profiling"
    return assay
