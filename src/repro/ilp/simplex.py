"""A dense two-phase primal simplex LP solver.

This is the LP engine underneath the pure-Python branch-and-bound MILP solver
(:mod:`repro.ilp.bnb`).  It is written for clarity and robustness on the
small-to-medium models used in tests and cross-checks; the production
benchmarks solve through HiGHS (:mod:`repro.ilp.highs`).

The entry point :func:`solve_lp` accepts the same bounded row/column form as
:class:`repro.ilp.model.StandardForm`:

    minimize    c @ x
    subject to  row_lower <= A @ x <= row_upper
                var_lower <= x <= var_upper

Internally the problem is rewritten to equality standard form with
non-negative variables (shifting finite lower bounds, splitting free
variables, adding slack rows for finite upper bounds), then solved with the
classic two-phase tableau method using Bland's anti-cycling rule.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

_TOL = 1e-9


class LPStatus(enum.Enum):
    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"


@dataclass
class LPResult:
    status: LPStatus
    x: np.ndarray | None = None
    objective: float | None = None
    iterations: int = 0


def solve_lp(
    c: np.ndarray,
    a_matrix: np.ndarray,
    row_lower: np.ndarray,
    row_upper: np.ndarray,
    var_lower: np.ndarray,
    var_upper: np.ndarray,
    max_iterations: int = 20000,
) -> LPResult:
    """Solve a bounded LP (see module docstring). ``a_matrix`` is dense."""
    c = np.asarray(c, dtype=float)
    a_matrix = np.asarray(a_matrix, dtype=float)
    var_lower = np.asarray(var_lower, dtype=float)
    var_upper = np.asarray(var_upper, dtype=float)
    n = c.shape[0]

    if np.any(var_lower > var_upper + _TOL):
        return LPResult(LPStatus.INFEASIBLE)

    # -- rewrite variables to y >= 0 -------------------------------------
    # x_j = lb_j + y_j                    (finite lb)
    # x_j = y_j - y'_j                    (lb = -inf), y, y' >= 0
    # finite ub becomes the extra row  y_j <= ub_j - lb_j.
    col_map: list[tuple[int, int | None]] = []  # (pos_col, neg_col or None)
    shift = np.zeros(n)
    next_col = 0
    for j in range(n):
        if np.isfinite(var_lower[j]):
            shift[j] = var_lower[j]
            col_map.append((next_col, None))
            next_col += 1
        else:
            col_map.append((next_col, next_col + 1))
            next_col += 2
    n_y = next_col

    def expand_row(row: np.ndarray) -> np.ndarray:
        out = np.zeros(n_y)
        for j in range(n):
            pos, neg = col_map[j]
            out[pos] += row[j]
            if neg is not None:
                out[neg] -= row[j]
        return out

    rows_eq: list[np.ndarray] = []
    rhs_eq: list[float] = []
    rows_le: list[np.ndarray] = []
    rhs_le: list[float] = []
    rows_ge: list[np.ndarray] = []
    rhs_ge: list[float] = []

    base_offset = a_matrix @ shift
    for i in range(a_matrix.shape[0]):
        row = expand_row(a_matrix[i])
        lo = row_lower[i] - base_offset[i]
        hi = row_upper[i] - base_offset[i]
        if np.isfinite(lo) and np.isfinite(hi) and abs(hi - lo) <= _TOL:
            rows_eq.append(row)
            rhs_eq.append(hi)
            continue
        if np.isfinite(hi):
            rows_le.append(row)
            rhs_le.append(hi)
        if np.isfinite(lo):
            rows_ge.append(row)
            rhs_ge.append(lo)

    for j in range(n):
        if np.isfinite(var_upper[j]):
            cap = var_upper[j] - shift[j]
            if np.isfinite(var_lower[j]):
                row = np.zeros(n_y)
                row[col_map[j][0]] = 1.0
                rows_le.append(row)
                rhs_le.append(cap)
            else:
                pos, neg = col_map[j]
                row = np.zeros(n_y)
                row[pos] = 1.0
                row[neg] = -1.0
                rows_le.append(row)
                rhs_le.append(cap)

    c_y = expand_row(c)
    obj_shift = float(c @ shift)

    # -- assemble equality standard form with slacks ----------------------
    m_le, m_ge, m_eq = len(rows_le), len(rows_ge), len(rows_eq)
    m = m_le + m_ge + m_eq
    n_total = n_y + m_le + m_ge  # slacks for <= and surplus for >=

    if m == 0:
        # Unconstrained in rows: optimum at y = 0 unless some cost negative.
        if np.any(c_y < -_TOL):
            return LPResult(LPStatus.UNBOUNDED)
        x = shift.copy()
        return LPResult(LPStatus.OPTIMAL, x, obj_shift, 0)

    a_full = np.zeros((m, n_total))
    b_full = np.zeros(m)
    r = 0
    for row, rhs in zip(rows_le, rhs_le):
        a_full[r, :n_y] = row
        a_full[r, n_y + r] = 1.0
        b_full[r] = rhs
        r += 1
    for k, (row, rhs) in enumerate(zip(rows_ge, rhs_ge)):
        a_full[r, :n_y] = row
        a_full[r, n_y + m_le + k] = -1.0
        b_full[r] = rhs
        r += 1
    for row, rhs in zip(rows_eq, rhs_eq):
        a_full[r, :n_y] = row
        b_full[r] = rhs
        r += 1

    neg = b_full < 0
    a_full[neg] *= -1
    b_full[neg] *= -1

    c_full = np.zeros(n_total)
    c_full[:n_y] = c_y

    result = _two_phase(a_full, b_full, c_full, max_iterations)
    if result.status is not LPStatus.OPTIMAL:
        return result

    y = result.x[:n_y]
    x = shift.copy()
    for j in range(n):
        pos, negcol = col_map[j]
        x[j] += y[pos] - (y[negcol] if negcol is not None else 0.0)
    return LPResult(
        LPStatus.OPTIMAL, x, float(c @ x), result.iterations
    )


def _two_phase(
    a_matrix: np.ndarray, b: np.ndarray, c: np.ndarray, max_iterations: int
) -> LPResult:
    """Two-phase simplex on ``min c@z s.t. A z = b, z >= 0`` (b >= 0)."""
    m, n = a_matrix.shape

    # Phase 1: artificial variables form the initial basis.
    tableau = np.zeros((m + 1, n + m + 1))
    tableau[:m, :n] = a_matrix
    tableau[:m, n : n + m] = np.eye(m)
    tableau[:m, -1] = b
    basis = list(range(n, n + m))
    # Phase-1 objective row: minimize sum of artificials; price out the basis.
    tableau[m, n : n + m] = 1.0
    tableau[m, :] -= tableau[:m, :].sum(axis=0)

    iterations = _pivot_until_done(tableau, basis, max_iterations)
    if iterations < 0:
        return LPResult(LPStatus.ITERATION_LIMIT)
    if tableau[m, -1] < -1e-7:
        return LPResult(LPStatus.INFEASIBLE, iterations=iterations)

    # Drive artificials out of the basis where possible.
    for row, var in enumerate(basis):
        if var >= n:
            pivot_col = next(
                (j for j in range(n) if abs(tableau[row, j]) > _TOL), None
            )
            if pivot_col is not None:
                _pivot(tableau, basis, row, pivot_col)
    # Rows still basic in an artificial are redundant (zero rows); keep them,
    # but forbid artificials from re-entering by removing their columns.
    tableau = np.delete(tableau, np.s_[n : n + m], axis=1)

    # Phase 2: install the real objective and price out the basis.
    tableau[m, :] = 0.0
    tableau[m, :n] = c
    for row, var in enumerate(basis):
        if var < n and abs(tableau[m, var]) > _TOL:
            tableau[m, :] -= tableau[m, var] * tableau[row, :]

    iterations2 = _pivot_until_done(tableau, basis, max_iterations)
    if iterations2 < 0:
        return LPResult(LPStatus.ITERATION_LIMIT)
    if iterations2 == -2:  # pragma: no cover - mapped below
        return LPResult(LPStatus.UNBOUNDED)

    if _has_unbounded_column(tableau, basis, n):
        return LPResult(LPStatus.UNBOUNDED, iterations=iterations + iterations2)

    z = np.zeros(tableau.shape[1] - 1)
    for row, var in enumerate(basis):
        if var < z.shape[0]:
            z[var] = tableau[row, -1]
    objective = -tableau[m, -1] if False else float(c @ z[:n])
    return LPResult(
        LPStatus.OPTIMAL, z[:n], objective, iterations + iterations2
    )


def _pivot_until_done(
    tableau: np.ndarray, basis: list[int], max_iterations: int
) -> int:
    """Run Bland's-rule pivots until optimal; return iteration count.

    Returns ``-1`` on iteration limit.  Unboundedness is detected by the
    caller through :func:`_has_unbounded_column` (a column with negative
    reduced cost and no positive entries never gets selected here because we
    return early when we see it — encoded by treating it as done and letting
    the caller check).
    """
    m = tableau.shape[0] - 1
    for iteration in range(max_iterations):
        obj = tableau[m, :-1]
        entering = next((j for j, v in enumerate(obj) if v < -_TOL), None)
        if entering is None:
            return iteration
        column = tableau[:m, entering]
        positive = column > _TOL
        if not positive.any():
            return iteration  # unbounded direction; caller inspects
        ratios = np.full(m, np.inf)
        ratios[positive] = tableau[:m, -1][positive] / column[positive]
        best = np.min(ratios)
        # Bland: among minimal ratio rows choose the lowest basis index.
        rows = [i for i in range(m) if ratios[i] <= best + _TOL]
        leaving = min(rows, key=lambda i: basis[i])
        _pivot(tableau, basis, leaving, entering)
    return -1


def _has_unbounded_column(tableau: np.ndarray, basis: list[int], n: int) -> bool:
    m = tableau.shape[0] - 1
    obj = tableau[m, :-1]
    for j in range(len(obj)):
        if obj[j] < -_TOL and not (tableau[:m, j] > _TOL).any():
            return True
    return False


def _pivot(tableau: np.ndarray, basis: list[int], row: int, col: int) -> None:
    pivot_value = tableau[row, col]
    tableau[row, :] /= pivot_value
    for r in range(tableau.shape[0]):
        if r != row and abs(tableau[r, col]) > _TOL:
            tableau[r, :] -= tableau[r, col] * tableau[row, :]
    basis[row] = col
