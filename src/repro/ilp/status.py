"""Solver result types."""

from __future__ import annotations

import enum
import math
from dataclasses import asdict, dataclass, field, fields

from .expr import LinExpr, Variable


def relative_gap(objective: float | None, bound: float | None) -> float | None:
    """Certified relative optimality gap ``|objective - bound| / |objective|``.

    Returns ``None`` when either side is missing or non-finite — an absent
    bound proves nothing, and must never masquerade as a 0.0 gap (the bug
    this helper exists to prevent: a timed-out solve reporting "optimal").
    Gaps below integrality noise collapse to exactly 0.0.
    """
    if objective is None or bound is None:
        return None
    if not (math.isfinite(objective) and math.isfinite(bound)):
        return None
    spread = abs(objective - bound)
    denom = max(abs(objective), 1e-9)
    gap = spread / denom
    return 0.0 if gap < 1e-9 else gap


class SolveStatus(enum.Enum):
    """Outcome of a solve call."""

    OPTIMAL = "optimal"
    #: A feasible (integer) solution was found but optimality was not proven
    #: within the time/node limit.
    FEASIBLE = "feasible"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    #: The limit was hit before any feasible solution was found.
    TIMEOUT = "timeout"

    @property
    def has_solution(self) -> bool:
        return self in (SolveStatus.OPTIMAL, SolveStatus.FEASIBLE)


@dataclass
class SolveStats:
    """Telemetry of one solve: where the time went and how hard it was.

    Backends fill what they can observe (the pure-Python branch and bound
    counts everything; HiGHS only reports node counts).  The synthesis
    driver adds the surrounding context — model build time and whether the
    result came from the layer-solve cache — before aggregating per pass.
    """

    #: layer index the solve belongs to (-1 outside layer synthesis).
    layer: int = -1
    backend: str = ""
    status: str = ""
    #: branch-and-bound nodes processed (MIP backends).
    nodes: int = 0
    #: total simplex iterations across all LP relaxations (bnb backend).
    simplex_iterations: int = 0
    #: wall-clock seconds spent building the model (driver-level; includes
    #: heuristic candidates and warm-start encoding around the encoder).
    build_time: float = 0.0
    #: wall-clock seconds spent encoding: building the ILP model from the
    #: layer problem, or mutating a session's model via a delta.  A subset
    #: of ``build_time``; 0.0 when a session replayed a cached encoding.
    encode_time: float = 0.0
    #: wall-clock seconds spent inside the solver backend.
    solve_time: float = 0.0
    #: the result was replayed from the layer-solve cache (no solve ran).
    cache_hit: bool = False
    #: a warm-start incumbent was accepted by the backend.
    warm_started: bool = False
    #: the solve ran ahead of time in a parallel worker (hls/parallel.py)
    #: and was adopted after its predicted inputs were confirmed.
    speculative: bool = False
    #: the layer objective the returned schedule achieves (layer_cost
    #: units); None when the backend did not evaluate one.
    objective: float | None = None
    #: certified lower bound on this layer's objective — the LP-relaxation
    #: optimum or the MIP solver's proven dual bound.  None when nothing
    #: was proven (never an incumbent echo).
    lower_bound: float | None = None
    #: achieved relative gap between ``objective`` and ``lower_bound``
    #: (:func:`relative_gap`); 0.0 means proven optimal, None means
    #: uncertified.  This is the *achieved* gap, not the requested
    #: ``spec.mip_gap`` tolerance.
    integrality_gap: float | None = None

    def to_dict(self) -> dict:
        """Plain-JSON representation (round-trips via :meth:`from_dict`)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "SolveStats":
        """Rebuild from :meth:`to_dict` output.

        Unknown keys are ignored so profiles written by a newer schema
        (or hand-edited) still load; missing keys fall back to defaults.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})


@dataclass
class Solution:
    """A (possibly partial) solve result.

    ``values`` maps every model variable to its value when
    ``status.has_solution`` is true; it is empty otherwise.
    """

    status: SolveStatus
    objective: float | None = None
    values: dict[Variable, float] = field(default_factory=dict)
    #: Proven lower bound on the (minimization) objective, if available.
    bound: float | None = None
    #: Wall-clock seconds spent in the backend.
    runtime: float = 0.0
    backend: str = ""
    #: Backend telemetry (nodes, iterations, ...), if the backend reports it.
    stats: SolveStats | None = None

    def __getitem__(self, key: Variable) -> float:
        return self.values[key]

    def value(self, expr: LinExpr | Variable) -> float:
        """Evaluate an expression under this solution."""
        if isinstance(expr, Variable):
            return self.values[expr]
        return expr.value(self.values)

    def int_value(self, key: Variable, tol: float = 1e-6) -> int:
        """Variable value rounded to the nearest integer (asserting closeness)."""
        raw = self.values[key]
        rounded = round(raw)
        if abs(raw - rounded) > max(tol, 1e-4):
            raise ValueError(f"{key.name} = {raw} is not integral")
        return int(rounded)
