"""Pure-Python branch-and-bound MILP solver.

Uses the dense two-phase simplex (:mod:`repro.ilp.simplex`) for LP
relaxations and branches on the most-fractional integer variable with a
depth-first ("diving") node order, which finds integer-feasible incumbents
quickly on scheduling models.

This solver exists to make the library self-contained and to cross-check the
HiGHS backend on small instances (ablation A4); the benchmark tables are
produced with HiGHS.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from .expr import Variable
from .model import Model, StandardForm
from .simplex import LPStatus, solve_lp
from .status import Solution, SolveStats, SolveStatus, relative_gap

_INT_TOL = 1e-6


@dataclass(order=True)
class _Node:
    """A branch-and-bound node: the LP bound plus tightened variable bounds."""

    bound: float
    depth: int = field(compare=False)
    var_lower: np.ndarray = field(compare=False)
    var_upper: np.ndarray = field(compare=False)


def _seed_incumbent(
    form: StandardForm, warm_start: dict[Variable, float]
) -> tuple[np.ndarray, float] | None:
    """Validate a warm-start assignment against ``form``.

    Returns ``(x, objective)`` in standard-form space when the assignment
    covers every variable and satisfies bounds, integrality, and all rows;
    ``None`` otherwise (an unusable start is simply ignored).
    """
    try:
        x = np.array([float(warm_start[v]) for v in form.variables])
    except KeyError:
        return None
    int_mask = form.integrality.astype(bool)
    x[int_mask] = np.round(x[int_mask])
    if np.any(x < form.var_lower - 1e-6) or np.any(x > form.var_upper + 1e-6):
        return None
    if form.a_matrix.shape[0]:
        activity = form.a_matrix @ x
        if np.any(activity < form.row_lower - 1e-6) or np.any(
            activity > form.row_upper + 1e-6
        ):
            return None
    return x, float(form.c @ x)


def solve_bnb(
    model: Model,
    time_limit: float | None = None,
    node_limit: int = 100000,
    mip_gap: float | None = None,
    use_presolve: bool = True,
    warm_start: dict[Variable, float] | None = None,
) -> Solution:
    """Solve ``model`` by branch and bound.

    Returns OPTIMAL when the tree is exhausted, FEASIBLE when a limit was hit
    with an incumbent in hand, TIMEOUT when a limit was hit without one.

    ``warm_start`` may supply a complete feasible assignment; it is checked
    against the model and, when valid, seeds the incumbent so the search
    starts with an immediate pruning bound (and a guaranteed answer even
    under a zero time budget).
    """
    start = time.monotonic()
    form = model.to_standard_form()
    # Seed the incumbent before presolve so validation sees the original
    # rows (presolve reductions are feasibility-safe, so a valid incumbent
    # stays within the tightened bounds).
    incumbent_x: np.ndarray | None = None
    incumbent_obj = math.inf
    warm_accepted = False
    if warm_start is not None:
        seeded = _seed_incumbent(form, warm_start)
        if seeded is not None:
            incumbent_x, incumbent_obj = seeded
            warm_accepted = True
    if use_presolve:
        from .presolve import presolve

        reduction = presolve(form)
        if reduction.infeasible:
            runtime = time.monotonic() - start
            return Solution(
                SolveStatus.INFEASIBLE,
                runtime=runtime,
                backend="bnb",
                stats=SolveStats(
                    backend="bnb",
                    status=SolveStatus.INFEASIBLE.value,
                    solve_time=runtime,
                ),
            )
        form = reduction.form
    a_dense = form.a_matrix.toarray() if form.a_matrix.shape[0] else np.zeros(
        (0, len(form.variables))
    )
    int_mask = form.integrality.astype(bool)
    gap = mip_gap if mip_gap is not None else 1e-9

    root = _Node(
        bound=-math.inf,
        depth=0,
        var_lower=form.var_lower.copy(),
        var_upper=form.var_upper.copy(),
    )
    # Depth-first stack; each entry carries its parent LP bound for pruning.
    stack: list[_Node] = [root]
    nodes = 0
    simplex_iterations = 0
    proven_optimal = True
    # Parent bounds of subtrees abandoned on a simplex iteration limit.
    # Their nodes leave the stack without being explored, so the final dual
    # bound must still account for them — otherwise the bound computed from
    # the surviving stack overstates what was actually proven.
    dropped_bounds: list[float] = []

    while stack:
        if time_limit is not None and time.monotonic() - start > time_limit:
            proven_optimal = False
            break
        if nodes >= node_limit:
            proven_optimal = False
            break
        node = stack.pop()
        if node.bound >= incumbent_obj - gap:
            continue
        nodes += 1

        lp = solve_lp(
            form.c, a_dense, form.row_lower, form.row_upper,
            node.var_lower, node.var_upper,
        )
        simplex_iterations += lp.iterations
        if lp.status is LPStatus.INFEASIBLE:
            continue
        if lp.status is LPStatus.UNBOUNDED:
            if not int_mask.any() or incumbent_x is None:
                runtime = time.monotonic() - start
                return Solution(
                    SolveStatus.UNBOUNDED, runtime=runtime,
                    backend="bnb",
                    stats=SolveStats(
                        backend="bnb",
                        status=SolveStatus.UNBOUNDED.value,
                        nodes=nodes,
                        simplex_iterations=simplex_iterations,
                        solve_time=runtime,
                        warm_started=warm_accepted,
                    ),
                )
            continue
        if lp.status is LPStatus.ITERATION_LIMIT:
            proven_optimal = False
            dropped_bounds.append(node.bound)
            continue

        assert lp.x is not None and lp.objective is not None
        if lp.objective >= incumbent_obj - gap:
            continue

        frac_var = _most_fractional(lp.x, int_mask)
        if frac_var is None:
            x = lp.x.copy()
            x[int_mask] = np.round(x[int_mask])
            obj = float(form.c @ x)
            if obj < incumbent_obj:
                incumbent_obj = obj
                incumbent_x = x
            continue

        value = lp.x[frac_var]
        floor_val = math.floor(value + _INT_TOL)
        # Explore the "down" child first (LIFO → pushed last).
        up = _Node(lp.objective, node.depth + 1,
                   node.var_lower.copy(), node.var_upper.copy())
        up.var_lower[frac_var] = floor_val + 1
        down = _Node(lp.objective, node.depth + 1,
                     node.var_lower.copy(), node.var_upper.copy())
        down.var_upper[frac_var] = floor_val
        if up.var_lower[frac_var] <= up.var_upper[frac_var]:
            stack.append(up)
        if down.var_lower[frac_var] <= down.var_upper[frac_var]:
            stack.append(down)

    runtime = time.monotonic() - start
    if incumbent_x is None:
        status = SolveStatus.TIMEOUT if not proven_optimal else SolveStatus.INFEASIBLE
        return Solution(
            status, runtime=runtime, backend="bnb",
            stats=SolveStats(
                backend="bnb",
                status=status.value,
                nodes=nodes,
                simplex_iterations=simplex_iterations,
                solve_time=runtime,
                warm_started=warm_accepted,
            ),
        )

    values = {
        var: float(incumbent_x[i]) for i, var in enumerate(form.variables)
    }
    objective = form.sense * incumbent_obj + form.c0
    status = (
        SolveStatus.OPTIMAL
        if proven_optimal and not stack
        else SolveStatus.FEASIBLE
    )
    if status is SolveStatus.OPTIMAL:
        bound = objective
    else:
        # Dual bound from every unexplored subtree: the open stack plus any
        # subtrees dropped on an LP iteration limit.  An unprocessed root
        # carries a -inf sentinel — it proves nothing, so a single one voids
        # the certificate (bound absent, never the incumbent objective).
        open_bounds = dropped_bounds + [n.bound for n in stack]
        if open_bounds and all(math.isfinite(b) for b in open_bounds):
            bound = form.sense * min(min(open_bounds), incumbent_obj) + form.c0
        else:
            bound = None
    return Solution(
        status=status,
        objective=objective,
        values=values,
        bound=bound,
        runtime=runtime,
        backend="bnb",
        stats=SolveStats(
            backend="bnb",
            status=status.value,
            nodes=nodes,
            simplex_iterations=simplex_iterations,
            solve_time=runtime,
            warm_started=warm_accepted,
            objective=objective,
            lower_bound=bound,
            integrality_gap=relative_gap(objective, bound),
        ),
    )


def _most_fractional(x: np.ndarray, int_mask: np.ndarray) -> int | None:
    """Index of the integer variable farthest from integrality, or None."""
    frac = np.abs(x - np.round(x))
    frac[~int_mask] = 0.0
    best = int(np.argmax(frac))
    if frac[best] <= _INT_TOL:
        return None
    return best


class BnbSession:
    """A persistent branch-and-bound solve attached to one mutable model.

    The session keeps the last incumbent and re-offers it as the warm start
    of the next solve.  :func:`_seed_incumbent` validates it against the
    mutated model, so an incumbent invalidated by a delta (tightened bound,
    new conflict row) is silently dropped rather than trusted.
    """

    def __init__(self, model) -> None:
        self.model = model
        self._incumbent: dict[Variable, float] | None = None

    def apply(self, delta) -> None:
        delta.apply_to(self.model)

    def solve(
        self,
        time_limit: float | None = None,
        mip_gap: float | None = None,
        warm_start: dict[Variable, float] | None = None,
    ) -> Solution:
        start = warm_start if warm_start is not None else self._incumbent
        kwargs: dict = {}
        if time_limit is not None:
            kwargs["time_limit"] = time_limit
        if mip_gap is not None:
            kwargs["mip_gap"] = mip_gap
        if start is not None:
            kwargs["warm_start"] = start
        solution = solve_bnb(self.model, **kwargs)
        if solution.status.has_solution and solution.values:
            self._incumbent = dict(solution.values)
        return solution

    def close(self) -> None:
        self._incumbent = None
