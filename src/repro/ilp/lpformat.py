"""CPLEX LP-format export for debugging and external solvers.

``write_lp(model)`` renders a model as standard LP-format text, readable by
Gurobi/CPLEX/HiGHS command-line tools — handy to diff our per-layer models
against an independent solver or to attach a failing model to a bug
report.
"""

from __future__ import annotations

import math
from pathlib import Path

from .expr import LinExpr, VarType
from .model import Model

_SANITIZE = str.maketrans({c: "_" for c in "[]{}(),; +-*/<>=!\"'&|\\"})


def _name(raw: str) -> str:
    """LP-format identifiers: no brackets/operators, not starting with a
    digit or 'e'/'E' (which would parse as a number)."""
    cleaned = raw.translate(_SANITIZE)
    if not cleaned or cleaned[0].isdigit() or cleaned[0] in "eE.":
        cleaned = "v_" + cleaned
    return cleaned


def _render_expr(expr: LinExpr, name_of: dict) -> str:
    parts: list[str] = []
    for var, coeff in sorted(expr.terms.items(), key=lambda kv: kv[0].index):
        if coeff == 0:
            continue
        sign = "+" if coeff >= 0 else "-"
        magnitude = abs(coeff)
        coeff_txt = "" if magnitude == 1 else f"{magnitude:g} "
        parts.append(f"{sign} {coeff_txt}{name_of[var]}")
    if not parts:
        return "0"
    text = " ".join(parts)
    return text[2:] if text.startswith("+ ") else text


def model_to_lp(model: Model) -> str:
    """Render ``model`` as LP-format text."""
    name_of = {}
    used: set[str] = set()
    for var in model.variables:
        base = _name(var.name)
        candidate = base
        k = 1
        while candidate in used:
            candidate = f"{base}_{k}"
            k += 1
        used.add(candidate)
        name_of[var] = candidate

    lines = [f"\\ model {model.name}"]
    lines.append("Minimize" if model.sense == "min" else "Maximize")
    obj = _render_expr(model.objective, name_of)
    if model.objective.constant:
        obj += f" + {model.objective.constant:g} const_one"
    lines.append(f" obj: {obj}")

    lines.append("Subject To")
    for i, con in enumerate(model.constraints):
        label = _name(con.name) if con.name else f"c{i}"
        sense = {"<=": "<=", ">=": ">=", "==": "="}[con.sense]
        lines.append(
            f" {label}: {_render_expr(con.expr, name_of)} {sense} {con.rhs:g}"
        )
    if model.objective.constant:
        lines.append(" fix_const: const_one = 1")

    lines.append("Bounds")
    for var in model.variables:
        lo = "-inf" if math.isinf(var.lb) else f"{var.lb:g}"
        hi = "+inf" if math.isinf(var.ub) else f"{var.ub:g}"
        lines.append(f" {lo} <= {name_of[var]} <= {hi}")
    if model.objective.constant:
        lines.append(" 0 <= const_one <= 1")

    generals = [
        name_of[v] for v in model.variables if v.vtype is VarType.INTEGER
    ]
    binaries = [
        name_of[v] for v in model.variables if v.vtype is VarType.BINARY
    ]
    if generals:
        lines.append("Generals")
        lines.append(" " + " ".join(generals))
    if binaries:
        lines.append("Binaries")
        lines.append(" " + " ".join(binaries))
    if model.objective.constant:
        lines.append("Generals")
        lines.append(" const_one")
    lines.append("End")
    return "\n".join(lines) + "\n"


def write_lp(model: Model, path: "str | Path") -> None:
    """Write the LP-format rendering of ``model`` to ``path``."""
    Path(path).write_text(model_to_lp(model))
