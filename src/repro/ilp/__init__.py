"""A small integer-linear-programming substrate ("mini-PuLP").

The paper solves its per-layer synthesis model with Gurobi; this package
provides the equivalent functionality offline:

* :mod:`repro.ilp.expr` / :mod:`repro.ilp.model` — an algebraic modeling
  layer: create variables, combine them into linear expressions with normal
  Python arithmetic, post ``<=``/``>=``/``==`` constraints, set an objective.
* :mod:`repro.ilp.highs` — exact MILP solving through SciPy's HiGHS bindings
  (:func:`scipy.optimize.milp`).
* :mod:`repro.ilp.bnb` — a pure-Python branch-and-bound MILP solver over our
  own dense simplex (:mod:`repro.ilp.simplex`); used for cross-checking and
  as a fallback when SciPy is unavailable.

Typical use::

    from repro.ilp import Model

    m = Model("demo", sense="min")
    x = m.binary("x")
    y = m.integer("y", lb=0, ub=10)
    m.add(x + 2 * y >= 3, name="cover")
    m.minimize(5 * x + 3 * y)
    sol = m.solve()
    print(sol.status, sol[x], sol.objective)
"""

from .expr import LinExpr, Variable, VarType
from .model import Constraint, Model, ModelDelta
from .relaxation import relaxation_bound, solve_relaxation
from .solve import SolverSession, attach, available_backends, solve
from .status import Solution, SolveStats, SolveStatus, relative_gap

__all__ = [
    "LinExpr",
    "Variable",
    "VarType",
    "Constraint",
    "Model",
    "ModelDelta",
    "Solution",
    "SolveStats",
    "SolveStatus",
    "SolverSession",
    "attach",
    "solve",
    "solve_relaxation",
    "relaxation_bound",
    "relative_gap",
    "available_backends",
]
