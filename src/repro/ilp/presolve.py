"""MILP presolve: cheap reductions applied before branch and bound.

Implements the classic safe reductions on the bounded row/column form:

1. **Bound tightening from singleton rows** — a constraint touching one
   variable is just a bound; fold it in and drop the row.
2. **Activity-based bound tightening** — for every row, minimum/maximum
   activity of the other terms implies bounds on each variable; integer
   variables round inward.  Iterated to a fixed point (capped).
3. **Redundant row removal** — rows whose worst-case activity already
   satisfies both sides are dropped.
4. **Infeasibility detection** — crossed variable bounds or rows whose best
   possible activity misses the row bounds.

The pure-Python branch-and-bound calls this automatically; HiGHS has its
own presolve, so the scipy backend does not.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .model import StandardForm

_TOL = 1e-9


@dataclass
class PresolveResult:
    """Tightened copy of a standard form plus bookkeeping."""

    form: StandardForm
    infeasible: bool = False
    rows_removed: int = 0
    bounds_tightened: int = 0


def presolve(form: StandardForm, max_rounds: int = 5) -> PresolveResult:
    """Apply the reductions; the input form is not modified."""
    a = form.a_matrix.toarray() if form.a_matrix.shape[0] else np.zeros(
        (0, len(form.variables))
    )
    row_lo = form.row_lower.copy()
    row_hi = form.row_upper.copy()
    var_lo = form.var_lower.copy()
    var_hi = form.var_upper.copy()
    integral = form.integrality.astype(bool)

    keep = np.ones(a.shape[0], dtype=bool)
    tightenings = 0

    def round_inward() -> None:
        var_lo[integral] = np.ceil(var_lo[integral] - _TOL)
        var_hi[integral] = np.floor(var_hi[integral] + _TOL)

    round_inward()
    if np.any(var_lo > var_hi + _TOL):
        return PresolveResult(form, infeasible=True)

    for _ in range(max_rounds):
        changed = False
        for r in range(a.shape[0]):
            if not keep[r]:
                continue
            row = a[r]
            nz = np.nonzero(row)[0]
            if nz.size == 0:
                if row_lo[r] > _TOL or row_hi[r] < -_TOL:
                    return PresolveResult(form, infeasible=True)
                keep[r] = False
                changed = True
                continue

            # Row activity bounds.
            pos = row > 0
            neg = row < 0
            act_min = row[pos] @ var_lo[pos] + row[neg] @ var_hi[neg]
            act_max = row[pos] @ var_hi[pos] + row[neg] @ var_lo[neg]

            if act_min > row_hi[r] + 1e-7 or act_max < row_lo[r] - 1e-7:
                return PresolveResult(form, infeasible=True)
            if act_min >= row_lo[r] - _TOL and act_max <= row_hi[r] + _TOL:
                keep[r] = False  # redundant
                changed = True
                continue

            if nz.size == 1:
                # Singleton row: fold into variable bounds.
                j = nz[0]
                coeff = row[j]
                lo, hi = row_lo[r], row_hi[r]
                if coeff > 0:
                    new_lo = lo / coeff if np.isfinite(lo) else -math.inf
                    new_hi = hi / coeff if np.isfinite(hi) else math.inf
                else:
                    new_lo = hi / coeff if np.isfinite(hi) else -math.inf
                    new_hi = lo / coeff if np.isfinite(lo) else math.inf
                if new_lo > var_lo[j] + _TOL:
                    var_lo[j] = new_lo
                    tightenings += 1
                if new_hi < var_hi[j] - _TOL:
                    var_hi[j] = new_hi
                    tightenings += 1
                keep[r] = False
                changed = True
                round_inward()
                if var_lo[j] > var_hi[j] + _TOL:
                    return PresolveResult(form, infeasible=True)
                continue

            # Activity-based tightening per variable.
            for j in nz:
                coeff = row[j]
                self_min = coeff * (var_lo[j] if coeff > 0 else var_hi[j])
                self_max = coeff * (var_hi[j] if coeff > 0 else var_lo[j])
                rest_min = act_min - self_min
                rest_max = act_max - self_max
                # coeff * x <= row_hi - rest_min ; coeff * x >= row_lo - rest_max
                if np.isfinite(row_hi[r]) and np.isfinite(rest_min):
                    cap = row_hi[r] - rest_min
                    if coeff > 0 and cap / coeff < var_hi[j] - 1e-7:
                        var_hi[j] = cap / coeff
                        tightenings += 1
                        changed = True
                    elif coeff < 0 and cap / coeff > var_lo[j] + 1e-7:
                        var_lo[j] = cap / coeff
                        tightenings += 1
                        changed = True
                if np.isfinite(row_lo[r]) and np.isfinite(rest_max):
                    floor_ = row_lo[r] - rest_max
                    if coeff > 0 and floor_ / coeff > var_lo[j] + 1e-7:
                        var_lo[j] = floor_ / coeff
                        tightenings += 1
                        changed = True
                    elif coeff < 0 and floor_ / coeff < var_hi[j] - 1e-7:
                        var_hi[j] = floor_ / coeff
                        tightenings += 1
                        changed = True
            round_inward()
            if np.any(var_lo > var_hi + _TOL):
                return PresolveResult(form, infeasible=True)
        if not changed:
            break

    from scipy.sparse import csr_matrix

    reduced = StandardForm(
        c=form.c,
        a_matrix=csr_matrix(a[keep]),
        row_lower=row_lo[keep],
        row_upper=row_hi[keep],
        var_lower=var_lo,
        var_upper=var_hi,
        integrality=form.integrality,
        variables=form.variables,
        sense=form.sense,
        c0=form.c0,
    )
    return PresolveResult(
        form=reduced,
        infeasible=False,
        rows_removed=int((~keep).sum()),
        bounds_tightened=tightenings,
    )
