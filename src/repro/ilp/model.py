"""The ILP model container.

A :class:`Model` owns variables and constraints, and exports itself to the
standard matrix form consumed by the solver backends::

    minimize    c @ x
    subject to  lhs <= A @ x <= rhs
                lb <= x <= ub
                x[i] integral for integer/binary variables
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..errors import ModelError
from .expr import LinExpr, Number, Variable, VarType
from .status import Solution

if TYPE_CHECKING:  # pragma: no cover
    from scipy.sparse import csr_matrix


@dataclass
class Constraint:
    """A linear constraint ``expr (<=|>=|==) rhs``.

    Built by comparing expressions (``x + y <= 3``); the relational operators
    on :class:`LinExpr` normalize the constant onto the right-hand side.
    """

    expr: LinExpr
    sense: str  # "<=", ">=", "=="
    rhs: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.sense not in ("<=", ">=", "=="):
            raise ModelError(f"invalid constraint sense {self.sense!r}")

    def coefficient(self, var: Variable) -> float:
        """Coefficient of ``var`` on the constraint's left-hand side."""
        return self.expr.terms.get(var, 0.0)

    def satisfied(self, assignment: dict[Variable, float], tol: float = 1e-6) -> bool:
        """Check the constraint under a concrete assignment."""
        lhs = self.expr.value(assignment)
        if self.sense == "<=":
            return lhs <= self.rhs + tol
        if self.sense == ">=":
            return lhs >= self.rhs - tol
        return abs(lhs - self.rhs) <= tol

    def __repr__(self) -> str:
        label = f"{self.name}: " if self.name else ""
        return f"{label}{self.expr!r} {self.sense} {self.rhs:g}"


@dataclass
class StandardForm:
    """Matrix form of a model (see module docstring)."""

    c: np.ndarray
    a_matrix: "csr_matrix"
    row_lower: np.ndarray
    row_upper: np.ndarray
    var_lower: np.ndarray
    var_upper: np.ndarray
    integrality: np.ndarray  # 1 where the variable must be integral
    variables: list[Variable]
    sense: int  # +1 minimize, -1 maximize (c is already negated for max)
    #: constant term of the objective (added back, unsigned, by backends).
    c0: float = 0.0


class Model:
    """An ILP model: variables + constraints + linear objective.

    >>> m = Model("tiny")
    >>> x = m.binary("x")
    >>> y = m.integer("y", lb=0, ub=4)
    >>> _ = m.add(x + y >= 3)
    >>> m.minimize(2 * x + y)
    >>> sol = m.solve()
    >>> sol.objective
    3.0
    """

    def __init__(self, name: str = "model", sense: str = "min") -> None:
        if sense not in ("min", "max"):
            raise ModelError(f"sense must be 'min' or 'max', got {sense!r}")
        self.name = name
        self.sense = sense
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self.objective: LinExpr = LinExpr()
        self._names: set[str] = set()
        #: monotone revision counter, bumped by every mutation (variable or
        #: constraint added/removed, coefficient/bound/objective updated).
        self.revision: int = 0
        # Append-only mutation log consumed by solver sessions; each session
        # keeps its own cursor into this list.  Entries:
        #   ("add_var", var) ("add_con", con) ("remove_con", con)
        #   ("row", con)     ("var", var)     ("obj",)
        self._log: list[tuple] = []
        self._named: dict[str, Constraint] = {}

    def _record(self, *entry) -> None:
        self.revision += 1
        self._log.append(entry)

    # -- variable creation ---------------------------------------------------

    def _new_var(self, name: str, vtype: VarType, lb: Number, ub: Number) -> Variable:
        if not name:
            name = f"_v{len(self.variables)}"
        if name in self._names:
            raise ModelError(f"duplicate variable name {name!r}")
        self._names.add(name)
        var = Variable(name, len(self.variables), vtype, lb, ub)
        self.variables.append(var)
        self._record("add_var", var)
        return var

    def binary(self, name: str = "") -> Variable:
        """Create a 0/1 variable."""
        return self._new_var(name, VarType.BINARY, 0, 1)

    def integer(
        self, name: str = "", lb: Number = 0, ub: Number = math.inf
    ) -> Variable:
        """Create an integer variable with bounds ``[lb, ub]``."""
        return self._new_var(name, VarType.INTEGER, lb, ub)

    def continuous(
        self, name: str = "", lb: Number = 0, ub: Number = math.inf
    ) -> Variable:
        """Create a continuous variable with bounds ``[lb, ub]``."""
        return self._new_var(name, VarType.CONTINUOUS, lb, ub)

    # -- constraints & objective ----------------------------------------------

    def add(self, constraint: Constraint, name: str = "") -> Constraint:
        """Register a constraint (optionally named) and return it."""
        if not isinstance(constraint, Constraint):
            raise ModelError(
                "Model.add expects a Constraint (did the comparison return bool?)"
            )
        for var in constraint.expr.terms:
            if var.index >= len(self.variables) or self.variables[var.index] is not var:
                raise ModelError(
                    f"constraint references foreign variable {var.name!r}"
                )
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        if constraint.name:
            # Names are not required to be unique; lookup returns the most
            # recently added constraint with the name.
            self._named[constraint.name] = constraint
        self._record("add_con", constraint)
        return constraint

    # -- mutation (delta encoding) ------------------------------------------

    def constraint(self, name: str) -> Constraint:
        """Look up a named constraint (the most recently added on duplicates)."""
        con = self._named.get(name)
        if con is None:
            raise ModelError(f"no constraint named {name!r}")
        return con

    def has_constraint(self, name: str) -> bool:
        return name in self._named

    def remove_constraint(self, name: str) -> Constraint:
        """Remove a named constraint; removing it twice is a :class:`ModelError`."""
        con = self._named.pop(name, None)
        if con is None:
            raise ModelError(f"no constraint named {name!r} (already removed?)")
        for i, candidate in enumerate(self.constraints):
            if candidate is con:
                del self.constraints[i]
                break
        self._record("remove_con", con)
        return con

    def set_rhs(self, name: str, rhs: Number) -> None:
        """Update the right-hand side of a named constraint."""
        con = self.constraint(name)
        con.rhs = float(rhs)
        self._record("row", con)

    def set_coefficient(self, name: str, var: Variable, coeff: Number) -> None:
        """Update ``var``'s coefficient in a named constraint."""
        self._check_owned(var)
        con = self.constraint(name)
        con.expr.set_term(var, coeff)
        self._record("row", con)

    def set_variable_bounds(
        self, var: Variable, lb: Number | None = None, ub: Number | None = None
    ) -> None:
        """Update a variable's bounds in place."""
        self._check_owned(var)
        new_lb = var.lb if lb is None else float(lb)
        new_ub = var.ub if ub is None else float(ub)
        if new_lb > new_ub:
            raise ModelError(f"variable {var.name!r}: lb {new_lb} > ub {new_ub}")
        var.lb = new_lb
        var.ub = new_ub
        self._record("var", var)

    def set_objective_coefficient(self, var: Variable, coeff: Number) -> None:
        """Update ``var``'s coefficient in the objective."""
        self._check_owned(var)
        self.objective.set_term(var, coeff)
        self._record("obj")

    def set_objective_constant(self, value: Number) -> None:
        """Update the objective's constant term."""
        self.objective.constant = float(value)
        self._record("obj")

    def _check_owned(self, var: Variable) -> None:
        if not isinstance(var, Variable):
            raise ModelError(f"expected a Variable, got {type(var).__name__}")
        if var.index >= len(self.variables) or self.variables[var.index] is not var:
            raise ModelError(f"foreign variable {var.name!r}")

    def minimize(self, expr: LinExpr | Variable | Number) -> None:
        self.sense = "min"
        self._set_objective(expr)

    def maximize(self, expr: LinExpr | Variable | Number) -> None:
        self.sense = "max"
        self._set_objective(expr)

    def _set_objective(self, expr: LinExpr | Variable | Number) -> None:
        if isinstance(expr, Variable):
            expr = expr._expr()
        elif isinstance(expr, (int, float)):
            expr = LinExpr({}, expr)
        self.objective = expr

    # -- introspection ----------------------------------------------------------

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def num_integer_variables(self) -> int:
        return sum(
            1 for v in self.variables if v.vtype in (VarType.BINARY, VarType.INTEGER)
        )

    def check(self, assignment: dict[Variable, float], tol: float = 1e-6) -> list[str]:
        """Return human-readable descriptions of all violated constraints."""
        violations = []
        for i, con in enumerate(self.constraints):
            if not con.satisfied(assignment, tol):
                lhs = con.expr.value(assignment)
                violations.append(
                    f"constraint {con.name or i}: {lhs:g} {con.sense} {con.rhs:g}"
                )
        for var in self.variables:
            val = assignment.get(var)
            if val is None:
                violations.append(f"variable {var.name} unassigned")
                continue
            if val < var.lb - tol or val > var.ub + tol:
                violations.append(f"variable {var.name}={val:g} outside [{var.lb}, {var.ub}]")
            if var.vtype is not VarType.CONTINUOUS and abs(val - round(val)) > 1e-4:
                violations.append(f"variable {var.name}={val:g} not integral")
        return violations

    # -- export -------------------------------------------------------------

    def to_standard_form(self, relax_integrality: bool = False) -> StandardForm:
        """Export to the matrix form used by the backends.

        With ``relax_integrality=True`` every variable is exported as
        continuous — the LP relaxation of the model, whose optimum is a
        certified lower bound on the (minimization) ILP objective.
        """
        from scipy.sparse import csr_matrix

        n = len(self.variables)
        sign = 1 if self.sense == "min" else -1

        c = np.zeros(n)
        for var, coeff in self.objective.terms.items():
            c[var.index] = sign * coeff

        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        row_lower = np.empty(len(self.constraints))
        row_upper = np.empty(len(self.constraints))
        for r, con in enumerate(self.constraints):
            for var, coeff in con.expr.terms.items():
                if coeff != 0.0:
                    rows.append(r)
                    cols.append(var.index)
                    data.append(coeff)
            if con.sense == "<=":
                row_lower[r], row_upper[r] = -np.inf, con.rhs
            elif con.sense == ">=":
                row_lower[r], row_upper[r] = con.rhs, np.inf
            else:
                row_lower[r] = row_upper[r] = con.rhs

        a_matrix = csr_matrix(
            (data, (rows, cols)), shape=(len(self.constraints), n)
        )
        var_lower = np.array([v.lb for v in self.variables], dtype=float)
        var_upper = np.array([v.ub for v in self.variables], dtype=float)
        if relax_integrality:
            integrality = np.zeros(n, dtype=int)
        else:
            integrality = np.array(
                [0 if v.vtype is VarType.CONTINUOUS else 1 for v in self.variables]
            )
        return StandardForm(
            c=c,
            a_matrix=a_matrix,
            row_lower=row_lower,
            row_upper=row_upper,
            var_lower=var_lower,
            var_upper=var_upper,
            integrality=integrality,
            variables=list(self.variables),
            sense=sign,
            c0=self.objective.constant,
        )

    # -- solving ------------------------------------------------------------

    def solve(
        self,
        backend: str = "auto",
        time_limit: float | None = None,
        mip_gap: float | None = None,
        warm_start: dict[Variable, float] | None = None,
    ) -> Solution:
        """Solve the model; see :func:`repro.ilp.solve.solve`."""
        from .solve import solve as _solve

        return _solve(
            self,
            backend=backend,
            time_limit=time_limit,
            mip_gap=mip_gap,
            warm_start=warm_start,
        )

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, vars={self.num_variables}, "
            f"cons={self.num_constraints}, sense={self.sense})"
        )


class ModelDelta:
    """A recorded batch of model mutations.

    Deltas are built by an encoder (e.g. ``encode_layer_delta``) without a
    model in hand and applied later — either directly via :meth:`apply_to`
    or through :meth:`SolverSession.apply <repro.ilp.solve.SolverSession>`,
    which lets the session re-extract only the dirtied rows.
    """

    def __init__(self) -> None:
        self._ops: list[tuple] = []

    def __len__(self) -> int:
        return len(self._ops)

    @property
    def empty(self) -> bool:
        return not self._ops

    def add(self, constraint: Constraint, name: str = "") -> None:
        self._ops.append(("add", constraint, name))

    def remove(self, name: str) -> None:
        self._ops.append(("remove", name))

    def set_rhs(self, name: str, rhs: Number) -> None:
        self._ops.append(("rhs", name, rhs))

    def set_coefficient(self, name: str, var: Variable, coeff: Number) -> None:
        self._ops.append(("coeff", name, var, coeff))

    def set_variable_bounds(
        self, var: Variable, lb: Number | None = None, ub: Number | None = None
    ) -> None:
        self._ops.append(("bounds", var, lb, ub))

    def set_objective_coefficient(self, var: Variable, coeff: Number) -> None:
        self._ops.append(("obj_coeff", var, coeff))

    def set_objective_constant(self, value: Number) -> None:
        self._ops.append(("obj_const", value))

    def apply_to(self, model: Model) -> None:
        """Replay the recorded mutations onto ``model`` in order."""
        for op in self._ops:
            kind = op[0]
            if kind == "add":
                model.add(op[1], name=op[2])
            elif kind == "remove":
                model.remove_constraint(op[1])
            elif kind == "rhs":
                model.set_rhs(op[1], op[2])
            elif kind == "coeff":
                model.set_coefficient(op[1], op[2], op[3])
            elif kind == "bounds":
                model.set_variable_bounds(op[1], lb=op[2], ub=op[3])
            elif kind == "obj_coeff":
                model.set_objective_coefficient(op[1], op[2])
            else:
                model.set_objective_constant(op[1])

    def __repr__(self) -> str:
        return f"ModelDelta(ops={len(self._ops)})"
