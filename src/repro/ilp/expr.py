"""Linear expressions and decision variables.

A :class:`LinExpr` is an immutable-by-convention mapping from variables to
coefficients plus a constant term.  Variables are created through
:meth:`repro.ilp.model.Model.binary` / ``integer`` / ``continuous`` and
support standard arithmetic, so the paper's constraints transcribe almost
literally, e.g. constraint (6)::

    model.add(d[j, "ring"] - od[i, j] + 1 >= o.requires_ring)
"""

from __future__ import annotations

import enum
import math
from collections.abc import Iterable
from typing import Union

from ..errors import ModelError

Number = Union[int, float]


class VarType(enum.Enum):
    """Domain of a decision variable."""

    BINARY = "binary"
    INTEGER = "integer"
    CONTINUOUS = "continuous"


class Variable:
    """A single decision variable.

    Instances are created by a :class:`~repro.ilp.model.Model`, which assigns
    the ``index`` used by the solver backends.  Arithmetic on variables
    produces :class:`LinExpr` objects.
    """

    __slots__ = ("name", "index", "vtype", "lb", "ub")

    def __init__(
        self,
        name: str,
        index: int,
        vtype: VarType,
        lb: Number,
        ub: Number,
    ) -> None:
        if lb > ub:
            raise ModelError(f"variable {name!r}: lb {lb} > ub {ub}")
        self.name = name
        self.index = index
        self.vtype = vtype
        self.lb = lb
        self.ub = ub

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    def __hash__(self) -> int:
        return hash((id(self),))

    # -- arithmetic (delegate to LinExpr) ---------------------------------

    def _expr(self) -> "LinExpr":
        return LinExpr({self: 1.0}, 0.0)

    def __add__(self, other: "Variable | LinExpr | Number") -> "LinExpr":
        return self._expr() + other

    __radd__ = __add__

    def __sub__(self, other: "Variable | LinExpr | Number") -> "LinExpr":
        return self._expr() - other

    def __rsub__(self, other: "Variable | LinExpr | Number") -> "LinExpr":
        return (-self._expr()) + other

    def __mul__(self, scalar: Number) -> "LinExpr":
        return self._expr() * scalar

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self._expr() * -1

    def __le__(self, other):  # type: ignore[override]
        return self._expr() <= other

    def __ge__(self, other):  # type: ignore[override]
        return self._expr() >= other

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, (Variable, LinExpr, int, float)):
            return self._expr() == other
        return NotImplemented


class LinExpr:
    """An affine expression ``sum(coeff_i * var_i) + constant``."""

    __slots__ = ("terms", "constant")

    def __init__(
        self, terms: dict[Variable, float] | None = None, constant: Number = 0.0
    ) -> None:
        self.terms: dict[Variable, float] = dict(terms or {})
        self.constant = float(constant)

    # -- construction helpers ---------------------------------------------

    @staticmethod
    def sum(items: Iterable["Variable | LinExpr | Number"]) -> "LinExpr":
        """Sum an iterable of variables/expressions/numbers.

        Much faster than repeated ``+`` for long sums (single dict build).
        """
        terms: dict[Variable, float] = {}
        constant = 0.0
        for item in items:
            if isinstance(item, Variable):
                terms[item] = terms.get(item, 0.0) + 1.0
            elif isinstance(item, LinExpr):
                for var, coeff in item.terms.items():
                    terms[var] = terms.get(var, 0.0) + coeff
                constant += item.constant
            elif isinstance(item, (int, float)):
                constant += item
            else:
                raise ModelError(f"cannot sum term of type {type(item).__name__}")
        return LinExpr(terms, constant)

    def copy(self) -> "LinExpr":
        return LinExpr(dict(self.terms), self.constant)

    # -- in-place mutation (delta encoding) --------------------------------

    def set_term(self, var: Variable, coeff: Number) -> None:
        """Set the coefficient of ``var`` in place.

        A coefficient of exactly ``0.0`` keeps the term: the variable stays
        referenced by the expression (so a later update can restore it) and
        the standard-form export skips zero coefficients anyway.
        """
        if not isinstance(var, Variable):
            raise ModelError(f"set_term expects a Variable, got {type(var).__name__}")
        self.terms[var] = float(coeff)

    def add_term(self, var: Variable, delta: Number) -> None:
        """Add ``delta`` to the coefficient of ``var`` in place."""
        if not isinstance(var, Variable):
            raise ModelError(f"add_term expects a Variable, got {type(var).__name__}")
        self.terms[var] = self.terms.get(var, 0.0) + float(delta)

    # -- arithmetic ---------------------------------------------------------

    def _coerce(self, other: "Variable | LinExpr | Number") -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Variable):
            return other._expr()
        if isinstance(other, (int, float)):
            return LinExpr({}, other)
        raise ModelError(f"cannot combine LinExpr with {type(other).__name__}")

    def __add__(self, other: "Variable | LinExpr | Number") -> "LinExpr":
        rhs = self._coerce(other)
        terms = dict(self.terms)
        for var, coeff in rhs.terms.items():
            terms[var] = terms.get(var, 0.0) + coeff
        return LinExpr(terms, self.constant + rhs.constant)

    __radd__ = __add__

    def __sub__(self, other: "Variable | LinExpr | Number") -> "LinExpr":
        return self + (self._coerce(other) * -1)

    def __rsub__(self, other: "Variable | LinExpr | Number") -> "LinExpr":
        return (self * -1) + other

    def __mul__(self, scalar: Number) -> "LinExpr":
        if not isinstance(scalar, (int, float)):
            raise ModelError("LinExpr can only be scaled by a number")
        return LinExpr(
            {v: c * scalar for v, c in self.terms.items()}, self.constant * scalar
        )

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self * -1

    # -- relational operators build constraints ----------------------------

    def __le__(self, other):
        from .model import Constraint

        diff = self - self._coerce(other)
        return Constraint(LinExpr(diff.terms), "<=", -diff.constant)

    def __ge__(self, other):
        from .model import Constraint

        diff = self - self._coerce(other)
        return Constraint(LinExpr(diff.terms), ">=", -diff.constant)

    def __eq__(self, other):  # type: ignore[override]
        if isinstance(other, (Variable, LinExpr, int, float)):
            from .model import Constraint

            diff = self - self._coerce(other)
            return Constraint(LinExpr(diff.terms), "==", -diff.constant)
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    # -- evaluation -----------------------------------------------------------

    def value(self, assignment: dict[Variable, float]) -> float:
        """Evaluate under a variable assignment (missing vars are errors)."""
        total = self.constant
        for var, coeff in self.terms.items():
            if var not in assignment:
                raise ModelError(f"no value for variable {var.name!r}")
            total += coeff * assignment[var]
        return total

    def __repr__(self) -> str:
        parts = [
            f"{coeff:+g}*{var.name}"
            for var, coeff in sorted(self.terms.items(), key=lambda kv: kv[0].index)
            if not math.isclose(coeff, 0.0)
        ]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)
