"""LP-relaxation solving: certified lower bounds for ILP models.

Relaxing integrality turns the layer ILP into an LP whose optimum is a
proven lower bound on the ILP objective (for minimization models).  The
bound is cheap — polynomial LP instead of exponential branch and bound —
and certifies every schedule the heuristics produce: "within X% of the
layer optimum" instead of a blind quality flag.

Only an *optimal* LP solve certifies anything.  A time- or iteration-
limited LP has a primal value but no proof, so those solves report
``TIMEOUT`` with no bound attached.

Certificates are only issued on fully separated models.  A lazily built
layer model (``build_layer_model(..., lazy_conflicts=True)``) may be
missing conflict rows; callers must call
:func:`repro.hls.milp_model.ensure_fully_separated` before asking
:func:`relaxation_bound` for a certificate.  (The relaxed model's LP bound
would still be a valid lower bound — fewer rows is itself a relaxation —
but the invariant keeps every recorded certificate attributable to the
complete paper encoding.)
"""

from __future__ import annotations

import math
import time

import numpy as np

from ..errors import SolverError
from .model import Model
from .simplex import LPStatus, solve_lp
from .solve import available_backends
from .status import Solution, SolveStats, SolveStatus


def solve_relaxation(
    model: Model,
    backend: str = "auto",
    time_limit: float | None = None,
    max_iterations: int = 20000,
) -> Solution:
    """Solve the LP relaxation of ``model``.

    Returns a :class:`Solution` whose ``values`` are the (generally
    fractional) LP optimum and whose ``bound`` equals ``objective`` when
    the solve proved optimality — that number is a certified lower bound
    on the integer model's objective.  ``backend`` follows the MIP
    dispatch convention: ``"highs"``, ``"bnb"`` (the pure-Python simplex),
    or ``"auto"`` (HiGHS when available).

    ``time_limit`` caps the HiGHS solve; the pure-Python simplex is capped
    by ``max_iterations`` instead (it exposes no wall clock).
    """
    if backend == "auto":
        backend = available_backends()[0]
    if backend == "highs":
        return _relax_highs(model, time_limit)
    if backend == "bnb":
        return _relax_simplex(model, max_iterations)
    raise SolverError(f"unknown relaxation backend {backend!r}")


def relaxation_bound(
    model: Model,
    backend: str = "auto",
    time_limit: float | None = None,
    max_iterations: int = 20000,
) -> Solution | None:
    """Solve the LP relaxation; the optimum certifies a lower bound.

    Returns the LP :class:`Solution` when it solved to optimality with a
    finite objective, else ``None`` — a time- or iteration-limited LP (or a
    solver failure) proves nothing and must not be reported as a bound.
    """
    try:
        relaxed = solve_relaxation(
            model,
            backend=backend,
            time_limit=time_limit,
            max_iterations=max_iterations,
        )
    except SolverError:
        return None
    if relaxed.status is not SolveStatus.OPTIMAL or relaxed.objective is None:
        return None
    if not math.isfinite(relaxed.objective):
        return None
    return relaxed


def _relax_highs(model: Model, time_limit: float | None) -> Solution:
    from scipy.optimize import Bounds, LinearConstraint, milp

    start = time.monotonic()
    form = model.to_standard_form(relax_integrality=True)
    options: dict[str, float | bool] = {"disp": False}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    constraints = None
    if form.a_matrix.shape[0]:
        constraints = LinearConstraint(form.a_matrix, form.row_lower, form.row_upper)
    result = milp(
        c=form.c,
        constraints=constraints,
        integrality=form.integrality,
        bounds=Bounds(form.var_lower, form.var_upper),
        options=options,
    )
    runtime = time.monotonic() - start
    if result.status == 2:
        return _lp_solution(SolveStatus.INFEASIBLE, runtime, "lp-highs")
    if result.status == 3:
        return _lp_solution(SolveStatus.UNBOUNDED, runtime, "lp-highs")
    if result.x is None or result.status != 0:
        # A limit-hit LP has a primal value but no optimality proof — it
        # certifies nothing, so no bound is reported.
        if result.status == 1 or result.x is not None:
            return _lp_solution(SolveStatus.TIMEOUT, runtime, "lp-highs")
        raise SolverError(
            f"HiGHS LP relaxation failed: status={result.status} {result.message}"
        )
    x = np.asarray(result.x, dtype=float)
    objective = form.sense * float(form.c @ x) + form.c0
    values = {var: float(x[i]) for i, var in enumerate(form.variables)}
    return _lp_solution(
        SolveStatus.OPTIMAL, runtime, "lp-highs",
        objective=objective, values=values,
    )


def _relax_simplex(model: Model, max_iterations: int) -> Solution:
    start = time.monotonic()
    form = model.to_standard_form(relax_integrality=True)
    a_dense = (
        form.a_matrix.toarray()
        if form.a_matrix.shape[0]
        else np.zeros((0, len(form.variables)))
    )
    lp = solve_lp(
        form.c, a_dense, form.row_lower, form.row_upper,
        form.var_lower, form.var_upper,
        max_iterations=max_iterations,
    )
    runtime = time.monotonic() - start
    if lp.status is LPStatus.INFEASIBLE:
        return _lp_solution(
            SolveStatus.INFEASIBLE, runtime, "lp-simplex",
            iterations=lp.iterations,
        )
    if lp.status is LPStatus.UNBOUNDED:
        return _lp_solution(
            SolveStatus.UNBOUNDED, runtime, "lp-simplex",
            iterations=lp.iterations,
        )
    if lp.status is LPStatus.ITERATION_LIMIT or lp.x is None:
        return _lp_solution(
            SolveStatus.TIMEOUT, runtime, "lp-simplex",
            iterations=lp.iterations,
        )
    objective = form.sense * float(lp.objective) + form.c0
    values = {var: float(lp.x[i]) for i, var in enumerate(form.variables)}
    return _lp_solution(
        SolveStatus.OPTIMAL, runtime, "lp-simplex",
        objective=objective, values=values, iterations=lp.iterations,
    )


def _lp_solution(
    status: SolveStatus,
    runtime: float,
    backend: str,
    objective: float | None = None,
    values: dict | None = None,
    iterations: int = 0,
) -> Solution:
    bound = None
    if status is SolveStatus.OPTIMAL and objective is not None:
        if math.isfinite(objective):
            bound = objective
    return Solution(
        status=status,
        objective=objective,
        values=values or {},
        bound=bound,
        runtime=runtime,
        backend=backend,
        stats=SolveStats(
            backend=backend,
            status=status.value,
            simplex_iterations=iterations,
            solve_time=runtime,
            lower_bound=bound,
            integrality_gap=0.0 if bound is not None else None,
        ),
    )
