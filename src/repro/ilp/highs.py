"""Exact MILP solving through SciPy's HiGHS bindings.

This plays the role of Gurobi in the paper's toolchain: an exact
branch-and-cut MILP solver.  All benchmark tables are produced with this
backend; the pure-Python solver (:mod:`repro.ilp.bnb`) cross-checks it on
small instances.
"""

from __future__ import annotations

import math
import time

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp

from ..errors import SolverError
from .expr import Variable
from .model import Model
from .status import Solution, SolveStats, SolveStatus, relative_gap


def solve_highs(
    model: Model,
    time_limit: float | None = None,
    mip_gap: float | None = None,
    warm_start: dict[Variable, float] | None = None,
) -> Solution:
    """Solve ``model`` with ``scipy.optimize.milp`` (HiGHS).

    ``warm_start`` is accepted for interface parity with the pure-Python
    backend but ignored: SciPy's ``milp`` wrapper exposes no incumbent
    injection (HiGHS itself would support it).
    """
    start = time.monotonic()
    form = model.to_standard_form()

    options: dict[str, float | bool] = {"disp": False}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    if mip_gap is not None:
        options["mip_rel_gap"] = float(mip_gap)

    constraints = None
    if form.a_matrix.shape[0]:
        constraints = LinearConstraint(form.a_matrix, form.row_lower, form.row_upper)

    result = milp(
        c=form.c,
        constraints=constraints,
        integrality=form.integrality,
        bounds=Bounds(form.var_lower, form.var_upper),
        options=options,
    )
    runtime = time.monotonic() - start

    def _stats(status: SolveStatus) -> SolveStats:
        return SolveStats(
            backend="highs",
            status=status.value,
            nodes=int(getattr(result, "mip_node_count", 0) or 0),
            solve_time=runtime,
        )

    # scipy/HiGHS status codes: 0 optimal, 1 iteration/time limit,
    # 2 infeasible, 3 unbounded, 4 other.
    if result.status == 2:
        return Solution(SolveStatus.INFEASIBLE, runtime=runtime, backend="highs",
                        stats=_stats(SolveStatus.INFEASIBLE))
    if result.status == 3:
        return Solution(SolveStatus.UNBOUNDED, runtime=runtime, backend="highs",
                        stats=_stats(SolveStatus.UNBOUNDED))
    if result.x is None:
        if result.status == 1:
            return Solution(SolveStatus.TIMEOUT, runtime=runtime, backend="highs",
                            stats=_stats(SolveStatus.TIMEOUT))
        raise SolverError(f"HiGHS failed: status={result.status} {result.message}")

    x = np.asarray(result.x, dtype=float)
    int_mask = form.integrality.astype(bool)
    x[int_mask] = np.round(x[int_mask])
    values = {var: float(x[i]) for i, var in enumerate(form.variables)}
    objective = form.sense * float(form.c @ x) + form.c0
    bound = None
    dual = getattr(result, "mip_dual_bound", None)
    if dual is not None and math.isfinite(dual):
        bound = form.sense * float(dual) + form.c0
    status = SolveStatus.OPTIMAL if result.status == 0 else SolveStatus.FEASIBLE
    if bound is None and status is SolveStatus.OPTIMAL:
        # Pure-LP models report no dual bound; optimality certifies one.
        bound = objective
    stats = _stats(status)
    stats.objective = objective
    stats.lower_bound = bound
    # Prefer the solver's own achieved gap; fall back to the bound we have.
    achieved = getattr(result, "mip_gap", None)
    if achieved is not None and math.isfinite(achieved) and bound is not None:
        stats.integrality_gap = max(0.0, float(achieved))
    else:
        stats.integrality_gap = relative_gap(objective, bound)
    return Solution(
        status=status,
        objective=objective,
        values=values,
        bound=bound,
        runtime=runtime,
        backend="highs",
        stats=stats,
    )
