"""Exact MILP solving through SciPy's HiGHS bindings.

This plays the role of Gurobi in the paper's toolchain: an exact
branch-and-cut MILP solver.  All benchmark tables are produced with this
backend; the pure-Python solver (:mod:`repro.ilp.bnb`) cross-checks it on
small instances.

Two entry points share one solve core:

* :func:`solve_highs` — one-shot: export the model to standard form, solve.
* :class:`HighsSession` — persistent: cache the extracted rows and, between
  solves, re-extract only the rows dirtied by model mutations (consuming
  the model's mutation log).  The assembled standard form is identical to a
  fresh ``to_standard_form()`` export, so session solves are byte-identical
  to one-shot solves of the same model state.
"""

from __future__ import annotations

import math
import time

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import csr_matrix

from ..errors import SolverError
from .expr import Variable, VarType
from .model import Constraint, Model, ModelDelta, StandardForm
from .status import Solution, SolveStats, SolveStatus, relative_gap


def _solve_form(
    form: StandardForm,
    time_limit: float | None = None,
    mip_gap: float | None = None,
) -> Solution:
    """Solve a standard-form model with ``scipy.optimize.milp`` (HiGHS)."""
    start = time.monotonic()
    options: dict[str, float | bool] = {"disp": False}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    if mip_gap is not None:
        options["mip_rel_gap"] = float(mip_gap)

    constraints = None
    if form.a_matrix.shape[0]:
        constraints = LinearConstraint(form.a_matrix, form.row_lower, form.row_upper)

    result = milp(
        c=form.c,
        constraints=constraints,
        integrality=form.integrality,
        bounds=Bounds(form.var_lower, form.var_upper),
        options=options,
    )
    runtime = time.monotonic() - start

    def _stats(status: SolveStatus) -> SolveStats:
        return SolveStats(
            backend="highs",
            status=status.value,
            nodes=int(getattr(result, "mip_node_count", 0) or 0),
            solve_time=runtime,
        )

    # scipy/HiGHS status codes: 0 optimal, 1 iteration/time limit,
    # 2 infeasible, 3 unbounded, 4 other.
    if result.status == 2:
        return Solution(SolveStatus.INFEASIBLE, runtime=runtime, backend="highs",
                        stats=_stats(SolveStatus.INFEASIBLE))
    if result.status == 3:
        return Solution(SolveStatus.UNBOUNDED, runtime=runtime, backend="highs",
                        stats=_stats(SolveStatus.UNBOUNDED))
    if result.x is None:
        if result.status == 1:
            return Solution(SolveStatus.TIMEOUT, runtime=runtime, backend="highs",
                            stats=_stats(SolveStatus.TIMEOUT))
        raise SolverError(f"HiGHS failed: status={result.status} {result.message}")

    x = np.asarray(result.x, dtype=float)
    int_mask = form.integrality.astype(bool)
    x[int_mask] = np.round(x[int_mask])
    values = {var: float(x[i]) for i, var in enumerate(form.variables)}
    objective = form.sense * float(form.c @ x) + form.c0
    bound = None
    dual = getattr(result, "mip_dual_bound", None)
    if dual is not None and math.isfinite(dual):
        bound = form.sense * float(dual) + form.c0
    status = SolveStatus.OPTIMAL if result.status == 0 else SolveStatus.FEASIBLE
    if bound is None and status is SolveStatus.OPTIMAL:
        # Pure-LP models report no dual bound; optimality certifies one.
        bound = objective
    stats = _stats(status)
    stats.objective = objective
    stats.lower_bound = bound
    # Prefer the solver's own achieved gap; fall back to the bound we have.
    achieved = getattr(result, "mip_gap", None)
    if achieved is not None and math.isfinite(achieved) and bound is not None:
        stats.integrality_gap = max(0.0, float(achieved))
    else:
        stats.integrality_gap = relative_gap(objective, bound)
    return Solution(
        status=status,
        objective=objective,
        values=values,
        bound=bound,
        runtime=runtime,
        backend="highs",
        stats=stats,
    )


def solve_highs(
    model: Model,
    time_limit: float | None = None,
    mip_gap: float | None = None,
    warm_start: dict[Variable, float] | None = None,
) -> Solution:
    """Solve ``model`` with ``scipy.optimize.milp`` (HiGHS).

    ``warm_start`` is accepted for interface parity with the pure-Python
    backend but ignored: SciPy's ``milp`` wrapper exposes no incumbent
    injection (HiGHS itself would support it).
    """
    del warm_start
    return _solve_form(model.to_standard_form(), time_limit, mip_gap)


def _extract_row(con: Constraint) -> tuple[list[int], list[float]]:
    cols: list[int] = []
    vals: list[float] = []
    for var, coeff in con.expr.terms.items():
        if coeff != 0.0:
            cols.append(var.index)
            vals.append(coeff)
    return cols, vals


class HighsSession:
    """A persistent HiGHS solve attached to one mutable model.

    The session extracts every constraint row once at attach time; between
    solves it consumes the model's mutation log and re-extracts only the
    dirtied rows.  Variable bounds, integrality, and the objective vector
    are cheap (O(num variables)) and rebuilt per solve.
    """

    def __init__(self, model: Model) -> None:
        self.model = model
        self._cons: list[Constraint] = []
        self._rows: list[tuple[list[int], list[float]]] = []
        self._pos: dict[int, int] = {}
        self._extract_all()
        self._cursor = len(model._log)

    def _extract_all(self) -> None:
        self._cons = list(self.model.constraints)
        self._rows = [_extract_row(con) for con in self._cons]
        self._pos = {id(con): i for i, con in enumerate(self._cons)}

    def apply(self, delta: ModelDelta) -> None:
        """Apply a delta to the attached model (synced lazily at solve)."""
        delta.apply_to(self.model)

    def _sync(self) -> None:
        log = self.model._log
        for entry in log[self._cursor:]:
            kind = entry[0]
            if kind == "add_con":
                con = entry[1]
                self._pos[id(con)] = len(self._cons)
                self._cons.append(con)
                self._rows.append(_extract_row(con))
            elif kind == "remove_con":
                con = entry[1]
                i = self._pos.pop(id(con))
                del self._cons[i]
                del self._rows[i]
                for j in range(i, len(self._cons)):
                    self._pos[id(self._cons[j])] = j
            elif kind == "row":
                con = entry[1]
                self._rows[self._pos[id(con)]] = _extract_row(con)
            # "add_var" / "var" / "obj" entries need no row work: variable
            # bounds, integrality, and the objective are rebuilt per solve.
        self._cursor = len(log)

    def _form(self, relax_integrality: bool = False) -> StandardForm:
        self._sync()
        model = self.model
        n = len(model.variables)
        sign = 1 if model.sense == "min" else -1

        c = np.zeros(n)
        for var, coeff in model.objective.terms.items():
            c[var.index] = sign * coeff

        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        row_lower = np.empty(len(self._cons))
        row_upper = np.empty(len(self._cons))
        for r, con in enumerate(self._cons):
            rcols, rvals = self._rows[r]
            rows.extend([r] * len(rcols))
            cols.extend(rcols)
            data.extend(rvals)
            if con.sense == "<=":
                row_lower[r], row_upper[r] = -np.inf, con.rhs
            elif con.sense == ">=":
                row_lower[r], row_upper[r] = con.rhs, np.inf
            else:
                row_lower[r] = row_upper[r] = con.rhs

        a_matrix = csr_matrix((data, (rows, cols)), shape=(len(self._cons), n))
        var_lower = np.array([v.lb for v in model.variables], dtype=float)
        var_upper = np.array([v.ub for v in model.variables], dtype=float)
        if relax_integrality:
            integrality = np.zeros(n, dtype=int)
        else:
            integrality = np.array(
                [0 if v.vtype is VarType.CONTINUOUS else 1 for v in model.variables]
            )
        return StandardForm(
            c=c,
            a_matrix=a_matrix,
            row_lower=row_lower,
            row_upper=row_upper,
            var_lower=var_lower,
            var_upper=var_upper,
            integrality=integrality,
            variables=list(model.variables),
            sense=sign,
            c0=model.objective.constant,
        )

    def solve(
        self,
        time_limit: float | None = None,
        mip_gap: float | None = None,
        warm_start: dict[Variable, float] | None = None,
    ) -> Solution:
        del warm_start  # see solve_highs
        return _solve_form(self._form(), time_limit, mip_gap)

    def close(self) -> None:
        self._cons = []
        self._rows = []
        self._pos = {}
