"""Backend registry and dispatch for ILP solving.

Besides the one-shot :func:`solve` entry point this module defines the
:class:`SolverSession` protocol for persistent, incrementally mutated
models: ``attach(model)`` returns a session bound to the model, deltas are
applied with ``session.apply(delta)`` (or by mutating the model directly
through its mutation API), and ``session.solve(...)`` re-extracts only what
changed since the previous solve instead of re-exporting the whole model.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Protocol, runtime_checkable

from ..errors import SolverError
from .expr import Variable
from .model import Model, ModelDelta
from .status import Solution

_BackendFn = Callable[..., Solution]


def _import_highs():
    try:
        from . import highs
    except ImportError as exc:  # pragma: no cover - scipy is baked in here
        raise SolverError(
            f"backend 'highs' requires SciPy ({exc}); "
            f"available backends: {available_backends()}"
        ) from exc
    return highs


def _highs_backend(model: Model, **kwargs) -> Solution:
    return _import_highs().solve_highs(model, **kwargs)


def _bnb_backend(model: Model, **kwargs) -> Solution:
    from .bnb import solve_bnb

    return solve_bnb(model, **kwargs)


_BACKENDS: dict[str, _BackendFn] = {
    "highs": _highs_backend,
    "bnb": _bnb_backend,
}


def available_backends() -> list[str]:
    """Names of usable backends, best first."""
    names = []
    try:
        from scipy.optimize import milp  # noqa: F401

        names.append("highs")
    except ImportError:  # pragma: no cover - scipy is a hard dependency here
        pass
    names.append("bnb")
    return names


def solve(
    model: Model,
    backend: str = "auto",
    time_limit: float | None = None,
    mip_gap: float | None = None,
    warm_start: dict[Variable, float] | None = None,
) -> Solution:
    """Solve ``model`` with the requested backend.

    ``backend="auto"`` picks HiGHS when SciPy is importable, otherwise the
    pure-Python branch and bound.

    ``warm_start`` optionally supplies a complete feasible assignment used
    as the initial incumbent by backends that support it (currently the
    pure-Python branch and bound); others silently ignore it.
    """
    if backend == "auto":
        backend = available_backends()[0]
    fn = _BACKENDS.get(backend)
    if fn is None:
        raise SolverError(
            f"unknown backend {backend!r}; available: {sorted(_BACKENDS)}"
        )
    kwargs: dict = {}
    if time_limit is not None:
        kwargs["time_limit"] = time_limit
    if mip_gap is not None:
        kwargs["mip_gap"] = mip_gap
    if warm_start is not None:
        kwargs["warm_start"] = warm_start
    return fn(model, **kwargs)


@runtime_checkable
class SolverSession(Protocol):
    """A persistent solver attached to one (mutable) model.

    Sessions observe the model's mutation log: between solves only the
    dirtied rows/bounds are re-extracted into backend form, and backends
    that support it carry solver state (e.g. the branch-and-bound
    incumbent) across deltas.
    """

    model: Model

    def apply(self, delta: ModelDelta) -> None:
        """Apply a recorded delta to the attached model."""
        ...  # pragma: no cover - protocol

    def solve(
        self,
        time_limit: float | None = None,
        mip_gap: float | None = None,
        warm_start: dict[Variable, float] | None = None,
    ) -> Solution:
        """Solve the model in its current state."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Release cached backend state."""
        ...  # pragma: no cover - protocol


def attach(model: Model, backend: str = "auto") -> SolverSession:
    """Attach a persistent solver session to ``model``.

    ``backend="auto"`` resolves exactly like :func:`solve` so a session
    solve and a one-shot solve of the same model pick the same backend.
    """
    if backend == "auto":
        backend = available_backends()[0]
    if backend == "highs":
        return _import_highs().HighsSession(model)
    if backend == "bnb":
        from .bnb import BnbSession

        return BnbSession(model)
    raise SolverError(f"unknown backend {backend!r}; available: {sorted(_BACKENDS)}")
