"""Backend registry and dispatch for ILP solving."""

from __future__ import annotations

from collections.abc import Callable

from ..errors import SolverError
from .expr import Variable
from .model import Model
from .status import Solution

_BackendFn = Callable[..., Solution]


def _highs_backend(model: Model, **kwargs) -> Solution:
    from .highs import solve_highs

    return solve_highs(model, **kwargs)


def _bnb_backend(model: Model, **kwargs) -> Solution:
    from .bnb import solve_bnb

    return solve_bnb(model, **kwargs)


_BACKENDS: dict[str, _BackendFn] = {
    "highs": _highs_backend,
    "bnb": _bnb_backend,
}


def available_backends() -> list[str]:
    """Names of usable backends, best first."""
    names = []
    try:
        from scipy.optimize import milp  # noqa: F401

        names.append("highs")
    except ImportError:  # pragma: no cover - scipy is a hard dependency here
        pass
    names.append("bnb")
    return names


def solve(
    model: Model,
    backend: str = "auto",
    time_limit: float | None = None,
    mip_gap: float | None = None,
    warm_start: dict[Variable, float] | None = None,
) -> Solution:
    """Solve ``model`` with the requested backend.

    ``backend="auto"`` picks HiGHS when SciPy is importable, otherwise the
    pure-Python branch and bound.

    ``warm_start`` optionally supplies a complete feasible assignment used
    as the initial incumbent by backends that support it (currently the
    pure-Python branch and bound); others silently ignore it.
    """
    if backend == "auto":
        backend = available_backends()[0]
    fn = _BACKENDS.get(backend)
    if fn is None:
        raise SolverError(
            f"unknown backend {backend!r}; available: {sorted(_BACKENDS)}"
        )
    kwargs: dict = {}
    if time_limit is not None:
        kwargs["time_limit"] = time_limit
    if mip_gap is not None:
        kwargs["mip_gap"] = mip_gap
    if warm_start is not None:
        kwargs["warm_start"] = warm_start
    return fn(model, **kwargs)
