"""ASCII Gantt rendering of hybrid schedules.

Renders one block per layer, one row per device; indeterminate tails are
drawn with ``~`` continuing to the layer boundary to visualize the
real-time decision point.
"""

from __future__ import annotations

from ..hls.schedule import HybridSchedule, LayerSchedule


def render_gantt(
    schedule: HybridSchedule, width: int = 72, labels: bool = True
) -> str:
    """Render the whole hybrid schedule as text."""
    blocks = [
        _render_layer(layer, width=width, labels=labels)
        for layer in schedule.layers
    ]
    header = f"hybrid schedule — makespan {schedule.makespan_expression()}"
    return header + "\n" + "\n".join(blocks)


def _render_layer(layer: LayerSchedule, width: int, labels: bool) -> str:
    makespan = max(layer.makespan, 1)
    scale = min(1.0, (width - 1) / makespan)

    def col(t: int) -> int:
        return int(round(t * scale))

    lines = [
        f"-- layer {layer.index} "
        f"(makespan {layer.makespan}"
        + (", indeterminate tail" if layer.has_indeterminate else "")
        + ") "
    ]
    devices = sorted({p.device_uid for p in layer.placements.values()})
    for device_uid in devices:
        row = [" "] * (col(makespan) + 1)
        annotations = []
        for placement in layer.on_device(device_uid):
            start_col = col(placement.start)
            end_col = max(col(placement.end), start_col + 1)
            fill = "~" if placement.indeterminate else "="
            for c in range(start_col, min(end_col, len(row))):
                row[c] = fill
            if placement.indeterminate:
                for c in range(end_col, len(row)):
                    row[c] = "~"
            annotations.append(f"{placement.uid}@{placement.start}")
        line = f"{device_uid:>8} |{''.join(row)}|"
        if labels:
            line += " " + ", ".join(annotations)
        lines.append(line)
    return "\n".join(lines)
