"""Graphviz DOT export.

Two views:

* :func:`assay_to_dot` — the operation dependency DAG (indeterminate
  operations drawn as double octagons, layer membership as clusters when a
  layering is supplied);
* :func:`chip_to_dot` — the synthesized chip: devices as nodes (label =
  container/capacity/accessories), transportation paths as edges weighted
  by usage.

Output is plain DOT text; render externally with ``dot -Tsvg``.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING

from ..layering import LayeringResult
from ..operations.assay import Assay

if TYPE_CHECKING:  # pragma: no cover
    from ..hls.synthesizer import SynthesisResult


def _quote(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def assay_to_dot(assay: Assay, layering: LayeringResult | None = None) -> str:
    """DOT digraph of the assay's dependency structure."""
    lines = [f"digraph {_quote(assay.name)} {{", "  rankdir=TB;"]

    def node_line(uid: str, indent: str = "  ") -> str:
        op = assay[uid]
        shape = "doubleoctagon" if op.is_indeterminate else "box"
        label = f"{uid}\\n{op.duration.scheduled}u"
        if op.accessories:
            label += "\\n" + ",".join(sorted(op.accessories))
        return f"{indent}{_quote(uid)} [shape={shape} label={_quote(label)}];"

    if layering is None:
        for uid in assay.uids:
            lines.append(node_line(uid))
    else:
        for layer in layering.layers:
            lines.append(f"  subgraph cluster_layer{layer.index} {{")
            lines.append(f'    label="layer {layer.index}";')
            for uid in layer.uids:
                lines.append(node_line(uid, indent="    "))
            lines.append("  }")

    for parent, child in assay.edges:
        lines.append(f"  {_quote(parent)} -> {_quote(child)};")
    lines.append("}")
    return "\n".join(lines)


def chip_to_dot(result: "SynthesisResult") -> str:
    """DOT graph of devices and transportation paths of a result."""
    lines = [f"digraph {_quote(result.assay.name + '-chip')} {{",
             "  layout=neato;", "  overlap=false;"]
    binding = result.schedule.binding
    ops_per_device: Counter[str] = Counter(binding.values())
    for uid, device in sorted(result.devices.items()):
        acc = ",".join(sorted(device.accessories)) or "-"
        label = (
            f"{uid}\\n{device.container.value}/{device.capacity.short}"
            f"\\n{acc}\\n{ops_per_device[uid]} ops"
        )
        shape = "circle" if device.container.value == "ring" else "box"
        lines.append(f"  {_quote(uid)} [shape={shape} label={_quote(label)}];")

    usage: Counter[tuple[str, str]] = Counter()
    for parent, child in result.assay.edges:
        a, b = binding[parent], binding[child]
        if a != b:
            usage[(a, b) if a <= b else (b, a)] += 1
    for (a, b), count in sorted(usage.items()):
        lines.append(
            f"  {_quote(a)} -> {_quote(b)} "
            f"[dir=none penwidth={min(count, 6)} label={_quote(str(count))}];"
        )
    lines.append("}")
    return "\n".join(lines)
