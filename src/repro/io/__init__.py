"""Serialization and rendering."""

from .dot import assay_to_dot, chip_to_dot
from .gantt import render_gantt
from .json_io import (
    assay_from_json,
    json_result_equal,
    load_schedule,
    schedule_from_json,
    assay_to_json,
    load_assay,
    result_to_json,
    save_assay,
    save_result,
    spec_from_json,
    spec_to_json,
)

__all__ = [
    "assay_to_dot",
    "chip_to_dot",
    "render_gantt",
    "assay_from_json",
    "assay_to_json",
    "json_result_equal",
    "load_assay",
    "load_schedule",
    "schedule_from_json",
    "save_assay",
    "result_to_json",
    "save_result",
    "spec_from_json",
    "spec_to_json",
]
