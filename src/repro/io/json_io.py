"""JSON (de)serialization of assays and synthesis results.

The assay format is stable and round-trips exactly; the result format is a
one-way report (schedules, devices, paths, history) for downstream tools.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any

from ..components.containers import Capacity, ContainerKind
from ..errors import SerializationError
from ..hls.synthesizer import SynthesisResult
from ..operations.assay import Assay
from ..operations.duration import Fixed, Indeterminate
from ..operations.operation import Operation

FORMAT_VERSION = 1


def assay_to_json(assay: Assay) -> dict[str, Any]:
    """Serialize an assay to a JSON-compatible dict."""
    return {
        "format": FORMAT_VERSION,
        "name": assay.name,
        "operations": [
            {
                "uid": op.uid,
                "duration": op.duration.minimum,
                "indeterminate": op.is_indeterminate,
                "capacity": op.capacity.value,
                "container": op.container.value if op.container else None,
                "accessories": sorted(op.accessories),
                "function": op.function,
            }
            for op in assay
        ],
        "dependencies": [list(edge) for edge in assay.edges],
    }


def assay_from_json(data: dict[str, Any]) -> Assay:
    """Deserialize an assay; raises SerializationError on malformed input."""
    try:
        if data.get("format", 1) != FORMAT_VERSION:
            raise SerializationError(
                f"unsupported assay format {data.get('format')!r}"
            )
        assay = Assay(data.get("name", "assay"))
        for entry in data["operations"]:
            duration = (
                Indeterminate(entry["duration"])
                if entry.get("indeterminate")
                else Fixed(entry["duration"])
            )
            container = entry.get("container")
            assay.add(
                Operation(
                    uid=entry["uid"],
                    duration=duration,
                    capacity=Capacity(entry.get("capacity", "small")),
                    container=ContainerKind(container) if container else None,
                    accessories=frozenset(entry.get("accessories", ())),
                    function=entry.get("function", ""),
                )
            )
        for parent, child in data.get("dependencies", ()):
            assay.add_dependency(parent, child)
        assay.validate()
        return assay
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        # AttributeError covers valid-JSON-but-not-an-object inputs (a
        # bare list/string has no .get) so they fail like any other
        # malformed document instead of escaping as a traceback.
        raise SerializationError(f"malformed assay JSON: {exc}") from exc


def save_assay(assay: Assay, path: "str | Path") -> None:
    Path(path).write_text(json.dumps(assay_to_json(assay), indent=2))


def load_assay(path: "str | Path") -> Assay:
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read assay from {path}: {exc}") from exc
    return assay_from_json(data)


#: SynthesisSpec fields that serialize as plain scalars.  The cost model
#: and the accessory registry stay at their defaults over the wire — they
#: are code-level extension points, not per-request knobs.
_SPEC_SCALAR_FIELDS = (
    "max_devices",
    "threshold",
    "transport_default",
    "backend",
    "time_limit",
    "mip_gap",
    "improvement_threshold",
    "max_iterations",
    "allow_heuristic_fallback",
    "enable_solve_cache",
    "solve_cache_capacity",
    "enable_warm_start",
    "scheduler",
    "jobs",
    "storage_mode",
    "storage_capacity",
    "throughput_mode",
    "target_ii",
    "throughput_scheduler",
)


def spec_to_json(spec: "SynthesisSpec") -> dict[str, Any]:
    """Serialize the wire-transferable fields of a synthesis spec.

    Deterministic (plain dict of scalars) and exactly inverted by
    :func:`spec_from_json`: ``spec_from_json(spec_to_json(s))`` poses the
    identical synthesis problem — the property the service relies on for
    fingerprint-stable job submission.
    """
    data: dict[str, Any] = {"format": FORMAT_VERSION}
    for name in _SPEC_SCALAR_FIELDS:
        data[name] = getattr(spec, name)
    weights = spec.weights
    data["weights"] = {
        "time": weights.time,
        "area": weights.area,
        "processing": weights.processing,
        "paths": weights.paths,
    }
    progression = spec.transport_progression
    data["transport_progression"] = {
        "minimum": progression.minimum,
        "maximum": progression.maximum,
        "terms": progression.terms,
    }
    data["binding_mode"] = spec.binding_mode.value
    storage_weights = spec.storage_weights
    data["storage_weights"] = {
        "hold": storage_weights.hold,
        "channel": storage_weights.channel,
        "reservoir": storage_weights.reservoir,
    }
    data["throughput_variants"] = list(spec.throughput_variants)
    return data


def spec_from_json(data: dict[str, Any]) -> "SynthesisSpec":
    """Deserialize a spec; raises SerializationError on malformed input."""
    from ..devices.device import BindingMode
    from ..errors import ReproError
    from ..hls.spec import (
        StorageWeights,
        SynthesisSpec,
        TransportProgression,
        Weights,
    )

    try:
        if data.get("format", FORMAT_VERSION) != FORMAT_VERSION:
            raise SerializationError(
                f"unsupported spec format {data.get('format')!r}"
            )
        known = set(_SPEC_SCALAR_FIELDS) | {
            "format", "weights", "transport_progression", "binding_mode",
            "storage_weights", "throughput_variants",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise SerializationError(
                f"unknown spec field(s): {', '.join(unknown)}"
            )
        kwargs: dict[str, Any] = {
            name: data[name] for name in _SPEC_SCALAR_FIELDS if name in data
        }
        if "weights" in data:
            kwargs["weights"] = Weights(**data["weights"])
        if "transport_progression" in data:
            kwargs["transport_progression"] = TransportProgression(
                **data["transport_progression"]
            )
        if "binding_mode" in data:
            kwargs["binding_mode"] = BindingMode(data["binding_mode"])
        if "storage_weights" in data:
            kwargs["storage_weights"] = StorageWeights(**data["storage_weights"])
        if "throughput_variants" in data:
            kwargs["throughput_variants"] = tuple(
                float(f) for f in data["throughput_variants"]
            )
        return SynthesisSpec(**kwargs)
    except SerializationError:
        raise
    except ReproError as exc:
        raise SerializationError(f"invalid spec JSON: {exc}") from exc
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"malformed spec JSON: {exc}") from exc


def _finite_or_none(value: "float | None") -> "float | None":
    """Nullable-float guard: NaN/inf certificates serialize as ``null``
    (they prove nothing), keeping the report strict-JSON clean."""
    if value is None or not math.isfinite(value):
        return None
    return float(value)


#: Result-report keys that vary run to run without the synthesis outcome
#: differing (wall clock); ignored by :func:`json_result_equal`.
_VOLATILE_RESULT_KEYS = ("runtime_seconds",)


def json_result_equal(a: dict[str, Any], b: dict[str, Any]) -> bool:
    """Whether two :func:`result_to_json` reports describe the same
    synthesis outcome.

    Wall-clock keys are ignored, so a ``deterministic=True`` report
    compares equal to the ``deterministic=False`` report of the same run —
    and a store-served payload compares equal to the in-process result it
    was built from.
    """

    def canon(report: dict[str, Any]) -> dict[str, Any]:
        return {
            key: value
            for key, value in report.items()
            if key not in _VOLATILE_RESULT_KEYS
        }

    return canon(a) == canon(b)


def result_to_json(
    result: SynthesisResult, deterministic: bool = False
) -> dict[str, Any]:
    """Serialize a synthesis result to a JSON-compatible report dict.

    With ``deterministic=True`` the wall-clock ``runtime_seconds`` field is
    omitted, so two runs that produced the same synthesis outcome serialize
    byte-identically — the property the parallel-synthesis smoke checks
    compare on (``--jobs 1`` vs ``--jobs N``).
    """
    report = {
        "format": FORMAT_VERSION,
        "assay": result.assay.name,
        "makespan": result.makespan_expression,
        "fixed_makespan": result.fixed_makespan,
        "num_devices": result.num_devices,
        "num_paths": result.num_paths,
        # Certified quality: the best pass's proven lower bound on the
        # total layer objective and the resulting relative gap; null when
        # no pass carried a full certificate.
        "lower_bound": _finite_or_none(result.lower_bound),
        "integrality_gap": _finite_or_none(result.integrality_gap),
        "binding_mode": result.spec.binding_mode.value,
        "devices": [
            {
                "uid": device.uid,
                "container": device.container.value,
                "capacity": device.capacity.value,
                "accessories": sorted(device.accessories),
            }
            for device in result.devices.values()
        ],
        "paths": sorted(list(p) for p in result.paths),
        "layers": [
            {
                "index": layer.index,
                "makespan": layer.makespan,
                "placements": [
                    {
                        "uid": p.uid,
                        "device": p.device_uid,
                        "start": p.start,
                        "duration": p.duration,
                        "indeterminate": p.indeterminate,
                    }
                    for p in sorted(
                        layer.placements.values(), key=lambda p: (p.start, p.uid)
                    )
                ],
            }
            for layer in result.schedule.layers
        ],
        "history": [
            {
                "iteration": record.label,
                "fixed_makespan": record.fixed_makespan,
                "num_devices": record.num_devices,
                "num_paths": record.num_paths,
                "layer_statuses": record.layer_statuses,
                "lower_bound": _finite_or_none(record.lower_bound),
                "integrality_gap": _finite_or_none(record.integrality_gap),
            }
            for record in result.history
        ],
        "runtime_seconds": result.runtime,
    }
    # Storage plan (extension): emitted only when one was synthesized, so
    # storage_mode=off reports stay byte-identical to the paper flow.
    if result.storage_plan is not None:
        report["storage"] = result.storage_plan.to_json()
    if deterministic:
        del report["runtime_seconds"]
    return report


def save_result(
    result: SynthesisResult, path: "str | Path", deterministic: bool = False
) -> None:
    Path(path).write_text(
        json.dumps(result_to_json(result, deterministic=deterministic), indent=2)
    )


def schedule_from_json(data: dict[str, Any]) -> "HybridSchedule":
    """Rebuild a :class:`~repro.hls.schedule.HybridSchedule` from a result
    report (the ``layers`` section of :func:`result_to_json`).

    Enables archival workflows: store the report, reload the schedule
    later, and re-validate or re-simulate it against the (re)loaded assay.
    """
    from ..hls.schedule import HybridSchedule, LayerSchedule, OpPlacement

    try:
        layers = []
        for layer_data in data["layers"]:
            layer = LayerSchedule(index=layer_data["index"])
            for entry in layer_data["placements"]:
                layer.place(
                    OpPlacement(
                        uid=entry["uid"],
                        device_uid=entry["device"],
                        start=entry["start"],
                        duration=entry["duration"],
                        indeterminate=entry.get("indeterminate", False),
                    )
                )
            layers.append(layer)
        return HybridSchedule(layers=layers)
    except (KeyError, TypeError) as exc:
        raise SerializationError(f"malformed result JSON: {exc}") from exc


def load_schedule(path: "str | Path") -> "HybridSchedule":
    """Load the hybrid schedule out of a saved result report."""
    try:
        data = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SerializationError(f"cannot read result from {path}: {exc}") from exc
    return schedule_from_json(data)
