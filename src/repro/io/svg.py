"""SVG rendering of hybrid schedules and chip placements (stdlib only).

Produces self-contained SVG documents:

* :func:`schedule_to_svg` — a Gantt chart: one row per device, one block
  per operation, hatched open-ended tails for indeterminate operations,
  vertical separators at layer boundaries (the real-time decision points);
* :func:`placement_to_svg` — the placed chip: grid cells, device boxes
  (rings drawn round), channel lines weighted by usage.
"""

from __future__ import annotations

from typing import TYPE_CHECKING
from xml.sax.saxutils import escape

from ..components.containers import ContainerKind
from ..hls.schedule import HybridSchedule

if TYPE_CHECKING:  # pragma: no cover
    from ..hls.synthesizer import SynthesisResult
    from ..layout.placer import PlacementResult

_COLORS = [
    "#4C72B0", "#DD8452", "#55A868", "#C44E52", "#8172B3",
    "#937860", "#DA8BC3", "#8C8C8C", "#CCB974", "#64B5CD",
]

_ROW_H = 26
_UNIT_W = 6.0
_MARGIN = 90
_HEADER = 30


def _rect(x, y, w, h, fill, extra="") -> str:
    return (
        f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.1f}" height="{h:.1f}" '
        f'fill="{fill}" stroke="#333" stroke-width="0.5" {extra}/>'
    )


def _text(x, y, content, size=10, anchor="start") -> str:
    return (
        f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
        f'font-family="monospace" text-anchor="{anchor}">'
        f"{escape(str(content))}</text>"
    )


def schedule_to_svg(schedule: HybridSchedule, unit_width: float = _UNIT_W) -> str:
    """Render the hybrid schedule as an SVG Gantt chart."""
    devices = sorted(
        {p.device_uid for layer in schedule.layers
         for p in layer.placements.values()}
    )
    row_of = {uid: i for i, uid in enumerate(devices)}
    total_units = sum(max(layer.makespan, 1) for layer in schedule.layers)
    width = _MARGIN + total_units * unit_width + 20
    height = _HEADER + len(devices) * _ROW_H + 30

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">',
        '<defs><pattern id="tail" width="6" height="6" '
        'patternUnits="userSpaceOnUse" patternTransform="rotate(45)">'
        '<rect width="6" height="6" fill="#eee"/>'
        '<line x1="0" y1="0" x2="0" y2="6" stroke="#999" stroke-width="2"/>'
        "</pattern></defs>",
        _text(8, 18, f"makespan {schedule.makespan_expression()}", size=12),
    ]
    for uid in devices:
        y = _HEADER + row_of[uid] * _ROW_H
        parts.append(_text(8, y + _ROW_H * 0.65, uid))
        parts.append(
            f'<line x1="{_MARGIN}" y1="{y + _ROW_H:.1f}" '
            f'x2="{width - 10:.1f}" y2="{y + _ROW_H:.1f}" '
            'stroke="#ddd" stroke-width="0.5"/>'
        )

    offset_units = 0.0
    for layer in schedule.layers:
        x0 = _MARGIN + offset_units * unit_width
        for k, placement in enumerate(
            sorted(layer.placements.values(), key=lambda p: (p.start, p.uid))
        ):
            y = _HEADER + row_of[placement.device_uid] * _ROW_H + 3
            x = x0 + placement.start * unit_width
            w = max(placement.duration * unit_width, 2.0)
            color = _COLORS[k % len(_COLORS)]
            title = (
                f"<title>{escape(placement.uid)} "
                f"[{placement.start}, {placement.end})</title>"
            )
            parts.append(
                _rect(x, y, w, _ROW_H - 6, color).replace(
                    "/>", f">{title}</rect>"
                )
            )
            if placement.indeterminate:
                # Open-ended run: a fixed hatched overhang past the
                # scheduled minimum marks the real-time tail.
                parts.append(
                    _rect(x + w, y, 18.0, _ROW_H - 6, "url(#tail)")
                )
            if w > 24:
                parts.append(
                    _text(x + 2, y + (_ROW_H - 6) * 0.7, placement.uid, size=8)
                )
        offset_units += max(layer.makespan, 1)
        boundary_x = _MARGIN + offset_units * unit_width
        parts.append(
            f'<line x1="{boundary_x:.1f}" y1="{_HEADER}" '
            f'x2="{boundary_x:.1f}" y2="{height - 25:.0f}" '
            'stroke="#C44E52" stroke-width="1.5" stroke-dasharray="4 3"/>'
        )
        parts.append(
            _text(boundary_x, height - 10, f"L{layer.index} end",
                  size=8, anchor="middle")
        )
    parts.append("</svg>")
    return "\n".join(parts)


def placement_to_svg(
    result: "SynthesisResult",
    placement: "PlacementResult",
    cell: float = 70.0,
) -> str:
    """Render a placed chip (devices + usage-weighted channels) as SVG."""
    layout = placement.layout
    width = layout.width * cell + 20
    height = layout.height * cell + 20

    def center(device_uid: str) -> tuple[float, float]:
        pos = layout.position_of(device_uid)
        return 10 + (pos.x + 0.5) * cell, 10 + (pos.y + 0.5) * cell

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">'
    ]
    for y in range(layout.height):
        for x in range(layout.width):
            parts.append(
                _rect(10 + x * cell, 10 + y * cell, cell, cell, "#fafafa")
            )
    # Channels first (under the devices).
    usages = placement.distances
    for (dev_a, dev_b), _dist in sorted(usages.items()):
        xa, ya = center(dev_a)
        xb, yb = center(dev_b)
        parts.append(
            f'<line x1="{xa:.1f}" y1="{ya:.1f}" x2="{xb:.1f}" y2="{yb:.1f}" '
            f'stroke="#4C72B0" stroke-width="2" opacity="0.6"/>'
        )
    for device_uid in layout.devices:
        cx, cy = center(device_uid)
        device = result.devices.get(device_uid)
        size = cell * 0.36
        if device is not None and device.container is ContainerKind.RING:
            parts.append(
                f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="{size:.1f}" '
                'fill="#DD8452" stroke="#333" stroke-width="0.8"/>'
            )
        else:
            parts.append(
                _rect(cx - size, cy - size, 2 * size, 2 * size, "#55A868")
            )
        parts.append(_text(cx, cy + 3, device_uid, size=9, anchor="middle"))
    parts.append("</svg>")
    return "\n".join(parts)
