"""Graph substrate: a small directed-graph utility and max-flow/min-cut.

The synthesis engine deliberately does not depend on ``networkx`` so that the
graph semantics used by the layering algorithm (Sec. 3.1 of the paper) are
fully under our control and unit-tested here.
"""

from .digraph import DiGraph, topological_sort
from .maxflow import FlowNetwork, MinCut, max_flow_min_cut

__all__ = [
    "DiGraph",
    "topological_sort",
    "FlowNetwork",
    "MinCut",
    "max_flow_min_cut",
]
