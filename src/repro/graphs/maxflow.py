"""Max-flow / min-cut via the Ford–Fulkerson method (Edmonds–Karp).

The paper's resource-based layer allocation (Sec. 3.1, Fig. 5) evaluates the
cost of evicting an indeterminate operation from a layer as a minimum cut
between a virtual source (the already-committed ancestors) and the operation
(the sink).  We implement the Ford–Fulkerson method with BFS augmenting paths
(Edmonds–Karp), exactly as the paper cites [CLRS Sec. 26.2].

Capacities are non-negative integers (or ``float('inf')`` for uncuttable
edges).
"""

from __future__ import annotations

import math
from collections import deque
from collections.abc import Hashable
from dataclasses import dataclass, field

from ..errors import GraphError


@dataclass
class MinCut:
    """Result of a max-flow computation.

    Attributes:
        value: the max-flow = min-cut value.
        source_side: nodes reachable from the source in the residual graph
            (this is the *smallest* source side over all minimum cuts).
        sink_side: the complementary node set (largest sink side).
        cut_edges: saturated edges crossing from source side to sink side.
        sink_side_minimal: nodes that can still reach the sink in the
            residual graph — the *smallest* sink side over all minimum cuts.
            The paper's eviction step (Fig. 5(d), cut c2 vs c1) prefers the
            cut that "puts fewer vertices to the sink side"; this is it.
    """

    value: float
    source_side: frozenset[Hashable]
    sink_side: frozenset[Hashable]
    cut_edges: tuple[tuple[Hashable, Hashable], ...] = field(default=())
    sink_side_minimal: frozenset[Hashable] = field(default=frozenset())


class FlowNetwork:
    """A directed flow network with integer/float capacities.

    Parallel edges are merged by capacity addition.  Adding edge ``(u, v)``
    implicitly creates the reverse residual arc with capacity 0.

    >>> net = FlowNetwork()
    >>> net.add_edge("s", "a", 3)
    >>> net.add_edge("a", "t", 2)
    >>> cut = max_flow_min_cut(net, "s", "t")
    >>> cut.value
    2
    """

    def __init__(self) -> None:
        self._capacity: dict[Hashable, dict[Hashable, float]] = {}

    def add_node(self, node: Hashable) -> None:
        self._capacity.setdefault(node, {})

    def add_edge(self, src: Hashable, dst: Hashable, capacity: float) -> None:
        if capacity < 0:
            raise GraphError(f"negative capacity {capacity} on {src!r}->{dst!r}")
        if src == dst:
            raise GraphError(f"self-loop on {src!r} is not allowed")
        self.add_node(src)
        self.add_node(dst)
        self._capacity[src][dst] = self._capacity[src].get(dst, 0) + capacity
        self._capacity[dst].setdefault(src, 0)

    @property
    def nodes(self) -> list[Hashable]:
        return list(self._capacity)

    def capacity(self, src: Hashable, dst: Hashable) -> float:
        return self._capacity.get(src, {}).get(dst, 0)

    def neighbors(self, node: Hashable) -> list[Hashable]:
        return list(self._capacity.get(node, {}))


def max_flow_min_cut(
    network: FlowNetwork, source: Hashable, sink: Hashable
) -> MinCut:
    """Compute the maximum flow and a minimum s-t cut (Edmonds–Karp)."""
    if source not in network._capacity or sink not in network._capacity:
        raise GraphError("source or sink not in network")
    if source == sink:
        raise GraphError("source equals sink")

    residual: dict[Hashable, dict[Hashable, float]] = {
        u: dict(adj) for u, adj in network._capacity.items()
    }
    total_flow = 0.0

    while True:
        parent = _bfs_augmenting_path(residual, source, sink)
        if parent is None:
            break
        bottleneck = math.inf
        node = sink
        while node != source:
            prev = parent[node]
            bottleneck = min(bottleneck, residual[prev][node])
            node = prev
        node = sink
        while node != source:
            prev = parent[node]
            residual[prev][node] -= bottleneck
            residual[node][prev] = residual[node].get(prev, 0) + bottleneck
            node = prev
        total_flow += bottleneck
        if math.isinf(total_flow):
            break

    source_side = _residual_reachable(residual, source)
    sink_side = frozenset(set(network.nodes) - source_side)
    cut_edges = tuple(
        (u, v)
        for u in sorted(source_side, key=repr)
        for v in sorted(network._capacity[u], key=repr)
        if v in sink_side and network.capacity(u, v) > 0
    )
    sink_side_minimal = _residual_coreachable(residual, sink)
    if total_flow.is_integer() and not math.isinf(total_flow):
        total_flow = int(total_flow)
    return MinCut(
        value=total_flow,
        source_side=frozenset(source_side),
        sink_side=sink_side,
        cut_edges=cut_edges,
        sink_side_minimal=frozenset(sink_side_minimal),
    )


def _bfs_augmenting_path(
    residual: dict[Hashable, dict[Hashable, float]],
    source: Hashable,
    sink: Hashable,
) -> dict[Hashable, Hashable] | None:
    """Shortest augmenting path in the residual graph, or None."""
    parent: dict[Hashable, Hashable] = {}
    visited = {source}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for succ, cap in residual[node].items():
            if cap > 0 and succ not in visited:
                visited.add(succ)
                parent[succ] = node
                if succ == sink:
                    return parent
                frontier.append(succ)
    return None


def _residual_reachable(
    residual: dict[Hashable, dict[Hashable, float]], source: Hashable
) -> set[Hashable]:
    seen = {source}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for succ, cap in residual[node].items():
            if cap > 0 and succ not in seen:
                seen.add(succ)
                frontier.append(succ)
    return seen


def _residual_coreachable(
    residual: dict[Hashable, dict[Hashable, float]], sink: Hashable
) -> set[Hashable]:
    """Nodes with a positive-capacity residual path *to* the sink."""
    seen = {sink}
    frontier = deque([sink])
    while frontier:
        node = frontier.popleft()
        # predecessor u can reach `node` if residual capacity u->node > 0.
        for pred in residual:
            if pred not in seen and residual[pred].get(node, 0) > 0:
                seen.add(pred)
                frontier.append(pred)
    return seen
