"""A minimal directed-graph data structure.

Nodes are arbitrary hashable objects.  The structure supports exactly the
queries the layering algorithm and assay validation need: successors,
predecessors, reachability (ancestors / descendants), topological order and
cycle detection.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Iterator
from typing import TypeVar

from ..errors import CycleError, GraphError

N = TypeVar("N", bound=Hashable)


class DiGraph:
    """Directed graph with O(1) successor/predecessor access.

    >>> g = DiGraph()
    >>> g.add_edge("a", "b")
    >>> g.add_edge("b", "c")
    >>> sorted(g.descendants("a"))
    ['b', 'c']
    """

    def __init__(self) -> None:
        self._succ: dict[Hashable, set[Hashable]] = {}
        self._pred: dict[Hashable, set[Hashable]] = {}

    # -- construction -----------------------------------------------------

    def add_node(self, node: Hashable) -> None:
        """Add ``node`` if not present; no-op otherwise."""
        if node not in self._succ:
            self._succ[node] = set()
            self._pred[node] = set()

    def add_edge(self, src: Hashable, dst: Hashable) -> None:
        """Add edge ``src -> dst``, creating missing endpoints."""
        if src == dst:
            raise GraphError(f"self-loop on {src!r} is not allowed")
        self.add_node(src)
        self.add_node(dst)
        self._succ[src].add(dst)
        self._pred[dst].add(src)

    def remove_node(self, node: Hashable) -> None:
        """Remove ``node`` and all incident edges."""
        if node not in self._succ:
            raise GraphError(f"unknown node {node!r}")
        for succ in self._succ[node]:
            self._pred[succ].discard(node)
        for pred in self._pred[node]:
            self._succ[pred].discard(node)
        del self._succ[node]
        del self._pred[node]

    def copy(self) -> "DiGraph":
        """Return an independent copy of this graph."""
        clone = DiGraph()
        for node in self._succ:
            clone.add_node(node)
        for src, dsts in self._succ.items():
            for dst in dsts:
                clone.add_edge(src, dst)
        return clone

    def subgraph(self, nodes: Iterable[Hashable]) -> "DiGraph":
        """Return the induced subgraph on ``nodes``."""
        keep = set(nodes)
        unknown = keep - set(self._succ)
        if unknown:
            raise GraphError(f"unknown nodes {sorted(map(repr, unknown))}")
        sub = DiGraph()
        for node in keep:
            sub.add_node(node)
        for src in keep:
            for dst in self._succ[src] & keep:
                sub.add_edge(src, dst)
        return sub

    # -- queries -----------------------------------------------------------

    def __contains__(self, node: Hashable) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._succ)

    @property
    def nodes(self) -> list[Hashable]:
        """All nodes (insertion order)."""
        return list(self._succ)

    @property
    def edges(self) -> list[tuple[Hashable, Hashable]]:
        """All edges as ``(src, dst)`` pairs."""
        return [(s, d) for s, dsts in self._succ.items() for d in dsts]

    def has_edge(self, src: Hashable, dst: Hashable) -> bool:
        return src in self._succ and dst in self._succ[src]

    def successors(self, node: Hashable) -> set[Hashable]:
        """Direct successors (children) of ``node``."""
        self._require(node)
        return set(self._succ[node])

    def predecessors(self, node: Hashable) -> set[Hashable]:
        """Direct predecessors (parents) of ``node``."""
        self._require(node)
        return set(self._pred[node])

    def out_degree(self, node: Hashable) -> int:
        self._require(node)
        return len(self._succ[node])

    def in_degree(self, node: Hashable) -> int:
        self._require(node)
        return len(self._pred[node])

    def sources(self) -> list[Hashable]:
        """Nodes with no predecessors."""
        return [n for n in self._succ if not self._pred[n]]

    def sinks(self) -> list[Hashable]:
        """Nodes with no successors."""
        return [n for n in self._succ if not self._succ[n]]

    def descendants(self, node: Hashable) -> set[Hashable]:
        """All nodes reachable from ``node`` (excluding ``node``)."""
        return self._reach(node, self._succ)

    def ancestors(self, node: Hashable) -> set[Hashable]:
        """All nodes that can reach ``node`` (excluding ``node``)."""
        return self._reach(node, self._pred)

    def is_acyclic(self) -> bool:
        try:
            topological_sort(self)
        except CycleError:
            return False
        return True

    # -- internals ----------------------------------------------------------

    def _require(self, node: Hashable) -> None:
        if node not in self._succ:
            raise GraphError(f"unknown node {node!r}")

    def _reach(
        self, node: Hashable, adjacency: dict[Hashable, set[Hashable]]
    ) -> set[Hashable]:
        self._require(node)
        seen: set[Hashable] = set()
        frontier = deque(adjacency[node])
        while frontier:
            current = frontier.popleft()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(adjacency[current] - seen)
        return seen


def topological_sort(graph: DiGraph) -> list[Hashable]:
    """Kahn's algorithm; raises :class:`CycleError` on cyclic input.

    The returned order is deterministic for a given insertion order.
    """
    in_deg = {n: graph.in_degree(n) for n in graph}
    ready = deque(n for n in graph if in_deg[n] == 0)
    order: list[Hashable] = []
    while ready:
        node = ready.popleft()
        order.append(node)
        for succ in sorted(graph.successors(node), key=repr):
            in_deg[succ] -= 1
            if in_deg[succ] == 0:
                ready.append(succ)
    if len(order) != len(graph):
        remaining = [n for n in graph if n not in set(order)]
        cycle = _find_cycle(graph, remaining)
        raise CycleError([repr(n) for n in cycle])
    return order


def _find_cycle(graph: DiGraph, candidates: list[Hashable]) -> list[Hashable]:
    """Return one concrete cycle among ``candidates`` for error reporting."""
    candidate_set = set(candidates)
    start = candidates[0]
    path: list[Hashable] = [start]
    seen_at: dict[Hashable, int] = {start: 0}
    current = start
    while True:
        nxt = next(iter(s for s in graph.successors(current) if s in candidate_set))
        if nxt in seen_at:
            return path[seen_at[nxt] :] + [nxt]
        seen_at[nxt] = len(path)
        path.append(nxt)
        current = nxt
