"""General devices and the device inventory (set D of the ILP model)."""

from .device import BindingMode, GeneralDevice
from .inventory import DeviceInventory

__all__ = ["BindingMode", "GeneralDevice", "DeviceInventory"]
