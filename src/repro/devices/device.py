"""The general device concept (Sec. 2.2).

A general device is *one container plus a set of accessories*.  A rotary
mixer is a ring + pump; the sieve-valve flow segment of Fig. 2 is a chamber +
sieve valves.  Whether an operation may execute on a device depends only on
component coverage, never on functional type.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..components.containers import Capacity, ContainerKind, check_container
from ..components.costs import CostModel
from ..errors import SpecificationError
from ..operations.operation import Operation


class BindingMode(enum.Enum):
    """Operation-to-device legality rule.

    COVER is the paper's contribution: a device may execute any operation
    whose container/capacity/accessory requirements it covers.  EXACT is the
    modified conventional baseline of Sec. 5: operations and devices are
    classified by their component-requirement signature, and binding requires
    the signatures to match exactly.
    """

    COVER = "cover"
    EXACT = "exact"


@dataclass(frozen=True)
class GeneralDevice:
    """A configured on-chip device: container + capacity + accessories.

    ``signature`` is only set for devices instantiated by the conventional
    baseline; it freezes the component-requirement class the device belongs
    to (EXACT matching compares against it).
    """

    uid: str
    container: ContainerKind
    capacity: Capacity
    accessories: frozenset[str] = field(default_factory=frozenset)
    signature: tuple | None = None

    def __post_init__(self) -> None:
        if not self.uid:
            raise SpecificationError("device uid must be non-empty")
        check_container(self.container, self.capacity)
        if not isinstance(self.accessories, frozenset):
            object.__setattr__(self, "accessories", frozenset(self.accessories))

    # -- legality ----------------------------------------------------------

    def covers(self, op: Operation) -> bool:
        """Component-cover test (paper constraints (6)-(8)).

        The container kind must match the requirement when specified, the
        capacity class must match exactly, and the device's accessories must
        be a superset of the operation's.
        """
        if op.container is not None and op.container is not self.container:
            return False
        if op.capacity is not self.capacity:
            return False
        return op.accessories <= self.accessories

    def matches_exactly(self, op: Operation) -> bool:
        """Conventional-baseline test: signatures must be equal."""
        return self.signature == op.requirement_signature()

    def can_execute(self, op: Operation, mode: BindingMode = BindingMode.COVER) -> bool:
        """Whether ``op`` may be bound to this device under ``mode``."""
        if mode is BindingMode.EXACT:
            return self.matches_exactly(op)
        return self.covers(op)

    # -- costs --------------------------------------------------------------

    def area(self, costs: CostModel) -> float:
        """Chip area consumed by this device (container only)."""
        return costs.container_area(self.container, self.capacity)

    def processing_cost(self, costs: CostModel) -> float:
        """Processing cost: container + every integrated accessory."""
        total = costs.container_cost(self.container, self.capacity)
        total += sum(costs.accessory_cost(name) for name in self.accessories)
        return total

    # -- construction helpers -----------------------------------------------

    @staticmethod
    def for_operation(
        uid: str,
        op: Operation,
        mode: BindingMode = BindingMode.COVER,
        container: ContainerKind | None = None,
    ) -> "GeneralDevice":
        """The cheapest device able to execute ``op``.

        When the operation leaves the container kind open, a chamber is
        preferred ("a chamber involves less area cost than a ring",
        Sec. 3.2) unless the capacity class forces a ring.
        """
        kind = container or op.container
        if kind is None:
            kinds = op.allowed_container_kinds
            kind = (
                ContainerKind.CHAMBER
                if ContainerKind.CHAMBER in kinds
                else kinds[0]
            )
        elif kind not in op.allowed_container_kinds:
            raise SpecificationError(
                f"operation {op.uid!r} cannot run in a {kind.value}"
            )
        signature = op.requirement_signature() if mode is BindingMode.EXACT else None
        return GeneralDevice(
            uid=uid,
            container=kind,
            capacity=op.capacity,
            accessories=op.accessories,
            signature=signature,
        )

    def __str__(self) -> str:
        acc = ",".join(sorted(self.accessories)) or "-"
        return f"{self.uid}({self.container.value}/{self.capacity.short};{acc})"
