"""The device inventory — the paper's set ``D``.

``D``'s cardinality (user-given) caps how many devices may ever be
integrated on the chip.  The inventory tracks which devices exist, which
layer (and re-synthesis iteration) instantiated them, and enforces the cap.
It also implements the inheritance bookkeeping of Sec. 3.2:

* forward synthesis: layer ``L_i`` inherits every device built by layers
  ``< i``;
* re-synthesis: layer ``L_i`` inherits ``D \\ D'_i`` — all devices of the
  previous iteration except the ones ``L_i`` itself introduced.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..errors import SpecificationError
from .device import GeneralDevice


class DeviceInventory:
    """Devices instantiated so far, keyed by uid, with provenance."""

    def __init__(self, max_devices: int) -> None:
        if max_devices < 1:
            raise SpecificationError(f"max_devices must be >= 1, got {max_devices}")
        self.max_devices = max_devices
        self._devices: dict[str, GeneralDevice] = {}
        #: uid -> index of the layer that instantiated the device
        self._born_in_layer: dict[str, int] = {}

    # -- mutation ---------------------------------------------------------

    def add(self, device: GeneralDevice, layer_index: int) -> GeneralDevice:
        if device.uid in self._devices:
            raise SpecificationError(f"duplicate device uid {device.uid!r}")
        if len(self._devices) >= self.max_devices:
            raise SpecificationError(
                f"device cap |D|={self.max_devices} exceeded"
            )
        self._devices[device.uid] = device
        self._born_in_layer[device.uid] = layer_index
        return device

    def fresh_uid(self) -> str:
        """Next unused device uid (``d0``, ``d1``, ...)."""
        k = len(self._devices)
        while f"d{k}" in self._devices:
            k += 1
        return f"d{k}"

    # -- access ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._devices)

    def __iter__(self) -> Iterator[GeneralDevice]:
        return iter(self._devices.values())

    def __contains__(self, uid: str) -> bool:
        return uid in self._devices

    def __getitem__(self, uid: str) -> GeneralDevice:
        try:
            return self._devices[uid]
        except KeyError:
            raise SpecificationError(f"unknown device {uid!r}") from None

    @property
    def devices(self) -> list[GeneralDevice]:
        return list(self._devices.values())

    @property
    def free_slots(self) -> int:
        """How many more devices may still be integrated."""
        return self.max_devices - len(self._devices)

    def born_in(self, uid: str) -> int:
        return self._born_in_layer[uid]

    def devices_of_layer(self, layer_index: int) -> list[GeneralDevice]:
        """``D'_i``: the devices instantiated by layer ``layer_index``."""
        return [
            d for uid, d in self._devices.items()
            if self._born_in_layer[uid] == layer_index
        ]

    def inherited_for_forward(self, layer_index: int) -> list[GeneralDevice]:
        """Devices available to layer ``layer_index`` in forward synthesis."""
        return [
            d for uid, d in self._devices.items()
            if self._born_in_layer[uid] < layer_index
        ]

    def inherited_for_resynthesis(self, layer_index: int) -> list[GeneralDevice]:
        """``D \\ D'_i``: previous-iteration devices minus the layer's own."""
        return [
            d for uid, d in self._devices.items()
            if self._born_in_layer[uid] != layer_index
        ]

    def copy(self) -> "DeviceInventory":
        clone = DeviceInventory(self.max_devices)
        clone._devices = dict(self._devices)
        clone._born_in_layer = dict(self._born_in_layer)
        return clone

    def __repr__(self) -> str:
        return f"DeviceInventory({len(self)}/{self.max_devices})"
