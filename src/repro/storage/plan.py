"""Storage plan data model.

A :class:`StoragePlan` assigns every layer-crossing reagent of a hybrid
schedule one storage decision: **hold** in the producer's device,
**channel** (park in the transport channel between the producer's and
consumer's devices), or **reservoir** (a slot in a dedicated
:class:`~repro.components.storage.StorageReservoir`).  Boundary indices
follow :mod:`repro.analysis.storage`: boundary ``b`` is the real-time
decision point at the end of layer ``b``, so an edge from layer ``i`` to
layer ``j`` occupies its storage location at boundaries ``i .. j-1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..components.storage import StorageReservoir

#: reagent stays in its producer's device until consumption.
HOLD = "hold"
#: reagent parks inside the producer↔consumer transport channel.
CHANNEL = "channel"
#: reagent moves into a dedicated storage reservoir.
RESERVOIR = "reservoir"

DECISION_MODES = (HOLD, CHANNEL, RESERVOIR)


def channel_location(device_a: str, device_b: str) -> str:
    """Printable location name of the channel between two devices."""
    a, b = (device_a, device_b) if device_a <= device_b else (device_b, device_a)
    return f"{a}<->{b}"


@dataclass(frozen=True)
class StorageDecision:
    """Where one layer-crossing reagent waits, and what that costs."""

    producer: str
    consumer: str
    #: first layer boundary crossed (= producer's layer index).
    first_boundary: int
    #: last layer boundary crossed (= consumer's layer index - 1).
    last_boundary: int
    mode: str
    #: device uid (hold), ``a<->b`` channel name, or reservoir uid.
    location: str
    cost: float

    @property
    def boundaries(self) -> range:
        return range(self.first_boundary, self.last_boundary + 1)

    @property
    def span(self) -> int:
        """Number of layer boundaries the reagent is buffered across."""
        return self.last_boundary - self.first_boundary + 1

    @property
    def held(self) -> bool:
        return self.mode == HOLD


@dataclass
class StoragePlan:
    """The synthesized storage decisions of one pass."""

    mode: str  # the spec's storage_mode that produced the plan
    decisions: list[StorageDecision] = field(default_factory=list)
    reservoirs: list[StorageReservoir] = field(default_factory=list)

    def count(self, mode: str) -> int:
        return sum(1 for d in self.decisions if d.mode == mode)

    @property
    def held_count(self) -> int:
        return self.count(HOLD)

    @property
    def channel_count(self) -> int:
        return self.count(CHANNEL)

    @property
    def reservoir_count(self) -> int:
        return self.count(RESERVOIR)

    @property
    def demand(self) -> int:
        """Reagents needing storage structure (non-hold decisions)."""
        return len(self.decisions) - self.held_count

    def at_boundary(self, boundary: int) -> list[StorageDecision]:
        return [d for d in self.decisions if boundary in d.boundaries]

    def boundary_demand(self, boundary: int) -> int:
        """Non-hold reagents buffered across one boundary."""
        return sum(1 for d in self.at_boundary(boundary) if not d.held)

    @property
    def boundaries(self) -> list[int]:
        """All boundaries any decision occupies, ascending."""
        out: set[int] = set()
        for decision in self.decisions:
            out.update(decision.boundaries)
        return sorted(out)

    @property
    def decision_cost(self) -> float:
        return sum(d.cost for d in self.decisions)

    @property
    def reservoir_cost(self) -> float:
        return sum(r.build_cost for r in self.reservoirs)

    @property
    def total_cost(self) -> float:
        """Weighted storage objective: decisions + reservoir builds."""
        return self.decision_cost + self.reservoir_cost

    def sorted_decisions(self) -> list[StorageDecision]:
        """Deterministic report order."""
        return sorted(
            self.decisions,
            key=lambda d: (d.first_boundary, d.producer, d.consumer),
        )

    def to_json(self) -> dict:
        """JSON-ready dict (deterministic ordering throughout)."""
        return {
            "mode": self.mode,
            "held": self.held_count,
            "channel": self.channel_count,
            "reservoir": self.reservoir_count,
            "demand": self.demand,
            "decision_cost": round(self.decision_cost, 9),
            "reservoir_cost": round(self.reservoir_cost, 9),
            "total_cost": round(self.total_cost, 9),
            "reservoirs": [
                {"uid": r.uid, "capacity": r.capacity}
                for r in self.reservoirs
            ],
            "decisions": [
                {
                    "producer": d.producer,
                    "consumer": d.consumer,
                    "boundaries": [d.first_boundary, d.last_boundary],
                    "mode": d.mode,
                    "location": d.location,
                    "cost": round(d.cost, 9),
                }
                for d in self.sorted_decisions()
            ],
            "demand_by_boundary": [
                [b, self.boundary_demand(b)] for b in self.boundaries
            ],
        }
