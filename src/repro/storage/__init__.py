"""Storage-aware transport synthesis (extension).

Turns :mod:`repro.analysis.storage`'s passive cross-layer report into a
synthesized decision: every layer-crossing reagent is assigned
hold-in-place, distributed channel storage, or a dedicated storage
reservoir (see PAPERS.md: "Transport or Store?" arXiv:1705.04998 and
"Storage and Caching" arXiv:1705.04988).  Enabled by
``SynthesisSpec.storage_mode``; ``off`` keeps the paper flow untouched.
"""

from .plan import (
    CHANNEL,
    DECISION_MODES,
    HOLD,
    RESERVOIR,
    StorageDecision,
    StoragePlan,
    channel_location,
)
from .planner import (
    StoragePlanner,
    evicted_edges,
    plan_storage,
    validate_storage_plan,
)

__all__ = [
    "HOLD",
    "CHANNEL",
    "RESERVOIR",
    "DECISION_MODES",
    "StorageDecision",
    "StoragePlan",
    "StoragePlanner",
    "channel_location",
    "evicted_edges",
    "plan_storage",
    "validate_storage_plan",
]
