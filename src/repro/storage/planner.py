"""Storage planner: hold vs channel vs reservoir per crossing reagent.

Runs after a pass's layers are solved (every operation placed and bound)
and before transport refinement.  For each dependency edge that crosses
a layer boundary the planner chooses the cheapest *feasible* place for
the intermediate fluid to wait:

* **hold** — the reagent stays in its producer's device.  Free when the
  consumer is bound to the same device; in ``auto`` mode a cross-device
  hold is also allowed (at the ``hold`` weight) since the device merely
  stays occupied.  Infeasible whenever another operation runs on the
  producer's device before the consumer starts (the eviction analysis of
  :func:`repro.analysis.storage.storage_conflicts`).
* **channel** — the reagent parks in the producer↔consumer transport
  channel (``channel``/``auto`` modes).  Feasible only when the two
  devices differ (the channel exists exactly then, since every bound-
  apart edge creates a path) and the channel is not already storing
  another reagent at any spanned boundary.
* **reservoir** — always-feasible fallback: a slot in a dedicated
  storage reservoir.  Reservoirs are sized first-fit against the spec's
  ``storage_capacity`` and priced per :mod:`repro.components.storage`.

All tie-breaks are deterministic (edges in (layer, producer, consumer)
order; equal-cost options prefer hold, then channel).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..components.storage import StorageReservoir
from ..errors import SpecificationError, ValidationError
from ..hls.transport import path_key
from .plan import (
    CHANNEL,
    HOLD,
    RESERVOIR,
    StorageDecision,
    StoragePlan,
    channel_location,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..hls.schedule import HybridSchedule
    from ..hls.spec import SynthesisSpec
    from ..layering.layering import LayeringResult
    from ..operations.assay import Assay


def evicted_edges(
    assay: "Assay",
    layering: "LayeringResult",
    schedule: "HybridSchedule",
) -> set[tuple[str, str]]:
    """Crossing edges whose producer device is reused before consumption.

    Same analysis as :func:`repro.analysis.storage.storage_conflicts`,
    but over the raw (assay, layering, schedule) triple so it can run on
    an intermediate pass state, not just a finished result.
    """
    layer_of = layering.layer_of
    evicted: set[tuple[str, str]] = set()
    for parent, child in layering.cross_layer_edges():
        lp, lc = layer_of[parent], layer_of[child]
        _, parent_placement = schedule.find(parent)
        device_uid = parent_placement.device_uid
        child_placement = schedule.layer(lc)[child]
        for mid in range(lp + 1, lc + 1):
            hit = False
            for other in schedule.layer(mid).on_device(device_uid):
                if other.uid == child:
                    continue
                if mid < lc or other.start < child_placement.start:
                    evicted.add((parent, child))
                    hit = True
                    break
            if hit:
                break
    return evicted


class StoragePlanner:
    """Deterministic greedy min-cost storage assignment."""

    def __init__(self, spec: "SynthesisSpec") -> None:
        if spec.storage_mode == "off":
            raise SpecificationError(
                "storage_mode=off synthesizes no storage plan"
            )
        self.spec = spec

    def plan(
        self,
        assay: "Assay",
        layering: "LayeringResult",
        schedule: "HybridSchedule",
    ) -> StoragePlan:
        spec = self.spec
        mode = spec.storage_mode
        weights = spec.storage_weights
        layer_of = layering.layer_of
        binding = schedule.binding
        paths = schedule.transportation_paths(assay.edges)
        evicted = evicted_edges(assay, layering, schedule)

        crossings = sorted(
            layering.cross_layer_edges(),
            key=lambda edge: (layer_of[edge[0]], edge[0], edge[1]),
        )

        decisions: list[StorageDecision] = []
        #: (channel key, boundary) pairs already storing a reagent.
        channel_busy: set[tuple[tuple[str, str], int]] = set()
        #: reservoir decisions awaiting a first-fit reservoir slot,
        #: kept as (decision list index, boundaries).
        pending_reservoir: list[tuple[int, range]] = []

        for producer, consumer in crossings:
            lp, lc = layer_of[producer], layer_of[consumer]
            span = lc - lp
            boundaries = range(lp, lc)
            bp, bc = binding[producer], binding[consumer]
            hold_ok = (producer, consumer) not in evicted

            # (cost, preference, mode, location) — min() picks cheapest,
            # ties prefer hold over channel over reservoir.
            options: list[tuple[float, int, str, str]] = []
            if hold_ok and bp == bc:
                options.append((0.0, 0, HOLD, bp))
            elif hold_ok and mode == "auto":
                options.append((weights.hold * span, 0, HOLD, bp))
            if mode in ("channel", "auto") and bp != bc:
                key = path_key(bp, bc)
                free = key in paths and all(
                    (key, b) not in channel_busy for b in boundaries
                )
                if free:
                    options.append(
                        (weights.channel * span, 1, CHANNEL,
                         channel_location(bp, bc))
                    )
            options.append((weights.reservoir * span, 2, RESERVOIR, ""))

            cost, _, chosen, location = min(options)
            if chosen == CHANNEL:
                key = path_key(bp, bc)
                channel_busy.update((key, b) for b in boundaries)
            decisions.append(
                StorageDecision(
                    producer=producer,
                    consumer=consumer,
                    first_boundary=lp,
                    last_boundary=lc - 1,
                    mode=chosen,
                    location=location,
                    cost=cost,
                )
            )
            if chosen == RESERVOIR:
                pending_reservoir.append((len(decisions) - 1, boundaries))

        reservoirs = self._assign_reservoirs(decisions, pending_reservoir)
        return StoragePlan(mode=mode, decisions=decisions, reservoirs=reservoirs)

    def _assign_reservoirs(
        self,
        decisions: list[StorageDecision],
        pending: list[tuple[int, range]],
    ) -> list[StorageReservoir]:
        """First-fit reservoir sizing; rewrites decision locations."""
        capacity = self.spec.storage_capacity
        occupancy: list[dict[int, int]] = []
        for index, boundaries in pending:
            slot = None
            for res_index, load in enumerate(occupancy):
                if all(load.get(b, 0) < capacity for b in boundaries):
                    slot = res_index
                    break
            if slot is None:
                slot = len(occupancy)
                occupancy.append({})
            load = occupancy[slot]
            for b in boundaries:
                load[b] = load.get(b, 0) + 1
            decision = decisions[index]
            decisions[index] = StorageDecision(
                producer=decision.producer,
                consumer=decision.consumer,
                first_boundary=decision.first_boundary,
                last_boundary=decision.last_boundary,
                mode=decision.mode,
                location=f"s{slot}",
                cost=decision.cost,
            )
        return [
            StorageReservoir(uid=f"s{i}", capacity=capacity)
            for i in range(len(occupancy))
        ]


def plan_storage(
    assay: "Assay",
    layering: "LayeringResult",
    schedule: "HybridSchedule",
    spec: "SynthesisSpec",
) -> StoragePlan:
    """Synthesize the storage plan of one scheduled pass."""
    return StoragePlanner(spec).plan(assay, layering, schedule)


def validate_storage_plan(
    plan: StoragePlan,
    assay: "Assay",
    layering: "LayeringResult",
    schedule: "HybridSchedule",
    spec: "SynthesisSpec",
) -> None:
    """Independent consistency replay; raises :class:`ValidationError`.

    Checks decision coverage (exactly one per crossing edge), hold
    feasibility against the eviction analysis, channel existence and
    single-occupancy, and reservoir capacity at every boundary.
    """
    problems: list[str] = []
    layer_of = layering.layer_of
    binding = schedule.binding
    paths = schedule.transportation_paths(assay.edges)
    evicted = evicted_edges(assay, layering, schedule)

    expected = set(layering.cross_layer_edges())
    got = {(d.producer, d.consumer) for d in plan.decisions}
    for edge in sorted(expected - got):
        problems.append(f"crossing edge {edge} has no storage decision")
    for edge in sorted(got - expected):
        problems.append(f"decision for non-crossing edge {edge}")
    if len(got) != len(plan.decisions):
        problems.append("duplicate storage decisions for one edge")

    channel_seen: dict[tuple[str, int], str] = {}
    reservoir_load: dict[tuple[str, int], int] = {}
    reservoir_by_uid = {r.uid: r for r in plan.reservoirs}
    for d in plan.decisions:
        edge = (d.producer, d.consumer)
        if edge not in expected:
            continue
        lp, lc = layer_of[d.producer], layer_of[d.consumer]
        if (d.first_boundary, d.last_boundary) != (lp, lc - 1):
            problems.append(f"{edge}: boundaries mismatch layering")
            continue
        if d.cost < 0:
            problems.append(f"{edge}: negative storage cost")
        if d.mode == HOLD:
            if d.location != binding[d.producer]:
                problems.append(f"{edge}: hold away from producer device")
            if edge in evicted:
                problems.append(f"{edge}: hold on an evicted device")
        elif d.mode == CHANNEL:
            bp, bc = binding[d.producer], binding[d.consumer]
            if bp == bc:
                problems.append(f"{edge}: channel storage on one device")
            elif path_key(bp, bc) not in paths:
                problems.append(f"{edge}: channel path does not exist")
            elif d.location != channel_location(bp, bc):
                problems.append(f"{edge}: channel location mismatch")
            for b in d.boundaries:
                key = (d.location, b)
                if key in channel_seen:
                    problems.append(
                        f"{edge}: channel {d.location} already stores "
                        f"{channel_seen[key]} at boundary {b}"
                    )
                else:
                    channel_seen[key] = d.producer
        elif d.mode == RESERVOIR:
            reservoir = reservoir_by_uid.get(d.location)
            if reservoir is None:
                problems.append(f"{edge}: unknown reservoir {d.location!r}")
                continue
            for b in d.boundaries:
                key = (d.location, b)
                reservoir_load[key] = reservoir_load.get(key, 0) + 1
                if reservoir_load[key] > reservoir.capacity:
                    problems.append(
                        f"reservoir {d.location} over capacity at boundary {b}"
                    )
        else:
            problems.append(f"{edge}: unknown storage mode {d.mode!r}")

    if problems:
        raise ValidationError(
            "storage plan failed validation:\n  " + "\n  ".join(problems)
        )
