"""repro — component-oriented high-level synthesis for continuous-flow
microfluidics with hybrid scheduling.

A from-scratch Python reproduction of

    M. Li, T.-M. Tseng, B. Li, T.-Y. Ho, U. Schlichtmann,
    "Component-Oriented High-level Synthesis for Continuous-Flow
    Microfluidics Considering Hybrid-Scheduling", DAC 2017.

Quickstart::

    from repro import AssayBuilder, SynthesisSpec, synthesize

    b = AssayBuilder("pcr")
    mix = b.op("mix", 8, container="ring", accessories=["pump"])
    heat = b.op("heat", 30, accessories=["heating_pad"], after=[mix])
    b.op("read", 2, accessories=["optical_system"], after=[heat])

    result = synthesize(b.build(), SynthesisSpec(max_devices=5))
    print(result.makespan_expression, result.num_devices)

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.components` — containers, accessories, cost tables (Sec. 2.1)
* :mod:`repro.operations` — component-oriented operations & assay DAGs (2.2)
* :mod:`repro.devices` — general devices and the inventory ``D``
* :mod:`repro.layering` — Algorithm 1: layering for hybrid scheduling (3.1)
* :mod:`repro.hls` — per-layer ILP + progressive re-synthesis (3.2, 4)
* :mod:`repro.baselines` — the modified conventional method (5)
* :mod:`repro.assays` — the three benchmark assay reconstructions
* :mod:`repro.runtime` — cyberphysical executor for hybrid schedules
* :mod:`repro.experiments` — Table 2 / Table 3 harnesses
* :mod:`repro.ilp` — self-contained MILP substrate (HiGHS + own B&B)
"""

from .baselines import synthesize_conventional
from .components import Accessory, Capacity, ContainerKind, CostModel
from .devices import BindingMode, DeviceInventory, GeneralDevice
from .errors import ReproError
from .hls import (
    HybridSchedule,
    SynthesisResult,
    SynthesisSpec,
    TransportProgression,
    Weights,
    synthesize,
)
from .layering import Layer, LayeringResult, layer_assay
from .operations import Assay, AssayBuilder, Fixed, Indeterminate, Operation
from .runtime import RetryModel, execute_schedule

__version__ = "1.0.0"

__all__ = [
    "Accessory",
    "Assay",
    "AssayBuilder",
    "BindingMode",
    "Capacity",
    "ContainerKind",
    "CostModel",
    "DeviceInventory",
    "Fixed",
    "GeneralDevice",
    "HybridSchedule",
    "Indeterminate",
    "Layer",
    "LayeringResult",
    "Operation",
    "ReproError",
    "RetryModel",
    "SynthesisResult",
    "SynthesisSpec",
    "TransportProgression",
    "Weights",
    "execute_schedule",
    "layer_assay",
    "synthesize",
    "synthesize_conventional",
    "__version__",
]
