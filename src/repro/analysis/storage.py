"""Cross-layer reagent storage analysis.

When a dependency edge crosses a layer boundary and its endpoints are bound
to different devices, the parent's output must be buffered somewhere while
the boundary's real-time decision plays out — the quantity the layering
algorithm's eviction step minimizes (Fig. 5).  This module reports exactly
which reagents need storage at each boundary and sizes the demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..hls.synthesizer import SynthesisResult


@dataclass(frozen=True)
class StoredReagent:
    """One buffered reagent: the crossing dependency edge that needs it."""

    producer: str
    consumer: str
    boundary: int  # stored across the end of this layer index
    #: True when parent and child are bound to the same device: the reagent
    #: can simply stay in place, needing no separate storage.
    held_in_place: bool


@dataclass
class StorageReport:
    """Storage demand per layer boundary."""

    reagents: list[StoredReagent] = field(default_factory=list)

    def at_boundary(self, layer_index: int) -> list[StoredReagent]:
        return [r for r in self.reagents if r.boundary == layer_index]

    def demand(self, layer_index: int) -> int:
        """Reagents needing actual storage capacity at a boundary."""
        return sum(
            1 for r in self.at_boundary(layer_index) if not r.held_in_place
        )

    @property
    def peak_demand(self) -> int:
        boundaries = {r.boundary for r in self.reagents}
        return max((self.demand(b) for b in boundaries), default=0)

    @property
    def total_crossings(self) -> int:
        return len(self.reagents)


def storage_report(result: "SynthesisResult") -> StorageReport:
    """Compute the storage demand of a synthesis result."""
    layer_of = result.layering.layer_of
    binding = result.schedule.binding
    reagents = []
    for parent, child in result.assay.edges:
        lp, lc = layer_of[parent], layer_of[child]
        if lp == lc:
            continue
        for boundary in range(lp, lc):
            reagents.append(
                StoredReagent(
                    producer=parent,
                    consumer=child,
                    boundary=boundary,
                    held_in_place=binding[parent] == binding[child],
                )
            )
    return StorageReport(reagents=reagents)


@dataclass(frozen=True)
class StorageConflict:
    """A reagent that cannot simply wait inside its producer's device.

    The producer's device executes another operation between the reagent's
    production and its consumption, so the reagent must be moved to
    dedicated storage (or the schedule re-bound).
    """

    producer: str
    consumer: str
    device_uid: str
    evicting_op: str


def storage_conflicts(result: "SynthesisResult") -> list[StorageConflict]:
    """Cross-layer reagents whose producer device gets reused before the
    consumer runs.

    A reagent produced by ``p`` (layer i) for ``c`` (layer j > i) waits in
    ``p``'s device after layer i ends.  Any operation scheduled on that
    device in layers i+1..j-1, or in layer j before ``c`` starts, evicts
    the reagent into storage.  (When ``p`` and ``c`` share a device, the
    first such operation is a genuine conflict too — the reagent has
    nowhere to wait.)
    """
    layer_of = result.layering.layer_of
    conflicts: list[StorageConflict] = []
    for parent, child in result.assay.edges:
        lp, lc = layer_of[parent], layer_of[child]
        if lp == lc:
            continue
        _, parent_placement = result.schedule.find(parent)
        device_uid = parent_placement.device_uid
        child_placement = result.schedule.layer(lc)[child]
        evictor = None
        for mid in range(lp + 1, lc + 1):
            for other in result.schedule.layer(mid).on_device(device_uid):
                if other.uid == child:
                    continue
                if mid < lc or other.start < child_placement.start:
                    evictor = other.uid
                    break
            if evictor:
                break
        if evictor is not None:
            conflicts.append(
                StorageConflict(
                    producer=parent,
                    consumer=child,
                    device_uid=device_uid,
                    evicting_op=evictor,
                )
            )
    return conflicts
