"""Critical-path analysis of assays and schedules.

The critical path lower-bounds the achievable makespan regardless of how
many devices the chip integrates: no schedule can beat the longest
duration-weighted dependency chain.  Useful both to sanity-check synthesis
results (``schedule makespan >= critical path``) and to tell users when
adding devices cannot help anymore.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..operations.assay import Assay


@dataclass(frozen=True)
class CriticalPath:
    """The longest duration-weighted chain of an assay."""

    uids: tuple[str, ...]
    length: int
    #: length including per-edge transportation estimates, when provided.
    length_with_transport: int

    def __len__(self) -> int:
        return len(self.uids)


def critical_path(
    assay: Assay,
    edge_transport: dict[tuple[str, str], int] | None = None,
) -> CriticalPath:
    """Longest chain by scheduled durations (+ optional transport times)."""
    transport = edge_transport or {}
    order = assay.topological_order()

    # Longest path ending at each node, with and without transport.
    best: dict[str, int] = {}
    best_t: dict[str, int] = {}
    pred: dict[str, str | None] = {}
    for uid in order:
        op = assay[uid]
        best[uid] = op.duration.scheduled
        best_t[uid] = op.duration.scheduled
        pred[uid] = None
        for parent in assay.parents(uid):
            via = best[parent] + op.duration.scheduled
            via_t = (
                best_t[parent]
                + transport.get((parent, uid), 0)
                + op.duration.scheduled
            )
            if via_t > best_t[uid]:
                best_t[uid] = via_t
                pred[uid] = parent
            if via > best[uid]:
                best[uid] = via

    if not order:
        return CriticalPath(uids=(), length=0, length_with_transport=0)

    tail = max(order, key=lambda uid: best_t[uid])
    chain = [tail]
    while pred[chain[-1]] is not None:
        chain.append(pred[chain[-1]])  # type: ignore[arg-type]
    chain.reverse()
    return CriticalPath(
        uids=tuple(chain),
        length=max(best.values()),
        length_with_transport=best_t[tail],
    )
