"""Makespan lower bounds and optimality-gap reporting.

Two classic bounds certify how far a hybrid schedule can be from optimal
*without* re-solving anything:

* **critical-path bound** — the duration(+transport)-weighted longest
  dependency chain of a layer; no amount of hardware beats it;
* **work bound** — total scheduled work divided by the device cap: even
  perfect packing onto ``|D|`` devices cannot finish faster.

The per-layer gap ``(makespan − max(bounds)) / makespan`` tells a user
whether a long schedule is the solver's fault (large gap → raise the time
limit) or the problem's (gap ≈ 0 → buy a bigger chip or restructure the
protocol).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from .critical_path import critical_path

if TYPE_CHECKING:  # pragma: no cover
    from ..hls.synthesizer import SynthesisResult


@dataclass(frozen=True)
class LayerBound:
    """Lower-bound certificate for one layer."""

    layer_index: int
    makespan: int
    critical_path_bound: int
    work_bound: int

    @property
    def bound(self) -> int:
        return max(self.critical_path_bound, self.work_bound)

    @property
    def gap(self) -> float:
        """Relative optimality gap; 0 means provably optimal makespan."""
        if self.makespan <= 0:
            return 0.0
        return max(0.0, (self.makespan - self.bound) / self.makespan)


@dataclass(frozen=True)
class BoundsReport:
    """Per-layer bounds plus the whole-schedule aggregate."""

    layers: tuple[LayerBound, ...]

    @property
    def total_makespan(self) -> int:
        return sum(b.makespan for b in self.layers)

    @property
    def total_bound(self) -> int:
        return sum(b.bound for b in self.layers)

    @property
    def total_gap(self) -> float:
        if self.total_makespan <= 0:
            return 0.0
        return max(
            0.0,
            (self.total_makespan - self.total_bound) / self.total_makespan,
        )


def makespan_bounds(result: "SynthesisResult") -> BoundsReport:
    """Compute per-layer lower bounds for a synthesis result."""
    assay = result.assay
    transport = result.edge_transport
    max_devices = result.spec.max_devices

    layer_bounds = []
    for layer in result.schedule.layers:
        uids = list(layer.placements)
        sub = assay.subset(uids)
        sub_transport = {
            (p, c): t for (p, c), t in transport.items()
            if p in layer.placements and c in layer.placements
        }
        cp = critical_path(sub, sub_transport)
        total_work = sum(
            p.duration for p in layer.placements.values()
        )
        work_bound = math.ceil(total_work / max_devices) if uids else 0
        layer_bounds.append(
            LayerBound(
                layer_index=layer.index,
                makespan=layer.makespan,
                critical_path_bound=cp.length_with_transport,
                work_bound=work_bound,
            )
        )
    return BoundsReport(layers=tuple(layer_bounds))
