"""Schedule statistics.

Quantifies the paper's qualitative claims — "our method ... balances the
usage of chip resources, so that more operations can be executed in
parallel" — as measurable numbers: per-device busy fractions, the
layer-by-layer parallelism profile, and aggregate utilization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..hls.schedule import HybridSchedule

if TYPE_CHECKING:  # pragma: no cover
    from ..hls.synthesizer import SynthesisResult


@dataclass(frozen=True)
class DeviceUtilization:
    """Busy statistics of one device over the fixed parts of the schedule."""

    device_uid: str
    busy_time: int
    num_operations: int
    #: busy_time / total fixed makespan (0 when the schedule is empty).
    utilization: float


@dataclass
class ScheduleStats:
    """Aggregate schedule metrics."""

    fixed_makespan: int
    num_operations: int
    num_devices: int
    num_layers: int
    total_busy_time: int
    #: mean of the per-device utilizations.
    mean_utilization: float
    #: max ops executing simultaneously (fixed parts only).
    peak_parallelism: int
    #: busy-time imbalance: max device busy / mean device busy (1 = even).
    balance_ratio: float
    per_device: list[DeviceUtilization] = field(default_factory=list)


def device_utilization(schedule: HybridSchedule) -> list[DeviceUtilization]:
    """Busy time per device across all layers (scheduled durations only)."""
    makespan = schedule.fixed_makespan
    busy: dict[str, int] = {}
    count: dict[str, int] = {}
    for layer in schedule.layers:
        for placement in layer.placements.values():
            busy[placement.device_uid] = (
                busy.get(placement.device_uid, 0) + placement.duration
            )
            count[placement.device_uid] = (
                count.get(placement.device_uid, 0) + 1
            )
    return [
        DeviceUtilization(
            device_uid=uid,
            busy_time=busy[uid],
            num_operations=count[uid],
            utilization=busy[uid] / makespan if makespan else 0.0,
        )
        for uid in sorted(busy)
    ]


def parallelism_profile(schedule: HybridSchedule) -> list[int]:
    """Concurrent-operation count at every (global) time unit.

    Layers are laid out back to back at their scheduled makespans; the
    indeterminate tails are counted at their minimum durations.
    """
    profile: list[int] = []
    for layer in schedule.layers:
        span = layer.makespan
        counts = [0] * span
        for placement in layer.placements.values():
            for t in range(placement.start, min(placement.end, span)):
                counts[t] += 1
        profile.extend(counts)
    return profile


def schedule_stats(schedule: HybridSchedule) -> ScheduleStats:
    """Aggregate metrics; see :class:`ScheduleStats`."""
    per_device = device_utilization(schedule)
    profile = parallelism_profile(schedule)
    busy_values = [d.busy_time for d in per_device]
    mean_busy = sum(busy_values) / len(busy_values) if busy_values else 0.0
    return ScheduleStats(
        fixed_makespan=schedule.fixed_makespan,
        num_operations=sum(len(layer) for layer in schedule.layers),
        num_devices=len(per_device),
        num_layers=len(schedule.layers),
        total_busy_time=sum(busy_values),
        mean_utilization=(
            sum(d.utilization for d in per_device) / len(per_device)
            if per_device
            else 0.0
        ),
        peak_parallelism=max(profile, default=0),
        balance_ratio=(
            max(busy_values) / mean_busy if mean_busy else 1.0
        ),
        per_device=per_device,
    )


def objective_value(result: "SynthesisResult") -> float:
    """The paper's weighted objective evaluated on a finished result:
    ``C_t·sum_t + C_a·sum_a + C_pr·sum_pr + C_p·sum_p`` (Sec. 4.3).

    Uses the result's own spec weights and cost model.  Note the per-layer
    ILPs optimize layer makespans independently, so this global value is
    what the synthesis *achieved*, not necessarily a per-layer optimum sum.
    """
    spec = result.spec
    weights = spec.weights
    costs = spec.cost_model
    area = sum(d.area(costs) for d in result.devices.values())
    processing = sum(d.processing_cost(costs) for d in result.devices.values())
    return (
        weights.time * result.fixed_makespan
        + weights.area * area
        + weights.processing * processing
        + weights.paths * result.num_paths
    )


def format_stats(stats: ScheduleStats) -> str:
    """Human-readable multi-line report."""
    lines = [
        f"makespan (fixed) : {stats.fixed_makespan}",
        f"operations       : {stats.num_operations}",
        f"devices          : {stats.num_devices}",
        f"layers           : {stats.num_layers}",
        f"mean utilization : {stats.mean_utilization:.1%}",
        f"peak parallelism : {stats.peak_parallelism}",
        f"balance ratio    : {stats.balance_ratio:.2f}",
    ]
    for d in stats.per_device:
        lines.append(
            f"  {d.device_uid:>8}: busy {d.busy_time:>5} "
            f"({d.utilization:.1%}), {d.num_operations} ops"
        )
    return "\n".join(lines)
