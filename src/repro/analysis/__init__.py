"""Post-synthesis analysis: utilization, critical paths, storage demand."""

from .bounds import BoundsReport, LayerBound, makespan_bounds
from .critical_path import CriticalPath, critical_path
from .storage import StorageReport, StoredReagent, storage_report
from .stats import (
    DeviceUtilization,
    objective_value,
    ScheduleStats,
    device_utilization,
    parallelism_profile,
    schedule_stats,
)

__all__ = [
    "BoundsReport",
    "LayerBound",
    "makespan_bounds",
    "StorageReport",
    "StoredReagent",
    "storage_report",
    "CriticalPath",
    "critical_path",
    "DeviceUtilization",
    "ScheduleStats",
    "device_utilization",
    "objective_value",
    "parallelism_profile",
    "schedule_stats",
]
