"""Time units and duration formatting.

The paper reports execution times in minutes (``m``) and program runtimes in
minutes+seconds (``5m12s``).  Internally every schedule quantity is an
integer number of *time units*; by convention one unit is one minute for the
bioassay benchmarks, but nothing in the synthesis engine depends on the
physical meaning of a unit.
"""

from __future__ import annotations

import re

from .errors import SpecificationError

#: Number of seconds represented by one schedule time unit (benchmarks use
#: minutes).
SECONDS_PER_UNIT = 60

_DURATION_RE = re.compile(
    r"^\s*(?:(?P<hours>\d+)\s*h)?\s*(?:(?P<minutes>\d+)\s*m)?\s*(?:(?P<seconds>\d+)\s*s)?\s*$"
)


def parse_duration(text: str) -> int:
    """Parse a human duration like ``"5m"``, ``"1h30m"`` or ``"90s"``.

    Returns the duration in whole minutes (the benchmark time unit); seconds
    are rounded up so a nonzero duration never collapses to zero.

    >>> parse_duration("5m")
    5
    >>> parse_duration("1h30m")
    90
    >>> parse_duration("30s")
    1
    """
    match = _DURATION_RE.match(text)
    if match is None or not any(match.groupdict().values()):
        raise SpecificationError(f"cannot parse duration: {text!r}")
    hours = int(match.group("hours") or 0)
    minutes = int(match.group("minutes") or 0)
    seconds = int(match.group("seconds") or 0)
    total_seconds = hours * 3600 + minutes * 60 + seconds
    return (total_seconds + 59) // 60


def format_minutes(minutes: int | float) -> str:
    """Format a minute count the way the paper's tables do (``225m``)."""
    if isinstance(minutes, float) and minutes.is_integer():
        minutes = int(minutes)
    return f"{minutes}m"


def format_runtime(seconds: float) -> str:
    """Format a wall-clock runtime like the paper (``5.531s`` / ``5m12s``)."""
    if seconds < 60:
        return f"{seconds:.3f}s"
    whole = int(seconds)
    return f"{whole // 60}m{whole % 60}s"
