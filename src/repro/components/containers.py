"""Containers: chambers and rings, with capacity classes.

The paper defines four capacity classes — *large*, *medium*, *small*,
*tiny* — and restricts them per container kind (constraints (3)/(4)):
a ring may be large/medium/small, a chamber medium/small/tiny.
"""

from __future__ import annotations

import enum

from ..errors import SpecificationError


class ContainerKind(enum.Enum):
    """The two container components of Sec. 2.1.1."""

    RING = "ring"
    CHAMBER = "chamber"

    @property
    def short(self) -> str:
        return "r" if self is ContainerKind.RING else "ch"


class Capacity(enum.Enum):
    """Container volume classes, ordered large > medium > small > tiny."""

    LARGE = "large"
    MEDIUM = "medium"
    SMALL = "small"
    TINY = "tiny"

    @property
    def short(self) -> str:
        return {"large": "l", "medium": "m", "small": "s", "tiny": "t"}[self.value]

    @property
    def rank(self) -> int:
        """Size rank; larger capacity gets the larger rank."""
        order = [Capacity.TINY, Capacity.SMALL, Capacity.MEDIUM, Capacity.LARGE]
        return order.index(self)


#: Legal capacity classes per container kind (paper constraints (3)/(4)).
_ALLOWED: dict[ContainerKind, tuple[Capacity, ...]] = {
    ContainerKind.RING: (Capacity.LARGE, Capacity.MEDIUM, Capacity.SMALL),
    ContainerKind.CHAMBER: (Capacity.MEDIUM, Capacity.SMALL, Capacity.TINY),
}


def allowed_capacities(kind: ContainerKind) -> tuple[Capacity, ...]:
    """Capacity classes a container of ``kind`` may take."""
    return _ALLOWED[kind]


def check_container(kind: ContainerKind, capacity: Capacity) -> None:
    """Raise :class:`SpecificationError` for an illegal (kind, capacity)."""
    if capacity not in _ALLOWED[kind]:
        legal = ", ".join(c.value for c in _ALLOWED[kind])
        raise SpecificationError(
            f"a {kind.value} cannot have capacity {capacity.value!r} "
            f"(allowed: {legal})"
        )


def kinds_for_capacity(capacity: Capacity) -> tuple[ContainerKind, ...]:
    """Container kinds that can realize ``capacity``.

    Used when an operation leaves its container kind unspecified: the paper
    allows binding to "either a ring or a chamber of corresponding size".
    """
    return tuple(k for k, caps in _ALLOWED.items() if capacity in caps)
