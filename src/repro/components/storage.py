"""Dedicated storage reservoirs (extension).

The paper's component catalog has no place for an intermediate fluid to
wait: containers execute operations and accessories augment them.  The
storage extension (after "Transport or Store?" and "Storage and
Caching", see PAPERS.md) adds a third component category — a passive
reservoir that buffers layer-crossing reagents between the production
layer and the consumption layer.

A reservoir holds up to ``capacity`` reagents per layer boundary and
costs chip area plus fabrication processing proportional to that
capacity.  The per-unit constants play the role of ``A_x``/``Pr_z`` in
the paper's objective for this new component kind.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SpecificationError

#: chip area per reagent slot (same unit as ``CostModel.area``).
RESERVOIR_UNIT_AREA = 2.0
#: fabrication processing effort per reagent slot.
RESERVOIR_UNIT_PROCESSING = 0.5


@dataclass(frozen=True)
class StorageReservoir:
    """One dedicated storage reservoir on the chip."""

    uid: str
    capacity: int

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise SpecificationError(
                f"reservoir {self.uid}: capacity must be >= 1"
            )

    @property
    def area(self) -> float:
        """Exclusive chip area of the reservoir."""
        return RESERVOIR_UNIT_AREA * self.capacity

    @property
    def processing_cost(self) -> float:
        """Fabrication processing effort of the reservoir."""
        return RESERVOIR_UNIT_PROCESSING * self.capacity

    @property
    def build_cost(self) -> float:
        """Total one-off cost of adding the reservoir to the chip."""
        return self.area + self.processing_cost


def reservoirs_needed(peak_demand: int, capacity: int) -> int:
    """Reservoir count covering ``peak_demand`` concurrent reagents."""
    if peak_demand < 0:
        raise SpecificationError("peak demand must be >= 0")
    if capacity < 1:
        raise SpecificationError("capacity must be >= 1")
    return -(-peak_demand // capacity)
