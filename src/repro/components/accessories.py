"""Accessories: functionally specialized components integrated into containers.

Sec. 2.1.2 of the paper reviews five accessories — pump, heating pad,
optical system, sieve valve, cell trap — and stresses that the catalog keeps
growing as lab-on-a-chip technology evolves.  We therefore model accessories
as registry entries rather than a closed enum: a user introducing, say, an
electrode array registers it once and every synthesis facility (binding
legality, ILP variables, cost accounting) picks it up automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SpecificationError


@dataclass(frozen=True)
class Accessory:
    """An accessory component type.

    Attributes:
        name: unique lowercase identifier (``"pump"``).
        short: one/two-letter code used in ILP variable names (paper's
            subscripts p/h/o/s/c).
        description: human-readable summary.
    """

    name: str
    short: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or self.name != self.name.lower():
            raise SpecificationError(
                f"accessory name must be non-empty lowercase, got {self.name!r}"
            )


#: The five accessories reviewed in the paper (subscripts p, h, o, s, c).
PUMP = Accessory("pump", "p", "valve group providing pressure for fluid movement")
HEATING_PAD = Accessory(
    "heating_pad", "h", "heating layer + circuit under the flow layer"
)
OPTICAL_SYSTEM = Accessory(
    "optical_system", "o", "light source + detector for detection operations"
)
SIEVE_VALVE = Accessory(
    "sieve_valve", "s", "valve leaving a gap that halts large particles"
)
CELL_TRAP = Accessory(
    "cell_trap", "c", "passive trap that fits and holds single cells"
)

STANDARD_ACCESSORIES = (PUMP, HEATING_PAD, OPTICAL_SYSTEM, SIEVE_VALVE, CELL_TRAP)


@dataclass
class AccessoryRegistry:
    """Mutable catalog of accessory types known to a synthesis run."""

    _by_name: dict[str, Accessory] = field(default_factory=dict)

    def register(self, accessory: Accessory) -> Accessory:
        """Add an accessory type; idempotent for identical re-registration."""
        existing = self._by_name.get(accessory.name)
        if existing is not None:
            if existing != accessory:
                raise SpecificationError(
                    f"accessory {accessory.name!r} already registered with a "
                    "different definition"
                )
            return existing
        shorts = {a.short for a in self._by_name.values()}
        if accessory.short in shorts:
            raise SpecificationError(
                f"accessory short code {accessory.short!r} already in use"
            )
        self._by_name[accessory.name] = accessory
        return accessory

    def get(self, name: str) -> Accessory:
        try:
            return self._by_name[name]
        except KeyError:
            raise SpecificationError(f"unknown accessory {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self):
        return iter(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)

    @property
    def names(self) -> list[str]:
        return list(self._by_name)

    def copy(self) -> "AccessoryRegistry":
        return AccessoryRegistry(dict(self._by_name))


def standard_registry() -> AccessoryRegistry:
    """A fresh registry pre-populated with the paper's five accessories."""
    registry = AccessoryRegistry()
    for accessory in STANDARD_ACCESSORIES:
        registry.register(accessory)
    return registry
