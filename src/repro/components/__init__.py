"""Microfluidic component catalog (Sec. 2.1 of the paper).

Components split into two categories:

* **containers** — chamber and ring; cost exclusive chip area *and*
  processing effort (:mod:`repro.components.containers`);
* **accessories** — pump, heating pad, optical system, sieve valve, cell
  trap, and any user-registered extension; cost processing effort only
  (:mod:`repro.components.accessories`).

:class:`repro.components.costs.CostModel` carries the constant tables
(``A_x``, ``A'_y``, ``Pr_z`` in the paper's objective).

The storage extension adds a third category — passive
:class:`repro.components.storage.StorageReservoir` units that buffer
layer-crossing reagents (see :mod:`repro.storage`).
"""

from .accessories import (
    CELL_TRAP,
    HEATING_PAD,
    OPTICAL_SYSTEM,
    PUMP,
    SIEVE_VALVE,
    Accessory,
    AccessoryRegistry,
    standard_registry,
)
from .containers import Capacity, ContainerKind, allowed_capacities
from .costs import CostModel
from .storage import StorageReservoir, reservoirs_needed

__all__ = [
    "Accessory",
    "AccessoryRegistry",
    "standard_registry",
    "PUMP",
    "HEATING_PAD",
    "OPTICAL_SYSTEM",
    "SIEVE_VALVE",
    "CELL_TRAP",
    "Capacity",
    "ContainerKind",
    "allowed_capacities",
    "CostModel",
    "StorageReservoir",
    "reservoirs_needed",
]
