"""Control-layer complexity estimation.

Continuous-flow chips are driven by a control layer of pneumatic valves
(Sec. 2 of the paper: accessories cost "the implementation of extra chip
ports and control channels").  This module estimates that complexity for a
synthesized chip:

* every container is isolated by valves (chamber: one per end; ring: the
  same two plus the separation from the bus);
* a pump is a peristaltic group of three valves [paper Sec. 2.1.2], which
  may be sequentially connected and share one pressure source;
* a sieve-valve accessory contributes two sieve valves (one per container
  end, as in the Fig. 2 bead columns);
* every transportation path needs a routing valve at each endpoint;
* control *ports* (off-chip connections) can be shared by valves that
  always actuate together.

The numbers are first-order estimates for comparing synthesis solutions,
not a mask-level count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from .containers import ContainerKind

if TYPE_CHECKING:  # pragma: no cover
    from ..devices.device import GeneralDevice
    from ..hls.synthesizer import SynthesisResult

#: valves contributed by each accessory type (unknown accessories: 1).
_ACCESSORY_VALVES: dict[str, int] = {
    "pump": 3,          # peristaltic triple
    "sieve_valve": 2,   # one per container end
    "heating_pad": 0,   # electrical, no pneumatics
    "optical_system": 0,
    "cell_trap": 0,     # passive structure
}

#: control ports: valves that always actuate together share a port.
_ACCESSORY_PORTS: dict[str, int] = {
    "pump": 3,          # three phases need three sources
    "sieve_valve": 1,   # both sieve valves switch together
    "heating_pad": 1,   # heater drive line
    "optical_system": 1,
    "cell_trap": 0,
}


@dataclass(frozen=True)
class ControlEstimate:
    """Estimated control-layer complexity of one device or a whole chip."""

    valves: int
    control_ports: int

    def __add__(self, other: "ControlEstimate") -> "ControlEstimate":
        return ControlEstimate(
            self.valves + other.valves,
            self.control_ports + other.control_ports,
        )


def device_control(device: "GeneralDevice") -> ControlEstimate:
    """Valve/port estimate for one configured device."""
    # Container isolation: two valves either way; a ring additionally
    # needs the bus-separation valve pair to close the loop.
    valves = 2 if device.container is ContainerKind.CHAMBER else 4
    ports = 1  # the isolation valves actuate together
    for name in device.accessories:
        valves += _ACCESSORY_VALVES.get(name, 1)
        ports += _ACCESSORY_PORTS.get(name, 1)
    return ControlEstimate(valves=valves, control_ports=ports)


def chip_control(result: "SynthesisResult") -> ControlEstimate:
    """Valve/port estimate for a synthesized chip.

    Sums device estimates and adds one routing valve per transportation
    path endpoint (two per path, sharing one port per path).
    """
    total = ControlEstimate(0, 0)
    for device in result.devices.values():
        total = total + device_control(device)
    routing = ControlEstimate(
        valves=2 * result.num_paths, control_ports=result.num_paths
    )
    return total + routing
