"""Cost constants for containers and accessories.

The paper's objective uses constant tables:

* ``A_x`` — area of a ring with capacity x ∈ {large, medium, small};
* ``A'_y`` — area of a chamber with capacity y ∈ {medium, small, tiny};
* container processing costs (same index structure);
* ``Pr_z`` — processing cost of accessory z.

Exact values are not published; the defaults below encode the relationships
the paper states: rings cost more area than chambers of the same capacity
(the motivation of Fig. 6), larger capacities cost more, and accessories
cost processing only (no area).  All values are user-overridable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SpecificationError
from .accessories import STANDARD_ACCESSORIES
from .containers import Capacity, ContainerKind, allowed_capacities

#: Default container area units per (kind, capacity).  A ring is a chamber
#: bent into a circle plus the circulation return — charge ~1.6x the area of
#: the same-capacity chamber.
_DEFAULT_AREA: dict[tuple[ContainerKind, Capacity], float] = {
    (ContainerKind.RING, Capacity.LARGE): 16.0,
    (ContainerKind.RING, Capacity.MEDIUM): 11.0,
    (ContainerKind.RING, Capacity.SMALL): 8.0,
    (ContainerKind.CHAMBER, Capacity.MEDIUM): 7.0,
    (ContainerKind.CHAMBER, Capacity.SMALL): 5.0,
    (ContainerKind.CHAMBER, Capacity.TINY): 3.0,
}

#: Default container processing cost (valve pairs, alignment, test effort).
_DEFAULT_CONTAINER_PROCESSING: dict[tuple[ContainerKind, Capacity], float] = {
    (ContainerKind.RING, Capacity.LARGE): 6.0,
    (ContainerKind.RING, Capacity.MEDIUM): 5.0,
    (ContainerKind.RING, Capacity.SMALL): 4.0,
    (ContainerKind.CHAMBER, Capacity.MEDIUM): 3.0,
    (ContainerKind.CHAMBER, Capacity.SMALL): 2.0,
    (ContainerKind.CHAMBER, Capacity.TINY): 1.0,
}

#: Default accessory processing costs (mask fabrication, yield loss, extra
#: ports/control channels — Sec. 2.1.2).
_DEFAULT_ACCESSORY_PROCESSING: dict[str, float] = {
    "pump": 3.0,
    "heating_pad": 4.0,
    "optical_system": 5.0,
    "sieve_valve": 2.0,
    "cell_trap": 2.0,
}


@dataclass
class CostModel:
    """Area and processing-cost tables used by the ILP objective.

    Unknown accessories default to ``default_accessory_processing`` so that
    newly registered accessory types work without editing the cost model.
    """

    area: dict[tuple[ContainerKind, Capacity], float] = field(
        default_factory=lambda: dict(_DEFAULT_AREA)
    )
    container_processing: dict[tuple[ContainerKind, Capacity], float] = field(
        default_factory=lambda: dict(_DEFAULT_CONTAINER_PROCESSING)
    )
    accessory_processing: dict[str, float] = field(
        default_factory=lambda: dict(_DEFAULT_ACCESSORY_PROCESSING)
    )
    default_accessory_processing: float = 3.0

    def __post_init__(self) -> None:
        for kind in ContainerKind:
            for capacity in allowed_capacities(kind):
                if (kind, capacity) not in self.area:
                    raise SpecificationError(
                        f"cost model missing area for {kind.value}/{capacity.value}"
                    )
                if (kind, capacity) not in self.container_processing:
                    raise SpecificationError(
                        "cost model missing processing cost for "
                        f"{kind.value}/{capacity.value}"
                    )
        for table in (self.area, self.container_processing, self.accessory_processing):
            for key, value in table.items():
                if value < 0:
                    raise SpecificationError(f"negative cost for {key}")

    def container_area(self, kind: ContainerKind, capacity: Capacity) -> float:
        """Area ``A_x`` / ``A'_y`` of a container."""
        try:
            return self.area[(kind, capacity)]
        except KeyError:
            raise SpecificationError(
                f"no area defined for {kind.value}/{capacity.value}"
            ) from None

    def container_cost(self, kind: ContainerKind, capacity: Capacity) -> float:
        """Processing cost of integrating a container."""
        try:
            return self.container_processing[(kind, capacity)]
        except KeyError:
            raise SpecificationError(
                f"no processing cost defined for {kind.value}/{capacity.value}"
            ) from None

    def accessory_cost(self, name: str) -> float:
        """Processing cost ``Pr_z`` of integrating one accessory."""
        return self.accessory_processing.get(name, self.default_accessory_processing)


def default_cost_model() -> CostModel:
    """A cost model with the library defaults (see module docstring)."""
    model = CostModel()
    # Guarantee the standard accessories are priced explicitly.
    for accessory in STANDARD_ACCESSORIES:
        model.accessory_processing.setdefault(
            accessory.name, model.default_accessory_processing
        )
    return model
